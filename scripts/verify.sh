#!/usr/bin/env bash
# Full local verification: everything CI (or the next contributor) expects
# to pass, in the order that fails fastest.
#
#   scripts/verify.sh
#
# Runs entirely offline against the workspace at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== resilience smoke (quick fault-scenario matrix) =="
ERAPID_QUICK=1 cargo run --release -q -p erapid-bench --bin resilience > /dev/null
rm -f RESILIENCE_*.json

echo "verify: all checks passed"
