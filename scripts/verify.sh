#!/usr/bin/env bash
# Full local verification: everything CI (or the next contributor) expects
# to pass, in the order that fails fastest.
#
#   scripts/verify.sh
#
# Runs entirely offline against the workspace at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== arbiter equivalence smoke (word-parallel vs slice oracles, release) =="
# The router's u64 word-scan arbiters (DESIGN.md §16) must stay
# position-identical to the retained slice-based oracle implementations;
# the property suite drives both through randomized grant histories.
cargo test -q --release -p router --test arbiter_props

echo "== determinism suite under board sharding (2 and 8 point workers) =="
# The sharded cycle engine (DESIGN.md §12) must stay byte-identical to the
# sequential one at any worker count — rerun the determinism suite (and,
# at 2 workers, the golden engine pins, exercising the bitset router's
# grant/stall/traversal order under sharding) with the env knob forcing
# every sharded code path through 2 and then 8 workers.
ERAPID_POINT_THREADS=2 cargo test -q --release --test determinism --test golden_engine
ERAPID_POINT_THREADS=8 cargo test -q --release --test determinism

echo "== perf smoke (reduced grid vs committed BENCH baseline) =="
if [ "${ERAPID_SKIP_PERF_SMOKE:-0}" = "1" ]; then
    echo "perf smoke: skipped (ERAPID_SKIP_PERF_SMOKE=1)"
else
    # Fails when the measured rate drops >20% below the best committed
    # BENCH_<sha>.json baseline (noisy shared runners: set
    # ERAPID_SKIP_PERF_SMOKE=1 instead of raising the tolerance).
    cargo run --release -q -p erapid-bench --bin perfreport -- --smoke
fi

echo "== scenarios smoke (workload generators: seq == sharded == fanned) =="
# One small P-B point per scenario through all three engines; the bin
# exits nonzero when delivery is zero or any engine pair diverges.
cargo run --release -q -p erapid-bench --bin scenarios -- --smoke

echo "== autotune smoke (sweep: seq == sharded, chosen beats paper baseline) =="
if [ "${ERAPID_SKIP_TUNE_SMOKE:-0}" = "1" ]; then
    echo "autotune smoke: skipped (ERAPID_SKIP_TUNE_SMOKE=1)"
else
    # The smoke grid on two hostile scenarios (small P-B system): every
    # operating point and the controller-enabled leg must be byte-identical
    # sequential vs board-sharded, and the chosen point must beat the
    # paper-constant baseline objective on >=1 scenario (DESIGN.md §15).
    cargo run --release -q -p erapid-bench --bin autotune -- --smoke
fi

echo "== resilience smoke (quick fault-scenario matrix) =="
ERAPID_QUICK=1 cargo run --release -q -p erapid-bench --bin resilience > /dev/null
rm -f RESILIENCE_*.json

echo "== tracereport smoke (quick traced run, JSONL + Perfetto outputs) =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
ERAPID_QUICK=1 ERAPID_TRACE="$trace_dir/trace.jsonl" \
    cargo run --release -q -p erapid-bench --bin tracereport > /dev/null
test -s "$trace_dir/trace.jsonl" || { echo "tracereport smoke: empty trace"; exit 1; }
test -s "$trace_dir/trace.trace.json" || { echo "tracereport smoke: missing chrome trace"; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$trace_dir/trace.jsonl" "$trace_dir/trace.trace.json" <<'PY'
import json, sys
lines = 0
with open(sys.argv[1]) as f:
    for line in f:
        json.loads(line)
        lines += 1
assert lines > 0, "no JSONL lines"
with open(sys.argv[2]) as f:
    doc = json.load(f)
assert doc["traceEvents"], "empty chrome trace"
print(f"tracereport smoke: {lines} JSONL lines, {len(doc['traceEvents'])} chrome events")
PY
else
    # No python3: cheap structural check — every line is a JSON object.
    bad=$(grep -cv '^{.*}$' "$trace_dir/trace.jsonl" || true)
    [ "$bad" = "0" ] || { echo "tracereport smoke: $bad malformed JSONL lines"; exit 1; }
    echo "tracereport smoke: $(wc -l < "$trace_dir/trace.jsonl") JSONL lines (structural check only)"
fi

# Dropped-events gate: the bin exits nonzero itself when any point drops
# trace events; belt-and-braces, also check the JSONL point headers.
if grep -o '"dropped":[0-9]*' "$trace_dir/trace.jsonl" | grep -qv ':0$'; then
    echo "tracereport smoke: trace events were dropped"; exit 1
fi

echo "== replay smoke (record -> persist -> replay conformance) =="
replay_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$replay_dir"' EXIT
ERAPID_QUICK=1 ERAPID_RESULTS="$replay_dir" \
    cargo run --release -q -p erapid-bench --bin replay > /dev/null
report=$(ls "$replay_dir"/REPLAY_*.json 2> /dev/null | head -1)
test -n "$report" && test -s "$report" || { echo "replay smoke: missing REPLAY_<sha>.json"; exit 1; }
# The bin itself asserts self-replay byte-identity, seq==par reports and
# an empty baseline self-diff; here we just confirm the artifacts landed.
test -s "$replay_dir"/workload_*.ertr || { echo "replay smoke: missing workload .ertr"; exit 1; }
echo "replay smoke: $(basename "$report") written"

echo "== marathon smoke (streamed run, forced mid-run kill, checkpoint resume) =="
marathon_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$replay_dir" "$marathon_dir"' EXIT
# The bin aborts itself mid-run (SIGABRT), resumes from the newest
# checkpoint, and asserts zero byte divergence from the uninterrupted run
# plus a peak-RSS ceiling — a nonzero exit here means the crash-safety
# contract broke. Run it through both engines.
ERAPID_QUICK=1 ERAPID_RESULTS="$marathon_dir" \
    cargo run --release -q -p erapid-bench --bin marathon > /dev/null
ERAPID_QUICK=1 ERAPID_RESULTS="$marathon_dir" ERAPID_POINT_THREADS=2 \
    cargo run --release -q -p erapid-bench --bin marathon > /dev/null
mreport=$(ls "$marathon_dir"/MARATHON_*.json 2> /dev/null | head -1)
test -n "$mreport" && test -s "$mreport" || { echo "marathon smoke: missing MARATHON_<sha>.json"; exit 1; }
grep -q '"resume_divergence": 0' "$mreport" || { echo "marathon smoke: nonzero resume divergence"; exit 1; }
echo "marathon smoke: $(basename "$mreport") written, zero resume divergence"

echo "verify: all checks passed"
