//! Packet-conservation invariants of the full system, including
//! property-style sweeps over random small configurations: the network
//! never loses or duplicates a packet, under every mode, pattern and load.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::desim::rng::Pcg32;
use erapid_suite::erapid_core::config::{BurstSpec, NetworkMode, SystemConfig};
use erapid_suite::erapid_core::system::System;
use erapid_suite::traffic::pattern::TrafficPattern;

fn plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(60_000)
}

/// Runs and checks delivered ≤ injected always, and delivered == injected
/// once fully drained.
fn check_conservation(mut sys: System, expect_drain: bool) {
    sys.run();
    let m = sys.metrics();
    assert!(
        m.delivered_total <= m.injected_total,
        "delivered {} > injected {}",
        m.delivered_total,
        m.injected_total
    );
    if expect_drain {
        // Stop injection and let the network empty completely.
        let mut extra = 0u64;
        while !sys.is_drained() && extra < 200_000 {
            sys.step_without_injection();
            extra += 1;
        }
        assert!(sys.is_drained(), "network failed to drain");
        let m = sys.metrics();
        assert_eq!(
            m.delivered_total, m.injected_total,
            "drained network must have delivered everything"
        );
    }
}

#[test]
fn conservation_all_modes_uniform() {
    for mode in NetworkMode::all() {
        let cfg = SystemConfig::small(mode);
        let sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
        check_conservation(sys, true);
    }
}

#[test]
fn conservation_adversarial_patterns() {
    for pattern in [
        TrafficPattern::Complement,
        TrafficPattern::Butterfly,
        TrafficPattern::Tornado,
    ] {
        let cfg = SystemConfig::small(NetworkMode::PB);
        let sys = System::new(cfg, pattern, 0.5, plan());
        check_conservation(sys, true);
    }
}

#[test]
fn conservation_under_saturation() {
    // Saturated complement on the static network: packets pile up, but
    // none may vanish or duplicate.
    let cfg = SystemConfig::small(NetworkMode::NpNb);
    let sys = System::new(cfg, TrafficPattern::Complement, 0.9, plan());
    check_conservation(sys, true);
}

#[test]
fn conservation_bursty() {
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.burst = Some(BurstSpec {
        burstiness: 4.0,
        dwell: 800.0,
    });
    let sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
    check_conservation(sys, true);
}

/// Random small configurations (deterministic PCG32 cases): no panics,
/// conservation holds, and the WDM invariant survives every run.
#[test]
fn conservation_random_configs() {
    let mut rng = Pcg32::stream(0xC0_45E2, 0);
    let windows = [500u64, 1000, 2000];
    for _case in 0..12 {
        let mode = NetworkMode::all()[rng.below(4) as usize];
        let load = 0.1 + 0.7 * rng.next_f64();
        let seed = rng.below(1_000) as u64;
        let window = windows[rng.below(3) as usize];
        let pattern = TrafficPattern::paper_suite()[rng.below(4) as usize]
            .1
            .clone();
        let mut cfg = SystemConfig::small(mode);
        cfg.seed = seed;
        cfg.schedule = erapid_suite::reconfig::lockstep::LockStepSchedule::new(window);
        let short = PhasePlan::new(window, 2 * window).with_max_cycles(20 * window);
        let mut sys = System::new(cfg, pattern, load, short);
        sys.run();
        let m = sys.metrics();
        assert!(
            m.delivered_total <= m.injected_total,
            "mode {mode:?} seed {seed} window {window}: delivered > injected"
        );
        // The WDM invariant must hold at the end of any run: each
        // (destination, wavelength) has at most one lit channel.
        let srs = sys.srs();
        for d in 0..4u16 {
            for w in 1..4u16 {
                let lit = (0..4u16)
                    .filter(|&s| s != d && srs.channel(s, d, w).is_on())
                    .count();
                assert!(lit <= 1, "WDM collision at (B{d}, λ{w}): {lit} lit");
            }
        }
    }
}
