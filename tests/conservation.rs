//! Packet-conservation invariants of the full system, including
//! property-style sweeps over random small configurations: the network
//! never loses or duplicates a packet, under every mode, pattern and load.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{BurstSpec, NetworkMode, SystemConfig};
use erapid_suite::erapid_core::system::System;
use erapid_suite::traffic::pattern::TrafficPattern;
use proptest::prelude::*;

fn plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(60_000)
}

/// Runs and checks delivered ≤ injected always, and delivered == injected
/// once fully drained.
fn check_conservation(mut sys: System, expect_drain: bool) {
    sys.run();
    let m = sys.metrics();
    assert!(
        m.delivered_total <= m.injected_total,
        "delivered {} > injected {}",
        m.delivered_total,
        m.injected_total
    );
    if expect_drain {
        // Stop injection and let the network empty completely.
        let mut extra = 0u64;
        while !sys.is_drained() && extra < 200_000 {
            sys.step_without_injection();
            extra += 1;
        }
        assert!(sys.is_drained(), "network failed to drain");
        let m = sys.metrics();
        assert_eq!(
            m.delivered_total, m.injected_total,
            "drained network must have delivered everything"
        );
    }
}

#[test]
fn conservation_all_modes_uniform() {
    for mode in NetworkMode::all() {
        let cfg = SystemConfig::small(mode);
        let sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
        check_conservation(sys, true);
    }
}

#[test]
fn conservation_adversarial_patterns() {
    for pattern in [
        TrafficPattern::Complement,
        TrafficPattern::Butterfly,
        TrafficPattern::Tornado,
    ] {
        let cfg = SystemConfig::small(NetworkMode::PB);
        let sys = System::new(cfg, pattern, 0.5, plan());
        check_conservation(sys, true);
    }
}

#[test]
fn conservation_under_saturation() {
    // Saturated complement on the static network: packets pile up, but
    // none may vanish or duplicate.
    let cfg = SystemConfig::small(NetworkMode::NpNb);
    let sys = System::new(cfg, TrafficPattern::Complement, 0.9, plan());
    check_conservation(sys, true);
}

#[test]
fn conservation_bursty() {
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.burst = Some(BurstSpec {
        burstiness: 4.0,
        dwell: 800.0,
    });
    let sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
    check_conservation(sys, true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small configurations: no panics, conservation holds.
    #[test]
    fn conservation_random_configs(
        mode_idx in 0usize..4,
        load in 0.1f64..0.8,
        seed in 0u64..1_000,
        window in prop::sample::select(vec![500u64, 1000, 2000]),
        pattern_idx in 0usize..4,
    ) {
        let mode = NetworkMode::all()[mode_idx];
        let pattern = TrafficPattern::paper_suite()[pattern_idx].1.clone();
        let mut cfg = SystemConfig::small(mode);
        cfg.seed = seed;
        cfg.schedule = erapid_suite::reconfig::lockstep::LockStepSchedule::new(window);
        let short = PhasePlan::new(window, 2 * window).with_max_cycles(20 * window);
        let mut sys = System::new(cfg, pattern, load, short);
        sys.run();
        let m = sys.metrics();
        prop_assert!(m.delivered_total <= m.injected_total);
        // The WDM invariant must hold at the end of any run: each
        // (destination, wavelength) has at most one lit channel.
        let srs = sys.srs();
        for d in 0..4u16 {
            for w in 1..4u16 {
                let lit = (0..4u16)
                    .filter(|&s| s != d && srs.channel(s, d, w).is_on())
                    .count();
                prop_assert!(lit <= 1, "WDM collision at (B{d}, λ{w}): {lit} lit");
            }
        }
    }
}
