//! Message-level integration test of the full five-stage Lock-Step DBR
//! protocol: RC and LC objects from `reconfig` exchanging real control
//! packets over the `ControlRing`, reproducing Fig. 4 end to end.
//!
//! Scenario: a 4-board system under complement-like load — board 0's flow
//! toward board 3 is congested, every other flow toward board 3 is idle.
//! After one full protocol round, board 3 must have granted the idle
//! wavelengths to board 0 and the affected boards must hold matching laser
//! commands.

use erapid_suite::photonics::bitrate::RateLadder;
use erapid_suite::photonics::rwa::StaticRwa;
use erapid_suite::photonics::wavelength::BoardId;
use erapid_suite::powermgmt::policy::DpmPolicy;
use erapid_suite::powermgmt::regulator::LinkRegulator;
use erapid_suite::powermgmt::transition::TransitionModel;
use erapid_suite::reconfig::alloc::AllocPolicy;
use erapid_suite::reconfig::lc::LinkController;
use erapid_suite::reconfig::msg::{ControlPacket, LaserCommand};
use erapid_suite::reconfig::rc::ReconfigController;
use erapid_suite::reconfig::ring::ControlRing;
use erapid_suite::reconfig::stages::{ProtocolTiming, Stage};

const BOARDS: u16 = 4;
const WINDOW: u64 = 100;

fn make_lcs(board: u16, rwa: &StaticRwa) -> Vec<LinkController> {
    (0..BOARDS)
        .map(|w| {
            let mut lc = LinkController::new(
                erapid_suite::photonics::wavelength::Wavelength(w),
                WINDOW,
                LinkRegulator::new(
                    DpmPolicy::power_bandwidth(),
                    RateLadder::paper(),
                    TransitionModel::paper(),
                ),
            );
            // Static RWA: transmitter w on `board` points at the board it
            // statically serves, if any.
            if w != 0 {
                for d in 0..BOARDS {
                    if d != board && rwa.wavelength(BoardId(board), BoardId(d)).0 == w {
                        lc.set_destination(Some(BoardId(d)));
                    }
                }
            }
            lc
        })
        .collect()
}

#[test]
#[allow(clippy::needless_range_loop)]
fn five_stage_dbr_round_reallocates_toward_the_hot_flow() {
    let rwa = StaticRwa::new(BOARDS);
    let mut rcs: Vec<ReconfigController> = (0..BOARDS)
        .map(|b| ReconfigController::new(BoardId(b), BOARDS, AllocPolicy::paper()))
        .collect();
    let mut lcs: Vec<Vec<LinkController>> = (0..BOARDS).map(|b| make_lcs(b, &rwa)).collect();

    // --- Load the hardware counters: board 0 → board 3 is hot. ---
    for b in 0..BOARDS as usize {
        for lc in &mut lcs[b] {
            let hot = b == 0 && lc.destination() == Some(BoardId(3));
            for _ in 0..WINDOW {
                lc.record_cycle(hot, if hot { 0.9 } else { 0.0 });
            }
            lc.roll_window();
        }
    }

    // --- Stage 1: Link Request (RC → LC chain → RC), per board. ---
    for b in 0..BOARDS as usize {
        let mut packet = ControlPacket::LinkRequest {
            origin: BoardId(b as u16),
            readings: vec![],
        };
        for lc in &lcs[b] {
            if let ControlPacket::LinkRequest { readings, .. } = &mut packet {
                readings.push(lc.reading());
            }
        }
        if let ControlPacket::LinkRequest { readings, .. } = &packet {
            rcs[b].update_outgoing(readings);
        }
    }

    // --- Stage 2: Board Request over the ring, all boards in lock-step. ---
    let timing = ProtocolTiming {
        boards: BOARDS,
        lcs_per_board: BOARDS,
        ..ProtocolTiming::paper64()
    };
    let mut ring = ControlRing::new(BOARDS, timing.ring_hop);
    for b in 0..BOARDS {
        ring.send(
            0,
            BoardId(b),
            ControlPacket::BoardRequest {
                origin: BoardId(b),
                reports: vec![],
            },
        );
    }
    let mut now = 0;
    for _hop in 0..BOARDS as u64 {
        now += timing.ring_hop;
        ring.advance(now);
        for b in 0..BOARDS {
            let (_, mut packet) = ring.receive(BoardId(b)).expect("lock-step delivery");
            let origin = packet.origin();
            if origin == BoardId(b) {
                // Home: ingest the collected reports.
                if let ControlPacket::BoardRequest { reports, .. } = &packet {
                    rcs[b as usize].update_incoming(reports);
                }
            } else {
                // Append this board's reading toward the requester, forward.
                if let ControlPacket::BoardRequest { reports, .. } = &mut packet {
                    if let Some(report) = rcs[b as usize].report_toward(origin) {
                        reports.push(report);
                    }
                }
                ring.send(now, BoardId(b), packet);
            }
        }
    }

    // --- Stage 3: Reconfigure at every destination RC. ---
    let mut all_grants = Vec::new();
    for rc in &mut rcs {
        all_grants.extend(rc.reconfigure());
    }
    // Only board 3 had a congested incoming flow: both idle wavelengths
    // toward board 3 (owned by boards 1 and 2) go to board 0.
    assert_eq!(all_grants.len(), 2, "grants: {all_grants:?}");
    assert!(all_grants.iter().all(|g| g.destination == BoardId(3)));
    assert!(all_grants.iter().all(|g| g.to == BoardId(0)));

    // --- Stage 4: Board Response — all RCs learn the grants. ---
    let mut commands: Vec<Vec<LaserCommand>> = Vec::new();
    for rc in &mut rcs {
        commands.push(rc.commands_from_grants(&all_grants));
    }
    // Board 0 turns two lasers on; boards 1 and 2 turn one off each.
    assert_eq!(commands[0].len(), 2);
    assert!(commands[0]
        .iter()
        .all(|c| c.on && c.destination == BoardId(3)));
    assert_eq!(commands[1].len(), 1);
    assert!(!commands[1][0].on);
    assert_eq!(commands[2].len(), 1);
    assert!(!commands[2][0].on);
    assert!(commands[3].is_empty());

    // --- Stage 5: Link Response — LCs apply the laser commands. ---
    for b in 0..BOARDS as usize {
        for cmd in &commands[b] {
            let lc = &mut lcs[b][cmd.wavelength.index()];
            lc.apply(*cmd);
        }
    }
    // Board 0 now drives two extra transmitters toward board 3...
    let b0_toward_3 = lcs[0]
        .iter()
        .filter(|lc| lc.destination() == Some(BoardId(3)))
        .count();
    assert_eq!(b0_toward_3, 3, "static + two granted");
    // ...and the donors' lasers are dark.
    for b in [1usize, 2] {
        let toward_3 = lcs[b]
            .iter()
            .filter(|lc| lc.destination() == Some(BoardId(3)))
            .count();
        assert_eq!(toward_3, 0, "board {b} released its wavelength");
    }

    // The whole round fits comfortably inside one R_w window.
    assert!(timing.dbr_latency() < WINDOW);
    assert_eq!(Stage::all().len(), 5);
}

#[test]
fn balanced_load_round_produces_no_grants() {
    let rwa = StaticRwa::new(BOARDS);
    let mut rcs: Vec<ReconfigController> = (0..BOARDS)
        .map(|b| ReconfigController::new(BoardId(b), BOARDS, AllocPolicy::paper()))
        .collect();
    let mut lcs: Vec<Vec<LinkController>> = (0..BOARDS).map(|b| make_lcs(b, &rwa)).collect();
    // Every flow moderately utilized (normal band).
    for board_lcs in &mut lcs {
        for lc in board_lcs.iter_mut() {
            let active = lc.destination().is_some();
            for i in 0..WINDOW {
                lc.record_cycle(active && i % 2 == 0, if active { 0.2 } else { 0.0 });
            }
            lc.roll_window();
        }
    }
    for b in 0..BOARDS as usize {
        let readings: Vec<_> = lcs[b].iter().map(|lc| lc.reading()).collect();
        rcs[b].update_outgoing(&readings);
    }
    // Short-circuit the ring for this test: feed incoming tables directly.
    for d in 0..BOARDS {
        let reports: Vec<_> = (0..BOARDS)
            .filter(|&s| s != d)
            .filter_map(|s| rcs[s as usize].report_toward(BoardId(d)))
            .collect();
        rcs[d as usize].update_incoming(&reports);
    }
    for rc in &mut rcs {
        assert!(rc.reconfigure().is_empty(), "normal band: nothing to do");
    }
}
