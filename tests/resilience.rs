//! Fault resilience through reconfigurability: when a receiver dies, a
//! bandwidth-reconfigurable E-RAPID re-acquires capacity for the orphaned
//! flow through its queue demand; a statically-assigned network starves.
//! (The fault-tolerance dividend of DBR — implied by the architecture,
//! developed in the authors' later work.)

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{ControlPlane, NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::run_once;
use erapid_suite::erapid_core::faults::{FaultKind, FaultPlan};
use erapid_suite::erapid_core::system::System;
use erapid_suite::photonics::rwa::StaticRwa;
use erapid_suite::photonics::wavelength::BoardId;
use erapid_suite::traffic::pattern::TrafficPattern;

const FAULT_AT: u64 = 4000;

fn plan() -> PhasePlan {
    PhasePlan::new(8000, 8000).with_max_cycles(80_000)
}

/// Runs complement traffic (board 0 ↔ board 3 are partners; every other
/// flow toward board 3 idles — so spare wavelengths exist for DBR), killing
/// board 0's static wavelength toward board 3 early in the warm-up.
/// Returns (delivered, undrained, grants).
///
/// Complement is the right fault scenario under the paper's thresholds:
/// `B_min = 0` means only *completely idle* flows donate wavelengths, so
/// under uniform traffic a dead wavelength is genuinely unrecoverable —
/// every other flow is busy. Reconfigurability buys resilience exactly
/// where load is concentrated.
fn run_with_fault(mode: NetworkMode, load: f64) -> (u64, u64, u64) {
    let cfg = SystemConfig::small(mode);
    let rwa = StaticRwa::new(cfg.boards);
    // Static wavelength of flow 0 → 3.
    let w = rwa.wavelength(BoardId(0), BoardId(3)).0;
    let mut sys = System::new(cfg, TrafficPattern::Complement, load, plan());
    while sys.now() < FAULT_AT {
        sys.step();
    }
    sys.fail_receiver(3, w);
    sys.run();
    let m = sys.metrics();
    (
        m.delivered_total,
        m.tracker.outstanding(),
        sys.srs().reconfig_counts().0,
    )
}

#[test]
fn static_network_starves_after_receiver_failure() {
    let (_, undrained, grants) = run_with_fault(NetworkMode::NpNb, 0.3);
    assert_eq!(grants, 0);
    assert!(
        undrained > 0,
        "flow 0→3 has no path in NP-NB after the failure; labelled packets \
         must be stuck"
    );
}

#[test]
fn reconfigurable_network_routes_around_the_failure() {
    let (_, undrained, grants) = run_with_fault(NetworkMode::NpB, 0.3);
    assert!(grants > 0, "DBR must have re-assigned wavelengths");
    assert_eq!(
        undrained, 0,
        "with DBR, flow 0→3 re-acquires a wavelength and every labelled \
         packet drains"
    );
}

#[test]
fn reconfigured_network_keeps_comparable_delivery_volume() {
    let (delivered_ok, _, _) = {
        let cfg = SystemConfig::small(NetworkMode::NpB);
        let mut sys = System::new(cfg, TrafficPattern::Complement, 0.3, plan());
        sys.run();
        (sys.metrics().delivered_total, 0u64, 0u64)
    };
    let (delivered_fault, undrained, _) = run_with_fault(NetworkMode::NpB, 0.3);
    assert_eq!(undrained, 0);
    // One dead wavelength costs little total volume once DBR re-routes.
    let ratio = delivered_fault as f64 / delivered_ok as f64;
    assert!(ratio > 0.85, "delivery ratio {ratio}");
}

#[test]
fn token_loss_round_completes_via_retry_instead_of_deadlocking() {
    // Regression (a): losing an LS token mid-round must not hang the
    // control plane. The round watchdog detects the silent loss, relaunches
    // the stage, and the round's decisions still land — the run finishes,
    // DBR still grants, and the abort fail-safe never fires.
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.control_plane = ControlPlane::MessageLevel;
    // First bandwidth boundary is t = 4000 (window 2000, even windows
    // trigger Bandwidth); 10 cycles later the token is mid-ring.
    cfg.faults = FaultPlan::new().at(4010, FaultKind::TokenLoss { victim: 1 });
    let faulted = run_once(
        cfg.clone(),
        TrafficPattern::Complement,
        0.4,
        PhasePlan::new(2000, 6000).with_max_cycles(40_000),
    );
    cfg.faults = FaultPlan::new();
    let clean = run_once(
        cfg,
        TrafficPattern::Complement,
        0.4,
        PhasePlan::new(2000, 6000).with_max_cycles(40_000),
    );
    assert!(
        faulted.ls_retries >= 1,
        "the watchdog must have resent the lost token"
    );
    assert_eq!(faulted.ls_aborts, 0, "retry must succeed, not abort");
    assert!(faulted.grants > 0, "the recovered round still reconfigures");
    assert_eq!(
        faulted.grants, clean.grants,
        "recovery delays the decisions but must not change them"
    );
    assert_eq!(faulted.undrained, 0, "every labelled packet drains");
}

#[test]
fn throughput_recovers_after_receiver_repair() {
    // Regression (b): after a receiver failure *and* repair, steady state
    // must return — measured entirely post-repair, accepted throughput
    // stays within 5% of a fault-free run of the same seed.
    let outage = FaultPlan::new().receiver_outage(3, 1, 4000, 8000);
    let plan = PhasePlan::new(12_000, 12_000).with_max_cycles(80_000);
    let mut cfg = SystemConfig::small(NetworkMode::NpB);
    cfg.faults = outage;
    let repaired = run_once(cfg, TrafficPattern::Complement, 0.3, plan);
    let clean = run_once(
        SystemConfig::small(NetworkMode::NpB),
        TrafficPattern::Complement,
        0.3,
        plan,
    );
    assert_eq!(repaired.undrained, 0, "no packet may stay stuck");
    let rel = (repaired.throughput - clean.throughput).abs() / clean.throughput;
    assert!(
        rel < 0.05,
        "post-repair throughput {} vs fault-free {} diverges by {:.1}%",
        repaired.throughput,
        clean.throughput,
        100.0 * rel
    );
}

#[test]
fn repair_restores_the_static_network_too() {
    // `repair_receiver` is the inverse of `fail_receiver` even without DBR:
    // once the receiver is back, NP-NB's static wavelength relights and the
    // previously-starved flow drains.
    let cfg = SystemConfig::small(NetworkMode::NpNb);
    let rwa = StaticRwa::new(cfg.boards);
    let w = rwa.wavelength(BoardId(0), BoardId(3)).0;
    let mut sys = System::new(cfg, TrafficPattern::Complement, 0.3, plan());
    while sys.now() < FAULT_AT {
        sys.step();
    }
    sys.fail_receiver(3, w);
    while sys.now() < 2 * FAULT_AT {
        sys.step();
    }
    sys.repair_receiver(3, w);
    sys.run();
    let m = sys.metrics();
    assert_eq!(
        m.tracker.outstanding(),
        0,
        "repaired static network must drain the orphaned flow"
    );
}

#[test]
fn conservation_holds_across_failures() {
    // Even with the fault, nothing is lost or duplicated: whatever was
    // delivered is at most what was injected, and stuck packets account
    // for the rest once the network drains around the dead wavelength.
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let cfg = SystemConfig::small(mode);
        let mut sys = System::new(cfg, TrafficPattern::Complement, 0.3, plan());
        while sys.now() < FAULT_AT {
            sys.step();
        }
        sys.fail_receiver(3, 1);
        sys.fail_receiver(2, 2);
        sys.run();
        let m = sys.metrics();
        assert!(m.delivered_total <= m.injected_total);
        assert!(m.delivered_total > 0);
    }
}
