//! Telemetry contract: tracing observes a run without perturbing it, and
//! the recorded trace is byte-identical across sequential and parallel
//! sweeps (the acceptance bar for the telemetry subsystem — see DESIGN.md
//! §8).

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{ControlPlane, NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::{run_once, run_once_traced, TraceSource};
use erapid_suite::erapid_core::faults::{FaultKind, FaultPlan};
use erapid_suite::erapid_core::runner::{run_points_traced, RunPoint};
use erapid_suite::erapid_telemetry::{chrome_trace, jsonl, TraceConfig};
use erapid_suite::traffic::pattern::TrafficPattern;
use std::num::NonZeroUsize;

fn plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(30_000)
}

/// A faulted small-system point exercising every event family: DPM (P-B),
/// DBR grants (complement's hot flows starve without reassignment), a
/// receiver outage, a CDR relock on a live hot channel and an LS token
/// loss. Small topology is R(1,4,4): complement pairs 0↔3 / 1↔2, so the
/// hot flow 1→2 rides λ(1→2) = 3 and 0→3 rides λ1 (the outage victim).
fn traced_point(mode: NetworkMode, control: ControlPlane, load: f64) -> RunPoint {
    let mut cfg = SystemConfig::small(mode);
    cfg.control_plane = control;
    cfg.trace = TraceConfig::on();
    cfg.faults = FaultPlan::new()
        .receiver_outage(3, 1, 3000, 7000)
        .at(
            3500,
            FaultKind::CdrRelock {
                board: 1,
                dest: 2,
                wavelength: 3,
                penalty: 200,
            },
        )
        .at(4010, FaultKind::TokenLoss { victim: 2 });
    RunPoint {
        cfg,
        pattern: TrafficPattern::Complement,
        load,
        plan: plan(),
        source: TraceSource::Generate,
    }
}

fn batch() -> Vec<RunPoint> {
    // Both control planes and both reconfig-capable modes, two loads: the
    // trace content differs per point, so an ordering bug cannot cancel out.
    let mut points = Vec::new();
    for control in [ControlPlane::AnalyticLatency, ControlPlane::MessageLevel] {
        for mode in [NetworkMode::PB, NetworkMode::NpB] {
            for load in [0.3, 0.6] {
                points.push(traced_point(mode, control, load));
            }
        }
    }
    points
}

#[test]
fn traces_are_byte_identical_sequential_vs_parallel() {
    let seq = run_points_traced(NonZeroUsize::MIN, batch());
    let par = run_points_traced(NonZeroUsize::new(4).unwrap(), batch());
    assert_eq!(seq.len(), par.len());
    for (i, ((rs, ts), (rp, tp))) in seq.iter().zip(&par).enumerate() {
        assert_eq!(rs, rp, "point {i}: results diverged");
        assert!(!ts.records.is_empty(), "point {i}: empty trace");
        assert_eq!(
            jsonl(&ts.records),
            jsonl(&tp.records),
            "point {i}: trace bytes diverged"
        );
        assert_eq!(
            chrome_trace(&ts.records),
            chrome_trace(&tp.records),
            "point {i}: chrome trace bytes diverged"
        );
        assert_eq!(ts.windows, tp.windows, "point {i}: metric windows diverged");
        assert_eq!(ts.dropped, tp.dropped);
    }
}

#[test]
fn tracing_does_not_perturb_results() {
    let traced = traced_point(NetworkMode::PB, ControlPlane::MessageLevel, 0.5);
    let mut plain = traced.clone();
    plain.cfg.trace = TraceConfig::off();
    let (r_traced, trace) = run_once_traced(traced.cfg, traced.pattern, traced.load, traced.plan);
    let r_plain = run_once(plain.cfg, plain.pattern, plain.load, plain.plan);
    assert_eq!(r_traced, r_plain, "tracing must observe, never perturb");
    assert!(!trace.records.is_empty());
    assert!(!trace.windows.is_empty());
}

#[test]
fn trace_off_returns_empty_trace_and_same_result() {
    let mut point = traced_point(NetworkMode::PB, ControlPlane::AnalyticLatency, 0.4);
    point.cfg.trace = TraceConfig::off();
    let (r, trace) = run_once_traced(point.cfg.clone(), point.pattern.clone(), 0.4, point.plan);
    let r2 = run_once(point.cfg, point.pattern, 0.4, point.plan);
    assert_eq!(r, r2);
    assert!(trace.records.is_empty());
    assert!(trace.windows.is_empty());
    assert_eq!(trace.dropped, 0);
    assert!(trace.counter_names.is_empty());
    assert!(trace.hist_summaries.is_empty());
}

#[test]
fn latency_and_tx_wait_histograms_are_registered_and_populated() {
    let p = traced_point(NetworkMode::PB, ControlPlane::AnalyticLatency, 0.5);
    let (r, trace) = run_once_traced(p.cfg, p.pattern, p.load, p.plan);
    let names: Vec<&str> = trace
        .hist_summaries
        .iter()
        .map(|h| h.name.as_str())
        .collect();
    assert_eq!(
        names,
        ["latency_cycles", "tx_wait_cycles"],
        "histograms must register in a fixed order"
    );
    for h in &trace.hist_summaries {
        assert!(h.count > 0, "{}: empty histogram", h.name);
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99, "{}: quantiles", h.name);
    }
    // The latency histogram digests the same population the headline mean
    // summarises: its mean lands within a bin width of the exact mean.
    let lat = &trace.hist_summaries[0];
    assert!(
        (lat.mean - r.latency).abs() < 16.0,
        "histogram mean {} vs exact mean {}",
        lat.mean,
        r.latency
    );
}

#[test]
fn faulted_trace_contains_every_event_family() {
    let p = traced_point(NetworkMode::PB, ControlPlane::MessageLevel, 0.5);
    let (_, trace) = run_once_traced(p.cfg, p.pattern, p.load, p.plan);
    let tags: std::collections::BTreeSet<&str> =
        trace.records.iter().map(|r| r.event.tag()).collect();
    for family in [
        "window",
        "dpm_retune",
        "dpm_applied",
        "ls_stage",
        "dbr_outcome",
        "grant",
        "fault",
        "relock_start",
        "relock_end",
    ] {
        assert!(tags.contains(family), "missing {family}; saw {tags:?}");
    }
}
