//! Property-based tests (proptest) on the core data structures and
//! invariants across crates.

use erapid_suite::desim::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
use erapid_suite::desim::rng::Pcg32;
use erapid_suite::netstats::histogram::Histogram;
use erapid_suite::netstats::running::Running;
use erapid_suite::photonics::rwa::StaticRwa;
use erapid_suite::photonics::wavelength::{BoardId, Wavelength};
use erapid_suite::reconfig::alloc::{AllocPolicy, FlowDemand, IncomingLink};
use erapid_suite::traffic::capacity::CapacityModel;
use erapid_suite::traffic::pattern::TrafficPattern;
use proptest::prelude::*;

proptest! {
    /// The two pending-event-set implementations dequeue identically for
    /// any interleaving of inserts and pops.
    #[test]
    fn queues_agree(ops in prop::collection::vec((0u8..3, 0u64..200), 1..300)) {
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(16, 3);
        let mut now = 0u64;
        for (i, (op, dt)) in ops.into_iter().enumerate() {
            if op < 2 {
                heap.insert(now + dt, i);
                cal.insert(now + dt, i);
            } else {
                let a = heap.pop();
                let b = cal.pop();
                prop_assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = now.max(t);
                }
            }
        }
        // Drain both fully.
        loop {
            let a = heap.pop();
            let b = cal.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Static RWA is a bijection at every destination, for any board count.
    #[test]
    fn rwa_bijective(boards in 2u16..32) {
        let rwa = StaticRwa::new(boards);
        for d in 0..boards {
            let mut seen = vec![false; boards as usize];
            for s in 0..boards {
                if s == d { continue; }
                let w = rwa.wavelength(BoardId(s), BoardId(d));
                prop_assert!(w.0 >= 1 && w.0 < boards);
                prop_assert!(!seen[w.index()]);
                seen[w.index()] = true;
                prop_assert_eq!(rwa.static_owner(BoardId(d), w), BoardId(s));
            }
        }
    }

    /// The allocator never grants a wavelength to its current owner, never
    /// grants the same wavelength twice, and respects the grant limit.
    #[test]
    fn alloc_invariants(
        utils in prop::collection::vec(0.0f64..1.0, 2..8),
        demands in prop::collection::vec(0.0f64..1.0, 2..8),
        limit in 0usize..6,
    ) {
        let n = utils.len().min(demands.len());
        let channels: Vec<IncomingLink> = (0..n).map(|i| IncomingLink {
            wavelength: Wavelength(i as u16 + 1),
            owner: BoardId(i as u16),
            buffer_util: utils[i],
        }).collect();
        let flow_demands: Vec<FlowDemand> = (0..n).map(|i| FlowDemand {
            source: BoardId(i as u16),
            buffer_util: demands[i],
        }).collect();
        let policy = AllocPolicy::paper().with_limit(limit);
        let grants = policy.reconfigure_with_demands(BoardId(99), &channels, &flow_demands);
        prop_assert!(grants.len() <= limit);
        let mut seen = std::collections::HashSet::new();
        for g in &grants {
            prop_assert_ne!(g.from, g.to, "self-grant");
            prop_assert!(seen.insert(g.wavelength), "wavelength granted twice");
            // The recipient's demand is over-utilized.
            let demand = flow_demands.iter().find(|d| d.source == g.to).unwrap();
            prop_assert!(demand.buffer_util > 0.3);
            // The donor's flow is under-utilized.
            let donor = flow_demands.iter().find(|d| d.source == g.from).unwrap();
            prop_assert!(donor.buffer_util <= 0.0);
        }
    }

    /// Permutation patterns are bijections on any power-of-two population.
    #[test]
    fn patterns_bijective(bits in 2u32..8) {
        let n = 1u32 << bits;
        let mut rng = Pcg32::stream(1, 1);
        for p in [
            TrafficPattern::Complement,
            TrafficPattern::Butterfly,
            TrafficPattern::PerfectShuffle,
            TrafficPattern::BitReversal,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbour,
        ] {
            let mut seen = vec![false; n as usize];
            for src in 0..n {
                let d = p.dest(src, n, &mut rng);
                prop_assert!(d < n);
                prop_assert!(!seen[d as usize], "{} collides", p.name());
                seen[d as usize] = true;
            }
        }
    }

    /// Histogram quantiles are monotone in q and bracket the recorded data.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(0.0f64..1000.0, 1..200)) {
        let mut h = Histogram::new(128, 10.0);
        for &s in &samples {
            h.record(s);
        }
        let qs: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        // q = 1.0 resolves to a bin upper edge at or above the maximum
        // sample (or +inf when it overflowed the last bin).
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let q100 = h.quantile(1.0).unwrap();
        prop_assert!(q100 >= max || q100.is_infinite(), "q100 {q100} < max {max}");
    }

    /// Welford merge is order-independent and matches the sequential pass.
    #[test]
    fn running_merge_associative(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut whole = Running::new();
        for &x in a.iter().chain(&b) { whole.push(x); }
        let mut ra = Running::new();
        for &x in &a { ra.push(x); }
        let mut rb = Running::new();
        for &x in &b { rb.push(x); }
        ra.merge(&rb);
        prop_assert_eq!(ra.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((ra.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((ra.variance() - whole.variance()).abs() < 1e-6);
        }
    }

    /// Capacity is positive, below the electrical bound, and monotone in
    /// optical speed.
    #[test]
    fn capacity_sane(boards in 2u32..16, nodes in 1u32..16, flit_cycles in 1u32..20) {
        let c = CapacityModel {
            boards,
            nodes_per_board: nodes,
            packet_flits: 8,
            flit_cycles,
        };
        let nc = c.uniform_capacity();
        prop_assert!(nc > 0.0);
        prop_assert!(nc <= c.electrical_bound() + 1e-12);
        let faster = CapacityModel { flit_cycles: flit_cycles.max(2) - 1, ..c };
        prop_assert!(faster.uniform_capacity() >= nc - 1e-12);
    }

    /// Uniform destinations never pick the source and cover the range.
    #[test]
    fn uniform_destination_valid(n in 2u32..200, src_frac in 0.0f64..1.0, seed in 0u64..1000) {
        let src = ((n as f64 - 1.0) * src_frac) as u32;
        let mut rng = Pcg32::stream(seed, 0);
        for _ in 0..50 {
            let d = TrafficPattern::Uniform.dest(src, n, &mut rng);
            prop_assert!(d < n);
            prop_assert_ne!(d, src);
        }
    }
}
