//! Deterministic pins for the offline tuning sweep (`erapid-tune`,
//! DESIGN.md §15).
//!
//! A real mini-sweep — the `autotune --smoke` grid plus the paper-constant
//! baseline, run through the traced engine on the small P-B system under
//! the Zipf-hotspot scenario — is joined into [`SweepOutcome`]s exactly the
//! way the `autotune` bench bin does it. The test then pins the *shape* of
//! the analysis: the Pareto front is non-empty, sorted by ascending power
//! and pairwise non-dominated, and [`choose`] lands on the pinned operating
//! point. Because every input run is byte-deterministic (golden_engine.rs),
//! any drift here is an intentional change to the sweep analysis itself —
//! reprint with `--ignored regen_autotune --nocapture`.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::run_once_traced;
use erapid_suite::erapid_telemetry::TraceConfig;
use erapid_suite::erapid_tune::{choose, pareto_front, OperatingPoint, SweepOutcome, TuneGrid};
use erapid_suite::erapid_workloads::ScenarioSpec;
use erapid_suite::reconfig::lockstep::LockStepSchedule;
use erapid_suite::traffic::pattern::TrafficPattern;

/// Two measured windows and a drain cap: long enough for several DPM
/// windows so the joined `dpm_retunes` column is non-trivial.
fn sweep_plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(24_000)
}

/// One sweep leg, configured the way `autotune` configures a [`RunPoint`]:
/// scenario generator on, the point's thresholds as the DPM override, its
/// `B_max` as the allocator threshold, its `R_w` as the Lock-Step window.
fn sweep_once(op: OperatingPoint) -> SweepOutcome {
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.scenario = Some(ScenarioSpec::incast());
    cfg.trace = TraceConfig::with_capacity(1024);
    cfg.dpm_override = Some(op.dpm_policy());
    cfg.alloc.b_max = op.b_max_milli as f64 / 1000.0;
    cfg.schedule = LockStepSchedule::new(op.r_w);
    let (r, trace) = run_once_traced(cfg, TrafficPattern::Uniform, 0.6, sweep_plan());
    SweepOutcome::join(
        op,
        r.injected,
        r.delivered,
        r.power_mw,
        r.latency,
        r.latency_p95,
        &trace.counter_names,
        &trace.windows,
    )
    .expect("traced scenario run joins cleanly")
}

/// The swept points: paper P-B constants first, then the smoke grid.
fn sweep_points() -> Vec<OperatingPoint> {
    let baseline = OperatingPoint::from_policy(
        NetworkMode::PB.dpm_policy().expect("P-B is power-aware"),
        2000,
    );
    let mut points = vec![baseline];
    for p in TuneGrid::smoke().points().expect("smoke grid is valid") {
        if p != baseline {
            points.push(p);
        }
    }
    points
}

/// Pinned from a regen run: the chosen operating point and the Pareto
/// front's point labels, in ascending-power order. Under incast the
/// `B_max`=0.3 points win the raw power × p95 objective but starve
/// delivery (52.6% vs 55.7%); the delivery guard throws them out and
/// [`choose`] lands on the `B_max`=0.5 point instead — so the chosen
/// point legitimately sits *off* the unguarded front here.
const CHOSEN_PIN: &str = "l750-900 b500 rw2000";
const FRONT_PIN: &[&str] = &["l700-900 b300 rw2000"];

/// Prints the pins above. Run manually after an intentional sweep or
/// engine change: `cargo test --test autotune -- --ignored regen_autotune
/// --nocapture`.
#[test]
#[ignore = "pin regeneration: run manually with --ignored --nocapture"]
fn regen_autotune() {
    let outcomes: Vec<SweepOutcome> = sweep_points().into_iter().map(sweep_once).collect();
    for o in &outcomes {
        println!(
            "    {}: delivered {}/{}, power {:.3} mW, p95 {:.1}, objective {:.1}, retunes {}, crossings {}",
            o.point.label(),
            o.delivered,
            o.injected,
            o.power_mw,
            o.latency_p95,
            o.objective(),
            o.retunes,
            o.buffer_crossings,
        );
    }
    let front = pareto_front(&outcomes);
    println!(
        "    front: {:?}",
        front.iter().map(|o| o.point.label()).collect::<Vec<_>>()
    );
    println!(
        "    chosen: {}",
        choose(&outcomes)
            .expect("sweep has a viable point")
            .point
            .label()
    );
}

/// The sweep's Pareto front is well-formed and the chosen point is pinned.
#[test]
fn mini_sweep_front_shape_and_chosen_point_are_pinned() {
    let outcomes: Vec<SweepOutcome> = sweep_points().into_iter().map(sweep_once).collect();
    assert!(outcomes.len() >= 5, "baseline + smoke grid");
    for o in &outcomes {
        assert!(
            o.injected > 0,
            "{}: scenario injected nothing",
            o.point.label()
        );
        assert!(
            o.power_mw.is_finite() && o.power_mw > 0.0,
            "{}: degenerate power",
            o.point.label()
        );
    }

    let front = pareto_front(&outcomes);
    assert!(!front.is_empty(), "Pareto front must be non-empty");
    for pair in front.windows(2) {
        assert!(
            pair[0].power_mw <= pair[1].power_mw,
            "front not sorted by ascending power: {} then {}",
            pair[0].point.label(),
            pair[1].point.label()
        );
    }
    for a in &front {
        for b in &front {
            if a.point != b.point {
                let dominates = a.power_mw <= b.power_mw
                    && a.latency_p95 <= b.latency_p95
                    && (a.power_mw < b.power_mw || a.latency_p95 < b.latency_p95);
                assert!(
                    !dominates,
                    "front member {} dominates front member {}",
                    a.point.label(),
                    b.point.label()
                );
            }
        }
    }
    for f in &front {
        assert!(
            outcomes.iter().any(|o| o.point == f.point),
            "front member {} not among swept outcomes",
            f.point.label()
        );
    }

    let labels: Vec<String> = front.iter().map(|o| o.point.label()).collect();
    assert_eq!(labels, FRONT_PIN, "Pareto front drifted");

    let chosen = choose(&outcomes).expect("sweep has a viable point");
    assert_eq!(chosen.point.label(), CHOSEN_PIN, "chosen point drifted");
    let best_fraction = outcomes
        .iter()
        .map(|o| o.delivered_fraction())
        .fold(0.0f64, f64::max);
    assert!(
        chosen.delivered_fraction() >= 0.95 * best_fraction,
        "chosen point {} violates the delivery guard ({:.3} < 0.95 × {:.3})",
        chosen.point.label(),
        chosen.delivered_fraction(),
        best_fraction
    );
}
