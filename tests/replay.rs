//! Golden-trace regression suite: committed trace fixtures replayed
//! against pinned results.
//!
//! The fixtures under `tests/fixtures/` are small recorded workloads
//! (R(1,4,4), short horizon) in the versioned `.ertr` binary format. Each
//! test replays one against a fixed configuration and pins the outcome —
//! delivered count, mean latency, final per-LC power level — so any
//! behavioural drift in routing, DPM or DBR fails a test instead of
//! passing silently.
//!
//! Regenerate the fixtures (and reprint the pinned values) after an
//! *intentional* behaviour change with:
//!
//! ```text
//! cargo test --test replay -- --ignored regen_fixtures --nocapture
//! ```
//! then update the pins this file asserts.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::{
    run_once, run_once_recorded, run_once_replayed, trace_meta, RunResult, TraceSource,
};
use erapid_suite::erapid_core::runner::{run_points_traced, RunPoint};
use erapid_suite::erapid_core::system::System;
use erapid_suite::traffic::pattern::TrafficPattern;
use erapid_suite::traffic::trace::InjectionTrace;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::Arc;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Short horizon: one warm-up window, two measured, hard cap well past
/// drain for these loads.
fn short_plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(20_000)
}

/// The final power level of every lit LC, in deterministic (d, w) scan
/// order: the fingerprint DPM drift shows up in first.
fn final_lc_levels(sys: &System) -> Vec<u8> {
    let boards = sys.config().boards;
    let mut levels = Vec::new();
    for d in 0..boards {
        for w in 1..boards {
            if let Some(s) = sys.srs().owner(d, w) {
                levels.push(sys.srs().channel(s, d, w).level().0);
            }
        }
    }
    levels
}

/// Replays a fixture against `mode`, returning the headline result, the
/// final LC levels and the delivered count. Two runs of the same
/// deterministic replay: one through the public result path, one kept
/// alive to inspect the SRS state.
fn replay_fixture(name: &str, mode: NetworkMode) -> (RunResult, Vec<u8>, u64) {
    let trace = InjectionTrace::load(&fixture_path(name)).expect("fixture loads");
    let result = run_once_replayed(SystemConfig::small(mode), &trace, short_plan());
    let mut sys = System::with_trace(SystemConfig::small(mode), trace.replayer(), short_plan());
    sys.run();
    let delivered = sys.metrics().delivered_total;
    (result, final_lc_levels(&sys), delivered)
}

/// Regenerates the committed fixtures and prints the values the golden
/// tests pin. Run manually (see module docs); not part of `cargo test -q`.
#[test]
#[ignore = "fixture regeneration: run manually with --ignored --nocapture"]
fn regen_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    for (name, pattern, load) in [
        ("uniform_b4d4.ertr", TrafficPattern::Uniform, 0.4),
        ("complement_b4d4.ertr", TrafficPattern::Complement, 0.6),
    ] {
        let cfg = SystemConfig::small(NetworkMode::NpNb);
        let (result, mut trace) = run_once_recorded(cfg, pattern, load, short_plan());
        trace.meta.git_sha = "fixture".to_string();
        trace.save(&fixture_path(name)).unwrap();
        println!(
            "{name}: {} entries, checksum {:016x}, recording delivered {} (injected trace horizon {} cycles)",
            trace.entries.len(),
            trace.checksum(),
            result.cycles,
            trace.entries.last().map_or(0, |e| e.cycle),
        );
        for mode in NetworkMode::all() {
            let (r, levels, delivered) = replay_fixture(name, mode);
            println!(
                "  {:>5}: delivered {delivered}/{} (undrained {}), latency {:.9}, power {:.3}, grants {}, retunes {}, levels {:?}",
                mode.name(),
                trace.entries.len(),
                r.undrained,
                r.latency,
                r.power_mw,
                r.grants,
                r.retunes,
                levels
            );
        }
    }
}

/// Pin helper: latency to 1e-6, everything else exact.
fn assert_pinned(
    name: &str,
    mode: NetworkMode,
    delivered: u64,
    latency: f64,
    grants: u64,
    retunes: u64,
    levels: &[u8],
) {
    let (r, got_levels, got_delivered) = replay_fixture(name, mode);
    assert_eq!(r.undrained, 0, "{name}/{}: must drain", mode.name());
    assert_eq!(
        got_delivered,
        delivered,
        "{name}/{}: delivered count drifted",
        mode.name()
    );
    assert!(
        (r.latency - latency).abs() < 1e-6,
        "{name}/{}: mean latency drifted: {} vs pinned {latency}",
        mode.name(),
        r.latency
    );
    assert_eq!(
        (r.grants, r.retunes),
        (grants, retunes),
        "{name}/{}: reconfiguration activity drifted",
        mode.name()
    );
    assert_eq!(
        got_levels,
        levels,
        "{name}/{}: final LC power levels drifted",
        mode.name()
    );
}

#[test]
fn golden_fixtures_inject_fully_and_drain() {
    // Every trace entry due by end-of-run injects, in every mode. A run
    // that drains faster than the recording may end before the trace's
    // tail (the replayer stops with it); a run that ends later must have
    // consumed everything. Delivered ≤ injected because late unlabelled
    // packets can still be in flight; per-mode delivered counts are
    // pinned below.
    for (name, pattern) in [
        ("uniform_b4d4.ertr", "uniform"),
        ("complement_b4d4.ertr", "complement"),
    ] {
        let trace = InjectionTrace::load(&fixture_path(name)).expect("fixture loads");
        assert_eq!(trace.meta.pattern, pattern);
        assert_eq!((trace.meta.boards, trace.meta.nodes_per_board), (4, 4));
        for mode in NetworkMode::all() {
            let mut sys =
                System::with_trace(SystemConfig::small(mode), trace.replayer(), short_plan());
            let end = sys.run();
            let due = trace.entries.iter().filter(|e| e.cycle <= end).count() as u64;
            assert_eq!(
                sys.metrics().injected_total,
                due,
                "{name}/{}: every due trace entry must inject (run ended at {end})",
                mode.name()
            );
            assert!(
                sys.metrics().delivered_total <= due,
                "{name}/{}: delivered more than injected",
                mode.name()
            );
        }
    }
}

#[test]
fn golden_uniform_npnb() {
    let (delivered, latency, levels) = GOLDEN_UNIFORM_NPNB;
    assert_pinned(
        "uniform_b4d4.ertr",
        NetworkMode::NpNb,
        delivered,
        latency,
        0,
        0,
        &levels,
    );
}

#[test]
fn golden_uniform_pb() {
    let (delivered, latency, levels, grants, retunes) = GOLDEN_UNIFORM_PB;
    assert_pinned(
        "uniform_b4d4.ertr",
        NetworkMode::PB,
        delivered,
        latency,
        grants,
        retunes,
        &levels,
    );
}

#[test]
fn golden_complement_npnb() {
    let (delivered, latency, levels) = GOLDEN_COMPLEMENT_NPNB;
    assert_pinned(
        "complement_b4d4.ertr",
        NetworkMode::NpNb,
        delivered,
        latency,
        0,
        0,
        &levels,
    );
}

#[test]
fn golden_complement_npb() {
    let (delivered, latency, levels, grants, retunes) = GOLDEN_COMPLEMENT_NPB;
    assert_pinned(
        "complement_b4d4.ertr",
        NetworkMode::NpB,
        delivered,
        latency,
        grants,
        retunes,
        &levels,
    );
}

/// Recording a run does not perturb it, and replaying the recording
/// reproduces the original `RunResult` byte-identically — the acceptance
/// criterion of the replay harness.
#[test]
fn record_replay_reproduces_runresult_byte_identically() {
    let cfg = SystemConfig::small(NetworkMode::PB);
    let plain = run_once(cfg.clone(), TrafficPattern::Uniform, 0.4, short_plan());
    let (recorded, trace) =
        run_once_recorded(cfg.clone(), TrafficPattern::Uniform, 0.4, short_plan());
    assert_eq!(plain, recorded, "recording must not perturb the run");
    let replayed = run_once_replayed(cfg, &trace, short_plan());
    assert_eq!(replayed, recorded, "replay must reproduce the recording");
}

/// Replaying a fixture through the parallel executor is byte-identical to
/// the sequential path, across all four modes at once.
#[test]
fn fixture_replay_parallel_matches_sequential() {
    let trace =
        Arc::new(InjectionTrace::load(&fixture_path("complement_b4d4.ertr")).expect("fixture"));
    let points = || -> Vec<RunPoint> {
        NetworkMode::all()
            .iter()
            .map(|&mode| {
                let mut cfg = SystemConfig::small(mode);
                cfg.packet_log = true;
                RunPoint {
                    cfg,
                    pattern: TrafficPattern::Uniform,
                    load: 0.0,
                    plan: short_plan(),
                    source: TraceSource::Replay(Arc::clone(&trace)),
                }
            })
            .collect()
    };
    let par = run_points_traced(NonZeroUsize::new(4).unwrap(), points());
    let seq = run_points_traced(NonZeroUsize::MIN, points());
    assert_eq!(par.len(), seq.len());
    for (mode, ((pr, pt), (sr, st))) in NetworkMode::all().iter().zip(par.iter().zip(&seq)) {
        assert_eq!(pr, sr, "{}: RunResult diverged", mode.name());
        assert_eq!(
            pt.packets,
            st.packets,
            "{}: packet log diverged",
            mode.name()
        );
    }
}

/// The provenance header a recording attaches matches its configuration.
#[test]
fn trace_meta_reflects_config() {
    let cfg = SystemConfig::small(NetworkMode::NpNb);
    let meta = trace_meta(&cfg, &TrafficPattern::Complement, 0.6);
    assert_eq!(meta.seed, cfg.seed);
    assert_eq!((meta.boards, meta.nodes_per_board), (4, 4));
    assert_eq!(meta.pattern, "complement");
    assert_eq!(meta.load, 0.6);
    assert_eq!(meta.git_sha, "unknown");
}

// ---- pinned golden values ------------------------------------------------
// Regenerate with: cargo test --test replay -- --ignored regen_fixtures
//   --nocapture
// Each pin is (delivered, mean_latency, final_lc_levels[, grants, retunes]).

const GOLDEN_UNIFORM_NPNB: (u64, f64, [u8; 12]) = (766, 67.917695473, [2; 12]);
const GOLDEN_UNIFORM_PB: (u64, f64, [u8; 12], u64, u64) = (
    779,
    94.827160494,
    [0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0],
    0,
    23,
);
const GOLDEN_COMPLEMENT_NPNB: (u64, f64, [u8; 12]) = (1353, 5229.564917127, [2; 12]);
const GOLDEN_COMPLEMENT_NPB: (u64, f64, [u8; 12], u64, u64) = (1342, 1800.116022099, [2; 12], 8, 0);
