//! Byte-identity pins for the cycle engine.
//!
//! The incremental hot path (occupancy counters, dirty-set watches,
//! active-set optical stepping — DESIGN.md §10) is only admissible if it
//! is *observationally identical* to the straightforward engine it
//! replaced. These fingerprints were captured from the pre-optimization
//! engine and pin the full observable outcome of sixteen generated runs
//! (B=4 and B=8, all four modes, uniform + complement), two fault-heavy
//! runs, one traced run (event stream hash) and eight fixture replays at
//! B=8 (uniform/complement recordings plus the scenario-engine collective
//! fixture in all four modes) — including bit-exact f64 latency/power,
//! grant/retune/relock
//! counts and a hash of every channel's final owner/power/level state.
//!
//! Any divergence — even one ULP of power, one reordered trace event —
//! fails here. After an *intentional* behaviour change, reprint with:
//!
//! ```text
//! cargo test --test golden_engine -- --ignored regen_golden --nocapture
//! ```

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::faults::{FaultKind, FaultPlan};
use erapid_suite::erapid_core::system::System;
use erapid_suite::erapid_telemetry::TraceConfig;
use erapid_suite::traffic::pattern::TrafficPattern;
use erapid_suite::traffic::trace::InjectionTrace;
use std::path::PathBuf;

/// One warm-up window, two measured, a hard cap past drain: long enough
/// for several DBR rounds and DPM windows at every scale pinned here.
fn golden_plan() -> PhasePlan {
    PhasePlan::new(2000, 6000).with_max_cycles(30_000)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Everything observable about a finished run, exact: counts as-is,
/// f64s by bit pattern, final optical state folded into one hash.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Fingerprint {
    injected: u64,
    delivered: u64,
    latency_bits: u64,
    power_bits: u64,
    grants: u64,
    retunes: u64,
    relocks: u64,
    ls_retries: u64,
    ls_aborts: u64,
    cycles: u64,
    lc_hash: u64,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// FNV-1a over every (d, w) slot: ownership, power state and DPM level of
/// each channel, in the deterministic scan order.
fn lc_hash(sys: &System) -> u64 {
    let boards = sys.config().boards;
    let wavelengths = sys.config().wavelengths();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in 0..boards {
        for w in 0..wavelengths {
            match sys.srs().owner(d, w) {
                Some(s) => {
                    let c = sys.srs().channel(s, d, w);
                    fnv(&mut h, &[1, s as u8, u8::from(c.is_on()), c.level().0]);
                }
                None => fnv(&mut h, &[0]),
            }
        }
    }
    h
}

fn fingerprint_of(sys: &System) -> Fingerprint {
    let (grants, retunes) = sys.srs().reconfig_counts();
    let (ls_retries, ls_aborts) = sys.control_stats();
    Fingerprint {
        injected: sys.metrics().injected_total,
        delivered: sys.metrics().delivered_total,
        latency_bits: sys.metrics().mean_latency().to_bits(),
        power_bits: sys.metrics().average_power_mw().to_bits(),
        grants,
        retunes,
        relocks: sys.srs().relocks_applied(),
        ls_retries,
        ls_aborts,
        cycles: sys.now(),
        lc_hash: lc_hash(sys),
    }
}

fn fingerprint(mut sys: System) -> Fingerprint {
    sys.run();
    fingerprint_of(&sys)
}

/// A fault schedule exercising every recovery path the SRS has: receiver
/// loss/repair (ownership revoke + relight), CDR relock, a stuck-then-
/// repaired LC, and a transmitter outage (ownership retained).
fn faulted_small() -> SystemConfig {
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.faults = FaultPlan::new()
        .at(
            2_500,
            FaultKind::ReceiverDown {
                board: 1,
                wavelength: 2,
            },
        )
        .at(
            4_200,
            FaultKind::CdrRelock {
                board: 0,
                dest: 3,
                wavelength: 1,
                penalty: 300,
            },
        )
        .at(
            5_000,
            FaultKind::LcStuck {
                board: 3,
                dest: 1,
                wavelength: 2,
            },
        )
        .at(
            6_500,
            FaultKind::ReceiverRepair {
                board: 1,
                wavelength: 2,
            },
        )
        .at(
            7_000,
            FaultKind::LcRepair {
                board: 3,
                dest: 1,
                wavelength: 2,
            },
        )
        .at(8_200, FaultKind::TransmitterDown { board: 2, dest: 0 })
        .at(9_500, FaultKind::TransmitterRepair { board: 2, dest: 0 });
    cfg
}

/// CDR relocks under light uniform load: unlike the saturated complement
/// case above (where the hot flow re-grabs the channel every time it goes
/// idle and the relock starves until drain — pinned as `b4-faults`),
/// gaps between packets let both relocks actually apply here.
fn relocked_small() -> SystemConfig {
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.faults = FaultPlan::new()
        .at(
            3_000,
            FaultKind::CdrRelock {
                board: 0,
                dest: 3,
                wavelength: 1,
                penalty: 250,
            },
        )
        .at(
            3_500,
            FaultKind::CdrRelock {
                board: 2,
                dest: 1,
                wavelength: 1,
                penalty: 400,
            },
        );
    cfg
}

/// Token-loss during paper64 P-B: the watchdog resend path racing live
/// DBR rounds under the message-level control plane's timing.
fn faulted_paper64() -> SystemConfig {
    let mut cfg = SystemConfig::paper64(NetworkMode::PB);
    cfg.faults = FaultPlan::new()
        .at(4_010, FaultKind::TokenLoss { victim: 3 })
        .at(
            5_500,
            FaultKind::ReceiverDown {
                board: 2,
                wavelength: 5,
            },
        )
        .at(
            9_000,
            FaultKind::ReceiverRepair {
                board: 2,
                wavelength: 5,
            },
        );
    cfg
}

/// The generated-traffic grid: name, config, pattern, load.
fn generated_cases() -> Vec<(String, SystemConfig, TrafficPattern, f64)> {
    let mut cases = Vec::new();
    for (scale, make) in [
        ("b4", SystemConfig::small as fn(NetworkMode) -> SystemConfig),
        (
            "b8",
            SystemConfig::paper64 as fn(NetworkMode) -> SystemConfig,
        ),
    ] {
        for mode in NetworkMode::all() {
            for (pname, pattern, load) in [
                ("uniform", TrafficPattern::Uniform, 0.5),
                ("complement", TrafficPattern::Complement, 0.6),
            ] {
                cases.push((
                    format!("{scale}-{}-{pname}", mode.name()),
                    make(mode),
                    pattern.clone(),
                    load,
                ));
            }
        }
    }
    cases.push((
        "b4-faults".into(),
        faulted_small(),
        TrafficPattern::Complement,
        0.6,
    ));
    cases.push((
        "b8-faults".into(),
        faulted_paper64(),
        TrafficPattern::Complement,
        0.6,
    ));
    cases.push((
        "b4-relocks".into(),
        relocked_small(),
        TrafficPattern::Uniform,
        0.4,
    ));
    cases
}

fn run_generated(cfg: SystemConfig, pattern: TrafficPattern, load: f64) -> Fingerprint {
    fingerprint(System::new(cfg, pattern, load, golden_plan()))
}

/// Controller-on runs: the online threshold controller (`erapid-tune`,
/// DESIGN.md §15) live-adapting `L_min`/`L_max`/`B_max` at every window
/// boundary, driven by the two hostile scenario generators it was built
/// for. Pinned in both power-aware modes: any drift in the controller's
/// integer decision rule, its observation joins, or its placement in the
/// sequential prologue shows up here as a diverged retune count, power
/// bit-pattern or final LC-level hash.
fn controller_cases() -> Vec<(String, SystemConfig)> {
    use erapid_suite::erapid_tune::ControllerSpec;
    use erapid_suite::erapid_workloads::ScenarioSpec;
    let mut cases = Vec::new();
    for mode in [NetworkMode::PNb, NetworkMode::PB] {
        for scenario in [ScenarioSpec::hotspot(), ScenarioSpec::incast()] {
            let mut cfg = SystemConfig::small(mode);
            let sname = scenario.name().to_string();
            cfg.scenario = Some(scenario);
            cfg.tune = Some(match mode {
                NetworkMode::PNb => ControllerSpec::paper_pnb(),
                _ => ControllerSpec::paper_pb(),
            });
            cases.push((format!("b4-ctl-{}-{sname}", mode.name()), cfg));
        }
    }
    cases
}

fn run_controller(cfg: SystemConfig) -> Fingerprint {
    fingerprint(System::new(
        cfg,
        TrafficPattern::Uniform,
        0.5,
        golden_plan(),
    ))
}

/// The B=4 fixtures replayed into the B=8 system: trace node ids 0..16
/// are valid sources in the 64-node topology, so the replay exercises the
/// optimized engine on a sparse active set (48 nodes permanently idle).
/// The collective fixture (recorded from the `erapid-workloads` phased
/// all-to-all generator, see `regen_collective_fixture`) is pinned in all
/// four modes: its comm/compute phasing is the traffic shape DPM windows
/// and DBR rounds react to hardest.
fn replay_cases() -> Vec<(String, NetworkMode, &'static str)> {
    let mut cases = Vec::new();
    for &mode in &[NetworkMode::NpNb, NetworkMode::PB] {
        for name in ["uniform_b4d4.ertr", "complement_b4d4.ertr"] {
            cases.push((format!("b8-replay-{}-{name}", mode.name()), mode, name));
        }
    }
    for mode in NetworkMode::all() {
        let name = "collective_b4d4.ertr";
        cases.push((format!("b8-replay-{}-{name}", mode.name()), mode, name));
    }
    cases
}

fn run_replay(mode: NetworkMode, fixture: &str) -> Fingerprint {
    let trace = InjectionTrace::load(&fixture_path(fixture)).expect("fixture loads");
    let cfg = SystemConfig::paper64(mode);
    fingerprint(System::with_trace(cfg, trace.replayer(), golden_plan()))
}

/// Traced run: the full event stream folded into (count, hash over
/// (at, tag)). Pins event *order*, not just aggregate counts — the
/// active-set rework must emit retunes/relocks/watch crossings in the
/// exact sequence the full scans did.
fn run_traced() -> (Fingerprint, u64, u64) {
    let mut cfg = SystemConfig::small(NetworkMode::PB);
    cfg.trace = TraceConfig::with_capacity(1 << 20);
    let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.5, golden_plan());
    sys.run();
    let records = sys.take_trace_records();
    assert_eq!(sys.trace_dropped(), 0, "trace ring overflowed; widen it");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in &records {
        fnv(&mut h, &r.at.to_le_bytes());
        fnv(&mut h, r.event.tag().as_bytes());
    }
    let count = records.len() as u64;
    let fp = fingerprint_of(&sys);
    (fp, count, h)
}

/// Regenerates `tests/fixtures/collective_b4d4.ertr` from the scenario
/// engine: a recorded R(1,4,4) run driven by the phased ML-collective
/// generator at load 0.6 (the `scenarios` bench's operating point). Run
/// manually after an intentional generator change, then reprint the pins
/// with `regen_golden`.
#[test]
#[ignore = "fixture regeneration: run manually with --ignored --nocapture"]
fn regen_collective_fixture() {
    use erapid_suite::erapid_core::experiment::run_once_recorded;
    use erapid_suite::erapid_workloads::ScenarioSpec;
    let mut cfg = SystemConfig::small(NetworkMode::NpNb);
    cfg.scenario = Some(ScenarioSpec::collective());
    let (result, mut trace) = run_once_recorded(cfg, TrafficPattern::Uniform, 0.6, golden_plan());
    trace.meta.pattern = "collective".to_string();
    trace.meta.git_sha = "fixture".to_string();
    trace
        .save(&fixture_path("collective_b4d4.ertr"))
        .expect("fixture saves");
    println!(
        "collective_b4d4.ertr: {} entries, checksum {:016x}, recording ran {} cycles (trace horizon {})",
        trace.entries.len(),
        trace.checksum(),
        result.cycles,
        trace.entries.last().map_or(0, |e| e.cycle),
    );
}

/// Prints the pin tables below. Run manually after an intentional
/// behaviour change (see module docs); not part of `cargo test -q`.
#[test]
#[ignore = "pin regeneration: run manually with --ignored --nocapture"]
fn regen_golden() {
    for (name, cfg, pattern, load) in generated_cases() {
        let fp = run_generated(cfg, pattern, load);
        println!("    (\"{name}\", {fp:?}),");
    }
    for (name, mode, fixture) in replay_cases() {
        let fp = run_replay(mode, fixture);
        println!("    (\"{name}\", {fp:?}),");
    }
    for (name, cfg) in controller_cases() {
        let fp = run_controller(cfg);
        println!("    (\"{name}\", {fp:?}),");
    }
    let (fp, count, hash) = run_traced();
    println!("    traced: {fp:?}");
    println!("    traced events: count {count}, hash 0x{hash:016x}");
}

/// Captured from the pre-optimization engine (commit f7f7755).
const GENERATED_PINS: &[(&str, Fingerprint)] = &[
    (
        "b4-NP-NB-uniform",
        Fingerprint {
            injected: 1301,
            delivered: 1279,
            latency_bits: 4635073002747693467,
            power_bits: 4643323966458576583,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8169,
            lc_hash: 11536056131337326453,
        },
    ),
    (
        "b4-NP-NB-complement",
        Fingerprint {
            injected: 4258,
            delivered: 1858,
            latency_bits: 4664002586129267384,
            power_bits: 4640865544100563744,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 22348,
            lc_hash: 11536056131337326453,
        },
    ),
    (
        "b4-NP-B-uniform",
        Fingerprint {
            injected: 1301,
            delivered: 1279,
            latency_bits: 4635073002747693467,
            power_bits: 4643323966458576583,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8169,
            lc_hash: 11536056131337326453,
        },
    ),
    (
        "b4-NP-B-complement",
        Fingerprint {
            injected: 1850,
            delivered: 1774,
            latency_bits: 4654469047818965676,
            power_bits: 4645782713562480622,
            grants: 8,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 9874,
            lc_hash: 14626239220255658325,
        },
    ),
    (
        "b4-P-NB-uniform",
        Fingerprint {
            injected: 1331,
            delivered: 1315,
            latency_bits: 4637313576712468136,
            power_bits: 4642095188450500895,
            grants: 0,
            retunes: 11,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8437,
            lc_hash: 6158754472550685448,
        },
    ),
    (
        "b4-P-NB-complement",
        Fingerprint {
            injected: 4258,
            delivered: 1858,
            latency_bits: 4664002586129267384,
            power_bits: 4640544240414648806,
            grants: 0,
            retunes: 16,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 22348,
            lc_hash: 1600836375910881173,
        },
    ),
    (
        "b4-P-B-uniform",
        Fingerprint {
            injected: 1399,
            delivered: 1352,
            latency_bits: 4640305378459036709,
            power_bits: 4640019754016794152,
            grants: 0,
            retunes: 23,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8893,
            lc_hash: 5139194829466049058,
        },
    ),
    (
        "b4-P-B-complement",
        Fingerprint {
            injected: 1850,
            delivered: 1774,
            latency_bits: 4654469047818965676,
            power_bits: 4645742168382179142,
            grants: 8,
            retunes: 8,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 9874,
            lc_hash: 14626239220255658325,
        },
    ),
    (
        "b8-NP-NB-uniform",
        Fingerprint {
            injected: 5419,
            delivered: 5354,
            latency_bits: 4635802705917813276,
            power_bits: 4653319156670180732,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8152,
            lc_hash: 1265245039024944501,
        },
    ),
    (
        "b8-NP-NB-complement",
        Fingerprint {
            injected: 23726,
            delivered: 4990,
            latency_bits: 4669807183673108641,
            power_bits: 4646580330552720620,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 30000,
            lc_hash: 1265245039024944501,
        },
    ),
    (
        "b8-NP-B-uniform",
        Fingerprint {
            injected: 5419,
            delivered: 5354,
            latency_bits: 4635802705917813276,
            power_bits: 4653319156670180732,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8152,
            lc_hash: 1265245039024944501,
        },
    ),
    (
        "b8-NP-B-complement",
        Fingerprint {
            injected: 8722,
            delivered: 7506,
            latency_bits: 4657606531641355882,
            power_bits: 4654378453097220889,
            grants: 48,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 10954,
            lc_hash: 6903895114697310141,
        },
    ),
    (
        "b8-P-NB-uniform",
        Fingerprint {
            injected: 5613,
            delivered: 5533,
            latency_bits: 4638076705078718370,
            power_bits: 4652608586228073153,
            grants: 0,
            retunes: 65,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8477,
            lc_hash: 5747318041601503090,
        },
    ),
    (
        "b8-P-NB-complement",
        Fingerprint {
            injected: 23726,
            delivered: 4990,
            latency_bits: 4669807183673108641,
            power_bits: 4645616419494972942,
            grants: 0,
            retunes: 96,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 30000,
            lc_hash: 2735149014479558613,
        },
    ),
    (
        "b8-P-B-uniform",
        Fingerprint {
            injected: 5979,
            delivered: 5797,
            latency_bits: 4640366734151032961,
            power_bits: 4650947264030826851,
            grants: 0,
            retunes: 91,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 9039,
            lc_hash: 1649908976039567788,
        },
    ),
    (
        "b8-P-B-complement",
        Fingerprint {
            injected: 8722,
            delivered: 7506,
            latency_bits: 4657606531641355882,
            power_bits: 4654316916298940633,
            grants: 48,
            retunes: 48,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 10954,
            lc_hash: 6903895114697310141,
        },
    ),
    (
        "b4-faults",
        Fingerprint {
            injected: 1943,
            delivered: 1808,
            latency_bits: 4655417670812743608,
            power_bits: 4645248968521722227,
            grants: 8,
            retunes: 8,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 10367,
            lc_hash: 14626239220255658325,
        },
    ),
    (
        "b8-faults",
        Fingerprint {
            injected: 8737,
            delivered: 7498,
            latency_bits: 4657669480696014350,
            power_bits: 4654270005040872079,
            grants: 48,
            retunes: 49,
            relocks: 0,
            ls_retries: 1,
            ls_aborts: 0,
            cycles: 10973,
            lc_hash: 18150037154205573281,
        },
    ),
    (
        "b4-relocks",
        Fingerprint {
            injected: 1071,
            delivered: 1055,
            latency_bits: 4638437869338929836,
            power_bits: 4639037897639189707,
            grants: 0,
            retunes: 23,
            relocks: 2,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8473,
            lc_hash: 5139194829466049058,
        },
    ),
];

const REPLAY_PINS: &[(&str, Fingerprint)] = &[
    (
        "b8-replay-NP-NB-uniform_b4d4.ertr",
        Fingerprint {
            injected: 784,
            delivered: 784,
            latency_bits: 4657523133475979266,
            power_bits: 4641319739159857936,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 10572,
            lc_hash: 1265245039024944501,
        },
    ),
    (
        "b8-replay-NP-NB-complement_b4d4.ertr",
        Fingerprint {
            injected: 3111,
            delivered: 1248,
            latency_bits: 4669588677593186842,
            power_bits: 4641319739159857936,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 30000,
            lc_hash: 1265245039024944501,
        },
    ),
    (
        "b8-replay-P-B-uniform_b4d4.ertr",
        Fingerprint {
            injected: 784,
            delivered: 784,
            latency_bits: 4648452106712252415,
            power_bits: 4640313801354814493,
            grants: 12,
            retunes: 109,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8000,
            lc_hash: 17841999265770884382,
        },
    ),
    (
        "b8-replay-P-B-complement_b4d4.ertr",
        Fingerprint {
            injected: 2031,
            delivered: 1827,
            latency_bits: 4657123217976035224,
            power_bits: 4646055558076600480,
            grants: 12,
            retunes: 96,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 10756,
            lc_hash: 16521307475194934587,
        },
    ),
    (
        "b8-replay-NP-NB-collective_b4d4.ertr",
        Fingerprint {
            injected: 2474,
            delivered: 2048,
            latency_bits: 4667313488903838167,
            power_bits: 4641319739159857936,
            grants: 0,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 26229,
            lc_hash: 1265245039024944501,
        },
    ),
    (
        "b8-replay-NP-B-collective_b4d4.ertr",
        Fingerprint {
            injected: 1659,
            delivered: 1659,
            latency_bits: 4653335456943225734,
            power_bits: 4645488073442557298,
            grants: 12,
            retunes: 0,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8000,
            lc_hash: 9883641789802648691,
        },
    ),
    (
        "b8-replay-P-NB-collective_b4d4.ertr",
        Fingerprint {
            injected: 2474,
            delivered: 2048,
            latency_bits: 4667313488903838167,
            power_bits: 4639150939279930652,
            grants: 0,
            retunes: 108,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 26229,
            lc_hash: 2944330337222417277,
        },
    ),
    (
        "b8-replay-P-B-collective_b4d4.ertr",
        Fingerprint {
            injected: 1659,
            delivered: 1659,
            latency_bits: 4653335456943225734,
            power_bits: 4644583114468749574,
            grants: 12,
            retunes: 96,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8000,
            lc_hash: 16521307475194934587,
        },
    ),
];

/// Controller-on scenario runs (see [`controller_cases`]).
const CONTROLLER_PINS: &[(&str, Fingerprint)] = &[
    (
        "b4-ctl-P-NB-hotspot",
        Fingerprint {
            injected: 1264,
            delivered: 1239,
            latency_bits: 4641016930414858553,
            power_bits: 4642433742342091934,
            grants: 0,
            retunes: 14,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8478,
            lc_hash: 7826037061746157341,
        },
    ),
    (
        "b4-ctl-P-NB-incast",
        Fingerprint {
            injected: 4184,
            delivered: 2803,
            latency_bits: 4662619224191110908,
            power_bits: 4640177234293539168,
            grants: 0,
            retunes: 29,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 21675,
            lc_hash: 1819073029482769536,
        },
    ),
    (
        "b4-ctl-P-B-hotspot",
        Fingerprint {
            injected: 1264,
            delivered: 1236,
            latency_bits: 4641426172040765963,
            power_bits: 4641974739194681859,
            grants: 0,
            retunes: 15,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 8478,
            lc_hash: 632281766696936106,
        },
    ),
    (
        "b4-ctl-P-B-incast",
        Fingerprint {
            injected: 4198,
            delivered: 2825,
            latency_bits: 4662628974373311458,
            power_bits: 4639867577854510177,
            grants: 0,
            retunes: 18,
            relocks: 0,
            ls_retries: 0,
            ls_aborts: 0,
            cycles: 21915,
            lc_hash: 12854156507887582875,
        },
    ),
];

const TRACED_PIN: (Fingerprint, u64, u64) = (
    Fingerprint {
        injected: 1399,
        delivered: 1352,
        latency_bits: 4640305378459036709,
        power_bits: 4640019754016794152,
        grants: 0,
        retunes: 23,
        relocks: 0,
        ls_retries: 0,
        ls_aborts: 0,
        cycles: 8893,
        lc_hash: 5139194829466049058,
    },
    64,
    0xa8ba_5cc6_d953_2f1c,
);

#[test]
fn generated_runs_match_pinned_fingerprints() {
    let cases = generated_cases();
    assert_eq!(cases.len(), GENERATED_PINS.len(), "pin table out of date");
    for ((name, cfg, pattern, load), (pin_name, pin)) in cases.into_iter().zip(GENERATED_PINS) {
        assert_eq!(&name, pin_name, "pin table order drifted");
        let got = run_generated(cfg, pattern, load);
        assert_eq!(&got, pin, "fingerprint diverged for {name}");
    }
}

#[test]
fn fixture_replays_match_pinned_fingerprints_at_b8() {
    let cases = replay_cases();
    assert_eq!(cases.len(), REPLAY_PINS.len(), "pin table out of date");
    for ((name, mode, fixture), (pin_name, pin)) in cases.into_iter().zip(REPLAY_PINS) {
        assert_eq!(&name, pin_name, "pin table order drifted");
        let got = run_replay(mode, fixture);
        assert_eq!(&got, pin, "fingerprint diverged for {name}");
    }
}

#[test]
fn controller_runs_match_pinned_fingerprints() {
    let cases = controller_cases();
    assert_eq!(cases.len(), CONTROLLER_PINS.len(), "pin table out of date");
    for ((name, cfg), (pin_name, pin)) in cases.into_iter().zip(CONTROLLER_PINS) {
        assert_eq!(&name, pin_name, "pin table order drifted");
        let got = run_controller(cfg);
        assert_eq!(&got, pin, "fingerprint diverged for {name}");
    }
}

/// The sharded engine reproduces the controller pins exactly — the
/// controller steps in the sequential prologue (DESIGN.md §15), so worker
/// count must not perturb a single threshold move.
#[test]
fn sharded_controller_runs_match_pinned_fingerprints() {
    use std::num::NonZeroUsize;
    let two = NonZeroUsize::new(2).unwrap();
    let cases = controller_cases();
    assert_eq!(cases.len(), CONTROLLER_PINS.len(), "pin table out of date");
    for ((name, cfg), (pin_name, pin)) in cases.into_iter().zip(CONTROLLER_PINS) {
        assert_eq!(&name, pin_name, "pin table order drifted");
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.5, golden_plan());
        sys.run_sharded(two);
        assert_eq!(
            &fingerprint_of(&sys),
            pin,
            "sharded controller fingerprint diverged for {name} at 2 workers"
        );
    }
}

#[test]
fn traced_event_stream_matches_pin() {
    let (fp, count, hash) = run_traced();
    assert_eq!(fp, TRACED_PIN.0, "traced run fingerprint diverged");
    assert_eq!(count, TRACED_PIN.1, "trace event count diverged");
    assert_eq!(hash, TRACED_PIN.2, "trace event stream order diverged");
}

/// The board-sharded engine (DESIGN.md §12) must reproduce the *same*
/// pins as the sequential engine — the pin tables above are shared, not
/// re-captured. Every generated case runs at 2 workers; the heaviest B=8
/// case additionally at 4 and 8 (more workers than cores on small CI
/// boxes, exercising the yield path of the gate).
#[test]
fn sharded_generated_runs_match_pinned_fingerprints() {
    use std::num::NonZeroUsize;
    let two = NonZeroUsize::new(2).unwrap();
    let cases = generated_cases();
    assert_eq!(cases.len(), GENERATED_PINS.len(), "pin table out of date");
    for ((name, cfg, pattern, load), (pin_name, pin)) in cases.into_iter().zip(GENERATED_PINS) {
        assert_eq!(&name, pin_name, "pin table order drifted");
        let mut sys = System::new(cfg.clone(), pattern.clone(), load, golden_plan());
        sys.run_sharded(two);
        assert_eq!(
            &fingerprint_of(&sys),
            pin,
            "sharded fingerprint diverged for {name} at 2 workers"
        );
        if name == "b8-P-B-complement" {
            for workers in [4usize, 8] {
                let mut sys = System::new(cfg.clone(), pattern.clone(), load, golden_plan());
                sys.run_sharded(NonZeroUsize::new(workers).unwrap());
                assert_eq!(
                    &fingerprint_of(&sys),
                    pin,
                    "sharded fingerprint diverged for {name} at {workers} workers"
                );
            }
        }
    }
}

/// Sharded fixture replays reproduce the sequential replay pins.
#[test]
fn sharded_fixture_replays_match_pinned_fingerprints_at_b8() {
    use std::num::NonZeroUsize;
    let two = NonZeroUsize::new(2).unwrap();
    let cases = replay_cases();
    assert_eq!(cases.len(), REPLAY_PINS.len(), "pin table out of date");
    for ((name, mode, fixture), (pin_name, pin)) in cases.into_iter().zip(REPLAY_PINS) {
        assert_eq!(&name, pin_name, "pin table order drifted");
        let trace = InjectionTrace::load(&fixture_path(fixture)).expect("fixture loads");
        let mut sys =
            System::with_trace(SystemConfig::paper64(mode), trace.replayer(), golden_plan());
        sys.run_sharded(two);
        assert_eq!(
            &fingerprint_of(&sys),
            pin,
            "sharded replay fingerprint diverged for {name}"
        );
    }
}

/// The sharded engine emits the telemetry event stream in the exact pinned
/// order — commit-phase replay of out-buffers must not reorder a single
/// event relative to the sequential engine.
#[test]
fn sharded_traced_event_stream_matches_pin() {
    use std::num::NonZeroUsize;
    for workers in [2usize, 4] {
        let mut cfg = SystemConfig::small(NetworkMode::PB);
        cfg.trace = TraceConfig::with_capacity(1 << 20);
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.5, golden_plan());
        sys.run_sharded(NonZeroUsize::new(workers).unwrap());
        let records = sys.take_trace_records();
        assert_eq!(sys.trace_dropped(), 0, "trace ring overflowed; widen it");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in &records {
            fnv(&mut h, &r.at.to_le_bytes());
            fnv(&mut h, r.event.tag().as_bytes());
        }
        assert_eq!(
            fingerprint_of(&sys),
            TRACED_PIN.0,
            "sharded traced fingerprint diverged at {workers} workers"
        );
        assert_eq!(records.len() as u64, TRACED_PIN.1, "event count diverged");
        assert_eq!(
            h, TRACED_PIN.2,
            "event stream order diverged at {workers} workers"
        );
    }
}
