//! Reproducibility: identical seeds give identical runs, different seeds
//! give statistically similar but non-identical runs, and traffic traces
//! replay exactly.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::system::System;
use erapid_suite::traffic::pattern::TrafficPattern;
use erapid_suite::traffic::trace::TraceRecorder;

fn plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(30_000)
}

fn run_with_seed(seed: u64, mode: NetworkMode) -> (u64, u64, f64, f64, u64) {
    let mut cfg = SystemConfig::small(mode);
    cfg.seed = seed;
    let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
    let end = sys.run();
    let m = sys.metrics();
    (
        m.injected_total,
        m.delivered_total,
        m.throughput_ppc(),
        m.mean_latency(),
        end,
    )
}

#[test]
fn same_seed_same_run() {
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let a = run_with_seed(123, mode);
        let b = run_with_seed(123, mode);
        assert_eq!(a, b, "mode {:?} not reproducible", mode);
    }
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let a = run_with_seed(1, NetworkMode::NpNb);
    let b = run_with_seed(2, NetworkMode::NpNb);
    assert_ne!(a.0, b.0, "different seeds must draw different traffic");
    // Throughput within 10% of each other (same offered load).
    let rel = (a.2 - b.2).abs() / a.2;
    assert!(rel < 0.10, "throughput divergence {rel}");
}

#[test]
fn mode_change_does_not_perturb_injection_draws() {
    // Per-node RNG streams: the traffic is a function of (seed, node) and
    // the cycle, not of the network configuration, so over the same fixed
    // horizon NP-NB and P-B see the exact same packet sequence. (Total
    // run lengths differ — drain time depends on the mode — so the
    // comparison is over a fixed number of cycles.)
    let horizon = 6000;
    let mut totals = Vec::new();
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let mut cfg = SystemConfig::small(mode);
        cfg.seed = 7;
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
        while sys.now() < horizon {
            sys.step();
        }
        totals.push(sys.metrics().injected_total);
    }
    assert_eq!(
        totals[0], totals[1],
        "injected totals must match across modes"
    );
}

#[test]
fn trace_record_replay_round_trip() {
    // Record the injections of a run's worth of generator draws, replay
    // them, and check the replayed sequence is identical.
    let mut gens =
        erapid_suite::traffic::generator::build_generators(16, &TrafficPattern::Uniform, 0.3, 9);
    let mut rec = TraceRecorder::new();
    for now in 0..5000u64 {
        for g in &mut gens {
            if let Some(req) = g.poll(now) {
                rec.record(now, req.src, req.dst).unwrap();
            }
        }
    }
    let total = rec.len();
    assert!(total > 1000, "enough traffic to be meaningful: {total}");
    let entries: Vec<_> = rec.entries().to_vec();
    let mut replay = rec.into_replay();
    let mut replayed = Vec::new();
    for now in 0..5000u64 {
        replayed.extend(replay.due(now));
    }
    assert_eq!(replayed.len(), total);
    assert_eq!(replayed, entries);
    assert!(replay.is_done());
}

#[test]
fn parallel_sweep_identical_to_sequential() {
    // The run-level executor must be invisible in the results: the same
    // sweep on 1 thread and on 4 threads returns the same RunResults —
    // every field, in the same order.
    use erapid_suite::erapid_core::experiment::sweep_loads_with;
    use std::num::NonZeroUsize;
    let loads = [0.2, 0.5, 0.8];
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let make_cfg = |m| {
            let mut cfg = SystemConfig::small(m);
            cfg.seed = 11;
            cfg
        };
        let seq = sweep_loads_with(
            NonZeroUsize::new(1).unwrap(),
            mode,
            &TrafficPattern::Complement,
            &loads,
            make_cfg,
        );
        let par = sweep_loads_with(
            NonZeroUsize::new(4).unwrap(),
            mode,
            &TrafficPattern::Complement,
            &loads,
            make_cfg,
        );
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // Full-struct equality: every field of every RunResult.
            assert_eq!(
                s, p,
                "mode {mode:?} load {} diverged under parallel execution",
                s.load
            );
        }
    }
}

#[test]
fn same_seed_and_fault_plan_reproduce_the_run_exactly() {
    // A faulted run is still a pure function of (config, pattern, load,
    // plan): the FaultPlan travels inside the config, so replaying the
    // same plan with the same seed gives a byte-identical RunResult.
    use erapid_suite::erapid_core::experiment::run_once;
    use erapid_suite::erapid_core::faults::{FaultKind, FaultPlan};
    let faults = FaultPlan::new()
        .receiver_outage(3, 1, 3000, 9000)
        .at(
            5000,
            FaultKind::LcStuck {
                board: 0,
                dest: 3,
                wavelength: 1,
            },
        )
        .at(4010, FaultKind::TokenLoss { victim: 2 });
    for mode in [NetworkMode::NpB, NetworkMode::PB] {
        let mut cfg = SystemConfig::small(mode);
        cfg.seed = 17;
        cfg.faults = faults.clone();
        let a = run_once(cfg.clone(), TrafficPattern::Complement, 0.4, plan());
        let b = run_once(cfg, TrafficPattern::Complement, 0.4, plan());
        assert_eq!(a, b, "mode {mode:?} faulted run not reproducible");
    }
}

#[test]
fn parallel_sweep_identical_to_sequential_under_faults() {
    // The run-level executor must stay invisible when the points carry an
    // active fault schedule: 1-thread and 4-thread sweeps of faulted
    // configs return identical RunResults in identical order.
    use erapid_suite::erapid_core::experiment::TraceSource;
    use erapid_suite::erapid_core::faults::FaultPlan;
    use erapid_suite::erapid_core::runner::{run_points, RunPoint};
    use std::num::NonZeroUsize;
    let points = |_| -> Vec<RunPoint> {
        [0.2, 0.5, 0.8]
            .iter()
            .map(|&load| {
                let mut cfg = SystemConfig::small(NetworkMode::PB);
                cfg.seed = 11;
                cfg.faults = FaultPlan::relock_storm(9, cfg.boards, 2500, 5500, 6, 300)
                    .receiver_outage(3, 1, 3000, 6000);
                RunPoint {
                    cfg,
                    pattern: TrafficPattern::Complement,
                    load,
                    plan: plan(),
                    source: TraceSource::Generate,
                }
            })
            .collect()
    };
    let seq = run_points(NonZeroUsize::new(1).unwrap(), points(()));
    let par = run_points(NonZeroUsize::new(4).unwrap(), points(()));
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(
            s, p,
            "faulted load {} diverged under parallel execution",
            s.load
        );
    }
}

#[test]
fn board_step_buffer_reuse_conserves_deliveries() {
    // Regression for the zero-allocation hot path: driving a board through
    // `step_into` with one reused (dirty-capacity) buffer must produce the
    // exact same delivery stream as the allocating `step` wrapper — no
    // dropped, duplicated or reordered deliveries.
    use erapid_suite::desim::rng::Pcg32;
    use erapid_suite::erapid_core::board::Board;
    use erapid_suite::router::flit::{NodeId, PacketId};
    use erapid_suite::router::packet::Packet;

    let cfg = SystemConfig::small(NetworkMode::NpNb);
    let d = cfg.nodes_per_board as u32;
    let mut fresh = Board::new(&cfg, 0);
    let mut reused = Board::new(&cfg, 0);
    let mut rng = Pcg32::stream(0xB0A2D, 0);
    let mut scratch = Vec::new();
    let mut next_id = 0u64;
    let mut injected = 0u64;
    let mut delivered = 0u64;
    for now in 0..4000u64 {
        // Identical local-destination traffic into both boards (local
        // ejection is the path that produces `Delivered` records).
        if now < 3000 && rng.bernoulli(0.4) {
            let src = rng.below(d);
            let dst = rng.below(d);
            let pkt = Packet {
                id: PacketId(next_id),
                src: NodeId(src),
                dst: NodeId(dst),
                flits: cfg.packet_flits,
                injected_at: now,
                labelled: true,
            };
            next_id += 1;
            injected += 1;
            fresh.enqueue_node_packet(src as u16, pkt);
            reused.enqueue_node_packet(src as u16, pkt);
        }
        let a = fresh.step(now);
        scratch.clear();
        reused.step_into(now, &mut scratch);
        assert_eq!(a, scratch, "delivery stream diverged at cycle {now}");
        delivered += a.len() as u64;
    }
    assert!(
        delivered > 100,
        "test must exercise real traffic: {delivered}"
    );
    assert_eq!(
        delivered, injected,
        "buffer reuse dropped deliveries ({delivered}/{injected})"
    );
    assert!(fresh.is_idle() && reused.is_idle());
}

#[test]
fn sharded_run_identical_to_sequential_across_worker_counts() {
    // The board-sharded engine must be invisible in every observable:
    // RunResult (all f64s bit-compared via PartialEq), the telemetry
    // event stream, the per-window metric snapshots and the per-packet
    // delivery log, for any worker count (including more workers than
    // boards and more workers than cores).
    use erapid_suite::erapid_core::experiment::{run_once_traced, run_once_traced_sharded};
    use erapid_suite::erapid_telemetry::TraceConfig;
    use std::num::NonZeroUsize;
    for mode in NetworkMode::all() {
        let mk = || {
            let mut cfg = SystemConfig::small(mode);
            cfg.seed = 23;
            cfg.packet_log = true;
            cfg.trace = TraceConfig::with_capacity(1 << 18);
            cfg
        };
        let (seq, seq_trace) = run_once_traced(mk(), TrafficPattern::Complement, 0.6, plan());
        for workers in [2usize, 4, 8] {
            let (shard, shard_trace) = run_once_traced_sharded(
                mk(),
                TrafficPattern::Complement,
                0.6,
                plan(),
                NonZeroUsize::new(workers).unwrap(),
            );
            assert_eq!(
                seq, shard,
                "mode {mode:?}: RunResult diverged at {workers} workers"
            );
            assert_eq!(
                seq_trace.records, shard_trace.records,
                "mode {mode:?}: telemetry event stream diverged at {workers} workers"
            );
            assert_eq!(
                seq_trace.windows, shard_trace.windows,
                "mode {mode:?}: metric windows diverged at {workers} workers"
            );
            assert_eq!(
                seq_trace.packets, shard_trace.packets,
                "mode {mode:?}: packet log diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn sharded_run_identical_under_faults() {
    // Fault application stays a sequential phase, so a scheduled outage /
    // relock storm must not open any worker-count dependence.
    use erapid_suite::erapid_core::experiment::{run_once, run_once_sharded};
    use erapid_suite::erapid_core::faults::FaultPlan;
    use std::num::NonZeroUsize;
    for mode in [NetworkMode::NpB, NetworkMode::PB] {
        let mk = || {
            let mut cfg = SystemConfig::small(mode);
            cfg.seed = 17;
            cfg.faults = FaultPlan::relock_storm(9, cfg.boards, 2500, 5500, 6, 300)
                .receiver_outage(3, 1, 3000, 6000);
            cfg
        };
        let seq = run_once(mk(), TrafficPattern::Complement, 0.5, plan());
        for workers in [2usize, 8] {
            let shard = run_once_sharded(
                mk(),
                TrafficPattern::Complement,
                0.5,
                plan(),
                NonZeroUsize::new(workers).unwrap(),
            );
            assert_eq!(
                seq, shard,
                "mode {mode:?}: faulted run diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn sharded_run_identical_at_env_point_workers() {
    // `verify.sh` reruns this suite with ERAPID_POINT_THREADS=2 and =8;
    // this test picks the knob up so the whole determinism file exercises
    // the sharded engine at the CI-chosen worker counts. Without the env
    // var it degenerates to the (still asserted) 1-worker fallback path.
    use erapid_suite::erapid_core::experiment::{run_once, run_once_sharded};
    use erapid_suite::erapid_core::runner::point_threads_from_env;
    let workers = point_threads_from_env();
    let mk = || {
        let mut cfg = SystemConfig::small(NetworkMode::PB);
        cfg.seed = 29;
        cfg
    };
    let seq = run_once(mk(), TrafficPattern::Uniform, 0.4, plan());
    let shard = run_once_sharded(mk(), TrafficPattern::Uniform, 0.4, plan(), workers);
    assert_eq!(seq, shard, "sharded run diverged at {workers} workers");
}

#[test]
fn run_end_is_monotone_in_load() {
    // Saturated runs take longer to drain; the run loop must still
    // terminate thanks to the max_cycles cap.
    let mut cfg = SystemConfig::small(NetworkMode::NpNb);
    cfg.seed = 5;
    let mut sys = System::new(cfg, TrafficPattern::Complement, 0.9, plan());
    let end = sys.run();
    assert!(end <= plan().max_cycles);
}
