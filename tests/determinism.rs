//! Reproducibility: identical seeds give identical runs, different seeds
//! give statistically similar but non-identical runs, and traffic traces
//! replay exactly.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::system::System;
use erapid_suite::traffic::pattern::TrafficPattern;
use erapid_suite::traffic::trace::TraceRecorder;

fn plan() -> PhasePlan {
    PhasePlan::new(2000, 4000).with_max_cycles(30_000)
}

fn run_with_seed(seed: u64, mode: NetworkMode) -> (u64, u64, f64, f64, u64) {
    let mut cfg = SystemConfig::small(mode);
    cfg.seed = seed;
    let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
    let end = sys.run();
    let m = sys.metrics();
    (
        m.injected_total,
        m.delivered_total,
        m.throughput_ppc(),
        m.mean_latency(),
        end,
    )
}

#[test]
fn same_seed_same_run() {
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let a = run_with_seed(123, mode);
        let b = run_with_seed(123, mode);
        assert_eq!(a, b, "mode {:?} not reproducible", mode);
    }
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let a = run_with_seed(1, NetworkMode::NpNb);
    let b = run_with_seed(2, NetworkMode::NpNb);
    assert_ne!(a.0, b.0, "different seeds must draw different traffic");
    // Throughput within 10% of each other (same offered load).
    let rel = (a.2 - b.2).abs() / a.2;
    assert!(rel < 0.10, "throughput divergence {rel}");
}

#[test]
fn mode_change_does_not_perturb_injection_draws() {
    // Per-node RNG streams: the traffic is a function of (seed, node) and
    // the cycle, not of the network configuration, so over the same fixed
    // horizon NP-NB and P-B see the exact same packet sequence. (Total
    // run lengths differ — drain time depends on the mode — so the
    // comparison is over a fixed number of cycles.)
    let horizon = 6000;
    let mut totals = Vec::new();
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let mut cfg = SystemConfig::small(mode);
        cfg.seed = 7;
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
        while sys.now() < horizon {
            sys.step();
        }
        totals.push(sys.metrics().injected_total);
    }
    assert_eq!(totals[0], totals[1], "injected totals must match across modes");
}

#[test]
fn trace_record_replay_round_trip() {
    // Record the injections of a run's worth of generator draws, replay
    // them, and check the replayed sequence is identical.
    let mut gens =
        erapid_suite::traffic::generator::build_generators(16, &TrafficPattern::Uniform, 0.3, 9);
    let mut rec = TraceRecorder::new();
    for now in 0..5000u64 {
        for g in &mut gens {
            if let Some(req) = g.poll(now) {
                rec.record(now, req.src, req.dst);
            }
        }
    }
    let total = rec.len();
    assert!(total > 1000, "enough traffic to be meaningful: {total}");
    let entries: Vec<_> = rec.entries().to_vec();
    let mut replay = rec.into_replay();
    let mut replayed = Vec::new();
    for now in 0..5000u64 {
        replayed.extend(replay.due(now));
    }
    assert_eq!(replayed.len(), total);
    assert_eq!(replayed, entries);
    assert!(replay.is_done());
}

#[test]
fn run_end_is_monotone_in_load() {
    // Saturated runs take longer to drain; the run loop must still
    // terminate thanks to the max_cycles cap.
    let mut cfg = SystemConfig::small(NetworkMode::NpNb);
    cfg.seed = 5;
    let mut sys = System::new(cfg, TrafficPattern::Complement, 0.9, plan());
    let end = sys.run();
    assert!(end <= plan().max_cycles);
}
