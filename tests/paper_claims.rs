//! Integration tests asserting the paper's §4.2 claims qualitatively, on
//! the full 64-node system (release mode recommended: `cargo test
//! --release`). These are the "shape" checks EXPERIMENTS.md reports
//! quantitatively.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::{run_once, RunResult};
use erapid_suite::traffic::pattern::TrafficPattern;

fn quick_plan(window: u64) -> PhasePlan {
    PhasePlan::new(2 * window, 4 * window).with_max_cycles(20 * window)
}

fn run(mode: NetworkMode, pattern: TrafficPattern, load: f64) -> RunResult {
    let cfg = SystemConfig::paper64(mode);
    let plan = quick_plan(cfg.schedule.window);
    run_once(cfg, pattern, load, plan)
}

#[test]
fn uniform_reconfiguration_is_a_noop() {
    // "For uniform traffic, NP-NB shows similar performance (throughput
    // and latency) as NP-B ... This implies that LS independently evaluates
    // if reconfiguration is necessary."
    let base = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.5);
    let reconf = run(NetworkMode::NpB, TrafficPattern::Uniform, 0.5);
    assert_eq!(
        reconf.grants, 0,
        "balanced load leaves nothing to re-allocate"
    );
    let dthr = (reconf.throughput - base.throughput).abs() / base.throughput;
    assert!(dthr < 0.02, "throughput difference {dthr} too large");
    let dlat = (reconf.latency - base.latency).abs() / base.latency;
    assert!(dlat < 0.05, "latency difference {dlat} too large");
}

#[test]
fn uniform_power_aware_saves_power_with_small_throughput_loss() {
    // "For P-NB ... marginal degradation in performance ... P-NB shows
    // almost 16% reduction on power consumption where as P-B shows almost
    // 50% reduction" (at the loads where DPM has headroom).
    let base = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.4);
    let pnb = run(NetworkMode::PNb, TrafficPattern::Uniform, 0.4);
    let pb = run(NetworkMode::PB, TrafficPattern::Uniform, 0.4);
    assert!(
        pnb.power_mw < base.power_mw,
        "P-NB must save power: {} vs {}",
        pnb.power_mw,
        base.power_mw
    );
    assert!(
        pb.power_mw < base.power_mw * 0.75,
        "P-B must save substantial power: {} vs {}",
        pb.power_mw,
        base.power_mw
    );
    let loss = (base.throughput - pb.throughput) / base.throughput;
    assert!(loss < 0.10, "P-B throughput loss {loss} exceeds 10%");
}

#[test]
fn complement_throughput_multiplies_under_dbr() {
    // "We achieve almost 400% improvement in throughput by completely
    // reconfiguring the network."
    let base = run(NetworkMode::NpNb, TrafficPattern::Complement, 0.7);
    let reconf = run(NetworkMode::NpB, TrafficPattern::Complement, 0.7);
    assert!(
        reconf.throughput > base.throughput * 3.0,
        "DBR multiplier only {:.2}",
        reconf.throughput / base.throughput
    );
    assert!(reconf.grants >= 40, "all idle wavelengths re-allocated");
}

#[test]
fn complement_np_nb_equals_p_nb_throughput() {
    // "The throughput, network latency and power consumption remains the
    // same for both NP-NB and P-NB" (both saturate on one wavelength).
    let a = run(NetworkMode::NpNb, TrafficPattern::Complement, 0.7);
    let b = run(NetworkMode::PNb, TrafficPattern::Complement, 0.7);
    let dthr = (a.throughput - b.throughput).abs() / a.throughput;
    assert!(dthr < 0.05, "throughput difference {dthr}");
    assert!(
        b.power_mw <= a.power_mw * 1.01,
        "P-NB never costs more power"
    );
}

#[test]
fn complement_power_rises_with_reconfigured_bandwidth() {
    // "The power consumption for a NP-B network is also 300% more than the
    // NP-NB/P-NB networks" — more lit-and-busy lasers.
    let base = run(NetworkMode::NpNb, TrafficPattern::Complement, 0.7);
    let reconf = run(NetworkMode::NpB, TrafficPattern::Complement, 0.7);
    assert!(
        reconf.power_mw > base.power_mw * 2.5,
        "NP-B power ratio only {:.2}",
        reconf.power_mw / base.power_mw
    );
}

#[test]
fn butterfly_and_shuffle_gain_from_dbr() {
    // Fig. 6's story: both adversarial permutations gain throughput from
    // reconfiguration at high load.
    for pattern in [TrafficPattern::Butterfly, TrafficPattern::PerfectShuffle] {
        let base = run(NetworkMode::NpNb, pattern.clone(), 0.8);
        let reconf = run(NetworkMode::NpB, pattern.clone(), 0.8);
        assert!(
            reconf.throughput > base.throughput * 1.2,
            "{}: NP-B gain only {:.2}x",
            pattern.name(),
            reconf.throughput / base.throughput
        );
        assert!(reconf.grants > 0);
    }
}

#[test]
fn pb_tracks_npb_throughput_with_less_power_at_mid_load() {
    // The headline claim: "achieving a reduction in power consumption of
    // 25% - 50% while degrading the throughput by less than 5%."
    for pattern in [TrafficPattern::Butterfly, TrafficPattern::Complement] {
        let npb = run(NetworkMode::NpB, pattern.clone(), 0.5);
        let pb = run(NetworkMode::PB, pattern.clone(), 0.5);
        let loss = (npb.throughput - pb.throughput) / npb.throughput;
        assert!(
            loss < 0.08,
            "{}: P-B throughput loss {loss:.3} too large",
            pattern.name()
        );
        assert!(
            pb.power_mw < npb.power_mw,
            "{}: P-B must consume less than NP-B ({} vs {})",
            pattern.name(),
            pb.power_mw,
            npb.power_mw
        );
    }
}

#[test]
fn latency_grows_with_load() {
    let lo = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.2);
    let hi = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.8);
    assert!(hi.latency > lo.latency, "{} !> {}", hi.latency, lo.latency);
}

#[test]
fn offered_equals_accepted_below_saturation() {
    for load in [0.2, 0.5] {
        let r = run(NetworkMode::NpNb, TrafficPattern::Uniform, load);
        let offered = SystemConfig::paper64(NetworkMode::NpNb)
            .capacity()
            .injection_rate(load);
        let err = (r.throughput - offered).abs() / offered;
        assert!(
            err < 0.15,
            "load {load}: accepted {} vs offered {offered}",
            r.throughput
        );
        assert_eq!(r.undrained, 0);
    }
}
