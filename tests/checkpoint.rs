//! Checkpoint/restore and streaming-export contract tests.
//!
//! The contract under test (DESIGN.md §13): a run that is killed mid-way
//! and resumed from its newest checkpoint produces **byte-identical**
//! artifacts — streamed JSONL trace, `.erpd` delivery log, and final
//! metrics to the bit — to the same run uninterrupted, on both the
//! sequential and the board-sharded engine, in all four network modes.
//! And corruption of a snapshot (truncation, bit flips, version or config
//! mismatch) is always *detected*, falling back to the previous good
//! checkpoint rather than panicking or restoring garbage.

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::desim::rng::Pcg32;
use erapid_suite::erapid_core::checkpoint::{
    self, config_fingerprint, decode_snapshot, encode_snapshot, latest_valid, resume_latest,
    Checkpointer,
};
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::stream::{
    read_deliveries, run_streaming, StreamCursor, StreamPaths, StreamSink,
};
use erapid_suite::erapid_core::system::System;
use erapid_suite::erapid_telemetry::TraceConfig;
use erapid_suite::traffic::pattern::TrafficPattern;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

const WINDOW: u64 = 2000;

fn cfg(mode: NetworkMode) -> SystemConfig {
    let mut c = SystemConfig::small(mode);
    c.trace = TraceConfig::on();
    c.packet_log = true;
    c
}

/// 2 warm-up windows, 8 measured, capped at 14 — several checkpoints and
/// DBR rounds within a fast test run.
fn full_plan() -> PhasePlan {
    PhasePlan::new(2 * WINDOW, 8 * WINDOW).with_max_cycles(14 * WINDOW)
}

fn build(mode: NetworkMode, plan: PhasePlan) -> System {
    System::new(cfg(mode), TrafficPattern::Complement, 0.5, plan)
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("nonzero")
}

fn tdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("erapid-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create test dir");
    d
}

fn paths(dir: &Path) -> StreamPaths {
    StreamPaths {
        trace: Some(dir.join("trace.jsonl")),
        deliveries: Some(dir.join("deliv.erpd")),
    }
}

/// Everything observable about a streamed run, exact.
#[derive(PartialEq, Debug)]
struct Artifacts {
    trace: Vec<u8>,
    deliv: Vec<u8>,
    injected: u64,
    delivered: u64,
    throughput_bits: u64,
    latency_bits: u64,
    power_bits: u64,
    cycles: u64,
}

fn artifacts(sys: &System, end: u64, p: &StreamPaths) -> Artifacts {
    let m = sys.metrics();
    Artifacts {
        trace: std::fs::read(p.trace.as_deref().expect("path")).expect("read trace"),
        deliv: std::fs::read(p.deliveries.as_deref().expect("path")).expect("read deliv"),
        injected: m.injected_total,
        delivered: m.delivered_total,
        throughput_bits: m.throughput_ppc().to_bits(),
        latency_bits: m.mean_latency().to_bits(),
        power_bits: m.average_power_mw().to_bits(),
        cycles: end,
    }
}

/// The uninterrupted reference run.
fn run_full(mode: NetworkMode, threads: usize, dir: &Path) -> Artifacts {
    let p = paths(dir);
    let mut sys = build(mode, full_plan());
    let mut sink = StreamSink::create(&p).expect("create sink");
    let end = run_streaming(&mut sys, nz(threads), &mut sink, None).expect("stream run");
    sink.finalize().expect("finalize");
    artifacts(&sys, end, &p)
}

/// The crash leg: run with checkpoints until `kill_at`, drop everything
/// unfinalized (the on-disk state a SIGKILL leaves: checkpoints at
/// cadence plus un-checkpointed stream tail). Returns the checkpoint dir.
fn run_killed(
    mode: NetworkMode,
    threads: usize,
    dir: &Path,
    kill_at: u64,
    every_windows: u64,
) -> PathBuf {
    let p = paths(dir);
    let ckpt_dir = dir.join("ckpt");
    let mut sys = build(mode, full_plan().with_max_cycles(kill_at));
    let mut sink = StreamSink::create(&p).expect("create sink");
    let mut ck = Checkpointer::new(&ckpt_dir, every_windows, WINDOW).expect("checkpointer");
    run_streaming(&mut sys, nz(threads), &mut sink, Some(&mut ck)).expect("killed leg");
    assert!(ck.written_count() > 0, "kill_at must lie past a checkpoint");
    // No finalize, no trailer: the crash.
    ckpt_dir
}

/// The resume leg: fresh identical system, newest valid checkpoint, files
/// truncated to its cursor, run to the end.
fn run_resumed(mode: NetworkMode, threads: usize, dir: &Path, every_windows: u64) -> Artifacts {
    let p = paths(dir);
    let ckpt_dir = dir.join("ckpt");
    let mut sys = build(mode, full_plan());
    let (_, cursor) = resume_latest(&mut sys, &ckpt_dir).expect("no checkpoint to resume");
    assert!(sys.now() > 0, "restore must land mid-run");
    let mut sink = StreamSink::resume(&p, cursor).expect("reopen sink");
    let mut ck = Checkpointer::new(&ckpt_dir, every_windows, WINDOW).expect("checkpointer");
    let end = run_streaming(&mut sys, nz(threads), &mut sink, Some(&mut ck)).expect("resume leg");
    sink.finalize().expect("finalize");
    artifacts(&sys, end, &p)
}

fn kill_resume_equals_full(mode: NetworkMode, threads: usize, kill_at: u64, tag: &str) {
    let full_dir = tdir(&format!("{tag}-full"));
    let crash_dir = tdir(&format!("{tag}-crash"));
    let full = run_full(mode, threads, &full_dir);
    run_killed(mode, threads, &crash_dir, kill_at, 1);
    let resumed = run_resumed(mode, threads, &crash_dir, 1);
    assert_eq!(
        full, resumed,
        "killed+resumed run diverged ({mode:?}, {threads} threads, kill at {kill_at})"
    );
    // The streamed delivery log itself must verify and decode.
    let back = read_deliveries(paths(&full_dir).deliveries.as_deref().expect("path"))
        .expect("delivery log verifies");
    assert_eq!(back.len() as u64, full.delivered);
    let _ = std::fs::remove_dir_all(full_dir);
    let _ = std::fs::remove_dir_all(crash_dir);
}

/// The golden pin of the tentpole contract: kill mid-window at 60 % of
/// the horizon, resume, byte-identical — sequential engine.
#[test]
fn golden_kill_resume_byte_identical_sequential() {
    kill_resume_equals_full(NetworkMode::PB, 1, 8 * WINDOW + 777, "gold-seq");
}

/// Same pin through the board-sharded engine (2 workers).
#[test]
fn golden_kill_resume_byte_identical_sharded() {
    kill_resume_equals_full(NetworkMode::PB, 2, 8 * WINDOW + 777, "gold-shard");
}

/// The kill/resume contract holds with the scenario engine driving
/// injection: its per-node RNG streams ride the snapshot, so a resumed
/// run's stream continues exactly where the killed run stopped — every
/// scenario, alternating sequential and board-sharded engines.
#[test]
fn scenario_kill_resume_byte_identical() {
    use erapid_suite::erapid_workloads::ScenarioSpec;
    let scen_cfg = |spec: &ScenarioSpec| {
        let mut c = cfg(NetworkMode::PB);
        c.scenario = Some(spec.clone());
        c
    };
    for (i, spec) in ScenarioSpec::paper_suite().iter().enumerate() {
        let threads = if i % 2 == 0 { 1 } else { 2 };
        let build = || System::new(scen_cfg(spec), TrafficPattern::Uniform, 0.5, full_plan());

        // Uninterrupted reference.
        let full_dir = tdir(&format!("scen-{}-full", spec.name()));
        let p = paths(&full_dir);
        let mut sys = build();
        let mut sink = StreamSink::create(&p).expect("create sink");
        let end = run_streaming(&mut sys, nz(threads), &mut sink, None).expect("full leg");
        sink.finalize().expect("finalize");
        let full = artifacts(&sys, end, &p);

        // Crash leg: checkpoints at every window, killed mid-window.
        let crash_dir = tdir(&format!("scen-{}-crash", spec.name()));
        let pc = paths(&crash_dir);
        let ckpt_dir = crash_dir.join("ckpt");
        let mut sys = System::new(
            scen_cfg(spec),
            TrafficPattern::Uniform,
            0.5,
            full_plan().with_max_cycles(8 * WINDOW + 777),
        );
        let mut sink = StreamSink::create(&pc).expect("create sink");
        let mut ck = Checkpointer::new(&ckpt_dir, 1, WINDOW).expect("checkpointer");
        run_streaming(&mut sys, nz(threads), &mut sink, Some(&mut ck)).expect("killed leg");
        assert!(ck.written_count() > 0, "kill must lie past a checkpoint");

        // Resume leg: fresh system, newest checkpoint, run to the end.
        let mut sys = build();
        let (_, cursor) = resume_latest(&mut sys, &ckpt_dir).expect("no checkpoint to resume");
        assert!(sys.now() > 0, "restore must land mid-run");
        let mut sink = StreamSink::resume(&pc, cursor).expect("reopen sink");
        let mut ck = Checkpointer::new(&ckpt_dir, 1, WINDOW).expect("checkpointer");
        let end =
            run_streaming(&mut sys, nz(threads), &mut sink, Some(&mut ck)).expect("resume leg");
        sink.finalize().expect("finalize");
        let resumed = artifacts(&sys, end, &pc);

        assert_eq!(
            full,
            resumed,
            "[{}] killed+resumed scenario run diverged ({threads} threads)",
            spec.name()
        );
        let _ = std::fs::remove_dir_all(full_dir);
        let _ = std::fs::remove_dir_all(crash_dir);
    }
}

/// The kill/resume contract holds with the online threshold controller
/// live on a scenario workload: the controller's milli-unit thresholds and
/// counters ride the snapshot (tag `TUNC`), and the restore retargets the
/// DBR buffer watches to the restored `B_max`, so a resumed run adapts
/// exactly like the uninterrupted one — both engines.
#[test]
fn controller_kill_resume_byte_identical() {
    use erapid_suite::erapid_tune::ControllerSpec;
    use erapid_suite::erapid_workloads::ScenarioSpec;
    let tuned_cfg = || {
        let mut c = cfg(NetworkMode::PB);
        c.scenario = Some(ScenarioSpec::incast());
        c.tune = Some(ControllerSpec::paper_pb());
        c
    };
    for threads in [1usize, 2] {
        let build = || System::new(tuned_cfg(), TrafficPattern::Uniform, 0.5, full_plan());

        // Uninterrupted reference.
        let full_dir = tdir(&format!("tune-{threads}-full"));
        let p = paths(&full_dir);
        let mut sys = build();
        let mut sink = StreamSink::create(&p).expect("create sink");
        let end = run_streaming(&mut sys, nz(threads), &mut sink, None).expect("full leg");
        sink.finalize().expect("finalize");
        let full = artifacts(&sys, end, &p);
        let full_ctrl = sys.controller().expect("controller is on").clone();
        assert!(
            full_ctrl.windows_seen() > 0,
            "controller must observe windows in the reference run"
        );

        // Crash leg: checkpoints every window, killed mid-window.
        let crash_dir = tdir(&format!("tune-{threads}-crash"));
        let pc = paths(&crash_dir);
        let ckpt_dir = crash_dir.join("ckpt");
        let mut sys = System::new(
            tuned_cfg(),
            TrafficPattern::Uniform,
            0.5,
            full_plan().with_max_cycles(8 * WINDOW + 777),
        );
        let mut sink = StreamSink::create(&pc).expect("create sink");
        let mut ck = Checkpointer::new(&ckpt_dir, 1, WINDOW).expect("checkpointer");
        run_streaming(&mut sys, nz(threads), &mut sink, Some(&mut ck)).expect("killed leg");
        assert!(ck.written_count() > 0, "kill must lie past a checkpoint");

        // Resume leg.
        let mut sys = build();
        let (_, cursor) = resume_latest(&mut sys, &ckpt_dir).expect("no checkpoint to resume");
        assert!(sys.now() > 0, "restore must land mid-run");
        let mut sink = StreamSink::resume(&pc, cursor).expect("reopen sink");
        let mut ck = Checkpointer::new(&ckpt_dir, 1, WINDOW).expect("checkpointer");
        let end =
            run_streaming(&mut sys, nz(threads), &mut sink, Some(&mut ck)).expect("resume leg");
        sink.finalize().expect("finalize");
        let resumed = artifacts(&sys, end, &pc);

        assert_eq!(
            full, resumed,
            "killed+resumed controller run diverged ({threads} threads)"
        );
        assert_eq!(
            sys.controller().expect("controller is on"),
            &full_ctrl,
            "resumed controller state diverged ({threads} threads)"
        );
        let _ = std::fs::remove_dir_all(full_dir);
        let _ = std::fs::remove_dir_all(crash_dir);
    }
}

/// Cross-engine: a sequential full run vs a *sharded* killed+resumed run
/// — the two engines share one byte-identity contract, checkpointing
/// included.
#[test]
fn sharded_resume_matches_sequential_full() {
    let full_dir = tdir("xeng-full");
    let crash_dir = tdir("xeng-crash");
    let full = run_full(NetworkMode::PB, 1, &full_dir);
    run_killed(NetworkMode::PB, 2, &crash_dir, 7 * WINDOW + 321, 2);
    let resumed = run_resumed(NetworkMode::PB, 2, &crash_dir, 2);
    assert_eq!(full, resumed);
    let _ = std::fs::remove_dir_all(full_dir);
    let _ = std::fs::remove_dir_all(crash_dir);
}

/// Kill at a seeded-random cycle in every mode × both engines: resume
/// equivalence is not a property of one lucky cycle.
#[test]
fn kill_at_random_window_all_modes() {
    let mut rng = Pcg32::new(0x0C0FFEE5, 7);
    for mode in [
        NetworkMode::NpNb,
        NetworkMode::PNb,
        NetworkMode::NpB,
        NetworkMode::PB,
    ] {
        for threads in [1usize, 2] {
            // Past the first checkpoint (window 1), inside the horizon.
            let kill_at = WINDOW + 500 + rng.below((9 * WINDOW) as u32) as u64;
            kill_resume_equals_full(mode, threads, kill_at, &format!("rand-{mode:?}-{threads}"));
        }
    }
}

/// Snapshot corruption property: truncating or bit-flipping the newest
/// snapshot at a random offset is always detected, and the fallback chain
/// serves the previous good checkpoint instead.
#[test]
fn corrupt_snapshot_always_detected_with_fallback() {
    let dir = tdir("corrupt");
    let ckpt_dir = run_killed(NetworkMode::PB, 1, &dir, 9 * WINDOW + 50, 2);
    let config = cfg(NetworkMode::PB);
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
        .expect("list")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ersp"))
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "need a fallback candidate");
    let newest = snaps.last().expect("newest").clone();
    let older = snaps[snaps.len() - 2].clone();
    let pristine = std::fs::read(&newest).expect("read newest");

    let mut rng = Pcg32::new(0xBADC_0DE5, 3);
    for trial in 0..40 {
        let mut bytes = pristine.clone();
        if rng.bernoulli(0.5) {
            bytes.truncate(rng.below(bytes.len() as u32) as usize);
        } else {
            let at = rng.below(bytes.len() as u32) as usize;
            bytes[at] ^= 1 << rng.below(8);
        }
        std::fs::write(&newest, &bytes).expect("write corrupted");
        let fp = config_fingerprint(&config);
        assert!(
            decode_snapshot(&bytes, fp).is_err(),
            "trial {trial}: corruption not detected"
        );
        let (valid, _) = latest_valid(&ckpt_dir, &config)
            .unwrap_or_else(|| panic!("trial {trial}: fallback chain came up empty"));
        assert_eq!(
            valid, older,
            "trial {trial}: fallback picked wrong snapshot"
        );
    }

    // End-to-end through the fallback: with the newest snapshot corrupt,
    // the resume (from the *older* checkpoint) still reproduces the
    // uninterrupted run byte-for-byte.
    let full_dir = tdir("corrupt-full");
    let full = run_full(NetworkMode::PB, 1, &full_dir);
    let resumed = run_resumed(NetworkMode::PB, 1, &dir, 2);
    assert_eq!(full, resumed);

    // Every snapshot corrupt (including any the resume leg just wrote)
    // -> clean None, not a panic.
    for e in std::fs::read_dir(&ckpt_dir).expect("list") {
        let p = e.expect("entry").path();
        if p.extension().is_some_and(|x| x == "ersp") {
            std::fs::write(p, b"ERSPgarbage").expect("trash snapshot");
        }
    }
    assert!(latest_valid(&ckpt_dir, &config).is_none());
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(full_dir);
}

/// Version and config-fingerprint mismatches are typed errors.
#[test]
fn version_and_config_mismatch_rejected() {
    use erapid_suite::desim::snap::SnapError;
    let sys = build(NetworkMode::PB, full_plan());
    let bytes = encode_snapshot(&sys, StreamCursor::start()).expect("encode");
    let fp = config_fingerprint(sys.config());

    // Pristine decodes.
    assert!(decode_snapshot(&bytes, fp).is_ok());

    // Wrong config fingerprint (e.g. a different mode's system).
    let other = config_fingerprint(&cfg(NetworkMode::NpNb));
    assert!(matches!(
        decode_snapshot(&bytes, other),
        Err(SnapError::Mismatch(_))
    ));

    // Future version: patch the version field and re-seal the checksum so
    // only the version check can object.
    let mut v2 = bytes.clone();
    v2[4] = 0xFF;
    let body_len = v2.len() - 8;
    let sum = erapid_suite::desim::snap::fnv1a(&v2[..body_len]);
    v2[body_len..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        decode_snapshot(&v2, fp),
        Err(SnapError::Version(0xFF))
    ));

    // Truncation below the checksum is Format, inside is Checksum.
    assert!(decode_snapshot(&bytes[..4], fp).is_err());
    assert!(matches!(
        decode_snapshot(&bytes[..bytes.len() - 1], fp),
        Err(SnapError::Checksum { .. })
    ));
}

/// A restored system overlaid onto a *differently-shaped* fresh system is
/// refused with a typed mismatch, not a panic: the board-count geometry
/// check fires before any state is trusted.
#[test]
fn restore_into_wrong_geometry_is_refused() {
    let src = build(NetworkMode::PB, full_plan());
    let bytes = encode_snapshot(&src, StreamCursor::start()).expect("encode");
    let mut wrong = System::new(
        {
            let mut c = cfg(NetworkMode::PB);
            c.boards = 8;
            c.timing.boards = 8;
            c
        },
        TrafficPattern::Complement,
        0.5,
        full_plan(),
    );
    assert!(checkpoint::restore_system(&mut wrong, &bytes).is_err());
}
