//! Pattern explorer: every built-in traffic pattern through the P-B
//! network at a fixed load, with the board-pair demand matrix that explains
//! *why* each pattern stresses (or doesn't stress) the optical stage.
//!
//! ```text
//! cargo run --release --example pattern_explorer
//! ```

use erapid_suite::desim::rng::Pcg32;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::{default_plan, run_once};
use erapid_suite::netstats::table::Table;
use erapid_suite::traffic::pattern::TrafficPattern;

/// Board-pair demand matrix of a pattern on the 64-node system: how many
/// of board `s`'s nodes send to board `d` (sampled for random patterns).
fn demand_matrix(pattern: &TrafficPattern, boards: u32, per_board: u32) -> Vec<Vec<u32>> {
    let n = boards * per_board;
    let mut m = vec![vec![0u32; boards as usize]; boards as usize];
    let mut rng = Pcg32::stream(7, 7);
    for src in 0..n {
        // One representative destination per node (patterns in the paper
        // suite are permutations except uniform).
        let dst = pattern.dest(src, n, &mut rng);
        m[(src / per_board) as usize][(dst / per_board) as usize] += 1;
    }
    m
}

fn max_offboard(m: &[Vec<u32>]) -> u32 {
    m.iter()
        .enumerate()
        .flat_map(|(s, row)| {
            row.iter()
                .enumerate()
                .filter(move |(d, _)| *d != s)
                .map(|(_, &v)| v)
        })
        .max()
        .unwrap_or(0)
}

fn main() {
    let load = 0.5;
    let patterns: Vec<(&str, TrafficPattern)> = vec![
        ("uniform", TrafficPattern::Uniform),
        ("complement", TrafficPattern::Complement),
        ("butterfly", TrafficPattern::Butterfly),
        ("perfect_shuffle", TrafficPattern::PerfectShuffle),
        ("transpose", TrafficPattern::Transpose),
        ("bit_reversal", TrafficPattern::BitReversal),
        ("tornado", TrafficPattern::Tornado),
        ("neighbour", TrafficPattern::Neighbour),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                fraction: 0.5,
                exponent: 1.2,
            },
        ),
    ];

    let mut t = Table::new(vec![
        "pattern",
        "max board-pair demand",
        "thr (pkt/n/c)",
        "lat (cyc)",
        "power (mW)",
        "grants",
    ])
    .with_title(format!("all patterns, P-B network, load {load}, 64 nodes"));
    for (name, pattern) in &patterns {
        let m = demand_matrix(pattern, 8, 8);
        let cfg = SystemConfig::paper64(NetworkMode::PB);
        let plan = default_plan(cfg.schedule.window);
        let r = run_once(cfg, pattern.clone(), load, plan);
        t.row(vec![
            name.to_string(),
            format!("{} nodes", max_offboard(&m)),
            format!("{:.4}", r.throughput),
            format!("{:.1}", r.latency),
            format!("{:.1}", r.power_mw),
            format!("{}", r.grants),
        ]);
    }
    println!("{}", t.render());
    println!("The max board-pair demand column is the stress indicator: a");
    println!("statically-assigned wavelength carries one board pair, so a");
    println!("pattern concentrating 8 nodes on one pair (complement) needs");
    println!("8x the static bandwidth — exactly what DBR reassigns. Patterns");
    println!("with demand ≈ 1 (uniform) leave nothing for DBR to do (grants = 0).");

    println!("\ncomplement demand matrix (nodes from board s to board d):");
    let m = demand_matrix(&TrafficPattern::Complement, 8, 8);
    for (s, row) in m.iter().enumerate() {
        println!(
            "  B{s}: {}",
            row.iter()
                .map(|v| format!("{v:2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}
