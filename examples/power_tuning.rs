//! Power-policy tuning: how the DPM thresholds trade power against latency.
//!
//! The paper fixes `L_min = 0.7`, `L_max = 0.9`, `B_max = 0.3` for P-B
//! (§3.1, §4.2) after arguing that aggressive thresholds "push the link
//! utilization to the limit". This example sweeps the threshold band on
//! uniform traffic at a mid load where DPM has headroom, using the
//! `dpm_override` configuration knob.
//!
//! ```text
//! cargo run --release --example power_tuning
//! ```

use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::{default_plan, run_once};
use erapid_suite::netstats::table::Table;
use erapid_suite::photonics::bitrate::RateLadder;
use erapid_suite::photonics::power::LinkPowerModel;
use erapid_suite::powermgmt::policy::DpmPolicy;
use erapid_suite::traffic::pattern::TrafficPattern;

fn main() {
    let load = 0.4;

    println!("=== DPM threshold sweep (P-B system, uniform traffic, load {load}) ===\n");
    let mut t = Table::new(vec![
        "L_min",
        "L_max",
        "B_max",
        "thr",
        "lat (cyc)",
        "power (mW)",
        "retunes",
    ])
    .with_title("64-node E-RAPID; the paper's setting is (0.7, 0.9, 0.3)");
    for (l_min, l_max, b_max) in [
        (0.3, 0.5, 0.3),
        (0.5, 0.7, 0.3),
        (0.7, 0.9, 0.3), // the paper's P-B setting
        (0.7, 0.9, 0.0), // scale up on any queueing (the P-NB criterion)
        (0.9, 0.95, 0.3),
    ] {
        let mut cfg = SystemConfig::paper64(NetworkMode::PB);
        cfg.dpm_override = Some(DpmPolicy::new(l_min, l_max, b_max));
        let plan = default_plan(cfg.schedule.window);
        let r = run_once(cfg, TrafficPattern::Uniform, load, plan);
        t.row(vec![
            format!("{l_min}"),
            format!("{l_max}"),
            format!("{b_max}"),
            format!("{:.4}", r.throughput),
            format!("{:.1}", r.latency),
            format!("{:.1}", r.power_mw),
            format!("{}", r.retunes),
        ]);
    }
    println!("{}", t.render());
    println!("Lower bands keep links at high bit rates (more power, less");
    println!("latency); higher bands squeeze the links to the slowest rate");
    println!("that sustains the load. The paper's (0.7, 0.9, 0.3) sits where");
    println!("power collapses but latency grows only modestly.\n");

    // Why this works: the energy-per-bit ladder.
    let ladder = RateLadder::paper();
    let model = LinkPowerModel::paper_table();
    println!("energy per bit on the paper ladder:");
    for (level, rate) in ladder.iter() {
        println!(
            "  {:>8}: {:.2} pJ/bit  ({:.2} mW active)",
            format!("{} Gbps", rate.gbps),
            model.energy_per_bit_pj(level),
            model.active_mw(level),
        );
    }
    println!("\nA link kept busy at 2.5 Gbps moves the same bits for 2.5x less");
    println!("energy than an underutilised 5 Gbps link — that is the entire");
    println!("DPM story, and why the thresholds aim to saturate slow links.");
}
