//! Adversarial-traffic reconfiguration demo — the paper's headline story.
//!
//! Complement traffic sends every node of board `b` to board `B-1-b`, so a
//! statically-assigned E-RAPID funnels each board's entire load through a
//! single wavelength while six others idle. This example runs the same
//! workload on the static network (NP-NB) and the reconfigured one (P-B),
//! shows the wavelength ownership map before and after Lock-Step kicks in,
//! and compares throughput/latency/power.
//!
//! ```text
//! cargo run --release --example adversarial_reconfig
//! ```

use erapid_suite::desim::phase::PhasePlan;
use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::system::System;
use erapid_suite::traffic::pattern::TrafficPattern;

fn ownership_row(sys: &System, dest: u16) -> String {
    let mut s = format!("dest board {dest}: ");
    for w in 1..sys.srs().wavelengths() {
        match sys.srs().owner(dest, w) {
            Some(o) => s.push_str(&format!("λ{w}←B{o} ")),
            None => s.push_str(&format!("λ{w}←–– ")),
        }
    }
    s
}

fn main() {
    let load = 0.6;
    let plan = PhasePlan::new(6000, 12_000).with_max_cycles(80_000);

    println!("=== complement traffic on a 64-node E-RAPID, load {load} ===\n");

    let mut results = Vec::new();
    for mode in [NetworkMode::NpNb, NetworkMode::PB] {
        let cfg = SystemConfig::paper64(mode);
        let mut sys = System::new(cfg, TrafficPattern::Complement, load, plan);

        if mode == NetworkMode::PB {
            println!("wavelength ownership toward board 7 at boot (static RWA):");
            println!("  {}\n", ownership_row(&sys, 7));
            // Run past two LS bandwidth windows so DBR engages.
            while sys.now() < 6000 {
                sys.step();
            }
            println!("after the first Lock-Step bandwidth cycles (t = 6000):");
            println!("  {}", ownership_row(&sys, 7));
            println!("  (board 0 — the only board sending to board 7 — has been");
            println!("   granted the idle wavelengths of the other boards)\n");
        }
        sys.run();
        let m = sys.metrics();
        let (grants, retunes) = sys.srs().reconfig_counts();
        println!(
            "{:6}  throughput {:.4} pkt/node/cyc   latency {:9.1} cyc   power {:7.1} mW   grants {:3}  retunes {:3}",
            mode.name(),
            m.throughput_ppc(),
            m.mean_latency(),
            m.average_power_mw(),
            grants,
            retunes,
        );
        results.push((mode, m.throughput_ppc(), m.average_power_mw()));
    }

    let (_, t_static, _) = results[0];
    let (_, t_reconf, _) = results[1];
    println!(
        "\nLock-Step reconfiguration multiplied complement throughput by {:.1}x",
        t_reconf / t_static
    );
    println!("(the paper reports ~4x for its testbed parameters, §4.2)");
}
