//! Lock-Step protocol trace: watch one DBR round execute stage by stage as
//! real control packets on the electrical RC ring (Fig. 4 of the paper),
//! under the complement hot-flow scenario.
//!
//! ```text
//! cargo run --release --example lockstep_trace
//! ```

use erapid_suite::photonics::bitrate::RateLevel;
use erapid_suite::photonics::rwa::StaticRwa;
use erapid_suite::photonics::wavelength::BoardId;
use erapid_suite::reconfig::alloc::{AllocPolicy, FlowDemand};
use erapid_suite::reconfig::msg::LinkReading;
use erapid_suite::reconfig::protocol::DbrRound;
use erapid_suite::reconfig::stages::ProtocolTiming;

const BOARDS: u16 = 8;

fn main() {
    let timing = ProtocolTiming::paper64();
    println!("=== one Lock-Step DBR round, 8 boards, message-level ===\n");
    println!("stage latencies:");
    println!(
        "  Link Request  : {:>3} cycles (RC → {} LCs → RC)",
        timing.stage_cycles(erapid_suite::reconfig::stages::Stage::LinkRequest),
        timing.lcs_per_board
    );
    println!(
        "  Board Request : {:>3} cycles ({} ring hops × {})",
        timing.stage_cycles(erapid_suite::reconfig::stages::Stage::BoardRequest),
        timing.boards,
        timing.ring_hop
    );
    println!("  Reconfigure   : {:>3} cycles", timing.compute);
    println!(
        "  Board Response: {:>3} cycles",
        timing.stage_cycles(erapid_suite::reconfig::stages::Stage::BoardResponse)
    );
    println!(
        "  Link Response : {:>3} cycles",
        timing.stage_cycles(erapid_suite::reconfig::stages::Stage::LinkResponse)
    );
    println!(
        "  total         : {:>3} cycles (R_w = 2000: {:.1}% overhead)\n",
        timing.dbr_latency(),
        timing.dbr_latency() as f64 / 2000.0 * 100.0
    );

    // The complement hot spot: board 0's flow to board 7 is congested,
    // all other flows toward board 7 are idle.
    let rwa = StaticRwa::new(BOARDS);
    let mut outgoing = vec![Vec::new(); BOARDS as usize];
    for s in 0..BOARDS {
        for d in 0..BOARDS {
            if s == d {
                continue;
            }
            let hot = s == 0 && d == 7;
            outgoing[s as usize].push(LinkReading {
                wavelength: rwa.wavelength(BoardId(s), BoardId(d)),
                destination: Some(BoardId(d)),
                link_util: if hot { 1.0 } else { 0.05 },
                buffer_util: if hot { 0.85 } else { 0.0 },
                level: RateLevel(2),
            });
        }
    }
    let demands: Vec<Vec<FlowDemand>> = (0..BOARDS)
        .map(|d| {
            (0..BOARDS)
                .filter(|&s| s != d)
                .map(|s| FlowDemand {
                    source: BoardId(s),
                    buffer_util: if s == 0 && d == 7 { 0.85 } else { 0.0 },
                })
                .collect()
        })
        .collect();

    let mut round = DbrRound::new(timing, AllocPolicy::paper(), 0, outgoing, demands);
    let mut last_stage = round.stage();
    println!("timeline:");
    println!("  cycle {:>4}: {}", 0, last_stage);
    let mut now = 0;
    let outcome = loop {
        if let Some(outcome) = round.tick(now) {
            println!("  cycle {:>4}: done", now);
            break outcome;
        }
        if round.stage() != last_stage {
            last_stage = round.stage();
            println!("  cycle {:>4}: {}", now, last_stage);
        }
        now += 1;
    };

    println!("\ndecisions ({} grants):", outcome.grants.len());
    for g in &outcome.grants {
        println!(
            "  dest {} : {} re-assigned {} → {}",
            g.destination, g.wavelength, g.from, g.to
        );
    }
    println!("\nlaser commands:");
    for (b, cmds) in outcome.commands.iter().enumerate() {
        if cmds.is_empty() {
            continue;
        }
        let rendered: Vec<String> = cmds
            .iter()
            .map(|c| {
                format!(
                    "{} {} toward {}",
                    if c.on { "ON " } else { "OFF" },
                    c.wavelength,
                    c.destination
                )
            })
            .collect();
        println!("  board {b}: {}", rendered.join(", "));
    }
    println!(
        "\nround completed in {} cycles — exactly the analytic dbr_latency ({}).",
        outcome.completed_at,
        timing.dbr_latency()
    );
    assert_eq!(outcome.completed_at, timing.dbr_latency());
}
