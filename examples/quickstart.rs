//! Quickstart: build a 64-node E-RAPID, run it under uniform traffic at
//! half load in the paper's P-B (power-aware, bandwidth-reconfigured)
//! configuration, and print the three headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use erapid_suite::erapid_core::config::{NetworkMode, SystemConfig};
use erapid_suite::erapid_core::experiment::{default_plan, run_once};
use erapid_suite::traffic::pattern::TrafficPattern;

fn main() {
    // 1. Pick a configuration. `paper64` is the evaluation system of the
    //    paper: R(1, 8, 8) — one cluster, 8 boards, 8 nodes per board —
    //    with Table 1's router and optical-link parameters.
    let cfg = SystemConfig::paper64(NetworkMode::PB);
    println!(
        "system: R({},{},{}) = {} nodes, {} wavelengths, R_w = {} cycles",
        cfg.clusters,
        cfg.boards,
        cfg.nodes_per_board,
        cfg.nodes(),
        cfg.wavelengths(),
        cfg.schedule.window
    );
    println!(
        "uniform capacity N_c = {:.5} packets/node/cycle",
        cfg.capacity().uniform_capacity()
    );

    // 2. Pick a workload: Bernoulli injection at 50% of capacity, uniform
    //    random destinations (the paper's §4 methodology).
    let pattern = TrafficPattern::Uniform;
    let load = 0.5;

    // 3. Run: warm-up, labelled measurement interval, drain.
    let plan = default_plan(cfg.schedule.window);
    let r = run_once(cfg, pattern, load, plan);

    // 4. Report.
    println!("\nresults at load {:.1}:", r.load);
    println!(
        "  accepted throughput : {:.4} packets/node/cycle ({:.0}% of N_c)",
        r.throughput,
        r.throughput_norm * 100.0
    );
    println!(
        "  mean latency        : {:.1} cycles ({:.0} ns at 400 MHz)",
        r.latency,
        r.latency * 2.5
    );
    println!("  p95 latency         : {:.0} cycles", r.latency_p95);
    println!("  optical power       : {:.1} mW", r.power_mw);
    println!("  DPM retunes         : {}", r.retunes);
    println!("  DBR grants          : {}", r.grants);
    println!("  simulated cycles    : {}", r.cycles);
    assert_eq!(
        r.undrained, 0,
        "all measured packets must drain at this load"
    );
}
