//! Root crate of the E-RAPID reproduction workspace.
//!
//! `erapid-suite` hosts the workspace-spanning integration tests (`tests/`)
//! and the runnable examples (`examples/`). It re-exports every member crate
//! so examples and tests can reach the whole public API through one
//! dependency.

pub use desim;
pub use emesh;
pub use erapid_core;
pub use erapid_telemetry;
pub use erapid_tune;
pub use erapid_workloads;
pub use netstats;
pub use photonics;
pub use powermgmt;
pub use reconfig;
pub use router;
pub use traffic;
