//! Scenario specifications: the parameter blocks the engine is built from.
//!
//! A [`ScenarioSpec`] is plain data (`Debug + Clone + PartialEq`) so it can
//! ride inside `SystemConfig` without breaking the config's `Debug`-based
//! checkpoint fingerprint; two configs differing only in scenario
//! parameters refuse to exchange snapshots.

use std::fmt;

/// The four production-shaped workload scenarios (DESIGN.md §14).
///
/// All rate parameters are *multipliers* over the run's base per-node
/// injection rate (the paper's `load × N_c` normalisation), so the bench
/// load axis scales scenario intensity exactly as it scales the synthetic
/// patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// Zipf-skewed hotspot: every node injects at the base rate, but
    /// destinations follow a Zipf(`exponent`) popularity ranking over a
    /// seed-derived node permutation. The ranking rotates by one position
    /// every `rotate_every` cycles (0 = static hotspot), modelling a
    /// popular shard migrating across the machine.
    ZipfHotspot {
        /// Zipf exponent `s` (0 degenerates to uniform; ~1.2 is the
        /// classic web/datacenter skew).
        exponent: f64,
        /// Cycles between one-position rotations of the popularity
        /// ranking (0 disables rotation).
        rotate_every: u64,
    },
    /// Diurnal load curve: uniform destinations, but the injection rate
    /// follows a triangle wave between `trough × base` and `base` with
    /// period `period` cycles. A piecewise-linear wave (not a sinusoid)
    /// keeps the multiplier free of transcendental functions, so the
    /// stream is bit-reproducible across platforms.
    Diurnal {
        /// Full wave period, cycles.
        period: u64,
        /// Rate multiplier at the trough, in `[0, 1]`.
        trough: f64,
    },
    /// Incast/outcast storm: every `period` cycles, a `burst`-cycle storm
    /// aims all sources at one rotating victim node at `intensity ×` the
    /// base rate (the victim itself sprays uniformly at the same rate when
    /// `outcast` is set — the reduce-then-broadcast shape). Between
    /// storms, uniform background traffic at `background ×` base.
    IncastStorm {
        /// Cycles between storm onsets.
        period: u64,
        /// Storm length, cycles (must be ≤ `period`).
        burst: u64,
        /// Per-source rate multiplier during the storm.
        intensity: f64,
        /// Background uniform rate multiplier between storms.
        background: f64,
        /// Whether the victim sprays (outcast leg) during the storm.
        outcast: bool,
    },
    /// Phased ML collective: alternating `comm`-cycle all-to-all exchange
    /// phases and `compute`-cycle silent phases. Within an exchange, the
    /// destination offset sweeps the ring (`dst = src + step mod N`, step
    /// advancing `1 ‥ N-1` across the phase) — every instant is a
    /// permutation, the all-to-all stress case reconfiguration policies
    /// trip over.
    Collective {
        /// Exchange-phase length, cycles.
        comm: u64,
        /// Compute-phase (silent) length, cycles.
        compute: u64,
        /// Per-source rate multiplier during exchange phases.
        intensity: f64,
    },
}

/// A fully-parameterized scenario, carried in `SystemConfig::scenario`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scenario shape and its parameters.
    pub kind: ScenarioKind,
    /// Global rate multiplier applied on top of the per-kind multipliers
    /// (1.0 = nominal).
    pub rate_scale: f64,
}

/// A rejected scenario parameterization (see [`ScenarioSpec::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl ScenarioSpec {
    /// The default hotspot scenario: web-like skew, ranking rotating every
    /// four paper windows.
    pub fn hotspot() -> Self {
        Self {
            kind: ScenarioKind::ZipfHotspot {
                exponent: 1.2,
                rotate_every: 8_000,
            },
            rate_scale: 1.0,
        }
    }

    /// The default diurnal scenario: 16 k-cycle wave, 20 % trough.
    pub fn diurnal() -> Self {
        Self {
            kind: ScenarioKind::Diurnal {
                period: 16_000,
                trough: 0.2,
            },
            rate_scale: 1.0,
        }
    }

    /// The default incast/outcast storm: a 1.2 k-cycle storm every 6 k
    /// cycles at 4× the base rate, with the outcast leg on.
    pub fn incast() -> Self {
        Self {
            kind: ScenarioKind::IncastStorm {
                period: 6_000,
                burst: 1_200,
                intensity: 4.0,
                background: 0.5,
                outcast: true,
            },
            rate_scale: 1.0,
        }
    }

    /// The default phased collective: 1.5 k-cycle exchanges separated by
    /// 2.5 k-cycle compute phases, exchanging at 3× the base rate.
    pub fn collective() -> Self {
        Self {
            kind: ScenarioKind::Collective {
                comm: 1_500,
                compute: 2_500,
                intensity: 3.0,
            },
            rate_scale: 1.0,
        }
    }

    /// All four scenarios in presentation order — the `scenarios` bench
    /// matrix.
    pub fn paper_suite() -> Vec<ScenarioSpec> {
        vec![
            Self::hotspot(),
            Self::diurnal(),
            Self::incast(),
            Self::collective(),
        ]
    }

    /// Stable short name (JSON keys, `ERAPID_SCENARIO` filter values).
    pub fn name(&self) -> &'static str {
        match self.kind {
            ScenarioKind::ZipfHotspot { .. } => "hotspot",
            ScenarioKind::Diurnal { .. } => "diurnal",
            ScenarioKind::IncastStorm { .. } => "incast",
            ScenarioKind::Collective { .. } => "collective",
        }
    }

    /// The default spec for a scenario name (the [`Self::name`] values),
    /// `None` for an unknown name.
    pub fn from_name(name: &str) -> Option<ScenarioSpec> {
        match name.trim() {
            "hotspot" => Some(Self::hotspot()),
            "diurnal" => Some(Self::diurnal()),
            "incast" => Some(Self::incast()),
            "collective" => Some(Self::collective()),
            _ => None,
        }
    }

    /// Snapshot tag byte: a checkpoint taken under one scenario kind
    /// refuses to overlay an engine built for another.
    pub fn kind_tag(&self) -> u8 {
        match self.kind {
            ScenarioKind::ZipfHotspot { .. } => 1,
            ScenarioKind::Diurnal { .. } => 2,
            ScenarioKind::IncastStorm { .. } => 3,
            ScenarioKind::Collective { .. } => 4,
        }
    }

    /// Checks the parameters against a system of `nodes` nodes, reporting
    /// the first problem as a typed error.
    pub fn validate(&self, nodes: u32) -> Result<(), SpecError> {
        let fail = |msg: String| Err(SpecError(msg));
        if nodes < 2 {
            return fail(format!("scenarios need at least 2 nodes, got {nodes}"));
        }
        if !(self.rate_scale >= 0.0 && self.rate_scale.is_finite()) {
            return fail(format!(
                "rate_scale must be finite ≥ 0: {}",
                self.rate_scale
            ));
        }
        match self.kind {
            ScenarioKind::ZipfHotspot { exponent, .. } => {
                if !(exponent >= 0.0 && exponent.is_finite()) {
                    return fail(format!("hotspot exponent must be finite ≥ 0: {exponent}"));
                }
            }
            ScenarioKind::Diurnal { period, trough } => {
                if period < 2 {
                    return fail(format!("diurnal period must be ≥ 2 cycles: {period}"));
                }
                if !(0.0..=1.0).contains(&trough) {
                    return fail(format!("diurnal trough must be in [0, 1]: {trough}"));
                }
            }
            ScenarioKind::IncastStorm {
                period,
                burst,
                intensity,
                background,
                ..
            } => {
                if period == 0 {
                    return fail("incast period must be positive".into());
                }
                if burst > period {
                    return fail(format!("incast burst {burst} exceeds its period {period}"));
                }
                for (what, v) in [("intensity", intensity), ("background", background)] {
                    if !(v >= 0.0 && v.is_finite()) {
                        return fail(format!("incast {what} must be finite ≥ 0: {v}"));
                    }
                }
            }
            ScenarioKind::Collective {
                comm,
                compute,
                intensity,
            } => {
                if comm == 0 {
                    return fail("collective comm phase must be positive".into());
                }
                let _ = compute; // 0 is legal: back-to-back exchanges.
                if !(intensity >= 0.0 && intensity.is_finite()) {
                    return fail(format!(
                        "collective intensity must be finite ≥ 0: {intensity}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_kinds_with_unique_names() {
        let suite = ScenarioSpec::paper_suite();
        assert_eq!(suite.len(), 4);
        let names: std::collections::BTreeSet<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
        let tags: std::collections::BTreeSet<u8> = suite.iter().map(|s| s.kind_tag()).collect();
        assert_eq!(tags.len(), 4);
        for s in &suite {
            s.validate(16).unwrap();
            assert_eq!(ScenarioSpec::from_name(s.name()), Some(s.clone()));
        }
        assert_eq!(ScenarioSpec::from_name("nope"), None);
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(ScenarioSpec::hotspot().validate(1).is_err());
        let mut s = ScenarioSpec::hotspot();
        s.rate_scale = f64::NAN;
        assert!(s.validate(16).is_err());
        let s = ScenarioSpec {
            kind: ScenarioKind::Diurnal {
                period: 1,
                trough: 0.2,
            },
            rate_scale: 1.0,
        };
        assert!(s.validate(16).is_err());
        let s = ScenarioSpec {
            kind: ScenarioKind::Diurnal {
                period: 100,
                trough: 1.5,
            },
            rate_scale: 1.0,
        };
        assert!(s.validate(16).is_err());
        let s = ScenarioSpec {
            kind: ScenarioKind::IncastStorm {
                period: 100,
                burst: 101,
                intensity: 1.0,
                background: 0.5,
                outcast: false,
            },
            rate_scale: 1.0,
        };
        assert!(s.validate(16).is_err());
        let s = ScenarioSpec {
            kind: ScenarioKind::Collective {
                comm: 0,
                compute: 10,
                intensity: 1.0,
            },
            rate_scale: 1.0,
        };
        assert!(s.validate(16).is_err());
    }
}
