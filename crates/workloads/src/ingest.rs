//! External trace ingestion: converts event logs from other tools into
//! validated, checksummed `.ertr` traces the replay machinery accepts.
//!
//! Two line-oriented source formats are read, mirroring the interchange
//! shapes of the usual HPC tracers:
//!
//! * **dumpi-style text** — whitespace-separated `cycle src dst` columns
//!   (extra trailing columns ignored), `#` comments and blank lines
//!   skipped. The shape `sst-dumpi`'s ASCII converters emit.
//! * **OTF2-style JSONL** — one `{"t":…,"src":…,"dst":…}` object per
//!   line, the shape OTF2 event dumps reduce to.
//!
//! Ingestion is strict where replay correctness depends on it: node ids
//! must fit the declared geometry, self-sends are rejected (the simulator
//! never generates them), and cycles must be non-decreasing — each
//! violation is a typed [`IngestError`] carrying the 1-based source line.
//! The output is an [`InjectionTrace`] whose binary form carries the
//! standard FNV-1a checksum, so a converted trace is indistinguishable
//! from a recorded one downstream.

use std::fmt;
use std::path::Path;
use traffic::trace::{InjectionTrace, TraceEntry, TraceMeta};

/// The external log formats [`ingest_str`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExternalFormat {
    /// Whitespace-separated `cycle src dst` columns (dumpi-style ASCII).
    DumpiText,
    /// One `{"t":…,"src":…,"dst":…}` JSON object per line (OTF2-style).
    Otf2Jsonl,
}

impl ExternalFormat {
    /// Guesses the format from content: a document whose first non-blank,
    /// non-comment line starts with `{` is JSONL, anything else is text.
    pub fn detect(text: &str) -> ExternalFormat {
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            return if t.starts_with('{') {
                ExternalFormat::Otf2Jsonl
            } else {
                ExternalFormat::DumpiText
            };
        }
        ExternalFormat::DumpiText
    }
}

/// A rejected external log, pinpointing the offending line.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The line is not parseable in the declared format.
    Parse {
        /// 1-based line number in the source document.
        line: usize,
        /// What failed.
        msg: String,
    },
    /// Event timestamps went backwards.
    NonMonotone {
        /// 1-based line number of the offending event.
        line: usize,
        /// The offending cycle.
        cycle: u64,
        /// The previous event's cycle.
        prev: u64,
    },
    /// A node id (or a self-send) does not fit the declared geometry.
    OutOfRange {
        /// 1-based line number of the offending event.
        line: usize,
        /// Which field (`"src"` / `"dst"`).
        field: &'static str,
        /// The offending value.
        value: u64,
        /// The exclusive limit it must stay under.
        limit: u64,
    },
    /// Filesystem I/O failed.
    Io(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            IngestError::NonMonotone { line, cycle, prev } => write!(
                f,
                "line {line}: cycle {cycle} precedes the previous event's {prev}"
            ),
            IngestError::OutOfRange {
                line,
                field,
                value,
                limit,
            } => write!(f, "line {line}: {field} {value} outside 0..{limit}"),
            IngestError::Io(msg) => write!(f, "ingest I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One parsed external event before validation.
struct RawEvent {
    line: usize,
    cycle: u64,
    src: u64,
    dst: u64,
}

fn parse_dumpi(text: &str) -> Result<Vec<RawEvent>, IngestError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut cols = t.split_whitespace();
        let mut col = |what: &'static str| -> Result<u64, IngestError> {
            let tok = cols.next().ok_or(IngestError::Parse {
                line: lineno,
                msg: format!("missing {what} column (want `cycle src dst`)"),
            })?;
            tok.parse().map_err(|_| IngestError::Parse {
                line: lineno,
                msg: format!("{what} column {tok:?} is not an unsigned integer"),
            })
        };
        let cycle = col("cycle")?;
        let src = col("src")?;
        let dst = col("dst")?;
        // Extra trailing columns (sizes, tags) are tolerated and ignored.
        out.push(RawEvent {
            line: lineno,
            cycle,
            src,
            dst,
        });
    }
    Ok(out)
}

/// Extracts an unsigned integer value for `key` from a one-line JSON
/// object — the same minimal scanner the trace JSONL reader uses, kept
/// local so ingest errors carry line numbers.
fn jsonl_u64(line: &str, lineno: usize, key: &str) -> Result<u64, IngestError> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle).ok_or_else(|| IngestError::Parse {
        line: lineno,
        msg: format!("missing key \"{key}\""),
    })? + needle.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().map_err(|_| IngestError::Parse {
        line: lineno,
        msg: format!("\"{key}\" is not an unsigned integer"),
    })
}

fn parse_otf2_jsonl(text: &str) -> Result<Vec<RawEvent>, IngestError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if !t.starts_with('{') || !t.ends_with('}') {
            return Err(IngestError::Parse {
                line: lineno,
                msg: "expected one JSON object per line".to_string(),
            });
        }
        out.push(RawEvent {
            line: lineno,
            cycle: jsonl_u64(t, lineno, "t")?,
            src: jsonl_u64(t, lineno, "src")?,
            dst: jsonl_u64(t, lineno, "dst")?,
        });
    }
    Ok(out)
}

/// Converts an external event log into a validated [`InjectionTrace`] for
/// a `boards × nodes_per_board` system. `meta.boards`/`nodes_per_board`
/// are taken as the geometry contract; `meta.pattern` conventionally names
/// the source (e.g. `"ingest:dumpi"`).
pub fn ingest_str(
    text: &str,
    format: ExternalFormat,
    meta: TraceMeta,
) -> Result<InjectionTrace, IngestError> {
    let nodes = meta.boards as u64 * meta.nodes_per_board as u64;
    let events = match format {
        ExternalFormat::DumpiText => parse_dumpi(text)?,
        ExternalFormat::Otf2Jsonl => parse_otf2_jsonl(text)?,
    };
    let mut entries = Vec::with_capacity(events.len());
    let mut prev: Option<u64> = None;
    for ev in events {
        if let Some(p) = prev {
            if ev.cycle < p {
                return Err(IngestError::NonMonotone {
                    line: ev.line,
                    cycle: ev.cycle,
                    prev: p,
                });
            }
        }
        for (field, value) in [("src", ev.src), ("dst", ev.dst)] {
            if value >= nodes {
                return Err(IngestError::OutOfRange {
                    line: ev.line,
                    field,
                    value,
                    limit: nodes,
                });
            }
        }
        if ev.src == ev.dst {
            return Err(IngestError::OutOfRange {
                line: ev.line,
                field: "dst",
                value: ev.dst,
                limit: nodes, // self-send: dst must differ from src
            });
        }
        prev = Some(ev.cycle);
        entries.push(TraceEntry {
            cycle: ev.cycle,
            src: ev.src as u32,
            dst: ev.dst as u32,
        });
    }
    Ok(InjectionTrace { meta, entries })
}

/// Reads `path`, auto-detects the format, and converts — the one-call
/// file form of [`ingest_str`].
pub fn ingest_file(path: &Path, meta: TraceMeta) -> Result<InjectionTrace, IngestError> {
    let text = std::fs::read_to_string(path).map_err(|e| IngestError::Io(e.to_string()))?;
    ingest_str(&text, ExternalFormat::detect(&text), meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            seed: 0,
            boards: 4,
            nodes_per_board: 4,
            pattern: "ingest:test".to_string(),
            load: 0.0,
            git_sha: "test".to_string(),
        }
    }

    #[test]
    fn dumpi_text_parses_with_comments_and_extra_columns() {
        let text = "# sst-dumpi ascii dump\n\n0 1 2\n0 3 4 1024 tag=7\n5 1 6\n";
        let t = ingest_str(text, ExternalFormat::DumpiText, meta()).unwrap();
        assert_eq!(t.entries.len(), 3);
        assert_eq!(
            t.entries[1],
            TraceEntry {
                cycle: 0,
                src: 3,
                dst: 4
            }
        );
        // The converted trace survives the checksummed binary round trip.
        let back = InjectionTrace::from_binary(&t.to_binary()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn otf2_jsonl_parses_and_detects() {
        let text = "{\"t\":3,\"src\":0,\"dst\":5}\n{\"t\":9,\"src\":2,\"dst\":0}\n";
        assert_eq!(ExternalFormat::detect(text), ExternalFormat::Otf2Jsonl);
        let t = ingest_str(text, ExternalFormat::Otf2Jsonl, meta()).unwrap();
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[1].cycle, 9);
    }

    #[test]
    fn detect_skips_leading_comments() {
        assert_eq!(
            ExternalFormat::detect("# header\n0 1 2\n"),
            ExternalFormat::DumpiText
        );
        assert_eq!(ExternalFormat::detect(""), ExternalFormat::DumpiText);
    }

    #[test]
    fn non_monotone_cycles_are_rejected_with_the_line() {
        let text = "0 1 2\n9 3 4\n5 1 6\n";
        assert_eq!(
            ingest_str(text, ExternalFormat::DumpiText, meta()),
            Err(IngestError::NonMonotone {
                line: 3,
                cycle: 5,
                prev: 9
            })
        );
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let err = ingest_str("0 1 16\n", ExternalFormat::DumpiText, meta()).unwrap_err();
        assert_eq!(
            err,
            IngestError::OutOfRange {
                line: 1,
                field: "dst",
                value: 16,
                limit: 16
            }
        );
        assert!(err.to_string().contains("line 1"));
        // Self-sends never occur in simulator traffic.
        assert!(matches!(
            ingest_str("0 3 3\n", ExternalFormat::DumpiText, meta()),
            Err(IngestError::OutOfRange { line: 1, .. })
        ));
    }

    #[test]
    fn malformed_lines_are_parse_errors() {
        assert!(matches!(
            ingest_str("0 1\n", ExternalFormat::DumpiText, meta()),
            Err(IngestError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            ingest_str("zero 1 2\n", ExternalFormat::DumpiText, meta()),
            Err(IngestError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            ingest_str("{\"t\":1,\"src\":0}\n", ExternalFormat::Otf2Jsonl, meta()),
            Err(IngestError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            ingest_str("not json", ExternalFormat::Otf2Jsonl, meta()),
            Err(IngestError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            ingest_file(Path::new("/nonexistent/events.log"), meta()),
            Err(IngestError::Io(_))
        ));
    }
}
