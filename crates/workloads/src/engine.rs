//! The scenario emission engine: turns a [`ScenarioSpec`] into a
//! deterministic per-cycle `(src, dst)` stream.
//!
//! One engine serves a whole system. Construction derives everything
//! static — the Zipf CDF, the hotspot popularity permutation, one PCG32
//! stream per node — from `(spec, nodes, rate, seed)`; the only mutable
//! state is the RNG positions, which is exactly what
//! [`InjectionSource::save_state`] serializes. Every cycle-varying
//! decision (storm victim, diurnal phase, collective step, hotspot
//! rotation) is an integer function of the polled cycle, so a resumed
//! engine continues the stream bit-for-bit.

use crate::spec::{ScenarioKind, ScenarioSpec};
use desim::rng::{Pcg32, Zipf};
use desim::snap::{load_vec_exact, save_slice, SnapError, SnapReader, SnapWriter};
use desim::Cycle;
use traffic::generator::PacketRequest;
use traffic::source::InjectionSource;
use traffic::trace::TraceEntry;

/// Salt decorrelating scenario RNG streams from the Bernoulli generators
/// built from the same config seed (which use streams `0..nodes` of the
/// raw seed).
const SCENARIO_SALT: u64 = 0x5EED_5CEB_A210_0A0D;

/// A deterministic scenario packet source (see module docs).
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    nodes: u32,
    base_rate: f64,
    /// Per-node decision streams, consumed in ascending-node order.
    rngs: Vec<Pcg32>,
    /// Hotspot popularity ranking: `rank[0]` is the hottest node
    /// (seed-derived permutation; empty for other kinds).
    rank: Vec<u32>,
    /// Precomputed Zipf sampler (hotspot only).
    zipf: Option<Zipf>,
}

impl ScenarioEngine {
    /// Builds the engine for `nodes` nodes injecting at `base_rate`
    /// packets/node/cycle nominal (the paper's `load × N_c` rate), with
    /// all RNG streams derived from `seed`.
    ///
    /// # Panics
    /// If the spec does not validate against `nodes` (construction-time
    /// contract, same as `SystemConfig::validate`).
    pub fn new(spec: ScenarioSpec, nodes: u32, base_rate: f64, seed: u64) -> Self {
        if let Err(e) = spec.validate(nodes) {
            panic!("{e}");
        }
        let rngs = (0..nodes)
            .map(|n| Pcg32::stream(seed ^ SCENARIO_SALT, n as u64))
            .collect();
        let (rank, zipf) = match spec.kind {
            ScenarioKind::ZipfHotspot { exponent, .. } => {
                // Fisher–Yates on a throwaway stream: the ranking is
                // config-derived, so it is rebuilt (not snapshotted) on
                // restore.
                let mut perm: Vec<u32> = (0..nodes).collect();
                let mut rng = Pcg32::stream(seed ^ SCENARIO_SALT, nodes as u64 + 1);
                for i in (1..perm.len()).rev() {
                    let j = rng.below(i as u32 + 1) as usize;
                    perm.swap(i, j);
                }
                (perm, Some(Zipf::new(nodes as usize, exponent)))
            }
            _ => (Vec::new(), None),
        };
        Self {
            spec,
            nodes,
            base_rate,
            rngs,
            rank,
            zipf,
        }
    }

    /// The spec this engine was built from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Uniform destination excluding `src` (the Bernoulli generators'
    /// convention).
    fn uniform_dest(nodes: u32, src: u32, rng: &mut Pcg32) -> u32 {
        let d = rng.below(nodes - 1);
        if d >= src {
            d + 1
        } else {
            d
        }
    }

    /// The emission probability for one node this cycle, capped at 1.
    fn prob(&self, mult: f64) -> f64 {
        (self.base_rate * self.spec.rate_scale * mult).min(1.0)
    }

    /// Convenience driver: polls the engine over `0..horizon` and returns
    /// the full stream as trace entries — fixture regeneration and
    /// property tests share this exact loop.
    pub fn emit(&mut self, horizon: Cycle) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        for now in 0..horizon {
            due.clear();
            self.poll_into(now, &mut due);
            out.extend(due.iter().map(|r| TraceEntry {
                cycle: now,
                src: r.src,
                dst: r.dst,
            }));
        }
        out
    }
}

impl InjectionSource for ScenarioEngine {
    fn poll_into(&mut self, now: Cycle, out: &mut Vec<PacketRequest>) {
        let n = self.nodes;
        match self.spec.kind {
            ScenarioKind::ZipfHotspot { rotate_every, .. } => {
                let p = self.prob(1.0);
                let rot = now
                    .checked_div(rotate_every)
                    .map_or(0, |r| (r % n as u64) as u32);
                let zipf = self.zipf.as_ref().unwrap_or_else(|| unreachable!());
                for src in 0..n {
                    let rng = &mut self.rngs[src as usize];
                    if !rng.bernoulli(p) {
                        continue;
                    }
                    let idx = zipf.sample(rng) as u32;
                    let mut dst = self.rank[((idx + rot) % n) as usize];
                    if dst == src {
                        // `rank` is a permutation, so the adjacent slot
                        // cannot also map to `src`.
                        dst = self.rank[((idx + rot + 1) % n) as usize];
                    }
                    out.push(PacketRequest { src, dst });
                }
            }
            ScenarioKind::Diurnal { period, trough } => {
                // Piecewise-linear triangle wave in [trough, 1]: rises
                // over the first half-period, falls over the second.
                let pos = now % period;
                let half = period / 2;
                let tri = if pos < half {
                    pos as f64 / half as f64
                } else {
                    (period - pos) as f64 / (period - half) as f64
                };
                let p = self.prob(trough + (1.0 - trough) * tri);
                for src in 0..n {
                    let rng = &mut self.rngs[src as usize];
                    if rng.bernoulli(p) {
                        let dst = Self::uniform_dest(n, src, rng);
                        out.push(PacketRequest { src, dst });
                    }
                }
            }
            ScenarioKind::IncastStorm {
                period,
                burst,
                intensity,
                background,
                outcast,
            } => {
                let victim = ((now / period) % n as u64) as u32;
                let in_storm = (now % period) < burst;
                let p_storm = self.prob(intensity);
                let p_bg = self.prob(background);
                for src in 0..n {
                    let rng = &mut self.rngs[src as usize];
                    if in_storm {
                        if src == victim {
                            if outcast && rng.bernoulli(p_storm) {
                                let dst = Self::uniform_dest(n, src, rng);
                                out.push(PacketRequest { src, dst });
                            }
                        } else if rng.bernoulli(p_storm) {
                            out.push(PacketRequest { src, dst: victim });
                        }
                    } else if rng.bernoulli(p_bg) {
                        let dst = Self::uniform_dest(n, src, rng);
                        out.push(PacketRequest { src, dst });
                    }
                }
            }
            ScenarioKind::Collective {
                comm,
                compute,
                intensity,
            } => {
                let pos = now % (comm + compute);
                if pos >= comm {
                    return; // compute phase: silence
                }
                // The ring offset sweeps 1 ‥ n-1 across the exchange, so
                // every instant's demand is a permutation.
                let step = 1 + ((pos * (n as u64 - 1)) / comm) as u32;
                let p = self.prob(intensity);
                for src in 0..n {
                    let rng = &mut self.rngs[src as usize];
                    if rng.bernoulli(p) {
                        out.push(PacketRequest {
                            src,
                            dst: (src + step) % n,
                        });
                    }
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.tag(b"SCEN");
        w.u8(self.spec.kind_tag());
        save_slice(w, &self.rngs);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(b"SCEN")?;
        let tag = r.u8()?;
        if tag != self.spec.kind_tag() {
            return Err(SnapError::Mismatch(format!(
                "snapshot scenario kind tag {tag} != this engine's {}",
                self.spec.kind_tag()
            )));
        }
        self.rngs = load_vec_exact(r, self.nodes as usize, "scenario rng streams")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: u32 = 16;
    const RATE: f64 = 0.02;

    fn stream(spec: ScenarioSpec, seed: u64, horizon: Cycle) -> Vec<TraceEntry> {
        ScenarioEngine::new(spec, NODES, RATE, seed).emit(horizon)
    }

    #[test]
    fn all_kinds_emit_valid_streams() {
        for spec in ScenarioSpec::paper_suite() {
            let entries = stream(spec.clone(), 7, 20_000);
            assert!(!entries.is_empty(), "{} emitted nothing", spec.name());
            for pair in entries.windows(2) {
                assert!(
                    pair[0].cycle <= pair[1].cycle,
                    "{} non-monotone",
                    spec.name()
                );
            }
            for e in &entries {
                assert!(
                    e.src < NODES && e.dst < NODES,
                    "{} out of range",
                    spec.name()
                );
                assert_ne!(e.src, e.dst, "{} self-send", spec.name());
            }
        }
    }

    #[test]
    fn streams_are_seed_reproducible_and_seed_sensitive() {
        for spec in ScenarioSpec::paper_suite() {
            let a = stream(spec.clone(), 11, 10_000);
            let b = stream(spec.clone(), 11, 10_000);
            assert_eq!(a, b, "{} not reproducible", spec.name());
            let c = stream(spec.clone(), 12, 10_000);
            assert_ne!(a, c, "{} ignores its seed", spec.name());
        }
    }

    #[test]
    fn incast_storm_concentrates_on_the_victim() {
        let entries = stream(ScenarioSpec::incast(), 3, 6_000);
        // During the first storm (cycles 0..1200) the victim is node 0.
        let storm: Vec<_> = entries.iter().filter(|e| e.cycle < 1_200).collect();
        assert!(!storm.is_empty());
        let to_victim = storm.iter().filter(|e| e.dst == 0).count();
        assert!(
            to_victim * 10 >= storm.len() * 8,
            "storm should aim ≥80% at the victim: {to_victim}/{}",
            storm.len()
        );
    }

    #[test]
    fn collective_is_silent_in_compute_phases() {
        let entries = stream(ScenarioSpec::collective(), 3, 12_000);
        // Default: comm 1500, compute 2500 → cycles 1500..4000 silent.
        assert!(
            entries.iter().all(|e| { e.cycle % 4_000 < 1_500 }),
            "traffic during a compute phase"
        );
        // Each instant of an exchange is a permutation: fixed step offset.
        for e in &entries {
            let pos = e.cycle % 4_000;
            let step = 1 + ((pos * (NODES as u64 - 1)) / 1_500) as u32;
            assert_eq!(e.dst, (e.src + step) % NODES);
        }
    }

    #[test]
    fn hotspot_skews_destinations() {
        let entries = stream(ScenarioSpec::hotspot(), 5, 8_000);
        let mut counts = vec![0u32; NODES as usize];
        for e in &entries {
            counts[e.dst as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = entries.len() as u32 / NODES;
        assert!(
            max > mean * 2,
            "hottest destination should dominate: max {max}, mean {mean}"
        );
    }

    #[test]
    fn diurnal_rate_follows_the_wave() {
        let spec = ScenarioSpec::diurnal(); // period 16k, trough 0.2
        let entries = stream(spec, 9, 16_000);
        let trough_traffic = entries.iter().filter(|e| e.cycle < 2_000).count();
        let peak_traffic = entries
            .iter()
            .filter(|e| (7_000..9_000).contains(&e.cycle))
            .count();
        assert!(
            peak_traffic > trough_traffic * 2,
            "peak {peak_traffic} vs trough {trough_traffic}"
        );
    }

    #[test]
    fn snapshot_resumes_the_stream_exactly() {
        for spec in ScenarioSpec::paper_suite() {
            let full = stream(spec.clone(), 21, 8_000);
            let mut first = ScenarioEngine::new(spec.clone(), NODES, RATE, 21);
            let head = first.emit(4_000);
            let mut w = SnapWriter::new();
            first.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut resumed = ScenarioEngine::new(spec.clone(), NODES, RATE, 21);
            resumed.load_state(&mut SnapReader::new(&bytes)).unwrap();
            let mut tail = Vec::new();
            let mut due = Vec::new();
            for now in 4_000..8_000 {
                due.clear();
                resumed.poll_into(now, &mut due);
                tail.extend(due.iter().map(|r| TraceEntry {
                    cycle: now,
                    src: r.src,
                    dst: r.dst,
                }));
            }
            let mut joined = head;
            joined.extend(tail);
            assert_eq!(joined, full, "{} diverged across snapshot", spec.name());
        }
    }

    #[test]
    fn snapshot_kind_mismatch_is_typed() {
        let a = ScenarioEngine::new(ScenarioSpec::hotspot(), NODES, RATE, 1);
        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = ScenarioEngine::new(ScenarioSpec::incast(), NODES, RATE, 1);
        assert!(matches!(
            b.load_state(&mut SnapReader::new(&bytes)),
            Err(SnapError::Mismatch(_))
        ));
    }
}
