//! # erapid-workloads — production-shaped workloads for E-RAPID
//!
//! The paper evaluates E-RAPID only on synthetic uniform / permutation
//! traffic. This crate supplies the workload shapes a production
//! deployment would actually face, as deterministic, seed-reproducible
//! scenario generators, plus an ingestion layer that converts external
//! dumpi/OTF2-style event logs into the repo's validated `.ertr` trace
//! format (DESIGN.md §14).
//!
//! * [`spec`] — [`spec::ScenarioSpec`]: the four scenario shapes (Zipf
//!   hotspot, diurnal load curve, incast/outcast storm, phased all-to-all
//!   collective) and their parameters, carried in
//!   `erapid_core::config::SystemConfig`,
//! * [`engine`] — [`engine::ScenarioEngine`]: the per-cycle emission
//!   engine implementing `traffic::source::InjectionSource`, with
//!   checkpointable RNG state,
//! * [`ingest`] — external event-log → `.ertr` conversion with typed
//!   per-line errors (non-monotone timestamps, out-of-range nodes).
//!
//! ## Determinism contract
//!
//! A scenario stream is a pure function of `(spec, nodes, rate, seed)`:
//! per-node PCG32 streams (the [`desim::rng::Pcg32::stream`] splitter the
//! Bernoulli generators already use) are consumed in ascending-node order
//! once per cycle, and every cycle-varying decision (hotspot rotation,
//! diurnal phase, storm victim, collective step) is an integer function of
//! the current cycle — never of global mutable state. Emission order is
//! therefore monotone in cycle and ascending in source within a cycle,
//! exactly the `.ertr` recorder's ordering contract, and identical under
//! the sequential, parallel-across-points and board-sharded engines
//! (injection is a sequential phase in all three).

pub mod engine;
pub mod ingest;
pub mod spec;

pub use engine::ScenarioEngine;
pub use ingest::{ExternalFormat, IngestError};
pub use spec::{ScenarioKind, ScenarioSpec};
