//! Per-node traffic generators.
//!
//! A [`NodeGenerator`] owns a node's Bernoulli source and pattern and emits
//! `(src, dst)` packet requests each cycle. Labelling (measurement phase)
//! is decided by the caller from the [`desim::phase::PhasePlan`].

use crate::bernoulli::BernoulliInjector;
use crate::burst::OnOffSource;
use crate::pattern::TrafficPattern;
use desim::rng::Pcg32;
use desim::Cycle;

/// A packet request produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRequest {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
}

/// The injection process behind a generator.
#[derive(Debug, Clone)]
enum Source {
    /// Memoryless per-cycle coin (the paper's model).
    Bernoulli(BernoulliInjector),
    /// Two-state bursty source (extension workload).
    OnOff(OnOffSource),
}

impl Source {
    fn fires(&mut self, now: Cycle) -> bool {
        match self {
            Source::Bernoulli(b) => b.fires(now),
            Source::OnOff(o) => o.fires(now),
        }
    }

    fn rng_mut(&mut self) -> &mut Pcg32 {
        match self {
            Source::Bernoulli(b) => b.rng_mut(),
            Source::OnOff(o) => o.rng_mut(),
        }
    }

    fn generated(&self) -> u64 {
        match self {
            Source::Bernoulli(b) => b.generated(),
            Source::OnOff(o) => o.generated(),
        }
    }
}

/// One node's traffic source.
#[derive(Debug, Clone)]
pub struct NodeGenerator {
    node: u32,
    nodes: u32,
    pattern: TrafficPattern,
    source: Source,
}

impl NodeGenerator {
    /// Creates the generator for `node` of `nodes`, injecting at `rate`
    /// packets/cycle. RNG streams are derived from `seed` per node so
    /// configurations do not perturb each other.
    pub fn new(node: u32, nodes: u32, pattern: TrafficPattern, rate: f64, seed: u64) -> Self {
        assert!(node < nodes);
        Self {
            node,
            nodes,
            pattern,
            source: Source::Bernoulli(BernoulliInjector::new(
                rate,
                Pcg32::stream(seed, node as u64),
            )),
        }
    }

    /// Creates a bursty generator: same long-run `rate`, but delivered in
    /// on/off bursts of `burstiness × rate` with mean dwell `dwell` cycles.
    pub fn bursty(
        node: u32,
        nodes: u32,
        pattern: TrafficPattern,
        rate: f64,
        burstiness: f64,
        dwell: f64,
        seed: u64,
    ) -> Self {
        assert!(node < nodes);
        let source = if rate > 0.0 {
            Source::OnOff(OnOffSource::bursty(
                rate,
                burstiness,
                dwell,
                Pcg32::stream(seed, node as u64),
            ))
        } else {
            Source::Bernoulli(BernoulliInjector::new(
                0.0,
                Pcg32::stream(seed, node as u64),
            ))
        };
        Self {
            node,
            nodes,
            pattern,
            source,
        }
    }

    /// The node this generator feeds.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.source.generated()
    }

    /// The pattern in use.
    pub fn pattern(&self) -> &TrafficPattern {
        &self.pattern
    }

    /// Advances one cycle; returns a request if the source fires.
    pub fn poll(&mut self, now: Cycle) -> Option<PacketRequest> {
        if !self.source.fires(now) {
            return None;
        }
        let dst = self
            .pattern
            .dest(self.node, self.nodes, self.source.rng_mut());
        Some(PacketRequest {
            src: self.node,
            dst,
        })
    }

    /// Serializes the mutable source state (RNG position, burst phase,
    /// counters). Identity, pattern and rates are config-derived.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        match &self.source {
            Source::Bernoulli(b) => {
                w.u8(0);
                b.save_state(w);
            }
            Source::OnOff(o) => {
                w.u8(1);
                o.save_state(w);
            }
        }
    }

    /// Overlays checkpointed source state; the stored source kind must
    /// match the one this generator was configured with.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        let tag = r.u8()?;
        match (&mut self.source, tag) {
            (Source::Bernoulli(b), 0) => b.load_state(r),
            (Source::OnOff(o), 1) => o.load_state(r),
            (_, 0 | 1) => Err(desim::snap::SnapError::Mismatch(
                "generator source kind differs from snapshot".to_string(),
            )),
            (_, b) => Err(desim::snap::SnapError::Format(format!(
                "bad source tag {b:#x}"
            ))),
        }
    }
}

/// Builds one generator per node with de-correlated streams.
pub fn build_generators(
    nodes: u32,
    pattern: &TrafficPattern,
    rate: f64,
    seed: u64,
) -> Vec<NodeGenerator> {
    (0..nodes)
        .map(|n| NodeGenerator::new(n, nodes, pattern.clone(), rate, seed))
        .collect()
}

/// Builds one bursty generator per node with de-correlated streams.
pub fn build_bursty_generators(
    nodes: u32,
    pattern: &TrafficPattern,
    rate: f64,
    burstiness: f64,
    dwell: f64,
    seed: u64,
) -> Vec<NodeGenerator> {
    (0..nodes)
        .map(|n| NodeGenerator::bursty(n, nodes, pattern.clone(), rate, burstiness, dwell, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_generator_hits_long_run_rate() {
        let mut g = NodeGenerator::bursty(0, 64, TrafficPattern::Uniform, 0.02, 4.0, 500.0, 3);
        let hits = (0..400_000).filter(|&t| g.poll(t).is_some()).count();
        let rate = hits as f64 / 400_000.0;
        assert!((rate - 0.02).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn bursty_zero_rate_is_silent() {
        let mut g = NodeGenerator::bursty(0, 8, TrafficPattern::Uniform, 0.0, 4.0, 100.0, 3);
        assert!((0..1000).all(|t| g.poll(t).is_none()));
    }

    #[test]
    fn bursty_fleet_builder() {
        let gens = build_bursty_generators(8, &TrafficPattern::Uniform, 0.1, 2.0, 100.0, 1);
        assert_eq!(gens.len(), 8);
    }

    #[test]
    fn generator_respects_pattern() {
        let mut g = NodeGenerator::new(3, 64, TrafficPattern::Complement, 1.0, 42);
        let req = g.poll(0).expect("rate 1.0 always fires");
        assert_eq!(req.src, 3);
        assert_eq!(req.dst, 60);
        assert_eq!(g.node(), 3);
        assert_eq!(g.generated(), 1);
        assert_eq!(g.pattern().name(), "complement");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut g = NodeGenerator::new(0, 64, TrafficPattern::Uniform, 0.0, 42);
        assert!((0..100).all(|t| g.poll(t).is_none()));
    }

    #[test]
    fn rate_close_to_nominal() {
        let mut g = NodeGenerator::new(0, 64, TrafficPattern::Uniform, 0.02, 42);
        let hits = (0..100_000).filter(|&t| g.poll(t).is_some()).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.02).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn fleet_is_per_node_deterministic() {
        let a = {
            let mut gens = build_generators(8, &TrafficPattern::Uniform, 0.5, 7);
            let mut log = Vec::new();
            for t in 0..50 {
                for g in &mut gens {
                    if let Some(r) = g.poll(t) {
                        log.push((t, r.src, r.dst));
                    }
                }
            }
            log
        };
        let b = {
            let mut gens = build_generators(8, &TrafficPattern::Uniform, 0.5, 7);
            let mut log = Vec::new();
            for t in 0..50 {
                for g in &mut gens {
                    if let Some(r) = g.poll(t) {
                        log.push((t, r.src, r.dst));
                    }
                }
            }
            log
        };
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn uniform_destinations_exclude_self() {
        let mut g = NodeGenerator::new(5, 16, TrafficPattern::Uniform, 1.0, 1);
        for t in 0..500 {
            let r = g.poll(t).unwrap();
            assert_ne!(r.dst, 5);
            assert!(r.dst < 16);
        }
    }
}
