//! Destination patterns.
//!
//! Following the paper's notation (§4.1) with n-bit node addresses
//! `a_{n-1} a_{n-2} ... a_1 a_0`:
//!
//! * **uniform** — destination uniformly random among the other nodes,
//! * **butterfly** — swap the most- and least-significant bits:
//!   `a_0, a_{n-2}, ..., a_1, a_{n-1}`,
//! * **complement** — complement every bit:
//!   `ā_{n-1}, ā_{n-2}, ..., ā_1, ā_0`,
//! * **perfect shuffle** — rotate left one bit:
//!   `a_{n-2}, a_{n-3}, ..., a_0, a_{n-1}`,
//!
//! plus classics used by the extension benches: transpose, bit reversal,
//! tornado, neighbour, and a Zipf hotspot mix.

use desim::rng::{Pcg32, Zipf};

/// A traffic pattern over `n` nodes (n a power of two for the bit
/// permutations).
#[derive(Debug, Clone)]
pub enum TrafficPattern {
    /// Uniformly random destination among the other nodes.
    Uniform,
    /// MSB↔LSB swap.
    Butterfly,
    /// Bitwise complement.
    Complement,
    /// Left-rotate by one bit.
    PerfectShuffle,
    /// Swap address halves (matrix transpose).
    Transpose,
    /// Reverse the bit string.
    BitReversal,
    /// `dst = (src + ⌈N/2⌉ - 1) mod N`.
    Tornado,
    /// `dst = (src + 1) mod N`.
    Neighbour,
    /// With probability `fraction`, send to a Zipf-weighted hot node;
    /// otherwise uniform.
    Hotspot {
        /// Probability of choosing a hot destination.
        fraction: f64,
        /// Zipf exponent over node ranks.
        exponent: f64,
    },
}

impl TrafficPattern {
    /// The paper's four evaluation patterns, in figure order.
    pub fn paper_suite() -> Vec<(&'static str, TrafficPattern)> {
        vec![
            ("uniform", TrafficPattern::Uniform),
            ("complement", TrafficPattern::Complement),
            ("butterfly", TrafficPattern::Butterfly),
            ("perfect_shuffle", TrafficPattern::PerfectShuffle),
        ]
    }

    /// True when the pattern is a fixed permutation (destination depends
    /// only on the source).
    pub fn is_permutation(&self) -> bool {
        !matches!(
            self,
            TrafficPattern::Uniform | TrafficPattern::Hotspot { .. }
        )
    }

    /// Short machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Butterfly => "butterfly",
            TrafficPattern::Complement => "complement",
            TrafficPattern::PerfectShuffle => "perfect_shuffle",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitReversal => "bit_reversal",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Neighbour => "neighbour",
            TrafficPattern::Hotspot { .. } => "hotspot",
        }
    }

    /// Picks the destination for a packet from `src` in an `n`-node system.
    ///
    /// # Panics
    /// If `n < 2`, `src >= n`, or a bit-permutation pattern is used with a
    /// non-power-of-two `n`.
    pub fn dest(&self, src: u32, n: u32, rng: &mut Pcg32) -> u32 {
        assert!(n >= 2 && src < n);
        let bits = n.trailing_zeros();
        let need_pow2 = matches!(
            self,
            TrafficPattern::Butterfly
                | TrafficPattern::Complement
                | TrafficPattern::PerfectShuffle
                | TrafficPattern::Transpose
                | TrafficPattern::BitReversal
        );
        if need_pow2 {
            assert!(n.is_power_of_two(), "bit permutations need 2^k nodes");
        }
        let dst = match self {
            TrafficPattern::Uniform => {
                // Uniform over the other n-1 nodes.
                let r = rng.below(n - 1);
                if r >= src {
                    r + 1
                } else {
                    r
                }
            }
            TrafficPattern::Complement => !src & (n - 1),
            TrafficPattern::Butterfly => {
                if bits < 2 {
                    src
                } else {
                    let msb = (src >> (bits - 1)) & 1;
                    let lsb = src & 1;
                    let mid = src & !(1 | (1 << (bits - 1)));
                    mid | (lsb << (bits - 1)) | msb
                }
            }
            TrafficPattern::PerfectShuffle => {
                let msb = (src >> (bits - 1)) & 1;
                ((src << 1) & (n - 1)) | msb
            }
            TrafficPattern::Transpose => {
                assert!(bits.is_multiple_of(2), "transpose needs an even bit count");
                let half = bits / 2;
                let lo = src & ((1 << half) - 1);
                let hi = src >> half;
                (lo << half) | hi
            }
            TrafficPattern::BitReversal => {
                let mut v = 0;
                for b in 0..bits {
                    if src & (1 << b) != 0 {
                        v |= 1 << (bits - 1 - b);
                    }
                }
                v
            }
            TrafficPattern::Tornado => (src + n.div_ceil(2) - 1) % n,
            TrafficPattern::Neighbour => (src + 1) % n,
            TrafficPattern::Hotspot { fraction, exponent } => {
                if rng.bernoulli(*fraction) {
                    let z = Zipf::new(n as usize, *exponent);
                    z.sample(rng) as u32
                } else {
                    let r = rng.below(n - 1);
                    if r >= src {
                        r + 1
                    } else {
                        r
                    }
                }
            }
        };
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Pcg32 {
        Pcg32::stream(99, 0)
    }

    #[test]
    fn complement_on_64_nodes_matches_paper() {
        // §4.2: "nodes 0, 1, 2 ... 7 on board 0 communicates with node
        // 63, 62, 61, ... 56 on board 7."
        let mut r = rng();
        let p = TrafficPattern::Complement;
        for (src, want) in [(0u32, 63u32), (1, 62), (7, 56), (63, 0)] {
            assert_eq!(p.dest(src, 64, &mut r), want);
        }
    }

    #[test]
    fn butterfly_swaps_msb_lsb() {
        let mut r = rng();
        let p = TrafficPattern::Butterfly;
        // 6-bit: a5..a0 -> a0 a4 a3 a2 a1 a5.
        // src=0b000001 -> 0b100000.
        assert_eq!(p.dest(1, 64, &mut r), 32);
        assert_eq!(p.dest(32, 64, &mut r), 1);
        // Palindromic-ends addresses are fixed points.
        assert_eq!(p.dest(33, 64, &mut r), 33);
        assert_eq!(p.dest(0, 64, &mut r), 0);
        // Middle bits untouched: 0b011110 -> 0b011110 swaps 0 and 0.
        assert_eq!(p.dest(0b011110, 64, &mut r), 0b011110);
    }

    #[test]
    fn perfect_shuffle_rotates_left() {
        let mut r = rng();
        let p = TrafficPattern::PerfectShuffle;
        // a5..a0 -> a4..a0 a5: 0b100000 -> 0b000001.
        assert_eq!(p.dest(32, 64, &mut r), 1);
        assert_eq!(p.dest(1, 64, &mut r), 2);
        assert_eq!(p.dest(0b101010, 64, &mut r), 0b010101);
    }

    #[test]
    fn transpose_swaps_halves() {
        let mut r = rng();
        let p = TrafficPattern::Transpose;
        // 6 bits: (hi3, lo3) -> (lo3, hi3): 0b001_110 -> 0b110_001.
        assert_eq!(p.dest(0b001_110, 64, &mut r), 0b110_001);
    }

    #[test]
    fn bit_reversal_reverses() {
        let mut r = rng();
        let p = TrafficPattern::BitReversal;
        assert_eq!(p.dest(0b000001, 64, &mut r), 0b100000);
        assert_eq!(p.dest(0b110000, 64, &mut r), 0b000011);
    }

    #[test]
    fn tornado_and_neighbour() {
        let mut r = rng();
        assert_eq!(TrafficPattern::Tornado.dest(0, 64, &mut r), 31);
        assert_eq!(TrafficPattern::Tornado.dest(40, 64, &mut r), 7);
        assert_eq!(TrafficPattern::Neighbour.dest(63, 64, &mut r), 0);
    }

    #[test]
    fn permutations_are_bijections() {
        let mut r = rng();
        for p in [
            TrafficPattern::Complement,
            TrafficPattern::Butterfly,
            TrafficPattern::PerfectShuffle,
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbour,
        ] {
            assert!(p.is_permutation());
            let mut seen = [false; 64];
            for src in 0..64 {
                let d = p.dest(src, 64, &mut r);
                assert!(!seen[d as usize], "{} not a bijection", p.name());
                seen[d as usize] = true;
            }
        }
    }

    #[test]
    fn uniform_never_self_and_covers() {
        let mut r = rng();
        let p = TrafficPattern::Uniform;
        assert!(!p.is_permutation());
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = p.dest(5, 16, &mut r);
            assert_ne!(d, 5);
            seen[d as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 15);
    }

    #[test]
    fn hotspot_concentrates() {
        let mut r = rng();
        let p = TrafficPattern::Hotspot {
            fraction: 0.8,
            exponent: 1.5,
        };
        let mut counts = vec![0u32; 16];
        for _ in 0..4000 {
            counts[p.dest(5, 16, &mut r) as usize] += 1;
        }
        // Node 0 (hottest Zipf rank) receives far more than average.
        assert!(counts[0] > 4000 / 16 * 4, "{counts:?}");
    }

    #[test]
    fn paper_suite_has_four_patterns() {
        let suite = TrafficPattern::paper_suite();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].0, "uniform");
        assert_eq!(suite[1].0, "complement");
    }

    #[test]
    #[should_panic(expected = "2^k nodes")]
    fn bit_pattern_rejects_non_power_of_two() {
        let mut r = rng();
        TrafficPattern::Complement.dest(0, 48, &mut r);
    }
}
