//! Bursty (two-state MMPP / on-off) traffic — an extension workload.
//!
//! Real HPC communication shows temporal locality (§1: "spatial and
//! temporal locality exists due to inter-process communication patterns");
//! the on-off source alternates between a hot state injecting at
//! `on_rate` and a cold state injecting at `off_rate`, with geometrically
//! distributed dwell times. Used by the sensitivity benches to stress the
//! reconfiguration window `R_w`.

use desim::rng::Pcg32;
use desim::Cycle;

/// Two-state Markov-modulated Bernoulli source.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    on_rate: f64,
    off_rate: f64,
    /// Per-cycle probability of leaving the ON state.
    p_exit_on: f64,
    /// Per-cycle probability of leaving the OFF state.
    p_exit_off: f64,
    is_on: bool,
    rng: Pcg32,
    generated: u64,
}

impl OnOffSource {
    /// Creates a source. Mean dwell times are `1/p_exit_*` cycles.
    pub fn new(
        on_rate: f64,
        off_rate: f64,
        mean_on_cycles: f64,
        mean_off_cycles: f64,
        rng: Pcg32,
    ) -> Self {
        assert!(on_rate >= 0.0 && off_rate >= 0.0);
        assert!(mean_on_cycles >= 1.0 && mean_off_cycles >= 1.0);
        Self {
            on_rate: on_rate.min(1.0),
            off_rate: off_rate.min(1.0),
            p_exit_on: 1.0 / mean_on_cycles,
            p_exit_off: 1.0 / mean_off_cycles,
            is_on: false,
            rng,
            generated: 0,
        }
    }

    /// A bursty source with the given average rate and burstiness factor:
    /// ON injects at `burstiness × avg_rate` (capped at 1), OFF at ~0, with
    /// equal dwell times of `dwell` cycles.
    pub fn bursty(avg_rate: f64, burstiness: f64, dwell: f64, rng: Pcg32) -> Self {
        assert!(burstiness >= 1.0);
        assert!(avg_rate > 0.0 && avg_rate <= 1.0);
        let on = (avg_rate * burstiness).min(1.0);
        // Keep the long-run average at avg_rate. With equal dwell the
        // average is (on + off)/2; when that would need a negative off
        // rate, set off = 0 and skew the dwell times instead so the
        // stationary ON fraction f = avg/on.
        let off = 2.0 * avg_rate - on;
        if off >= 0.0 {
            Self::new(on, off, dwell, dwell, rng)
        } else {
            let f = avg_rate / on;
            let mean_off = dwell * (1.0 - f) / f;
            Self::new(on, 0.0, dwell, mean_off.max(1.0), rng)
        }
    }

    /// Whether the source is currently in the ON state.
    pub fn is_on(&self) -> bool {
        self.is_on
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Borrows the RNG (for destination draws correlated with this source).
    pub fn rng_mut(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }

    /// Advances one cycle; true means "inject a packet".
    pub fn fires(&mut self, _now: Cycle) -> bool {
        // State transition first, then the injection coin.
        let exit_p = if self.is_on {
            self.p_exit_on
        } else {
            self.p_exit_off
        };
        if self.rng.bernoulli(exit_p) {
            self.is_on = !self.is_on;
        }
        let rate = if self.is_on {
            self.on_rate
        } else {
            self.off_rate
        };
        if self.rng.bernoulli(rate) {
            self.generated += 1;
            true
        } else {
            false
        }
    }

    /// Serializes the Markov state, RNG position and counter (rates and
    /// dwell probabilities are config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        w.bool(self.is_on);
        self.rng.save(w);
        w.u64(self.generated);
    }

    /// Overlays checkpointed Markov state, RNG position and counter.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        self.is_on = r.bool()?;
        self.rng = Pcg32::load(r)?;
        self.generated = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_average_rate_holds() {
        let mut s = OnOffSource::bursty(0.05, 4.0, 500.0, Pcg32::stream(3, 1));
        let n = 400_000;
        let fires = (0..n).filter(|&t| s.fires(t)).count();
        let rate = fires as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bursts_concentrate_traffic() {
        let mut s = OnOffSource::new(0.5, 0.0, 1000.0, 1000.0, Pcg32::stream(3, 2));
        // Count fires in windows; the distribution must be bimodal —
        // some windows nearly silent, some hot.
        let mut hot = 0;
        let mut cold = 0;
        for _w in 0..200 {
            let fires = (0..500).filter(|&t| s.fires(t)).count();
            if fires > 150 {
                hot += 1;
            }
            if fires < 50 {
                cold += 1;
            }
        }
        assert!(hot > 10, "hot windows {hot}");
        assert!(cold > 10, "cold windows {cold}");
    }

    #[test]
    fn state_flag_tracks_transitions() {
        let mut s = OnOffSource::new(1.0, 0.0, 2.0, 2.0, Pcg32::stream(3, 3));
        let mut saw_on = false;
        let mut saw_off = false;
        for t in 0..1000 {
            s.fires(t);
            if s.is_on() {
                saw_on = true;
            } else {
                saw_off = true;
            }
        }
        assert!(saw_on && saw_off);
        assert!(s.generated() > 0);
    }

    #[test]
    fn on_rate_caps_at_one() {
        let s = OnOffSource::bursty(0.6, 4.0, 100.0, Pcg32::stream(3, 4));
        assert!(s.on_rate <= 1.0);
    }
}
