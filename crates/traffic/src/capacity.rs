//! Network capacity `N_c` (packets/node/cycle).
//!
//! §4: "The network capacity was determined from the expression N_c
//! (packets/node/cycle), which is defined as the maximum sustainable
//! throughput when a network is loaded with uniform random traffic."
//!
//! For an R(1,B,D) E-RAPID the binding resource under uniform traffic is
//! the optical stage: each board owns `B-1` statically assigned outgoing
//! channels, each serving one packet per `flit_cycles × packet_flits`
//! cycles at the highest bit rate. Under uniform traffic each of a node's
//! packets picks any of the `B·D - 1` other nodes equally, so the load on
//! one specific board-pair channel per unit injection rate is
//! `D² / (B·D - 1)`. Setting channel load = channel service rate gives
//!
//! ```text
//! N_c = μ · (B·D - 1) / D²,      μ = 1 / (flit_cycles · packet_flits)
//! ```
//!
//! The electrical IBI (one flit per cycle per node port) is checked as a
//! secondary bound.

/// Capacity calculator for an R(1,B,D) system.
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Boards per cluster.
    pub boards: u32,
    /// Nodes per board.
    pub nodes_per_board: u32,
    /// Flits per packet.
    pub packet_flits: u32,
    /// Optical serialization cycles per flit at the highest rate.
    pub flit_cycles: u32,
}

impl CapacityModel {
    /// The paper's 64-node configuration: B=8, D=8, 8-flit packets,
    /// 6 cycles/flit at 5 Gbps.
    pub fn paper64() -> Self {
        Self {
            boards: 8,
            nodes_per_board: 8,
            packet_flits: 8,
            flit_cycles: 6,
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.boards * self.nodes_per_board
    }

    /// Channel service rate μ in packets/cycle.
    pub fn channel_rate(&self) -> f64 {
        1.0 / (self.flit_cycles as f64 * self.packet_flits as f64)
    }

    /// Optical-stage capacity bound, packets/node/cycle.
    pub fn optical_bound(&self) -> f64 {
        let n = self.nodes() as f64;
        let d = self.nodes_per_board as f64;
        self.channel_rate() * (n - 1.0) / (d * d)
    }

    /// Electrical IBI bound: one flit/cycle per node injection port.
    pub fn electrical_bound(&self) -> f64 {
        1.0 / self.packet_flits as f64
    }

    /// Uniform-traffic network capacity `N_c` (packets/node/cycle): the
    /// binding bound.
    pub fn uniform_capacity(&self) -> f64 {
        self.optical_bound().min(self.electrical_bound())
    }

    /// Injection probability per node per cycle for a normalised `load`
    /// (the paper sweeps 0.1 – 0.9).
    pub fn injection_rate(&self, load: f64) -> f64 {
        assert!(load >= 0.0);
        load * self.uniform_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper64_capacity_value() {
        let c = CapacityModel::paper64();
        assert_eq!(c.nodes(), 64);
        // μ = 1/48; N_c = (63/64) / 48 ≈ 0.02051.
        assert!((c.channel_rate() - 1.0 / 48.0).abs() < 1e-12);
        let nc = c.uniform_capacity();
        assert!((nc - 63.0 / (64.0 * 48.0)).abs() < 1e-12, "nc {nc}");
        assert!(nc < c.electrical_bound(), "optical stage must bind");
    }

    #[test]
    fn injection_rate_scales_linearly() {
        let c = CapacityModel::paper64();
        let r1 = c.injection_rate(0.1);
        let r9 = c.injection_rate(0.9);
        assert!((r9 / r1 - 9.0).abs() < 1e-9);
        assert_eq!(c.injection_rate(0.0), 0.0);
    }

    #[test]
    fn faster_optics_raise_capacity_until_electrical_binds() {
        let mut c = CapacityModel::paper64();
        let base = c.uniform_capacity();
        c.flit_cycles = 3; // hypothetical 2× optics
        assert!(c.uniform_capacity() > base);
        // Many boards with few nodes each: per-board channel count exceeds
        // demand and the electrical injection port becomes the bound.
        let wide = CapacityModel {
            boards: 16,
            nodes_per_board: 2,
            packet_flits: 8,
            flit_cycles: 1,
        };
        assert!(wide.optical_bound() > wide.electrical_bound());
        assert_eq!(wide.uniform_capacity(), wide.electrical_bound());
    }

    #[test]
    fn smaller_boards_scale() {
        let c = CapacityModel {
            boards: 4,
            nodes_per_board: 4,
            packet_flits: 8,
            flit_cycles: 6,
        };
        assert_eq!(c.nodes(), 16);
        let nc = c.uniform_capacity();
        assert!((nc - (15.0 / 16.0) / 48.0).abs() < 1e-12, "nc {nc}");
    }
}
