//! The injection-source seam: anything that can feed a simulated system
//! packets, cycle by cycle.
//!
//! The core engine's three injection branches — recorded-trace replay,
//! per-node Bernoulli/bursty generators, and scenario engines from
//! `erapid-workloads` — all reduce to "emit the `(src, dst)` requests due
//! at cycle `now`". The first two predate this trait and keep their
//! concrete fast paths; scenario engines plug in through it, so the core
//! crate never names a concrete workload type.

use crate::generator::PacketRequest;
use desim::snap::{SnapError, SnapReader, SnapWriter};
use desim::Cycle;

/// A deterministic, checkpointable packet source.
///
/// ## Contract
///
/// * [`InjectionSource::poll_into`] is called exactly once per simulated
///   cycle with strictly increasing `now`, and must append every request
///   due at `now` in a deterministic order (ascending source node, by
///   convention — the order the per-node generator loop produces).
/// * The emission stream must be a pure function of construction inputs:
///   two sources built from the same inputs and polled over the same
///   cycles produce identical streams. This is what makes scenario runs
///   byte-identical across the sequential, parallel-across-points and
///   board-sharded engines, where injection is always a sequential phase.
/// * `save_state`/`load_state` serialize exactly the mutable state (RNG
///   positions, phase counters) so a checkpointed run resumes the stream
///   without divergence; configuration-derived tables are rebuilt by the
///   caller constructing the source before overlay.
pub trait InjectionSource: Send {
    /// Appends every packet request due at `now` to `out`.
    fn poll_into(&mut self, now: Cycle, out: &mut Vec<PacketRequest>);

    /// Serializes the mutable source state.
    fn save_state(&self, w: &mut SnapWriter);

    /// Overlays checkpointed state onto a source constructed from the same
    /// inputs; shape mismatches are typed errors, never panics.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}
