//! Injection-trace record and replay, with a versioned on-disk format.
//!
//! Traces make cross-configuration comparisons exact: record the injections
//! of one run (cycle, src, dst) and replay the identical workload against a
//! different network configuration. A distribution-wise A/B (two Bernoulli
//! runs with the same load) blurs small DPM/DBR effects behind sampling
//! noise; a replayed trace turns the comparison into a deterministic,
//! packet-for-packet diff.
//!
//! Two interchange formats, both self-describing and checksummed:
//!
//! * **compact binary** (`.ertr`) — magic + version header, the
//!   [`TraceMeta`] provenance block, LEB128 varint entries with
//!   delta-encoded cycles, and a trailing FNV-1a checksum over everything
//!   before it. This is the fixture/committed format.
//! * **JSONL** — one meta header object then one object per entry;
//!   grep/jq-friendly, parsed back by a small strict reader. This is the
//!   interchange format for external tools.
//!
//! Library code never panics on bad input: recording out of order and every
//! decode failure surface as a typed [`TraceError`].

use desim::Cycle;
use std::path::Path;

/// On-disk format version written (and the only one accepted) by this
/// build. Bump on any incompatible layout change.
pub const TRACE_FORMAT_VERSION: u16 = 1;

/// Magic bytes opening a binary trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"ERTR";

/// One recorded injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Injection cycle.
    pub cycle: Cycle,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
}

/// A typed error from trace recording, encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// `record` was called with a cycle before the previous entry's.
    OutOfOrder {
        /// The offending cycle.
        at: Cycle,
        /// The last recorded cycle.
        last: Cycle,
    },
    /// The byte stream is not a valid trace (bad magic, truncation,
    /// malformed varint/JSON, trailing garbage).
    Format(String),
    /// The file declares a format version this build does not read.
    Version(u16),
    /// The stored checksum does not match the decoded content.
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the decoded bytes.
        computed: u64,
    },
    /// Filesystem I/O failed (message of the underlying error).
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::OutOfOrder { at, last } => {
                write!(f, "trace must be time-ordered: cycle {at} after {last}")
            }
            TraceError::Format(msg) => write!(f, "malformed trace: {msg}"),
            TraceError::Version(v) => write!(
                f,
                "unsupported trace format version {v} (this build reads {TRACE_FORMAT_VERSION})"
            ),
            TraceError::Checksum { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::Io(msg) => write!(f, "trace I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Provenance header carried by every persisted trace: enough to know what
/// workload the entries are and which build recorded them.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Master RNG seed of the recording run.
    pub seed: u64,
    /// Boards (B) of the recording system.
    pub boards: u16,
    /// Nodes per board (D) of the recording system.
    pub nodes_per_board: u16,
    /// Traffic pattern name (see `TrafficPattern::name`).
    pub pattern: String,
    /// Normalised offered load of the recording run.
    pub load: f64,
    /// Short commit hash of the recording build ("unknown" outside a
    /// checkout).
    pub git_sha: String,
}

impl Default for TraceMeta {
    fn default() -> Self {
        Self {
            seed: 0,
            boards: 0,
            nodes_per_board: 0,
            pattern: String::new(),
            load: 0.0,
            git_sha: "unknown".to_string(),
        }
    }
}

/// An append-only injection trace.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one injection. Cycles must be non-decreasing; recording out
    /// of order is a caller bug reported as [`TraceError::OutOfOrder`]
    /// (the entry is not appended).
    pub fn record(&mut self, cycle: Cycle, src: u32, dst: u32) -> Result<(), TraceError> {
        if let Some(last) = self.entries.last() {
            if cycle < last.cycle {
                return Err(TraceError::OutOfOrder {
                    at: cycle,
                    last: last.cycle,
                });
            }
        }
        self.entries.push(TraceEntry { cycle, src, dst });
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Converts into a replayer.
    pub fn into_replay(self) -> TraceReplayer {
        TraceReplayer {
            entries: self.entries,
            pos: 0,
        }
    }

    /// Attaches provenance, producing a persistable [`InjectionTrace`].
    pub fn into_trace(self, meta: TraceMeta) -> InjectionTrace {
        InjectionTrace {
            meta,
            entries: self.entries,
        }
    }

    /// Serializes the recorded entries for a checkpoint.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.entries.save(w);
    }

    /// Replaces the recorded entries from a checkpoint.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        self.entries = Vec::<TraceEntry>::load(r)?;
        Ok(())
    }
}

impl desim::snap::Snap for TraceEntry {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u64(self.cycle);
        w.u32(self.src);
        w.u32(self.dst);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            cycle: r.u64()?,
            src: r.u32()?,
            dst: r.u32()?,
        })
    }
}

/// Replays a trace in cycle order.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    entries: Vec<TraceEntry>,
    pos: usize,
}

impl TraceReplayer {
    /// Builds a replayer over time-ordered `entries` (validated).
    pub fn from_entries(entries: Vec<TraceEntry>) -> Result<Self, TraceError> {
        for pair in entries.windows(2) {
            if pair[1].cycle < pair[0].cycle {
                return Err(TraceError::OutOfOrder {
                    at: pair[1].cycle,
                    last: pair[0].cycle,
                });
            }
        }
        Ok(Self { entries, pos: 0 })
    }

    /// The next injection due at or before `now`, advancing the cursor —
    /// the allocation-free form the cycle hot path uses.
    #[inline]
    pub fn pop_due(&mut self, now: Cycle) -> Option<TraceEntry> {
        let e = self.entries.get(self.pos)?;
        if e.cycle <= now {
            self.pos += 1;
            Some(*e)
        } else {
            None
        }
    }

    /// All injections due at exactly `now` (advances the cursor).
    pub fn due(&mut self, now: Cycle) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        while let Some(e) = self.pop_due(now) {
            out.push(e);
        }
        out
    }

    /// Entries not yet replayed.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }

    /// True when the trace is exhausted.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Serializes the replay cursor. The entries themselves are *not*
    /// persisted — a restored run re-installs the same trace from its
    /// file, so only the position (plus a length check) is needed.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.usize(self.entries.len());
        w.usize(self.pos);
    }

    /// Overlays a checkpointed replay cursor onto this (identical) trace.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        r.len_eq(self.entries.len(), "replay trace entries")?;
        let pos = r.usize()?;
        if pos > self.entries.len() {
            return Err(desim::snap::SnapError::Format(format!(
                "replay cursor {pos} beyond {} entries",
                self.entries.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

/// A recorded workload with provenance: the unit of persistence and the
/// input to replayed runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InjectionTrace {
    /// Provenance header.
    pub meta: TraceMeta,
    /// Time-ordered injections.
    pub entries: Vec<TraceEntry>,
}

/// FNV-1a 64-bit, the checksum both formats carry.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Sequential byte reader with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TraceError::Format(format!("truncated reading {what}")))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self, what: &str) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1, what)?[0];
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::Format(format!("varint overflow in {what}")))
    }

    fn string(&mut self, what: &str) -> Result<String, TraceError> {
        let len = self.varint(what)? as usize;
        if len > 4096 {
            return Err(TraceError::Format(format!(
                "{what} string too long ({len})"
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TraceError::Format(format!("{what} is not UTF-8")))
    }
}

impl InjectionTrace {
    /// Checksum over the canonical binary payload (header + entries) —
    /// the value [`Self::to_binary`] appends and both loaders verify.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.payload_bytes())
    }

    /// A replayer over a copy of the entries (the trace is typically shared
    /// read-only across the replay points of one comparison).
    pub fn replayer(&self) -> TraceReplayer {
        TraceReplayer {
            entries: self.entries.clone(),
            pos: 0,
        }
    }

    fn payload_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 4);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        out.extend_from_slice(&self.meta.boards.to_le_bytes());
        out.extend_from_slice(&self.meta.nodes_per_board.to_le_bytes());
        out.extend_from_slice(&self.meta.load.to_bits().to_le_bytes());
        push_str(&mut out, &self.meta.pattern);
        push_str(&mut out, &self.meta.git_sha);
        push_varint(&mut out, self.entries.len() as u64);
        let mut last = 0u64;
        for e in &self.entries {
            // Cycles are non-decreasing, so the delta encoding never
            // underflows for a trace built through the recorder.
            push_varint(&mut out, e.cycle.wrapping_sub(last));
            push_varint(&mut out, e.src as u64);
            push_varint(&mut out, e.dst as u64);
            last = e.cycle;
        }
        out
    }

    /// Serializes to the compact binary format (payload + FNV-1a trailer).
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = self.payload_bytes();
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes the compact binary format, verifying magic, version and
    /// checksum, and that entries are time-ordered.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < TRACE_MAGIC.len() + 2 + 8 {
            return Err(TraceError::Format("file shorter than header".to_string()));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(
            trailer
                .try_into()
                .map_err(|_| TraceError::Format("bad checksum trailer".to_string()))?,
        );
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(TraceError::Checksum { stored, computed });
        }
        let mut r = Reader {
            bytes: payload,
            pos: 0,
        };
        if r.take(4, "magic")? != TRACE_MAGIC {
            return Err(TraceError::Format(
                "bad magic (not an ERTR file)".to_string(),
            ));
        }
        let version = u16::from_le_bytes(
            r.take(2, "version")?
                .try_into()
                .map_err(|_| TraceError::Format("bad version field".to_string()))?,
        );
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceError::Version(version));
        }
        let seed = u64::from_le_bytes(
            r.take(8, "seed")?
                .try_into()
                .map_err(|_| TraceError::Format("bad seed field".to_string()))?,
        );
        let fixed = |b: &[u8], what: &str| -> Result<u16, TraceError> {
            Ok(u16::from_le_bytes(b.try_into().map_err(|_| {
                TraceError::Format(format!("bad {what} field"))
            })?))
        };
        let boards = fixed(r.take(2, "boards")?, "boards")?;
        let nodes_per_board = fixed(r.take(2, "nodes_per_board")?, "nodes_per_board")?;
        let load = f64::from_bits(u64::from_le_bytes(
            r.take(8, "load")?
                .try_into()
                .map_err(|_| TraceError::Format("bad load field".to_string()))?,
        ));
        let pattern = r.string("pattern")?;
        let git_sha = r.string("git_sha")?;
        let count = r.varint("entry count")? as usize;
        if count > 1 << 28 {
            return Err(TraceError::Format(format!(
                "implausible entry count {count}"
            )));
        }
        let mut rec = TraceRecorder::new();
        let mut last = 0u64;
        for i in 0..count {
            let cycle = last.wrapping_add(r.varint("cycle delta")?);
            let src = r.varint("src")?;
            let dst = r.varint("dst")?;
            if src > u32::MAX as u64 || dst > u32::MAX as u64 {
                return Err(TraceError::Format(format!("entry {i}: node id overflow")));
            }
            rec.record(cycle, src as u32, dst as u32)?;
            last = cycle;
        }
        if r.pos != payload.len() {
            return Err(TraceError::Format(format!(
                "{} trailing bytes after entries",
                payload.len() - r.pos
            )));
        }
        Ok(Self {
            meta: TraceMeta {
                seed,
                boards,
                nodes_per_board,
                pattern,
                load,
                git_sha,
            },
            entries: rec.entries,
        })
    }

    /// Serializes to JSONL interchange: a meta header line, then one object
    /// per entry. Deterministic (Rust's shortest-round-trip floats).
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.entries.len() * 32);
        let _ = writeln!(
            out,
            "{{\"erapid_trace\":{},\"seed\":{},\"boards\":{},\"nodes_per_board\":{},\"load\":{},\"pattern\":\"{}\",\"git_sha\":\"{}\",\"entries\":{},\"checksum\":\"{:016x}\"}}",
            TRACE_FORMAT_VERSION,
            self.meta.seed,
            self.meta.boards,
            self.meta.nodes_per_board,
            self.meta.load,
            json_escape(&self.meta.pattern),
            json_escape(&self.meta.git_sha),
            self.entries.len(),
            self.checksum(),
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{{\"cycle\":{},\"src\":{},\"dst\":{}}}",
                e.cycle, e.src, e.dst
            );
        }
        out
    }

    /// Parses the JSONL interchange form. Strict about our own fields,
    /// tolerant of key order; verifies the header checksum when present.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| TraceError::Format("empty JSONL document".to_string()))?;
        let version = json_u64(header, "erapid_trace")?;
        if version != TRACE_FORMAT_VERSION as u64 {
            return Err(TraceError::Version(version as u16));
        }
        let meta = TraceMeta {
            seed: json_u64(header, "seed")?,
            boards: json_u64(header, "boards")? as u16,
            nodes_per_board: json_u64(header, "nodes_per_board")? as u16,
            load: json_f64(header, "load")?,
            pattern: json_str(header, "pattern")?,
            git_sha: json_str(header, "git_sha")?,
        };
        let declared = json_u64(header, "entries")? as usize;
        let stored = u64::from_str_radix(&json_str(header, "checksum")?, 16)
            .map_err(|_| TraceError::Format("checksum is not hex".to_string()))?;
        let mut rec = TraceRecorder::new();
        for line in lines {
            rec.record(
                json_u64(line, "cycle")?,
                json_u64(line, "src")? as u32,
                json_u64(line, "dst")? as u32,
            )?;
        }
        if rec.len() != declared {
            return Err(TraceError::Format(format!(
                "header declares {declared} entries, found {}",
                rec.len()
            )));
        }
        let trace = Self {
            meta,
            entries: rec.entries,
        };
        let computed = trace.checksum();
        if stored != computed {
            return Err(TraceError::Checksum { stored, computed });
        }
        Ok(trace)
    }

    /// Writes the compact binary form to `path`.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_binary()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Loads the compact binary form from `path`.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::from_binary(&bytes)
    }

    /// Writes the JSONL interchange form to `path`.
    pub fn save_jsonl(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_jsonl()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Loads the JSONL interchange form from `path`.
    pub fn load_jsonl(path: &Path) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::from_jsonl(&text)
    }
}

/// Extracts the raw token after `"key":` in a single-line JSON object.
fn json_raw<'a>(line: &'a str, key: &str) -> Result<&'a str, TraceError> {
    let needle = format!("\"{key}\":");
    let start = line
        .find(&needle)
        .ok_or_else(|| TraceError::Format(format!("missing key {key}")))?
        + needle.len();
    let rest = &line[start..];
    let end = if rest.starts_with('"') {
        // String value: scan to the closing quote, honouring escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => {
                    return Err(TraceError::Format(format!("unterminated string for {key}")));
                }
                Some(b'\\') => i += 2,
                Some(b'"') => break i + 1,
                Some(_) => i += 1,
            }
        }
    } else {
        rest.find([',', '}'])
            .ok_or_else(|| TraceError::Format(format!("unterminated value for {key}")))?
    };
    Ok(&rest[..end])
}

fn json_u64(line: &str, key: &str) -> Result<u64, TraceError> {
    json_raw(line, key)?
        .parse()
        .map_err(|_| TraceError::Format(format!("{key} is not an integer")))
}

fn json_f64(line: &str, key: &str) -> Result<f64, TraceError> {
    json_raw(line, key)?
        .parse()
        .map_err(|_| TraceError::Format(format!("{key} is not a number")))
}

fn json_str(line: &str, key: &str) -> Result<String, TraceError> {
    let raw = json_raw(line, key)?;
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| TraceError::Format(format!("{key} is not a string")))?;
    json_unescape(inner)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`json_escape`] (plus the standard JSON escapes).
fn json_unescape(s: &str) -> Result<String, TraceError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| TraceError::Format(format!("bad \\u escape \\u{hex}")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| TraceError::Format(format!("bad code point {code:#x}")))?,
                );
            }
            other => {
                return Err(TraceError::Format(format!("bad escape \\{other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InjectionTrace {
        let mut rec = TraceRecorder::new();
        rec.record(0, 1, 2).unwrap();
        rec.record(0, 3, 4).unwrap();
        rec.record(5, 1, 6).unwrap();
        rec.record(1000, 15, 0).unwrap();
        rec.into_trace(TraceMeta {
            seed: 0xE4A9_1D07,
            boards: 4,
            nodes_per_board: 4,
            pattern: "uniform".to_string(),
            load: 0.3,
            git_sha: "deadbeef".to_string(),
        })
    }

    #[test]
    fn record_and_replay_round_trip() {
        let mut rec = TraceRecorder::new();
        rec.record(0, 1, 2).unwrap();
        rec.record(0, 3, 4).unwrap();
        rec.record(5, 1, 6).unwrap();
        assert_eq!(rec.len(), 3);
        assert!(!rec.is_empty());
        let mut rep = rec.into_replay();
        let at0 = rep.due(0);
        assert_eq!(at0.len(), 2);
        assert_eq!(at0[0].src, 1);
        assert_eq!(rep.remaining(), 1);
        assert!(rep.due(4).is_empty());
        let at5 = rep.due(5);
        assert_eq!(at5.len(), 1);
        assert_eq!(at5[0].dst, 6);
        assert!(rep.is_done());
    }

    #[test]
    fn due_skips_ahead_over_gaps() {
        let mut rec = TraceRecorder::new();
        rec.record(2, 0, 1).unwrap();
        rec.record(7, 0, 2).unwrap();
        let mut rep = rec.into_replay();
        // Jumping straight to cycle 10 yields both entries.
        assert_eq!(rep.due(10).len(), 2);
    }

    #[test]
    fn out_of_order_record_is_a_typed_error() {
        let mut rec = TraceRecorder::new();
        rec.record(5, 0, 1).unwrap();
        let err = rec.record(4, 0, 1).unwrap_err();
        assert_eq!(err, TraceError::OutOfOrder { at: 4, last: 5 });
        assert!(err.to_string().contains("time-ordered"));
        // The bad entry was not appended.
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn pop_due_matches_due() {
        let mut a = sample().replayer();
        let mut b = sample().replayer();
        for now in 0..=1000 {
            let batch = a.due(now);
            let mut singles = Vec::new();
            while let Some(e) = b.pop_due(now) {
                singles.push(e);
            }
            assert_eq!(batch, singles, "cycle {now}");
        }
        assert!(a.is_done() && b.is_done());
    }

    #[test]
    fn from_entries_validates_order() {
        let good = vec![
            TraceEntry {
                cycle: 1,
                src: 0,
                dst: 1,
            },
            TraceEntry {
                cycle: 3,
                src: 0,
                dst: 2,
            },
        ];
        assert!(TraceReplayer::from_entries(good.clone()).is_ok());
        let bad = vec![good[1], good[0]];
        assert!(matches!(
            TraceReplayer::from_entries(bad),
            Err(TraceError::OutOfOrder { at: 1, last: 3 })
        ));
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let t = sample();
        let bytes = t.to_binary();
        let back = InjectionTrace::from_binary(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(t.checksum(), back.checksum());
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let t = sample();
        let text = t.to_jsonl();
        assert!(text.lines().count() == t.entries.len() + 1);
        let back = InjectionTrace::from_jsonl(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_escapes_special_characters_in_strings() {
        let mut t = sample();
        t.meta.pattern = "hot\"spot\\λ\n".to_string();
        t.meta.git_sha = "\t\u{1}dirty".to_string();
        let text = t.to_jsonl();
        let back = InjectionTrace::from_jsonl(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn corrupted_binary_is_rejected() {
        let t = sample();
        let mut bytes = t.to_binary();
        // Flip one payload byte: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            InjectionTrace::from_binary(&bytes),
            Err(TraceError::Checksum { .. })
        ));
        // Truncation is a format error (trailer checksum can't match or
        // header is short).
        assert!(InjectionTrace::from_binary(&t.to_binary()[..10]).is_err());
        // Wrong magic.
        let mut bad = t.to_binary();
        bad[0] = b'X';
        assert!(InjectionTrace::from_binary(&bad).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let t = sample();
        let mut bytes = t.payload_bytes();
        bytes[4] = 99; // version field, LE low byte
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            InjectionTrace::from_binary(&bytes),
            Err(TraceError::Version(99))
        );
    }

    #[test]
    fn jsonl_rejects_tampered_entries() {
        let t = sample();
        let text = t.to_jsonl();
        let tampered = text.replacen("\"src\":1", "\"src\":9", 1);
        assert!(matches!(
            InjectionTrace::from_jsonl(&tampered),
            Err(TraceError::Checksum { .. })
        ));
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir().join(format!("ertr-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        let bin = dir.join("t.ertr");
        let jl = dir.join("t.jsonl");
        t.save(&bin).unwrap();
        t.save_jsonl(&jl).unwrap();
        assert_eq!(InjectionTrace::load(&bin).unwrap(), t);
        assert_eq!(InjectionTrace::load_jsonl(&jl).unwrap(), t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            InjectionTrace::load(Path::new("/nonexistent/erapid.ertr")),
            Err(TraceError::Io(_))
        ));
    }
}
