//! Injection-trace record and replay.
//!
//! Traces make cross-configuration comparisons exact: record the injections
//! of one run (cycle, src, dst) and replay the identical workload against a
//! different network configuration.

use desim::Cycle;

/// One recorded injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Injection cycle.
    pub cycle: Cycle,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
}

/// An append-only injection trace.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one injection. Cycles must be non-decreasing.
    pub fn record(&mut self, cycle: Cycle, src: u32, dst: u32) {
        if let Some(last) = self.entries.last() {
            assert!(cycle >= last.cycle, "trace must be time-ordered");
        }
        self.entries.push(TraceEntry { cycle, src, dst });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Converts into a replayer.
    pub fn into_replay(self) -> TraceReplayer {
        TraceReplayer {
            entries: self.entries,
            pos: 0,
        }
    }
}

/// Replays a trace in cycle order.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    entries: Vec<TraceEntry>,
    pos: usize,
}

impl TraceReplayer {
    /// All injections due at exactly `now` (advances the cursor).
    pub fn due(&mut self, now: Cycle) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        while self.pos < self.entries.len() && self.entries[self.pos].cycle <= now {
            out.push(self.entries[self.pos]);
            self.pos += 1;
        }
        out
    }

    /// Entries not yet replayed.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }

    /// True when the trace is exhausted.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_replay_round_trip() {
        let mut rec = TraceRecorder::new();
        rec.record(0, 1, 2);
        rec.record(0, 3, 4);
        rec.record(5, 1, 6);
        assert_eq!(rec.len(), 3);
        assert!(!rec.is_empty());
        let mut rep = rec.into_replay();
        let at0 = rep.due(0);
        assert_eq!(at0.len(), 2);
        assert_eq!(at0[0].src, 1);
        assert_eq!(rep.remaining(), 1);
        assert!(rep.due(4).is_empty());
        let at5 = rep.due(5);
        assert_eq!(at5.len(), 1);
        assert_eq!(at5[0].dst, 6);
        assert!(rep.is_done());
    }

    #[test]
    fn due_skips_ahead_over_gaps() {
        let mut rec = TraceRecorder::new();
        rec.record(2, 0, 1);
        rec.record(7, 0, 2);
        let mut rep = rec.into_replay();
        // Jumping straight to cycle 10 yields both entries.
        assert_eq!(rep.due(10).len(), 2);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_record_panics() {
        let mut rec = TraceRecorder::new();
        rec.record(5, 0, 1);
        rec.record(4, 0, 1);
    }
}
