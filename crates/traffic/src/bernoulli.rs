//! Bernoulli injection processes.
//!
//! Every cycle each node flips a coin with probability `p = load × N_c`
//! (packets/node/cycle); on success one packet is generated. This is the
//! paper's injection model (§4).

use desim::rng::Pcg32;
use desim::Cycle;

/// A per-node Bernoulli packet source.
#[derive(Debug, Clone)]
pub struct BernoulliInjector {
    rate: f64,
    rng: Pcg32,
    generated: u64,
}

impl BernoulliInjector {
    /// Creates an injector with `rate` packets/cycle (clamped to `[0,1]`)
    /// and its own RNG stream.
    pub fn new(rate: f64, rng: Pcg32) -> Self {
        assert!(rate >= 0.0, "negative rate");
        Self {
            rate: rate.min(1.0),
            rng,
            generated: 0,
        }
    }

    /// The injection probability per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Rolls the coin for one cycle; true means "inject a packet now".
    pub fn fires(&mut self, _now: Cycle) -> bool {
        if self.rng.bernoulli(self.rate) {
            self.generated += 1;
            true
        } else {
            false
        }
    }

    /// Borrows the RNG (for destination draws correlated with this source).
    pub fn rng_mut(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }

    /// Serializes the RNG position and counter (rate is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.rng.save(w);
        w.u64(self.generated);
    }

    /// Overlays checkpointed RNG position and counter.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        self.rng = Pcg32::load(r)?;
        self.generated = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected() {
        let mut inj = BernoulliInjector::new(0.25, Pcg32::stream(1, 2));
        let n = 100_000;
        let fires = (0..n).filter(|&t| inj.fires(t)).count();
        let rate = fires as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert_eq!(inj.generated(), fires as u64);
        assert_eq!(inj.rate(), 0.25);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut inj = BernoulliInjector::new(0.0, Pcg32::stream(1, 3));
        assert!((0..1000).all(|t| !inj.fires(t)));
    }

    #[test]
    fn unit_rate_always_fires() {
        let mut inj = BernoulliInjector::new(1.0, Pcg32::stream(1, 4));
        assert!((0..1000).all(|t| inj.fires(t)));
    }

    #[test]
    fn over_unity_rate_clamps() {
        let inj = BernoulliInjector::new(3.0, Pcg32::stream(1, 5));
        assert_eq!(inj.rate(), 1.0);
    }

    #[test]
    fn deterministic_per_stream() {
        let mut a = BernoulliInjector::new(0.5, Pcg32::stream(7, 0));
        let mut b = BernoulliInjector::new(0.5, Pcg32::stream(7, 0));
        for t in 0..1000 {
            assert_eq!(a.fires(t), b.fires(t));
        }
    }
}
