//! # traffic — synthetic workloads for the E-RAPID evaluation
//!
//! §4 of the paper: "Packets were injected according to Bernoulli process
//! based on the network load for a given simulation run. The network load is
//! varied from 0.1 - 0.9 of the network capacity." Patterns evaluated:
//! uniform, butterfly, complement, and perfect shuffle on 64 nodes.
//!
//! * [`pattern`] — destination patterns: the paper's four plus the other
//!   classics (transpose, bit reversal, tornado, neighbour, hotspot),
//! * [`bernoulli`] — the Bernoulli per-cycle injection process,
//! * [`capacity`] — the uniform-traffic network capacity `N_c`
//!   (packets/node/cycle) that loads are normalised against,
//! * [`generator`] — per-node packet generators tying it together,
//! * [`burst`] — a two-state MMPP (bursty on/off) extension workload,
//! * [`trace`] — record/replay of injection traces,
//! * [`source`] — the [`source::InjectionSource`] seam external workload
//!   engines (e.g. `erapid-workloads`) plug into.

//!
//! ## Example: the paper's injection model
//!
//! ```
//! use traffic::capacity::CapacityModel;
//! use traffic::generator::NodeGenerator;
//! use traffic::pattern::TrafficPattern;
//!
//! // 64-node capacity and a node injecting complement traffic at half load.
//! let nc = CapacityModel::paper64().uniform_capacity();
//! assert!((nc - 0.02051).abs() < 1e-4);
//! let mut gen = NodeGenerator::new(3, 64, TrafficPattern::Complement, 1.0, 42);
//! let req = gen.poll(0).unwrap();
//! assert_eq!(req.dst, 60); // bitwise complement of node 3
//! ```

pub mod bernoulli;
pub mod burst;
pub mod capacity;
pub mod generator;
pub mod pattern;
pub mod source;
pub mod trace;

pub use capacity::CapacityModel;
pub use generator::NodeGenerator;
pub use pattern::TrafficPattern;
pub use trace::{InjectionTrace, TraceEntry, TraceError, TraceMeta, TraceRecorder, TraceReplayer};
