//! Electrical router power model for the mesh baseline.
//!
//! The paper's motivation (§1) leans on interconnect power: "interconnection
//! network[s] consume a sizeable fraction of the system power budget (for
//! example, 70% of the switch power budget in IBM Infiniband 8-port 12X
//! switch)". To compare the mesh baseline against E-RAPID's optical power
//! numbers we need an electrical router/link energy model; this is the
//! standard architectural-level decomposition (Orion-style): per-flit
//! energies for buffer write, buffer read, crossbar traversal and
//! arbitration, plus per-cycle leakage per router and per-flit link
//! traversal energy.
//!
//! Default constants are representative 100 nm-era values (the paper's
//! period) normalised to the same 64-bit flit the E-RAPID model uses. They
//! are deliberately conservative; the point of the comparison is the
//! *structure* (per-hop electrical cost × hop count vs per-link optical
//! cost × 1), not process-exact numbers.

/// Per-event energies, picojoules per 64-bit flit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterEnergy {
    /// Buffer write on flit arrival.
    pub buffer_write_pj: f64,
    /// Buffer read at switch traversal.
    pub buffer_read_pj: f64,
    /// Crossbar traversal.
    pub crossbar_pj: f64,
    /// VC + switch arbitration.
    pub arbitration_pj: f64,
    /// Inter-router link traversal (board-scale electrical trace).
    pub link_pj: f64,
    /// Router static power, milliwatts (leakage + clock).
    pub static_mw: f64,
}

impl RouterEnergy {
    /// Representative 100 nm constants for a 64-bit-flit 5-port router.
    pub fn typical_100nm() -> Self {
        Self {
            buffer_write_pj: 4.0,
            buffer_read_pj: 3.0,
            crossbar_pj: 6.0,
            arbitration_pj: 0.5,
            link_pj: 10.0,
            static_mw: 5.0,
        }
    }

    /// Energy of one complete hop (write + read + arbitrate + crossbar +
    /// link), picojoules.
    pub fn per_hop_pj(&self) -> f64 {
        self.buffer_write_pj
            + self.buffer_read_pj
            + self.crossbar_pj
            + self.arbitration_pj
            + self.link_pj
    }
}

/// Integrates mesh power over a run.
#[derive(Debug, Clone)]
pub struct MeshPowerMeter {
    energy: RouterEnergy,
    routers: u32,
    /// Accumulated dynamic energy, picojoules.
    dynamic_pj: f64,
    cycles: u64,
}

impl MeshPowerMeter {
    /// Creates a meter for a mesh of `routers` routers.
    pub fn new(energy: RouterEnergy, routers: u32) -> Self {
        assert!(routers > 0);
        Self {
            energy,
            routers,
            dynamic_pj: 0.0,
            cycles: 0,
        }
    }

    /// Records one cycle: `hops` = flits that traversed a router this
    /// cycle, `links` = flits launched onto inter-router links.
    pub fn record_cycle(&mut self, hops: u64, links: u64) {
        self.cycles += 1;
        self.dynamic_pj += hops as f64
            * (self.energy.buffer_write_pj
                + self.energy.buffer_read_pj
                + self.energy.crossbar_pj
                + self.energy.arbitration_pj)
            + links as f64 * self.energy.link_pj;
    }

    /// Cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average total power in milliwatts at 400 MHz (2.5 ns/cycle):
    /// dynamic energy over time plus static power of every router.
    pub fn average_mw(&self) -> f64 {
        if self.cycles == 0 {
            return self.routers as f64 * self.energy.static_mw;
        }
        let seconds = self.cycles as f64 * 2.5e-9;
        let dynamic_w = self.dynamic_pj * 1.0e-12 / seconds;
        dynamic_w * 1.0e3 + self.routers as f64 * self.energy.static_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_hop_energy_sums_components() {
        let e = RouterEnergy::typical_100nm();
        assert!((e.per_hop_pj() - 23.5).abs() < 1e-12);
    }

    #[test]
    fn idle_mesh_draws_only_static_power() {
        let mut m = MeshPowerMeter::new(RouterEnergy::typical_100nm(), 64);
        for _ in 0..1000 {
            m.record_cycle(0, 0);
        }
        assert!((m.average_mw() - 64.0 * 5.0).abs() < 1e-9);
        assert_eq!(m.cycles(), 1000);
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let e = RouterEnergy::typical_100nm();
        let mut busy = MeshPowerMeter::new(e, 64);
        let mut quiet = MeshPowerMeter::new(e, 64);
        for _ in 0..1000 {
            busy.record_cycle(64, 48);
            quiet.record_cycle(8, 6);
        }
        assert!(busy.average_mw() > quiet.average_mw());
        // One flit-hop (13.5 pJ) per 2.5 ns ≈ 5.4 mW of dynamic power:
        // 64 hops + 48 links per cycle ≈ 64·13.5 + 48·10 = 1344 pJ/cycle
        // = 537.6 mW dynamic + 320 static.
        assert!((busy.average_mw() - (1344.0 / 2.5 + 320.0)).abs() < 1.0);
    }

    #[test]
    fn empty_meter_reports_static() {
        let m = MeshPowerMeter::new(RouterEnergy::typical_100nm(), 16);
        assert!((m.average_mw() - 80.0).abs() < 1e-9);
    }
}
