//! The assembled mesh network.
//!
//! One `router::Router` per node, five ports each (local + N/E/S/W), wired
//! with one-cycle inter-router channels. Flow control is exact: an output
//! port's credit pool equals the downstream input VC depth, a credit
//! returns when the downstream router pops the corresponding flit (its
//! traversal reports the input port/VC it consumed from).

use crate::topology::{port, Mesh2D, XyRoute};
use desim::Cycle;
use router::flit::PacketId;
use router::inject::FlitInjector;
use router::packet::Packet;
use router::routing::PortId;
use router::{Router, RouterConfig};

/// A delivered packet (tail ejected at its destination).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshDelivered {
    /// Packet id.
    pub id: PacketId,
    /// Destination node.
    pub dst: u32,
    /// Injection cycle.
    pub injected_at: Cycle,
    /// Labelled for measurement.
    pub labelled: bool,
}

/// A flit in flight on an inter-router channel.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    arrive_at: Cycle,
    dst_router: u32,
    in_port: PortId,
    in_vc: u8,
    flit: router::flit::Flit,
}

/// The mesh network.
pub struct MeshNetwork {
    mesh: Mesh2D,
    routers: Vec<Router>,
    injectors: Vec<FlitInjector>,
    /// Flits crossing inter-router channels (1-cycle delay).
    in_flight: Vec<InFlight>,
    /// Ejection-port credits owed next cycle: (router, vc).
    eject_credits: Vec<(u32, u8)>,
    /// Channel (link) delay in cycles.
    link_delay: Cycle,
    delivered_count: u64,
    /// Activity of the last `step`: (router traversals, link launches).
    last_activity: (u64, u64),
}

impl MeshNetwork {
    /// Builds the mesh with the given per-VC buffer depth and VC count.
    pub fn new(mesh: Mesh2D, vcs: u8, buf_depth: usize, link_delay: Cycle) -> Self {
        assert!(link_delay >= 1);
        let routers = (0..mesh.nodes())
            .map(|id| {
                let mut r = Router::new(
                    RouterConfig {
                        in_ports: port::COUNT,
                        out_ports: port::COUNT,
                        vcs,
                        buf_depth,
                        downstream_depth: buf_depth as u32,
                    },
                    Box::new(XyRoute::new(mesh, id)),
                );
                // Ejection port drains freely.
                r.set_downstream_depth(port::LOCAL, 8);
                r
            })
            .collect();
        Self {
            mesh,
            routers,
            injectors: (0..mesh.nodes())
                .map(|_| FlitInjector::new(port::LOCAL))
                .collect(),
            in_flight: Vec::new(),
            eject_credits: Vec::new(),
            link_delay,
            delivered_count: 0,
            last_activity: (0, 0),
        }
    }

    /// The topology.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Queues a packet at a node's NI.
    pub fn enqueue(&mut self, node: u32, packet: Packet) {
        self.injectors[node as usize].enqueue(packet);
    }

    /// NI backlog at a node.
    pub fn backlog(&self, node: u32) -> usize {
        self.injectors[node as usize].backlog_len()
    }

    /// Packets delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// `(router traversals, link launches)` of the most recent cycle — the
    /// inputs of the [`crate::power::MeshPowerMeter`].
    pub fn last_activity(&self) -> (u64, u64) {
        self.last_activity
    }

    /// True when nothing is queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.injectors.iter().all(|i| i.is_idle())
            && self.routers.iter().all(|r| r.buffered_flits() == 0)
    }

    /// Advances one cycle; returns this cycle's deliveries.
    pub fn step(&mut self, now: Cycle) -> Vec<MeshDelivered> {
        // Ejection credits from last cycle.
        for (r, vc) in self.eject_credits.drain(..) {
            self.routers[r as usize].credit(port::LOCAL, vc);
        }
        // Channel arrivals land in downstream input buffers (space is
        // guaranteed by the upstream credit loop).
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].arrive_at <= now {
                let f = self.in_flight.swap_remove(i);
                self.routers[f.dst_router as usize].inject(f.in_port, f.in_vc, f.flit);
            } else {
                i += 1;
            }
        }
        // NI injection.
        for (id, inj) in self.injectors.iter_mut().enumerate() {
            inj.tick(&mut self.routers[id]);
        }
        // Router pipelines + link launches.
        let mut delivered = Vec::new();
        let mut credits: Vec<(u32, PortId, u8)> = Vec::new();
        let mut hops = 0u64;
        let mut links = 0u64;
        for id in 0..self.routers.len() as u32 {
            let traversals = self.routers[id as usize].step(now);
            for t in traversals {
                hops += 1;
                // Popping from a non-local input frees a slot upstream.
                if t.in_port != port::LOCAL {
                    let up = self
                        .mesh
                        .neighbour(id, t.in_port)
                        .expect("flit arrived through an existing link");
                    credits.push((up, Mesh2D::reverse(t.in_port), t.in_vc));
                }
                if t.out_port == port::LOCAL {
                    self.eject_credits.push((id, t.out_vc));
                    if t.flit.kind.is_tail() {
                        self.delivered_count += 1;
                        delivered.push(MeshDelivered {
                            id: t.flit.packet,
                            dst: t.flit.dst.0,
                            injected_at: t.flit.injected_at,
                            labelled: t.flit.labelled,
                        });
                    }
                } else {
                    let next = self
                        .mesh
                        .neighbour(id, t.out_port)
                        .expect("XY routing never exits the mesh");
                    links += 1;
                    self.in_flight.push(InFlight {
                        arrive_at: now + self.link_delay,
                        dst_router: next,
                        in_port: Mesh2D::reverse(t.out_port),
                        in_vc: t.out_vc,
                        flit: t.flit,
                    });
                }
            }
        }
        for (r, p, vc) in credits {
            self.routers[r as usize].credit(p, vc);
        }
        self.last_activity = (hops, links);
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use router::flit::NodeId;

    fn pkt(id: u64, src: u32, dst: u32, now: Cycle) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            flits: 4,
            injected_at: now,
            labelled: true,
        }
    }

    fn drive(net: &mut MeshNetwork, cycles: Cycle) -> Vec<(Cycle, MeshDelivered)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for d in net.step(now) {
                out.push((now, d));
            }
        }
        out
    }

    #[test]
    fn single_packet_crosses_the_mesh() {
        let mut net = MeshNetwork::new(Mesh2D::new(4, 4), 2, 4, 1);
        net.enqueue(0, pkt(1, 0, 15, 0));
        let log = drive(&mut net, 200);
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].1.dst, 15);
        // 6 hops minimum; each hop costs pipeline + link cycles.
        assert!(
            log[0].0 >= 6,
            "delivered unrealistically fast at {}",
            log[0].0
        );
        assert!(net.is_idle());
        assert_eq!(net.delivered_count(), 1);
    }

    #[test]
    fn local_delivery_never_leaves_the_router() {
        let mut net = MeshNetwork::new(Mesh2D::new(2, 2), 2, 4, 1);
        net.enqueue(3, pkt(1, 3, 3, 0));
        let log = drive(&mut net, 50);
        assert_eq!(log.len(), 1);
        // Other routers untouched.
        assert_eq!(net.routers[0].stats().injected, 0);
    }

    #[test]
    fn all_pairs_eventually_deliver() {
        let mesh = Mesh2D::new(3, 3);
        let mut net = MeshNetwork::new(mesh, 2, 4, 1);
        let mut id = 0;
        for src in 0..9 {
            for dst in 0..9 {
                if src != dst {
                    net.enqueue(src, pkt(id, src, dst, 0));
                    id += 1;
                }
            }
        }
        let log = drive(&mut net, 5000);
        assert_eq!(log.len(), 72, "all 72 packets must deliver");
        assert!(net.is_idle());
    }

    #[test]
    fn heavy_single_destination_congests_but_delivers() {
        // Many-to-one: classic congestion; credits must prevent loss.
        let mesh = Mesh2D::new(4, 4);
        let mut net = MeshNetwork::new(mesh, 2, 2, 1);
        let mut id = 0;
        for round in 0..4 {
            for src in 1..16 {
                net.enqueue(src, pkt(id, src, 0, round));
                id += 1;
            }
        }
        let log = drive(&mut net, 20_000);
        assert_eq!(log.len(), 60);
        assert!(log.iter().all(|(_, d)| d.dst == 0));
    }

    #[test]
    fn flit_order_preserved_per_packet() {
        let mut net = MeshNetwork::new(Mesh2D::new(4, 1), 2, 2, 1);
        for i in 0..8 {
            net.enqueue(0, pkt(i, 0, 3, 0));
        }
        let log = drive(&mut net, 2000);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn deeper_buffers_do_not_reduce_throughput() {
        let run = |depth: usize| {
            let mut net = MeshNetwork::new(Mesh2D::new(4, 4), 2, depth, 1);
            let mut id = 0;
            for round in 0..8 {
                for src in 0..16u32 {
                    net.enqueue(src, pkt(id, src, (src + 5) % 16, round));
                    id += 1;
                }
            }
            let mut last = 0;
            for now in 0..50_000u64 {
                if !net.step(now).is_empty() {
                    last = now;
                }
                if net.is_idle() {
                    break;
                }
            }
            assert_eq!(net.delivered_count(), 128);
            last
        };
        let shallow = run(1);
        let deep = run(8);
        assert!(deep <= shallow, "deep {deep} vs shallow {shallow}");
    }
}
