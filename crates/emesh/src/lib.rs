//! # emesh — the electrical baseline network
//!
//! The paper evaluates E-RAPID against "other electrical networks" (§4.1).
//! This crate is that comparator: a 2D mesh of the same SGI-Spider-like
//! virtual-channel routers E-RAPID uses for its intra-board interconnect,
//! wired hop-to-hop with credit flow control and dimension-order (XY)
//! routing. It exercises the `router` crate in its full multi-hop role —
//! per-hop RC/VA/SA/ST pipelines, per-link credit loops — and provides the
//! apples-to-apples baseline bench (`erapid-bench --bin baseline`).
//!
//! * [`topology`] — mesh geometry and XY dimension-order routing,
//! * [`network`] — the assembled mesh: routers, inter-router links,
//!   credit plumbing, NIs, and the cycle loop,
//! * [`sim`] — the measurement harness mirroring `erapid_core::experiment`.

//!
//! ## Example
//!
//! ```
//! use emesh::{run_mesh, MeshConfig, Mesh2D};
//! use desim::phase::PhasePlan;
//! use traffic::pattern::TrafficPattern;
//!
//! let cfg = MeshConfig { mesh: Mesh2D::square(16), ..MeshConfig::paper64() };
//! let plan = PhasePlan::new(500, 1000).with_max_cycles(20_000);
//! let r = run_mesh(cfg, TrafficPattern::Uniform, 0.004, plan);
//! assert!(r.throughput > 0.0);
//! assert_eq!(r.undrained, 0);
//! ```

pub mod network;
pub mod power;
pub mod sim;
pub mod topology;

pub use network::MeshNetwork;
pub use power::{MeshPowerMeter, RouterEnergy};
pub use sim::{run_mesh, MeshConfig, MeshRunResult};
pub use topology::Mesh2D;
