//! Measurement harness for the mesh baseline, mirroring
//! `erapid_core::experiment` so the comparison bench reads identically.

use crate::network::MeshNetwork;
use crate::power::{MeshPowerMeter, RouterEnergy};
use crate::topology::Mesh2D;
use desim::phase::{Phase, PhasePlan, PhaseTracker};
use desim::Cycle;
use netstats::meter::{LatencyMeter, ThroughputMeter};
use router::flit::{NodeId, PacketId};
use router::packet::Packet;
use traffic::generator::build_generators;
use traffic::pattern::TrafficPattern;

/// Mesh baseline configuration.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Topology.
    pub mesh: Mesh2D,
    /// Virtual channels per port.
    pub vcs: u8,
    /// Buffer depth per VC, flits.
    pub buf_depth: usize,
    /// Inter-router link delay, cycles.
    pub link_delay: Cycle,
    /// Flits per packet.
    pub packet_flits: u16,
    /// RNG seed.
    pub seed: u64,
}

impl MeshConfig {
    /// An 8×8 mesh comparable to the paper's 64-node E-RAPID: same packet
    /// size, same per-VC geometry as the IBI routers.
    pub fn paper64() -> Self {
        Self {
            mesh: Mesh2D::square(64),
            vcs: 4,
            buf_depth: 4,
            link_delay: 1,
            packet_flits: 8,
            seed: 0xE4A9_1D07,
        }
    }

    /// Injection capacity bound of the mesh NI (packets/node/cycle).
    pub fn electrical_bound(&self) -> f64 {
        1.0 / self.packet_flits as f64
    }
}

/// One mesh run's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshRunResult {
    /// Offered load in packets/node/cycle.
    pub offered: f64,
    /// Accepted throughput in packets/node/cycle.
    pub throughput: f64,
    /// Mean latency, cycles.
    pub latency: f64,
    /// Labelled packets left in flight at the cap.
    pub undrained: u64,
    /// Average electrical power over the measurement interval, mW.
    pub power_mw: f64,
    /// Final cycle.
    pub cycles: Cycle,
}

/// Runs the mesh under a pattern at an *absolute* injection rate
/// (packets/node/cycle) — callers pass the same rate they give E-RAPID so
/// the two networks see identical offered traffic.
pub fn run_mesh(
    cfg: MeshConfig,
    pattern: TrafficPattern,
    rate: f64,
    plan: PhasePlan,
) -> MeshRunResult {
    let nodes = cfg.mesh.nodes();
    let mut net = MeshNetwork::new(cfg.mesh, cfg.vcs, cfg.buf_depth, cfg.link_delay);
    let mut gens = build_generators(nodes, &pattern, rate, cfg.seed);
    let mut tracker = PhaseTracker::new();
    let mut throughput = ThroughputMeter::new(nodes as usize);
    throughput.start(plan.measure_start());
    let mut latency = LatencyMeter::standard();
    let mut power = MeshPowerMeter::new(RouterEnergy::typical_100nm(), nodes);
    let mut next_id = 0u64;
    let mut now: Cycle = 0;
    while now < plan.max_cycles && !tracker.complete(&plan, now) {
        let labelled = plan.phase_at(now) == Phase::Measure;
        for g in &mut gens {
            if let Some(req) = g.poll(now) {
                let packet = Packet {
                    id: PacketId(next_id),
                    src: NodeId(req.src),
                    dst: NodeId(req.dst),
                    flits: cfg.packet_flits,
                    injected_at: now,
                    labelled,
                };
                next_id += 1;
                if labelled {
                    tracker.inject_labelled();
                }
                net.enqueue(req.src, packet);
            }
        }
        for d in net.step(now) {
            if now >= plan.measure_start() && now < plan.measure_end() {
                throughput.deliver(now, cfg.packet_flits as u32);
            }
            if d.labelled {
                tracker.deliver_labelled();
                latency.record(d.injected_at, now);
            }
        }
        if now >= plan.measure_start() && now < plan.measure_end() {
            let (hops, links) = net.last_activity();
            power.record_cycle(hops, links);
        }
        now += 1;
    }
    MeshRunResult {
        offered: rate,
        throughput: throughput.throughput(plan.measure_end()),
        latency: latency.mean(),
        undrained: tracker.outstanding(),
        power_mw: power.average_mw(),
        cycles: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PhasePlan {
        PhasePlan::new(1000, 2000).with_max_cycles(20_000)
    }

    #[test]
    fn low_load_uniform_delivers_cleanly() {
        let cfg = MeshConfig {
            mesh: Mesh2D::square(16),
            ..MeshConfig::paper64()
        };
        let rate = 0.005;
        let r = run_mesh(cfg, TrafficPattern::Uniform, rate, plan());
        assert_eq!(r.undrained, 0);
        assert!(
            (r.throughput - rate).abs() / rate < 0.25,
            "thr {}",
            r.throughput
        );
        assert!(r.latency > 0.0);
    }

    #[test]
    fn latency_grows_with_rate() {
        let cfg = MeshConfig {
            mesh: Mesh2D::square(16),
            ..MeshConfig::paper64()
        };
        let lo = run_mesh(cfg.clone(), TrafficPattern::Uniform, 0.002, plan());
        let hi = run_mesh(cfg, TrafficPattern::Uniform, 0.02, plan());
        assert!(hi.latency > lo.latency);
    }

    #[test]
    fn deterministic() {
        let cfg = MeshConfig {
            mesh: Mesh2D::square(16),
            ..MeshConfig::paper64()
        };
        let a = run_mesh(cfg.clone(), TrafficPattern::Uniform, 0.01, plan());
        let b = run_mesh(cfg, TrafficPattern::Uniform, 0.01, plan());
        assert_eq!(a, b);
    }

    #[test]
    fn power_tracks_load() {
        let cfg = MeshConfig {
            mesh: Mesh2D::square(16),
            ..MeshConfig::paper64()
        };
        let static_only = 16.0 * RouterEnergy::typical_100nm().static_mw;
        let quiet = run_mesh(cfg.clone(), TrafficPattern::Uniform, 0.001, plan());
        let busy = run_mesh(cfg, TrafficPattern::Uniform, 0.02, plan());
        assert!(quiet.power_mw > static_only, "dynamic power present");
        assert!(busy.power_mw > quiet.power_mw, "power grows with load");
    }

    #[test]
    fn electrical_bound_value() {
        assert!((MeshConfig::paper64().electrical_bound() - 0.125).abs() < 1e-12);
    }
}
