//! 2D-mesh geometry and dimension-order routing.

use router::flit::NodeId;
use router::routing::{PortId, RouteFunction};

/// Port numbering inside one mesh router.
pub mod port {
    use router::routing::PortId;
    /// Local NI injection/ejection port.
    pub const LOCAL: PortId = PortId(0);
    /// Toward `y - 1`.
    pub const NORTH: PortId = PortId(1);
    /// Toward `x + 1`.
    pub const EAST: PortId = PortId(2);
    /// Toward `y + 1`.
    pub const SOUTH: PortId = PortId(3);
    /// Toward `x - 1`.
    pub const WEST: PortId = PortId(4);
    /// Ports per mesh router.
    pub const COUNT: u16 = 5;
}

/// A `cols × rows` mesh; node ids are row-major (`id = y·cols + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    /// Columns (x extent).
    pub cols: u16,
    /// Rows (y extent).
    pub rows: u16,
}

impl Mesh2D {
    /// Creates a mesh.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols >= 1 && rows >= 1 && (cols as u32 * rows as u32) >= 2);
        Self { cols, rows }
    }

    /// A square mesh covering `nodes` (must be a perfect square).
    pub fn square(nodes: u32) -> Self {
        let side = (nodes as f64).sqrt().round() as u16;
        assert_eq!(side as u32 * side as u32, nodes, "{nodes} is not square");
        Self::new(side, side)
    }

    /// Node count.
    pub fn nodes(&self) -> u32 {
        self.cols as u32 * self.rows as u32
    }

    /// `(x, y)` of a node id.
    pub fn coords(&self, id: u32) -> (u16, u16) {
        debug_assert!(id < self.nodes());
        (
            (id % self.cols as u32) as u16,
            (id / self.cols as u32) as u16,
        )
    }

    /// Node id of `(x, y)`.
    pub fn id(&self, x: u16, y: u16) -> u32 {
        debug_assert!(x < self.cols && y < self.rows);
        y as u32 * self.cols as u32 + x as u32
    }

    /// The neighbour of `id` through `port`, if it exists.
    pub fn neighbour(&self, id: u32, p: PortId) -> Option<u32> {
        let (x, y) = self.coords(id);
        match p {
            _ if p == port::NORTH => (y > 0).then(|| self.id(x, y - 1)),
            _ if p == port::EAST => (x + 1 < self.cols).then(|| self.id(x + 1, y)),
            _ if p == port::SOUTH => (y + 1 < self.rows).then(|| self.id(x, y + 1)),
            _ if p == port::WEST => (x > 0).then(|| self.id(x - 1, y)),
            _ => None,
        }
    }

    /// The port on the neighbour that faces back toward us.
    pub fn reverse(p: PortId) -> PortId {
        match p {
            _ if p == port::NORTH => port::SOUTH,
            _ if p == port::SOUTH => port::NORTH,
            _ if p == port::EAST => port::WEST,
            _ if p == port::WEST => port::EAST,
            _ => panic!("no reverse for {p}"),
        }
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// XY dimension-order route step at router `here` for a packet to
    /// `dst`: correct x first, then y, then eject.
    pub fn xy_step(&self, here: u32, dst: u32) -> PortId {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if dx > hx {
            port::EAST
        } else if dx < hx {
            port::WEST
        } else if dy > hy {
            port::SOUTH
        } else if dy < hy {
            port::NORTH
        } else {
            port::LOCAL
        }
    }
}

/// The per-router XY route function.
#[derive(Debug, Clone)]
pub struct XyRoute {
    mesh: Mesh2D,
    here: u32,
}

impl XyRoute {
    /// Creates the route function for router `here`.
    pub fn new(mesh: Mesh2D, here: u32) -> Self {
        assert!(here < mesh.nodes());
        Self { mesh, here }
    }
}

impl RouteFunction for XyRoute {
    fn route(&self, dst: NodeId) -> PortId {
        self.mesh.xy_step(self.here, dst.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2D::new(4, 3);
        assert_eq!(m.nodes(), 12);
        for id in 0..12 {
            let (x, y) = m.coords(id);
            assert_eq!(m.id(x, y), id);
        }
        assert_eq!(m.coords(0), (0, 0));
        assert_eq!(m.coords(5), (1, 1));
    }

    #[test]
    fn square_constructor() {
        let m = Mesh2D::square(64);
        assert_eq!((m.cols, m.rows), (8, 8));
    }

    #[test]
    #[should_panic(expected = "not square")]
    fn non_square_rejected() {
        Mesh2D::square(48);
    }

    #[test]
    fn neighbours_and_edges() {
        let m = Mesh2D::new(3, 3);
        // Center node 4 has all four neighbours.
        assert_eq!(m.neighbour(4, port::NORTH), Some(1));
        assert_eq!(m.neighbour(4, port::EAST), Some(5));
        assert_eq!(m.neighbour(4, port::SOUTH), Some(7));
        assert_eq!(m.neighbour(4, port::WEST), Some(3));
        // Corner node 0 has only two.
        assert_eq!(m.neighbour(0, port::NORTH), None);
        assert_eq!(m.neighbour(0, port::WEST), None);
        assert_eq!(m.neighbour(0, port::EAST), Some(1));
        assert_eq!(m.neighbour(0, port::SOUTH), Some(3));
    }

    #[test]
    fn reverse_ports() {
        assert_eq!(Mesh2D::reverse(port::NORTH), port::SOUTH);
        assert_eq!(Mesh2D::reverse(port::EAST), port::WEST);
        assert_eq!(Mesh2D::reverse(port::WEST), port::EAST);
        assert_eq!(Mesh2D::reverse(port::SOUTH), port::NORTH);
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh2D::new(4, 4);
        // 0 (0,0) → 15 (3,3): east until x matches, then south.
        assert_eq!(m.xy_step(0, 15), port::EAST);
        assert_eq!(m.xy_step(3, 15), port::SOUTH);
        assert_eq!(m.xy_step(15, 15), port::LOCAL);
        assert_eq!(m.xy_step(15, 0), port::WEST);
        assert_eq!(m.xy_step(12, 0), port::NORTH);
    }

    #[test]
    fn xy_route_always_reduces_distance() {
        let m = Mesh2D::new(5, 4);
        for src in 0..m.nodes() {
            for dst in 0..m.nodes() {
                if src == dst {
                    continue;
                }
                let p = m.xy_step(src, dst);
                let next = m.neighbour(src, p).expect("route step must exist");
                assert_eq!(m.hops(next, dst) + 1, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let m = Mesh2D::new(8, 8);
        assert_eq!(m.hops(0, 63), 14);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 7), 7);
    }
}
