//! Deterministic cycle-level telemetry for the E-RAPID simulator.
//!
//! The paper's argument is about *when* things happen: DPM rate/voltage
//! transitions inside odd windows, the five Lock-Step DBR stages inside even
//! windows, 65-cycle CDR relock blackouts. End-of-run aggregates cannot show
//! any of that, so this crate provides a typed, cycle-stamped event model
//! ([`TraceEvent`]) behind a [`TraceSink`] trait:
//!
//! - [`NullSink`] is a zero-cost no-op: every emit point checks
//!   `sink.enabled()` (an inlined `false`) before building the event, so a
//!   run with tracing off does no extra work and allocates nothing.
//! - [`RingRecorder`] is a preallocated ring buffer with optional 1-in-N
//!   sampling; it never allocates after construction, so tracing perturbs
//!   neither the simulation (events are observations, not inputs) nor the
//!   allocator behaviour of the hot path.
//! - [`MetricRegistry`] aggregates counters/gauges/histograms (reusing
//!   `netstats`) at R_w window granularity.
//!
//! Determinism contract: events are emitted in simulation order by a single
//! thread per `System`, stamped with the simulation cycle (never wall
//! clock), and the exporters ([`export`]) format them with Rust's built-in
//! float formatting. The same seed therefore yields byte-identical trace
//! files, including across the sequential and parallel experiment runners
//! (each point records into its own recorder; the runner merges in input
//! order).

pub mod event;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod sink;

pub use event::{FaultLabel, LsStageLabel, TraceEvent, TraceRecord, WindowLabel};
pub use export::{chrome_trace, jsonl, jsonl_line, windows_jsonl, windows_jsonl_rows};
pub use recorder::{RingRecorder, TraceConfig, Tracer};
pub use registry::{
    counter_column, CounterId, GaugeId, HistId, HistogramSummary, MetricRegistry, WindowSnapshot,
};
pub use sink::{NullSink, TraceSink};
