//! The sink trait every emit point writes through.

use crate::event::TraceEvent;
use desim::Cycle;

/// Receives cycle-stamped events from the simulator's emit points.
///
/// Emit points are written as
///
/// ```ignore
/// if sink.enabled() {
///     sink.emit(now, TraceEvent::Grant { .. });
/// }
/// ```
///
/// so a disabled sink skips event construction entirely. `enabled()` must
/// be constant for the lifetime of a run: flipping it mid-run would make
/// sampled traces meaningless.
pub trait TraceSink {
    /// Whether emit points should bother constructing events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event stamped with simulation cycle `at`.
    fn emit(&mut self, at: Cycle, event: TraceEvent);
}

/// The zero-cost default: `enabled()` is an inlined `false` and `emit` is a
/// no-op, so a fully traced build with the null sink compiles down to a
/// predictable never-taken branch per emit point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _at: Cycle, _event: TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        // Emitting anyway is harmless.
        sink.emit(
            0,
            TraceEvent::WindowBoundary {
                index: 1,
                kind: crate::event::WindowLabel::Power,
            },
        );
    }
}
