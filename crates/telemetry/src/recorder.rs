//! Preallocated ring-buffer recorder and the plain-data trace configuration
//! that rides inside `SystemConfig`.

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::TraceSink;
use desim::Cycle;

/// Default ring capacity: generous for a paper-scale run (a 40-window
/// paper64 run emits a few thousand events) while staying a bounded,
/// one-time allocation.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Plain-data tracing knobs.
///
/// This is what `SystemConfig` carries (it stays `Copy + Debug`, so the
/// config keeps deriving `Clone`/`Debug`); each `System` builds its own
/// [`Tracer`] from it, which keeps per-point traces independent and the
/// parallel runner byte-identical to the sequential one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off means the system uses a null tracer: no
    /// allocation, no per-event work.
    pub enabled: bool,
    /// Ring capacity in events; once full the oldest events are overwritten
    /// (and counted in [`RingRecorder::dropped`]).
    pub capacity: usize,
    /// Keep one event in every `sample_every` (1 = keep all). Sampling is
    /// deterministic: it counts emissions, never wall time.
    pub sample_every: u32,
}

impl TraceConfig {
    /// Tracing disabled (the default for every stock config).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 0,
            sample_every: 1,
        }
    }

    /// Full-fidelity tracing into a default-capacity ring.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_CAPACITY,
            sample_every: 1,
        }
    }

    /// Tracing with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            capacity,
            sample_every: 1,
        }
    }

    /// Keep only one event in every `n` (deterministic count-based
    /// sampling). `n` is clamped to at least 1.
    pub fn sampled(mut self, n: u32) -> Self {
        self.sample_every = n.max(1);
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// A preallocated ring buffer of [`TraceRecord`]s.
///
/// All storage is allocated in `new`; `emit` never allocates, so enabling
/// tracing cannot change the allocator behaviour of the simulation hot
/// path. When the ring wraps, the oldest records are overwritten and
/// counted in [`dropped`](RingRecorder::dropped).
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
    sample_every: u32,
    /// Emissions seen since the last kept event.
    phase: u32,
}

impl RingRecorder {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
            sample_every: 1,
            phase: 0,
        }
    }

    pub fn with_sampling(mut self, sample_every: u32) -> Self {
        self.sample_every = sample_every.max(1);
        self
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten after the ring wrapped (0 when sized right).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records in emission order (oldest first).
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Drains the ring, returning records in emission order.
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        let out = self.records();
        self.buf.clear();
        self.head = 0;
        out
    }

    /// Serializes the ring contents and wrap/sampling cursors (capacity and
    /// sampling rate are config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.buf.save(w);
        w.usize(self.head);
        w.u64(self.dropped);
        w.u32(self.phase);
    }

    /// Overlays checkpointed ring contents; the ring geometry must match.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::{Snap, SnapError};
        let buf: Vec<TraceRecord> = Snap::load(r)?;
        if buf.len() > self.capacity {
            return Err(SnapError::Mismatch(format!(
                "ring snapshot holds {} records but capacity is {}",
                buf.len(),
                self.capacity
            )));
        }
        let head = r.usize()?;
        if head > buf.len() || (head != 0 && head >= self.capacity) {
            return Err(SnapError::Format(format!("ring head {head} out of range")));
        }
        self.buf = buf;
        self.head = head;
        self.dropped = r.u64()?;
        self.phase = r.u32()?;
        Ok(())
    }
}

impl TraceSink for RingRecorder {
    fn emit(&mut self, at: Cycle, event: TraceEvent) {
        self.phase += 1;
        if self.phase < self.sample_every {
            return;
        }
        self.phase = 0;
        let rec = TraceRecord { at, event };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Static-dispatch tracer a `System` owns: either a null sink or a ring
/// recorder. An enum (rather than `Box<dyn TraceSink>`) keeps the disabled
/// path to a single predictable branch and keeps the owner `Debug + Clone`.
#[derive(Debug, Clone, Default)]
pub enum Tracer {
    #[default]
    Null,
    Ring(RingRecorder),
}

impl Tracer {
    pub fn from_config(cfg: TraceConfig) -> Self {
        if !cfg.enabled {
            return Tracer::Null;
        }
        let capacity = if cfg.capacity == 0 {
            DEFAULT_CAPACITY
        } else {
            cfg.capacity
        };
        Tracer::Ring(RingRecorder::new(capacity).with_sampling(cfg.sample_every))
    }

    /// Drains any recorded events (empty for the null tracer).
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        match self {
            Tracer::Null => Vec::new(),
            Tracer::Ring(r) => r.take_records(),
        }
    }

    /// Events overwritten due to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        match self {
            Tracer::Null => 0,
            Tracer::Ring(r) => r.dropped(),
        }
    }

    /// Serializes the tracer state (null tracers carry no state beyond
    /// their variant tag).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        match self {
            Tracer::Null => w.u8(0),
            Tracer::Ring(r) => {
                w.u8(1);
                r.save_state(w);
            }
        }
    }

    /// Overlays checkpointed tracer state; the stored variant must match
    /// the one this system was configured with.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::SnapError;
        let tag = r.u8()?;
        match (&mut *self, tag) {
            (Tracer::Null, 0) => Ok(()),
            (Tracer::Ring(ring), 1) => ring.load_state(r),
            (_, 0 | 1) => Err(SnapError::Mismatch(
                "tracer kind differs from snapshot".to_string(),
            )),
            (_, b) => Err(SnapError::Format(format!("bad tracer tag {b:#x}"))),
        }
    }
}

impl TraceSink for Tracer {
    #[inline]
    fn enabled(&self) -> bool {
        matches!(self, Tracer::Ring(_))
    }

    #[inline]
    fn emit(&mut self, at: Cycle, event: TraceEvent) {
        if let Tracer::Ring(r) = self {
            r.emit(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::WindowLabel;

    fn window(i: u64) -> TraceEvent {
        TraceEvent::WindowBoundary {
            index: i,
            kind: WindowLabel::Power,
        }
    }

    #[test]
    fn records_in_emission_order() {
        let mut r = RingRecorder::new(8);
        for i in 0..5 {
            r.emit(i * 10, window(i));
        }
        let recs = r.records();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].at, 0);
        assert_eq!(recs[4].at, 40);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut r = RingRecorder::new(4);
        for i in 0..7 {
            r.emit(i, window(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 3);
        let recs = r.records();
        // Oldest surviving record is emission 3.
        assert_eq!(
            recs.iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let mut r = RingRecorder::new(64).with_sampling(3);
        for i in 0..9 {
            r.emit(i, window(i));
        }
        let kept: Vec<Cycle> = r.records().iter().map(|r| r.at).collect();
        assert_eq!(kept, vec![2, 5, 8]);
    }

    #[test]
    fn take_records_drains() {
        let mut r = RingRecorder::new(4);
        r.emit(1, window(1));
        assert_eq!(r.take_records().len(), 1);
        assert!(r.is_empty());
        assert!(r.records().is_empty());
    }

    #[test]
    fn tracer_from_config() {
        let mut t = Tracer::from_config(TraceConfig::off());
        assert!(!t.enabled());
        t.emit(0, window(0));
        assert!(t.take_records().is_empty());

        let mut t = Tracer::from_config(TraceConfig::with_capacity(16));
        assert!(t.enabled());
        t.emit(7, window(1));
        let recs = t.take_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].at, 7);
    }

    #[test]
    fn zero_capacity_config_falls_back_to_default() {
        let t = Tracer::from_config(TraceConfig {
            enabled: true,
            capacity: 0,
            sample_every: 1,
        });
        assert!(t.enabled());
    }
}
