//! Window-granularity metric registry.
//!
//! Counters and gauges are snapshotted at every R_w window boundary into a
//! [`WindowSnapshot`] row (counters as deltas since the previous boundary),
//! which is exactly the table the `tracereport` bin renders. Histograms
//! reuse [`netstats::Histogram`] and accumulate over the whole run, since
//! percentile queries need more samples than one window provides.

use netstats::Histogram;

/// Handle to a registered counter (monotonic within a window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (last-write-wins within a window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram (run-cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// One finalized window row: counter deltas and gauge values in
/// registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Window index (counting boundaries from 1).
    pub window: u64,
    pub counters: Vec<u64>,
    pub gauges: Vec<f64>,
}

/// The distribution digest of one run-cumulative histogram, in the shape
/// reports consume (plain data, cheap to clone across the runner).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Registered name.
    pub name: String,
    /// Samples recorded (excluding none; overflow samples count).
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Median (bin-interpolated).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// A registry of named metrics rolled at window granularity.
///
/// Registration order is fixed by the caller, so two runs that register the
/// same metrics in the same order produce byte-identical exports.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    /// Counter totals at the previous window boundary (for deltas).
    counters_at_roll: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<f64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Histogram>,
    windows: Vec<WindowSnapshot>,
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counter_names.push(name);
        self.counters.push(0);
        self.counters_at_roll.push(0);
        CounterId(self.counter_names.len() - 1)
    }

    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauge_names.push(name);
        self.gauges.push(0.0);
        GaugeId(self.gauge_names.len() - 1)
    }

    pub fn histogram(&mut self, name: &'static str, bins: usize, bin_width: f64) -> HistId {
        self.hist_names.push(name);
        self.hists.push(Histogram::new(bins, bin_width));
        HistId(self.hist_names.len() - 1)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0] += by;
    }

    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0] = value;
    }

    #[inline]
    pub fn observe(&mut self, id: HistId, value: f64) {
        self.hists[id.0].record(value);
    }

    /// Run-cumulative total of a counter (across all windows so far).
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    pub fn histogram_ref(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Finalizes the current window: snapshots counter deltas and gauge
    /// values into a [`WindowSnapshot`] tagged `window`.
    pub fn roll(&mut self, window: u64) {
        let deltas: Vec<u64> = self
            .counters
            .iter()
            .zip(&self.counters_at_roll)
            .map(|(now, prev)| now - prev)
            .collect();
        self.counters_at_roll.copy_from_slice(&self.counters);
        self.windows.push(WindowSnapshot {
            window,
            counters: deltas,
            gauges: self.gauges.clone(),
        });
    }

    pub fn counter_names(&self) -> &[&'static str] {
        &self.counter_names
    }

    pub fn gauge_names(&self) -> &[&'static str] {
        &self.gauge_names
    }

    pub fn hist_names(&self) -> &[&'static str] {
        &self.hist_names
    }

    /// Digests every registered histogram into a [`HistogramSummary`], in
    /// registration order (empty histograms report zero quantiles).
    pub fn hist_summaries(&self) -> Vec<HistogramSummary> {
        self.hist_names
            .iter()
            .zip(&self.hists)
            .map(|(name, h)| HistogramSummary {
                name: name.to_string(),
                count: h.count(),
                mean: h.mean(),
                p50: h.p50().unwrap_or(0.0),
                p95: h.p95().unwrap_or(0.0),
                p99: h.p99().unwrap_or(0.0),
            })
            .collect()
    }

    pub fn windows(&self) -> &[WindowSnapshot] {
        &self.windows
    }

    pub fn take_windows(&mut self) -> Vec<WindowSnapshot> {
        std::mem::take(&mut self.windows)
    }

    /// Serializes metric values, roll baselines, histograms and retained
    /// window rows. Names and registration order are config-derived and
    /// used only for geometry validation on load.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.counters.save(w);
        self.counters_at_roll.save(w);
        self.gauges.save(w);
        self.hists.save(w);
        self.windows.save(w);
    }

    /// Overlays checkpointed metric state; the registration shape (number
    /// of counters/gauges/histograms) must match this registry.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::{Snap, SnapError};
        fn expect_len(expect: usize, got: usize, what: &str) -> Result<(), SnapError> {
            if expect == got {
                Ok(())
            } else {
                Err(SnapError::Mismatch(format!(
                    "{what}: expected {expect} entries, snapshot has {got}"
                )))
            }
        }
        let counters: Vec<u64> = Snap::load(r)?;
        expect_len(
            self.counter_names.len(),
            counters.len(),
            "registry counters",
        )?;
        let counters_at_roll: Vec<u64> = Snap::load(r)?;
        expect_len(
            self.counter_names.len(),
            counters_at_roll.len(),
            "registry counter baselines",
        )?;
        let gauges: Vec<f64> = Snap::load(r)?;
        expect_len(self.gauge_names.len(), gauges.len(), "registry gauges")?;
        let hists: Vec<Histogram> = Snap::load(r)?;
        expect_len(self.hist_names.len(), hists.len(), "registry histograms")?;
        let windows: Vec<WindowSnapshot> = Snap::load(r)?;
        self.counters = counters;
        self.counters_at_roll = counters_at_roll;
        self.gauges = gauges;
        self.hists = hists;
        self.windows = windows;
        Ok(())
    }
}

/// Extracts one counter's per-window column from exported snapshots by
/// name — the join reports and benches perform when pairing a metric (e.g.
/// `dpm_retunes`) with the window axis. `names` is the export's
/// `counter_names` row (registration order); returns `None` when the
/// counter was not registered.
pub fn counter_column(
    names: &[String],
    windows: &[WindowSnapshot],
    name: &str,
) -> Option<Vec<u64>> {
    let idx = names.iter().position(|n| n == name)?;
    Some(windows.iter().map(|w| w.counters[idx]).collect())
}

impl desim::snap::Snap for WindowSnapshot {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u64(self.window);
        self.counters.save(w);
        self.gauges.save(w);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        use desim::snap::Snap;
        Ok(Self {
            window: r.u64()?,
            counters: Snap::load(r)?,
            gauges: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_column_joins_by_name() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("grants");
        let b = reg.counter("retunes");
        reg.inc(a, 3);
        reg.inc(b, 1);
        reg.roll(1);
        reg.inc(b, 4);
        reg.roll(2);
        let names: Vec<String> = reg.counter_names().iter().map(|s| s.to_string()).collect();
        assert_eq!(
            counter_column(&names, reg.windows(), "retunes"),
            Some(vec![1, 4])
        );
        assert_eq!(
            counter_column(&names, reg.windows(), "grants"),
            Some(vec![3, 0])
        );
        assert_eq!(counter_column(&names, reg.windows(), "nope"), None);
    }

    #[test]
    fn counters_roll_as_deltas() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("grants");
        reg.inc(c, 3);
        reg.roll(1);
        reg.inc(c, 2);
        reg.roll(2);
        reg.roll(3);
        let w = reg.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].counters, vec![3]);
        assert_eq!(w[1].counters, vec![2]);
        assert_eq!(w[2].counters, vec![0]);
        assert_eq!(reg.counter_total(c), 5);
    }

    #[test]
    fn gauges_carry_last_value() {
        let mut reg = MetricRegistry::new();
        let g = reg.gauge("buffer_util");
        reg.set(g, 0.25);
        reg.roll(1);
        reg.roll(2);
        assert_eq!(reg.windows()[0].gauges, vec![0.25]);
        // Gauges are last-write-wins, not reset at the boundary.
        assert_eq!(reg.windows()[1].gauges, vec![0.25]);
    }

    #[test]
    fn histograms_accumulate_over_run() {
        let mut reg = MetricRegistry::new();
        let h = reg.histogram("latency", 64, 4.0);
        reg.observe(h, 10.0);
        reg.roll(1);
        reg.observe(h, 20.0);
        assert_eq!(reg.histogram_ref(h).count(), 2);
    }

    #[test]
    fn registration_order_is_export_order() {
        let mut reg = MetricRegistry::new();
        reg.counter("a");
        reg.counter("b");
        reg.gauge("g");
        assert_eq!(reg.counter_names(), &["a", "b"]);
        assert_eq!(reg.gauge_names(), &["g"]);
    }
}
