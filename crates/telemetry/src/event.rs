//! The typed, cycle-stamped event model.
//!
//! Every variant is plain data (`Copy`), small enough to live in a
//! preallocated ring buffer, and carries only indices — no references into
//! the simulator, so recording can never perturb it.

use desim::Cycle;

/// One of the five Lock-Step ring stages of a DBR round (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsStageLabel {
    LinkRequest,
    BoardRequest,
    Reconfigure,
    BoardResponse,
    LinkResponse,
}

impl LsStageLabel {
    /// The wire label, matching `reconfig::protocol::DbrRound::stage()`.
    pub fn name(self) -> &'static str {
        match self {
            LsStageLabel::LinkRequest => "link_request",
            LsStageLabel::BoardRequest => "board_request",
            LsStageLabel::Reconfigure => "reconfigure",
            LsStageLabel::BoardResponse => "board_response",
            LsStageLabel::LinkResponse => "link_response",
        }
    }

    /// Parses a protocol stage label; `None` for "done" and unknown labels.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "link_request" => Some(LsStageLabel::LinkRequest),
            "board_request" => Some(LsStageLabel::BoardRequest),
            "reconfigure" => Some(LsStageLabel::Reconfigure),
            "board_response" => Some(LsStageLabel::BoardResponse),
            "link_response" => Some(LsStageLabel::LinkResponse),
            _ => None,
        }
    }
}

/// Which half of the Lock-Step schedule a window boundary opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowLabel {
    /// Odd window: DPM (rate/voltage scaling) decisions are taken.
    Power,
    /// Even window: DBR (bandwidth reallocation) rounds are triggered.
    Bandwidth,
}

impl WindowLabel {
    pub fn name(self) -> &'static str {
        match self {
            WindowLabel::Power => "power",
            WindowLabel::Bandwidth => "bandwidth",
        }
    }
}

/// Fault taxonomy as seen by the telemetry layer.
///
/// Mirrors `erapid_core::faults::FaultKind` by label rather than by type so
/// the dependency points from core to telemetry, not the other way around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLabel {
    ReceiverDrop,
    ReceiverRepair,
    TransmitterDrop,
    TransmitterRepair,
    LcStuck,
    LcUnstuck,
    CdrRelock,
    TokenLoss,
    TokenCorrupt,
}

impl FaultLabel {
    pub fn name(self) -> &'static str {
        match self {
            FaultLabel::ReceiverDrop => "receiver_drop",
            FaultLabel::ReceiverRepair => "receiver_repair",
            FaultLabel::TransmitterDrop => "transmitter_drop",
            FaultLabel::TransmitterRepair => "transmitter_repair",
            FaultLabel::LcStuck => "lc_stuck",
            FaultLabel::LcUnstuck => "lc_unstuck",
            FaultLabel::CdrRelock => "cdr_relock",
            FaultLabel::TokenLoss => "token_loss",
            FaultLabel::TokenCorrupt => "token_corrupt",
        }
    }

    /// Whether this label repairs (rather than degrades) the system.
    pub fn is_repair(self) -> bool {
        matches!(
            self,
            FaultLabel::ReceiverRepair | FaultLabel::TransmitterRepair | FaultLabel::LcUnstuck
        )
    }
}

/// A cycle-level simulation event.
///
/// Channel coordinates follow the simulator convention: `src` and `dest`
/// are board indices, `wavelength` indexes the home-channel group of `dest`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An R_w window boundary. `index` counts boundaries from 1.
    WindowBoundary { index: u64, kind: WindowLabel },
    /// DPM decided to move a link to a new rate level (odd window).
    /// The transition occupies `penalty` dark cycles once applied.
    DpmRetune {
        src: u16,
        dest: u16,
        wavelength: u16,
        from_level: u8,
        to_level: u8,
        penalty: u64,
    },
    /// A scheduled DPM retune actually took effect at the channel.
    DpmApplied {
        src: u16,
        dest: u16,
        wavelength: u16,
        level: u8,
    },
    /// CDR relock begins: the channel goes dark for `penalty` cycles.
    RelockStart {
        src: u16,
        dest: u16,
        wavelength: u16,
        penalty: u64,
    },
    /// CDR relock ends (stamped `start + penalty`; emitted at start, the
    /// completion cycle is deterministic).
    RelockEnd {
        src: u16,
        dest: u16,
        wavelength: u16,
    },
    /// One Lock-Step ring stage of DBR round `round` completed its span
    /// `[at, end)`.
    LsStage {
        round: u64,
        stage: LsStageLabel,
        end: Cycle,
    },
    /// A DBR round resolved: `grants` wavelength moves committed after
    /// `retries` watchdog recoveries; `aborted` when the ring failed safe.
    DbrOutcome {
        round: u64,
        grants: u32,
        retries: u32,
        aborted: bool,
    },
    /// Wavelength `wavelength` of home board `dest` changed owner.
    Grant {
        dest: u16,
        wavelength: u16,
        from: u16,
        to: u16,
    },
    /// Wavelength withdrawn from service (component failure).
    Revoke {
        dest: u16,
        wavelength: u16,
        owner: u16,
    },
    /// A fault was injected (or a repair applied).
    Fault {
        label: FaultLabel,
        board: u16,
        dest: u16,
        wavelength: u16,
    },
    /// A board→dest transmit-queue utilisation crossed the DBR trigger
    /// threshold B_max. `above` is the new side of the threshold;
    /// `util_milli` is the window-average occupancy in thousandths.
    BufferThreshold {
        board: u16,
        dest: u16,
        above: bool,
        util_milli: u32,
    },
    /// A DLS power-gating decision changed a link's supply state.
    DlsPower {
        src: u16,
        dest: u16,
        wavelength: u16,
        off: bool,
    },
}

impl TraceEvent {
    /// Short event-type tag used by both exporters.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::WindowBoundary { .. } => "window",
            TraceEvent::DpmRetune { .. } => "dpm_retune",
            TraceEvent::DpmApplied { .. } => "dpm_applied",
            TraceEvent::RelockStart { .. } => "relock_start",
            TraceEvent::RelockEnd { .. } => "relock_end",
            TraceEvent::LsStage { .. } => "ls_stage",
            TraceEvent::DbrOutcome { .. } => "dbr_outcome",
            TraceEvent::Grant { .. } => "grant",
            TraceEvent::Revoke { .. } => "revoke",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::BufferThreshold { .. } => "buffer_threshold",
            TraceEvent::DlsPower { .. } => "dls_power",
        }
    }
}

/// A recorded event: the emission cycle plus the event payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    pub at: Cycle,
    pub event: TraceEvent,
}

use desim::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for LsStageLabel {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            LsStageLabel::LinkRequest => 0,
            LsStageLabel::BoardRequest => 1,
            LsStageLabel::Reconfigure => 2,
            LsStageLabel::BoardResponse => 3,
            LsStageLabel::LinkResponse => 4,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => LsStageLabel::LinkRequest,
            1 => LsStageLabel::BoardRequest,
            2 => LsStageLabel::Reconfigure,
            3 => LsStageLabel::BoardResponse,
            4 => LsStageLabel::LinkResponse,
            b => return Err(SnapError::Format(format!("bad LS stage tag {b:#x}"))),
        })
    }
}

impl Snap for WindowLabel {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            WindowLabel::Power => 0,
            WindowLabel::Bandwidth => 1,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WindowLabel::Power,
            1 => WindowLabel::Bandwidth,
            b => return Err(SnapError::Format(format!("bad window label {b:#x}"))),
        })
    }
}

impl Snap for FaultLabel {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            FaultLabel::ReceiverDrop => 0,
            FaultLabel::ReceiverRepair => 1,
            FaultLabel::TransmitterDrop => 2,
            FaultLabel::TransmitterRepair => 3,
            FaultLabel::LcStuck => 4,
            FaultLabel::LcUnstuck => 5,
            FaultLabel::CdrRelock => 6,
            FaultLabel::TokenLoss => 7,
            FaultLabel::TokenCorrupt => 8,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FaultLabel::ReceiverDrop,
            1 => FaultLabel::ReceiverRepair,
            2 => FaultLabel::TransmitterDrop,
            3 => FaultLabel::TransmitterRepair,
            4 => FaultLabel::LcStuck,
            5 => FaultLabel::LcUnstuck,
            6 => FaultLabel::CdrRelock,
            7 => FaultLabel::TokenLoss,
            8 => FaultLabel::TokenCorrupt,
            b => return Err(SnapError::Format(format!("bad fault label {b:#x}"))),
        })
    }
}

impl Snap for TraceEvent {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            TraceEvent::WindowBoundary { index, kind } => {
                w.u8(0);
                w.u64(index);
                kind.save(w);
            }
            TraceEvent::DpmRetune {
                src,
                dest,
                wavelength,
                from_level,
                to_level,
                penalty,
            } => {
                w.u8(1);
                w.u16(src);
                w.u16(dest);
                w.u16(wavelength);
                w.u8(from_level);
                w.u8(to_level);
                w.u64(penalty);
            }
            TraceEvent::DpmApplied {
                src,
                dest,
                wavelength,
                level,
            } => {
                w.u8(2);
                w.u16(src);
                w.u16(dest);
                w.u16(wavelength);
                w.u8(level);
            }
            TraceEvent::RelockStart {
                src,
                dest,
                wavelength,
                penalty,
            } => {
                w.u8(3);
                w.u16(src);
                w.u16(dest);
                w.u16(wavelength);
                w.u64(penalty);
            }
            TraceEvent::RelockEnd {
                src,
                dest,
                wavelength,
            } => {
                w.u8(4);
                w.u16(src);
                w.u16(dest);
                w.u16(wavelength);
            }
            TraceEvent::LsStage { round, stage, end } => {
                w.u8(5);
                w.u64(round);
                stage.save(w);
                w.u64(end);
            }
            TraceEvent::DbrOutcome {
                round,
                grants,
                retries,
                aborted,
            } => {
                w.u8(6);
                w.u64(round);
                w.u32(grants);
                w.u32(retries);
                w.bool(aborted);
            }
            TraceEvent::Grant {
                dest,
                wavelength,
                from,
                to,
            } => {
                w.u8(7);
                w.u16(dest);
                w.u16(wavelength);
                w.u16(from);
                w.u16(to);
            }
            TraceEvent::Revoke {
                dest,
                wavelength,
                owner,
            } => {
                w.u8(8);
                w.u16(dest);
                w.u16(wavelength);
                w.u16(owner);
            }
            TraceEvent::Fault {
                label,
                board,
                dest,
                wavelength,
            } => {
                w.u8(9);
                label.save(w);
                w.u16(board);
                w.u16(dest);
                w.u16(wavelength);
            }
            TraceEvent::BufferThreshold {
                board,
                dest,
                above,
                util_milli,
            } => {
                w.u8(10);
                w.u16(board);
                w.u16(dest);
                w.bool(above);
                w.u32(util_milli);
            }
            TraceEvent::DlsPower {
                src,
                dest,
                wavelength,
                off,
            } => {
                w.u8(11);
                w.u16(src);
                w.u16(dest);
                w.u16(wavelength);
                w.bool(off);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => TraceEvent::WindowBoundary {
                index: r.u64()?,
                kind: WindowLabel::load(r)?,
            },
            1 => TraceEvent::DpmRetune {
                src: r.u16()?,
                dest: r.u16()?,
                wavelength: r.u16()?,
                from_level: r.u8()?,
                to_level: r.u8()?,
                penalty: r.u64()?,
            },
            2 => TraceEvent::DpmApplied {
                src: r.u16()?,
                dest: r.u16()?,
                wavelength: r.u16()?,
                level: r.u8()?,
            },
            3 => TraceEvent::RelockStart {
                src: r.u16()?,
                dest: r.u16()?,
                wavelength: r.u16()?,
                penalty: r.u64()?,
            },
            4 => TraceEvent::RelockEnd {
                src: r.u16()?,
                dest: r.u16()?,
                wavelength: r.u16()?,
            },
            5 => TraceEvent::LsStage {
                round: r.u64()?,
                stage: LsStageLabel::load(r)?,
                end: r.u64()?,
            },
            6 => TraceEvent::DbrOutcome {
                round: r.u64()?,
                grants: r.u32()?,
                retries: r.u32()?,
                aborted: r.bool()?,
            },
            7 => TraceEvent::Grant {
                dest: r.u16()?,
                wavelength: r.u16()?,
                from: r.u16()?,
                to: r.u16()?,
            },
            8 => TraceEvent::Revoke {
                dest: r.u16()?,
                wavelength: r.u16()?,
                owner: r.u16()?,
            },
            9 => TraceEvent::Fault {
                label: FaultLabel::load(r)?,
                board: r.u16()?,
                dest: r.u16()?,
                wavelength: r.u16()?,
            },
            10 => TraceEvent::BufferThreshold {
                board: r.u16()?,
                dest: r.u16()?,
                above: r.bool()?,
                util_milli: r.u32()?,
            },
            11 => TraceEvent::DlsPower {
                src: r.u16()?,
                dest: r.u16()?,
                wavelength: r.u16()?,
                off: r.bool()?,
            },
            b => return Err(SnapError::Format(format!("bad event tag {b:#x}"))),
        })
    }
}

impl Snap for TraceRecord {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.at);
        self.event.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            at: r.u64()?,
            event: TraceEvent::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_round_trip() {
        for stage in [
            LsStageLabel::LinkRequest,
            LsStageLabel::BoardRequest,
            LsStageLabel::Reconfigure,
            LsStageLabel::BoardResponse,
            LsStageLabel::LinkResponse,
        ] {
            assert_eq!(LsStageLabel::from_name(stage.name()), Some(stage));
        }
        assert_eq!(LsStageLabel::from_name("done"), None);
    }

    #[test]
    fn repair_labels_are_classified() {
        assert!(FaultLabel::ReceiverRepair.is_repair());
        assert!(!FaultLabel::TokenLoss.is_repair());
    }

    #[test]
    fn records_are_plain_data() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceRecord>();
    }
}
