//! The typed, cycle-stamped event model.
//!
//! Every variant is plain data (`Copy`), small enough to live in a
//! preallocated ring buffer, and carries only indices — no references into
//! the simulator, so recording can never perturb it.

use desim::Cycle;

/// One of the five Lock-Step ring stages of a DBR round (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsStageLabel {
    LinkRequest,
    BoardRequest,
    Reconfigure,
    BoardResponse,
    LinkResponse,
}

impl LsStageLabel {
    /// The wire label, matching `reconfig::protocol::DbrRound::stage()`.
    pub fn name(self) -> &'static str {
        match self {
            LsStageLabel::LinkRequest => "link_request",
            LsStageLabel::BoardRequest => "board_request",
            LsStageLabel::Reconfigure => "reconfigure",
            LsStageLabel::BoardResponse => "board_response",
            LsStageLabel::LinkResponse => "link_response",
        }
    }

    /// Parses a protocol stage label; `None` for "done" and unknown labels.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "link_request" => Some(LsStageLabel::LinkRequest),
            "board_request" => Some(LsStageLabel::BoardRequest),
            "reconfigure" => Some(LsStageLabel::Reconfigure),
            "board_response" => Some(LsStageLabel::BoardResponse),
            "link_response" => Some(LsStageLabel::LinkResponse),
            _ => None,
        }
    }
}

/// Which half of the Lock-Step schedule a window boundary opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowLabel {
    /// Odd window: DPM (rate/voltage scaling) decisions are taken.
    Power,
    /// Even window: DBR (bandwidth reallocation) rounds are triggered.
    Bandwidth,
}

impl WindowLabel {
    pub fn name(self) -> &'static str {
        match self {
            WindowLabel::Power => "power",
            WindowLabel::Bandwidth => "bandwidth",
        }
    }
}

/// Fault taxonomy as seen by the telemetry layer.
///
/// Mirrors `erapid_core::faults::FaultKind` by label rather than by type so
/// the dependency points from core to telemetry, not the other way around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLabel {
    ReceiverDrop,
    ReceiverRepair,
    TransmitterDrop,
    TransmitterRepair,
    LcStuck,
    LcUnstuck,
    CdrRelock,
    TokenLoss,
    TokenCorrupt,
}

impl FaultLabel {
    pub fn name(self) -> &'static str {
        match self {
            FaultLabel::ReceiverDrop => "receiver_drop",
            FaultLabel::ReceiverRepair => "receiver_repair",
            FaultLabel::TransmitterDrop => "transmitter_drop",
            FaultLabel::TransmitterRepair => "transmitter_repair",
            FaultLabel::LcStuck => "lc_stuck",
            FaultLabel::LcUnstuck => "lc_unstuck",
            FaultLabel::CdrRelock => "cdr_relock",
            FaultLabel::TokenLoss => "token_loss",
            FaultLabel::TokenCorrupt => "token_corrupt",
        }
    }

    /// Whether this label repairs (rather than degrades) the system.
    pub fn is_repair(self) -> bool {
        matches!(
            self,
            FaultLabel::ReceiverRepair | FaultLabel::TransmitterRepair | FaultLabel::LcUnstuck
        )
    }
}

/// A cycle-level simulation event.
///
/// Channel coordinates follow the simulator convention: `src` and `dest`
/// are board indices, `wavelength` indexes the home-channel group of `dest`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An R_w window boundary. `index` counts boundaries from 1.
    WindowBoundary { index: u64, kind: WindowLabel },
    /// DPM decided to move a link to a new rate level (odd window).
    /// The transition occupies `penalty` dark cycles once applied.
    DpmRetune {
        src: u16,
        dest: u16,
        wavelength: u16,
        from_level: u8,
        to_level: u8,
        penalty: u64,
    },
    /// A scheduled DPM retune actually took effect at the channel.
    DpmApplied {
        src: u16,
        dest: u16,
        wavelength: u16,
        level: u8,
    },
    /// CDR relock begins: the channel goes dark for `penalty` cycles.
    RelockStart {
        src: u16,
        dest: u16,
        wavelength: u16,
        penalty: u64,
    },
    /// CDR relock ends (stamped `start + penalty`; emitted at start, the
    /// completion cycle is deterministic).
    RelockEnd {
        src: u16,
        dest: u16,
        wavelength: u16,
    },
    /// One Lock-Step ring stage of DBR round `round` completed its span
    /// `[at, end)`.
    LsStage {
        round: u64,
        stage: LsStageLabel,
        end: Cycle,
    },
    /// A DBR round resolved: `grants` wavelength moves committed after
    /// `retries` watchdog recoveries; `aborted` when the ring failed safe.
    DbrOutcome {
        round: u64,
        grants: u32,
        retries: u32,
        aborted: bool,
    },
    /// Wavelength `wavelength` of home board `dest` changed owner.
    Grant {
        dest: u16,
        wavelength: u16,
        from: u16,
        to: u16,
    },
    /// Wavelength withdrawn from service (component failure).
    Revoke {
        dest: u16,
        wavelength: u16,
        owner: u16,
    },
    /// A fault was injected (or a repair applied).
    Fault {
        label: FaultLabel,
        board: u16,
        dest: u16,
        wavelength: u16,
    },
    /// A board→dest transmit-queue utilisation crossed the DBR trigger
    /// threshold B_max. `above` is the new side of the threshold;
    /// `util_milli` is the window-average occupancy in thousandths.
    BufferThreshold {
        board: u16,
        dest: u16,
        above: bool,
        util_milli: u32,
    },
    /// A DLS power-gating decision changed a link's supply state.
    DlsPower {
        src: u16,
        dest: u16,
        wavelength: u16,
        off: bool,
    },
}

impl TraceEvent {
    /// Short event-type tag used by both exporters.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::WindowBoundary { .. } => "window",
            TraceEvent::DpmRetune { .. } => "dpm_retune",
            TraceEvent::DpmApplied { .. } => "dpm_applied",
            TraceEvent::RelockStart { .. } => "relock_start",
            TraceEvent::RelockEnd { .. } => "relock_end",
            TraceEvent::LsStage { .. } => "ls_stage",
            TraceEvent::DbrOutcome { .. } => "dbr_outcome",
            TraceEvent::Grant { .. } => "grant",
            TraceEvent::Revoke { .. } => "revoke",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::BufferThreshold { .. } => "buffer_threshold",
            TraceEvent::DlsPower { .. } => "dls_power",
        }
    }
}

/// A recorded event: the emission cycle plus the event payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    pub at: Cycle,
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_round_trip() {
        for stage in [
            LsStageLabel::LinkRequest,
            LsStageLabel::BoardRequest,
            LsStageLabel::Reconfigure,
            LsStageLabel::BoardResponse,
            LsStageLabel::LinkResponse,
        ] {
            assert_eq!(LsStageLabel::from_name(stage.name()), Some(stage));
        }
        assert_eq!(LsStageLabel::from_name("done"), None);
    }

    #[test]
    fn repair_labels_are_classified() {
        assert!(FaultLabel::ReceiverRepair.is_repair());
        assert!(!FaultLabel::TokenLoss.is_repair());
    }

    #[test]
    fn records_are_plain_data() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceRecord>();
    }
}
