//! Trace exporters: JSONL (one event per line, grep/jq-friendly) and the
//! Chrome trace-event format, loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`.
//!
//! Both exporters are deterministic: records are written in emission order
//! and numbers use Rust's built-in formatting (shortest round-trip floats),
//! so the same record stream always yields byte-identical output.
//!
//! Chrome-trace timestamps are in "microseconds" by convention; we map one
//! simulation cycle to one microsecond, so Perfetto's time axis reads
//! directly in cycles. Tracks: one process per board (`pid = board + 1`,
//! channel events land on the home board of the wavelength), one thread per
//! wavelength (`tid = wavelength + 1`), plus a `system` process (`pid = 0`)
//! for window boundaries and Lock-Step/DBR ring events.

use crate::event::{TraceEvent, TraceRecord};
use crate::registry::{MetricRegistry, WindowSnapshot};
use std::fmt::Write as _;

/// Serializes one record as a single JSON object (no trailing newline).
pub fn jsonl_line(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"at\":{},\"type\":\"{}\"", rec.at, rec.event.tag());
    match rec.event {
        TraceEvent::WindowBoundary { index, kind } => {
            let _ = write!(s, ",\"index\":{},\"kind\":\"{}\"", index, kind.name());
        }
        TraceEvent::DpmRetune {
            src,
            dest,
            wavelength,
            from_level,
            to_level,
            penalty,
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dest\":{dest},\"wavelength\":{wavelength},\"from_level\":{from_level},\"to_level\":{to_level},\"penalty\":{penalty}"
            );
        }
        TraceEvent::DpmApplied {
            src,
            dest,
            wavelength,
            level,
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dest\":{dest},\"wavelength\":{wavelength},\"level\":{level}"
            );
        }
        TraceEvent::RelockStart {
            src,
            dest,
            wavelength,
            penalty,
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dest\":{dest},\"wavelength\":{wavelength},\"penalty\":{penalty}"
            );
        }
        TraceEvent::RelockEnd {
            src,
            dest,
            wavelength,
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dest\":{dest},\"wavelength\":{wavelength}"
            );
        }
        TraceEvent::LsStage { round, stage, end } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"stage\":\"{}\",\"end\":{end}",
                stage.name()
            );
        }
        TraceEvent::DbrOutcome {
            round,
            grants,
            retries,
            aborted,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"grants\":{grants},\"retries\":{retries},\"aborted\":{aborted}"
            );
        }
        TraceEvent::Grant {
            dest,
            wavelength,
            from,
            to,
        } => {
            let _ = write!(
                s,
                ",\"dest\":{dest},\"wavelength\":{wavelength},\"from\":{from},\"to\":{to}"
            );
        }
        TraceEvent::Revoke {
            dest,
            wavelength,
            owner,
        } => {
            let _ = write!(
                s,
                ",\"dest\":{dest},\"wavelength\":{wavelength},\"owner\":{owner}"
            );
        }
        TraceEvent::Fault {
            label,
            board,
            dest,
            wavelength,
        } => {
            let _ = write!(
                s,
                ",\"label\":\"{}\",\"board\":{board},\"dest\":{dest},\"wavelength\":{wavelength},\"repair\":{}",
                label.name(),
                label.is_repair()
            );
        }
        TraceEvent::BufferThreshold {
            board,
            dest,
            above,
            util_milli,
        } => {
            let _ = write!(
                s,
                ",\"board\":{board},\"dest\":{dest},\"above\":{above},\"util_milli\":{util_milli}"
            );
        }
        TraceEvent::DlsPower {
            src,
            dest,
            wavelength,
            off,
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dest\":{dest},\"wavelength\":{wavelength},\"off\":{off}"
            );
        }
    }
    s.push('}');
    s
}

/// Serializes records as JSON Lines, one event per line, in emission order.
pub fn jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for rec in records {
        out.push_str(&jsonl_line(rec));
        out.push('\n');
    }
    out
}

/// Process id of the synthetic `system` track.
const SYSTEM_PID: u32 = 0;

/// (pid, tid) track for an event: boards are processes, wavelengths are
/// threads; control-plane events live on the `system` track.
fn track(event: &TraceEvent) -> (u32, u32) {
    match *event {
        TraceEvent::DpmRetune {
            dest, wavelength, ..
        }
        | TraceEvent::DpmApplied {
            dest, wavelength, ..
        }
        | TraceEvent::RelockStart {
            dest, wavelength, ..
        }
        | TraceEvent::RelockEnd {
            dest, wavelength, ..
        }
        | TraceEvent::Grant {
            dest, wavelength, ..
        }
        | TraceEvent::Revoke {
            dest, wavelength, ..
        }
        | TraceEvent::Fault {
            dest, wavelength, ..
        }
        | TraceEvent::DlsPower {
            dest, wavelength, ..
        } => (u32::from(dest) + 1, u32::from(wavelength) + 1),
        TraceEvent::BufferThreshold { board, dest, .. } => {
            (u32::from(board) + 1, u32::from(dest) + 1)
        }
        TraceEvent::WindowBoundary { .. }
        | TraceEvent::LsStage { .. }
        | TraceEvent::DbrOutcome { .. } => (SYSTEM_PID, 0),
    }
}

/// Human-readable slice name for the Perfetto track.
fn slice_name(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::WindowBoundary { index, kind } => format!("window {index} ({})", kind.name()),
        TraceEvent::DpmRetune {
            from_level,
            to_level,
            ..
        } => format!("retune L{from_level}->L{to_level}"),
        TraceEvent::DpmApplied { level, .. } => format!("rate L{level}"),
        TraceEvent::RelockStart { .. } => "relock".to_string(),
        TraceEvent::RelockEnd { .. } => "relock_end".to_string(),
        TraceEvent::LsStage { round, stage, .. } => format!("r{round} {}", stage.name()),
        TraceEvent::DbrOutcome {
            round,
            grants,
            aborted,
            ..
        } => {
            if aborted {
                format!("round {round} aborted")
            } else {
                format!("round {round}: {grants} grants")
            }
        }
        TraceEvent::Grant { from, to, .. } => format!("grant {from}->{to}"),
        TraceEvent::Revoke { owner, .. } => format!("revoke (owner {owner})"),
        TraceEvent::Fault { label, .. } => label.name().to_string(),
        TraceEvent::BufferThreshold { above, .. } => {
            if above {
                "buffer>Bmax".to_string()
            } else {
                "buffer<Bmax".to_string()
            }
        }
        TraceEvent::DlsPower { off, .. } => {
            if off {
                "dls off".to_string()
            } else {
                "dls wake".to_string()
            }
        }
    }
}

/// Serializes records as a Chrome trace-event JSON document.
///
/// Spans (`ph: "X"`) are used for events with a known deterministic
/// duration (DPM retunes, CDR relocks, Lock-Step stages); everything else
/// is an instant (`ph: "i"`). Open the file in Perfetto or
/// `chrome://tracing`.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    // Metadata: name each process track once, in first-appearance order.
    let mut named: Vec<u32> = Vec::new();
    for rec in records {
        let (pid, tid) = track(&rec.event);
        if !named.contains(&pid) {
            named.push(pid);
            let pname = if pid == SYSTEM_PID {
                "system".to_string()
            } else {
                format!("board {}", pid - 1)
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{pname}\"}}}}"
            );
        }
        if !first {
            out.push(',');
        }
        first = false;
        let name = slice_name(&rec.event);
        match rec.event {
            TraceEvent::DpmRetune { penalty, .. } | TraceEvent::RelockStart { penalty, .. } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{penalty},\"pid\":{pid},\"tid\":{tid}}}",
                    rec.at
                );
            }
            TraceEvent::LsStage { end, .. } => {
                let dur = end.saturating_sub(rec.at);
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid}}}",
                    rec.at
                );
            }
            _ => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
                    rec.at
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Serializes a registry's finalized windows as JSON Lines: one object per
/// window with named counter deltas and gauge values.
pub fn windows_jsonl(reg: &MetricRegistry) -> String {
    windows_jsonl_rows(reg.counter_names(), reg.gauge_names(), reg.windows())
}

/// As [`windows_jsonl`], for snapshots detached from their registry.
pub fn windows_jsonl_rows(
    counter_names: &[&'static str],
    gauge_names: &[&'static str],
    windows: &[WindowSnapshot],
) -> String {
    let mut out = String::new();
    for w in windows {
        let _ = write!(out, "{{\"window\":{}", w.window);
        for (name, v) in counter_names.iter().zip(&w.counters) {
            let _ = write!(out, ",\"{name}\":{v}");
        }
        for (name, v) in gauge_names.iter().zip(&w.gauges) {
            let _ = write!(out, ",\"{name}\":{v}");
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultLabel, LsStageLabel, WindowLabel};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: 2000,
                event: TraceEvent::WindowBoundary {
                    index: 1,
                    kind: WindowLabel::Power,
                },
            },
            TraceRecord {
                at: 2000,
                event: TraceEvent::DpmRetune {
                    src: 0,
                    dest: 1,
                    wavelength: 2,
                    from_level: 0,
                    to_level: 2,
                    penalty: 77,
                },
            },
            TraceRecord {
                at: 4000,
                event: TraceEvent::LsStage {
                    round: 1,
                    stage: LsStageLabel::LinkRequest,
                    end: 4016,
                },
            },
            TraceRecord {
                at: 4100,
                event: TraceEvent::Fault {
                    label: FaultLabel::ReceiverDrop,
                    board: 1,
                    dest: 1,
                    wavelength: 3,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
        assert!(lines[1].contains("\"type\":\"dpm_retune\""));
        assert!(lines[1].contains("\"penalty\":77"));
        assert!(lines[3].contains("\"label\":\"receiver_drop\""));
        assert!(lines[3].contains("\"repair\":false"));
    }

    #[test]
    fn chrome_trace_has_tracks_and_spans() {
        let text = chrome_trace(&sample_records());
        assert!(text.starts_with('{') && text.ends_with('}'));
        // Both the system track and board 1's track get named.
        assert!(text.contains("\"args\":{\"name\":\"system\"}"));
        assert!(text.contains("\"args\":{\"name\":\"board 1\"}"));
        // The retune and LS stage become spans with durations.
        assert!(text.contains("\"ph\":\"X\",\"ts\":2000,\"dur\":77"));
        assert!(text.contains("\"ph\":\"X\",\"ts\":4000,\"dur\":16"));
        // The fault is an instant.
        assert!(text.contains("\"name\":\"receiver_drop\",\"ph\":\"i\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let recs = sample_records();
        assert_eq!(jsonl(&recs), jsonl(&recs));
        assert_eq!(chrome_trace(&recs), chrome_trace(&recs));
    }

    #[test]
    fn windows_jsonl_names_columns() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("grants");
        let g = reg.gauge("util");
        reg.inc(c, 4);
        reg.set(g, 0.5);
        reg.roll(1);
        let text = windows_jsonl(&reg);
        assert_eq!(text, "{\"window\":1,\"grants\":4,\"util\":0.5}\n");
    }
}
