//! The odd–even window scheduler.
//!
//! §3.2: "We implement odd-even reconfiguration, where every odd cycle
//! R_w = 1, 3, 5 ... RC_i triggers power-awareness cycle and every even
//! cycle, R_w = 2, 4, 6, ... the bandwidth reconfiguration cycle is
//! triggered." Power scaling is local (one-to-one transmitter/receiver
//! mapping); bandwidth reconfiguration is global — alternating them keeps
//! the two control planes from interfering.

use desim::Cycle;

/// What a reconfiguration window triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// DPM: local bit-rate/voltage scaling.
    Power,
    /// DBR: global wavelength re-allocation.
    Bandwidth,
}

/// The LS window schedule: fixed-length windows, odd = power, even =
/// bandwidth (1-indexed, matching the paper's numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockStepSchedule {
    /// Window length `R_w` in cycles (paper: 2000).
    pub window: Cycle,
}

impl LockStepSchedule {
    /// Creates a schedule with the given `R_w`.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0);
        Self { window }
    }

    /// The paper's `R_w` = 2000 cycles ("we use network simulation to
    /// determine an optimum value of R_w to be 2000 simulation cycles").
    pub fn paper() -> Self {
        Self::new(2000)
    }

    /// 1-indexed window number containing cycle `t` (window 1 spans
    /// `[0, window)`).
    pub fn window_index(&self, t: Cycle) -> u64 {
        t / self.window + 1
    }

    /// True exactly at window boundaries (the trigger cycles), excluding
    /// t = 0 (the system boots mid-window-1).
    pub fn is_boundary(&self, t: Cycle) -> bool {
        t > 0 && t.is_multiple_of(self.window)
    }

    /// The kind of cycle triggered at boundary `t` — the *completed* window
    /// index decides: completing window 1 (odd) triggers Power, completing
    /// window 2 (even) triggers Bandwidth.
    pub fn kind_at(&self, t: Cycle) -> Option<WindowKind> {
        if !self.is_boundary(t) {
            return None;
        }
        let completed = t / self.window; // = index of the window just closed
        Some(if completed % 2 == 1 {
            WindowKind::Power
        } else {
            WindowKind::Bandwidth
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_is_2000() {
        assert_eq!(LockStepSchedule::paper().window, 2000);
    }

    #[test]
    fn window_indexing() {
        let s = LockStepSchedule::new(100);
        assert_eq!(s.window_index(0), 1);
        assert_eq!(s.window_index(99), 1);
        assert_eq!(s.window_index(100), 2);
        assert_eq!(s.window_index(250), 3);
    }

    #[test]
    fn boundaries_alternate_power_then_bandwidth() {
        let s = LockStepSchedule::new(100);
        assert!(!s.is_boundary(0));
        assert!(!s.is_boundary(50));
        assert!(s.is_boundary(100));
        assert_eq!(s.kind_at(100), Some(WindowKind::Power)); // window 1 done
        assert_eq!(s.kind_at(200), Some(WindowKind::Bandwidth)); // window 2 done
        assert_eq!(s.kind_at(300), Some(WindowKind::Power));
        assert_eq!(s.kind_at(400), Some(WindowKind::Bandwidth));
        assert_eq!(s.kind_at(150), None);
        assert_eq!(s.kind_at(0), None);
    }

    #[test]
    fn every_boundary_has_a_kind() {
        let s = LockStepSchedule::paper();
        for k in 1..20u64 {
            let t = k * 2000;
            assert!(s.is_boundary(t));
            assert!(s.kind_at(t).is_some());
        }
    }
}
