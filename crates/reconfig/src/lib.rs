#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # reconfig — the Lock-Step (LS) reconfiguration protocol of E-RAPID
//!
//! §3 of the paper. LS is "a history-based distributed reconfiguration
//! algorithm that triggers reconfiguration phases, disseminates state
//! information, re-allocates system bandwidth, regulates power consumption
//! and re-synchronizes the system periodically with minimal control
//! overhead."
//!
//! * [`msg`] — the control packets (`Power_Request`, `Link_Request`,
//!   `Link_Response`, `Board_Request`, `Board_Response`),
//! * [`lc`] — Link Controllers: per-transmitter hardware counters
//!   (`Link_util`, `Buffer_util` over `R_w`) plus the local DPM regulator,
//! * [`rc`] — board Reconfiguration Controllers with their outgoing /
//!   incoming link statistic tables,
//! * [`alloc`] — the Reconfigure stage: classify incoming links as under- /
//!   normal- / over-utilized by `B_min`/`B_max` and re-assign wavelengths,
//! * [`ring`] — the unidirectional electrical control ring connecting RCs,
//!   including a message-level simulation validating the lock-step
//!   synchronisation property,
//! * [`stages`] — protocol stage timing (how many cycles each of the five
//!   stages costs on the ring),
//! * [`lockstep`] — the odd–even window scheduler (odd windows run the
//!   power cycle, even windows the bandwidth cycle).

//!
//! ## Example: one Reconfigure-stage decision
//!
//! ```
//! use reconfig::alloc::{AllocPolicy, FlowDemand, IncomingLink};
//! use photonics::wavelength::{BoardId, Wavelength};
//!
//! // At destination board 0: board 1's flow is congested, board 2's
//! // wavelength is idle — LS re-assigns it.
//! let policy = AllocPolicy::paper();
//! let channels = [
//!     IncomingLink { wavelength: Wavelength(1), owner: BoardId(1), buffer_util: 0.8 },
//!     IncomingLink { wavelength: Wavelength(2), owner: BoardId(2), buffer_util: 0.0 },
//! ];
//! let demands = [
//!     FlowDemand { source: BoardId(1), buffer_util: 0.8 },
//!     FlowDemand { source: BoardId(2), buffer_util: 0.0 },
//! ];
//! let grants = policy.reconfigure_with_demands(BoardId(0), &channels, &demands);
//! assert_eq!(grants.len(), 1);
//! assert_eq!(grants[0].from, BoardId(2));
//! assert_eq!(grants[0].to, BoardId(1));
//! ```

pub mod alloc;
pub mod lc;
pub mod lockstep;
pub mod msg;
pub mod protocol;
pub mod rc;
pub mod ring;
pub mod stages;

pub use alloc::{AllocPolicy, Classification, FlowDemand, Reassignment};
pub use lc::{LinkController, ThresholdWatch};
pub use lockstep::{LockStepSchedule, WindowKind};
pub use protocol::{ProtocolError, RetryPolicy, TokenFault};
pub use rc::ReconfigController;
