//! Clocked, message-level execution of one full DBR round.
//!
//! The system model in `erapid-core` applies DBR decisions after the
//! analytic five-stage latency of [`crate::stages::ProtocolTiming`]. This
//! module is the ground truth that shortcut is validated against: it runs
//! the round as actual control packets — Link Request through the LC
//! chain, Board Request circulating the [`crate::ring::ControlRing`],
//! Reconfigure at each RC, Board Response around the ring again, Link
//! Response back through the LCs — one cycle at a time, and reports both
//! the decisions and the cycle the round completed.
//!
//! The ring stages are additionally guarded against control-plane faults:
//! each origin tracks whether its token has returned home, and a per-stage
//! watchdog (the LS heartbeat) relaunches missing tokens after the
//! expected round trip plus a grace window, doubling the grace on every
//! attempt (bounded retry with exponential backoff, [`RetryPolicy`]). A
//! token whose checksum fails on return is discarded and resent
//! immediately. A stage that exhausts its retry budget aborts the round
//! fail-safe: the outcome carries a [`ProtocolError`] and no grants, so
//! the system keeps its current allocation rather than acting on partial
//! state.
//!
//! Invariants checked by the tests (and usable by callers):
//! * decisions equal a direct [`crate::alloc::AllocPolicy`] evaluation of
//!   the same window statistics,
//! * fault-free completion time equals `ProtocolTiming::dbr_latency()`
//!   exactly (the watchdog never fires on a lossless ring),
//! * the ring never holds more than one packet per board per hop slot
//!   (the lock-step property).

use crate::alloc::{AllocPolicy, FlowDemand};
use crate::msg::{ControlPacket, LaserCommand, LinkReading, WavelengthGrant};
use crate::rc::ReconfigController;
use crate::ring::ControlRing;
use crate::stages::{ProtocolTiming, Stage};
use desim::Cycle;
use photonics::wavelength::BoardId;

/// A permanent control-protocol failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A ring stage could not complete within the retry budget: some
    /// origin's token kept vanishing.
    RingStalled {
        /// The stage that stalled.
        stage: Stage,
        /// Relaunch attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::RingStalled { stage, attempts } => write!(
                f,
                "ring stalled in {stage:?} after {attempts} relaunch attempts"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Detection/recovery knobs for the ring-stage watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Slack beyond the expected ring round trip before the watchdog
    /// declares a token lost (initial detection window; doubled per
    /// attempt).
    pub grace: Cycle,
    /// Relaunch attempts per ring stage before the round aborts.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            grace: 16,
            max_retries: 4,
        }
    }
}

impl RetryPolicy {
    /// The deterministic extra latency one token fault costs a round when
    /// recovery succeeds on the first attempt: a lost token is detected
    /// after `round_trip + grace` and its relaunch takes another round
    /// trip; a corrupted token is detected for free on return and only
    /// pays the resend round trip. This is the analytic mirror of the
    /// message-level recovery (see `erapid-core`'s control planes).
    pub fn recovery_delay(&self, timing: &ProtocolTiming, corrupt: bool) -> Cycle {
        let round_trip = timing.boards as Cycle * timing.ring_hop;
        if corrupt {
            round_trip
        } else {
            round_trip + self.grace
        }
    }
}

/// A control-plane fault aimed at one board's LS token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenFault {
    /// The board whose token is hit.
    pub victim: BoardId,
    /// `true`: the token is corrupted in flight (detected by checksum on
    /// return). `false`: the token vanishes outright (detected by the
    /// watchdog timeout).
    pub corrupt: bool,
}

impl desim::snap::Snap for TokenFault {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u16(self.victim.0);
        w.bool(self.corrupt);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            victim: photonics::wavelength::BoardId(r.u16()?),
            corrupt: r.bool()?,
        })
    }
}

/// The observable result of a completed DBR round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Every ownership transfer decided this round (all destinations).
    /// Empty when the round aborted (`error` is set).
    pub grants: Vec<WavelengthGrant>,
    /// Per-board laser commands derived from the grants.
    pub commands: Vec<Vec<LaserCommand>>,
    /// Cycle (relative to the round start) at which the Link Response
    /// stage finished and the commands took effect.
    pub completed_at: Cycle,
    /// Token resends performed (loss relaunches + corruption resends).
    pub retries: u32,
    /// Set when the round aborted fail-safe instead of completing.
    pub error: Option<ProtocolError>,
}

/// Internal phase of the round driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundPhase {
    /// Link Request circulating the LC chains (fixed duration).
    LinkRequest {
        /// Completion cycle of the stage.
        until: Cycle,
    },
    /// Board Request packets circulating the ring.
    BoardRequest,
    /// Reconfigure computation at every RC.
    Reconfigure {
        /// Completion cycle of the stage.
        until: Cycle,
    },
    /// Board Response packets circulating the ring.
    BoardResponse,
    /// Link Response circulating the LC chains (fixed duration).
    LinkResponse {
        /// Completion cycle of the stage.
        until: Cycle,
    },
    /// Round complete.
    Done,
}

/// Drives one DBR round to completion, cycle by cycle.
pub struct DbrRound {
    boards: u16,
    timing: ProtocolTiming,
    ring: ControlRing,
    rcs: Vec<ReconfigController>,
    /// Flow demands per destination (indexed `[d][..]`), carried alongside
    /// the per-channel readings as described in `alloc`.
    demands: Vec<Vec<FlowDemand>>,
    phase: RoundPhase,
    start: Cycle,
    grants: Vec<WavelengthGrant>,
    /// Per-destination grant payloads decided at Reconfigure — kept so a
    /// lost Board Response token can be resent with its original payload.
    response_grants: Vec<Vec<WavelengthGrant>>,
    outcome: Option<RoundOutcome>,
    retry: RetryPolicy,
    /// Per-origin "my token is home" flags for the current ring stage.
    home: Vec<bool>,
    /// Per-origin corrupted-token flags (checksum fails on return).
    corrupted: Vec<bool>,
    /// Watchdog deadline of the current ring stage.
    deadline: Cycle,
    /// Watchdog relaunch attempts in the current ring stage.
    attempts: u32,
    /// Token resends across the whole round.
    retries: u32,
    /// Faults waiting for the next ring-stage launch (the victim had no
    /// token in flight when the fault struck).
    armed: Vec<TokenFault>,
    error: Option<ProtocolError>,
    /// Stage transitions observed so far: `(cycle, new stage label)`,
    /// starting with `(start, "link_request")`. This is the telemetry
    /// layer's view of the Lock-Step ring — bounded (≤ 6 entries) and
    /// recorded unconditionally so message-level and analytic traces can
    /// be compared stage by stage.
    stage_log: Vec<(Cycle, &'static str)>,
}

impl DbrRound {
    /// Starts a round at cycle `start`.
    ///
    /// `outgoing[b]` is board `b`'s Link-Request readings (one per
    /// transmitter); `demands[d]` is the per-flow queue telemetry toward
    /// destination `d` (what the static LCs keep reporting even for flows
    /// whose lasers are dark).
    pub fn new(
        timing: ProtocolTiming,
        policy: AllocPolicy,
        start: Cycle,
        outgoing: Vec<Vec<LinkReading>>,
        demands: Vec<Vec<FlowDemand>>,
    ) -> Self {
        let boards = timing.boards;
        assert_eq!(outgoing.len(), boards as usize);
        assert_eq!(demands.len(), boards as usize);
        let mut rcs: Vec<ReconfigController> = (0..boards)
            .map(|b| ReconfigController::new(BoardId(b), boards, policy))
            .collect();
        // Stage 1 payload is known at construction; the stage still costs
        // its chain time before the ring stage may begin.
        for (b, readings) in outgoing.iter().enumerate() {
            rcs[b].update_outgoing(readings);
        }
        let link_req = timing.stage_cycles(Stage::LinkRequest);
        Self {
            boards,
            timing,
            ring: ControlRing::new(boards, timing.ring_hop),
            rcs,
            demands,
            phase: RoundPhase::LinkRequest {
                until: start + link_req,
            },
            start,
            grants: Vec::new(),
            response_grants: vec![Vec::new(); boards as usize],
            outcome: None,
            retry: RetryPolicy::default(),
            home: vec![false; boards as usize],
            corrupted: vec![false; boards as usize],
            deadline: Cycle::MAX,
            attempts: 0,
            retries: 0,
            armed: Vec::new(),
            error: None,
            stage_log: vec![(start, "link_request")],
        }
    }

    /// Overrides the watchdog policy (builder style; call before the first
    /// tick).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The phase label, for tracing.
    pub fn stage(&self) -> &'static str {
        match self.phase {
            RoundPhase::LinkRequest { .. } => "link_request",
            RoundPhase::BoardRequest => "board_request",
            RoundPhase::Reconfigure { .. } => "reconfigure",
            RoundPhase::BoardResponse => "board_response",
            RoundPhase::LinkResponse { .. } => "link_response",
            RoundPhase::Done => "done",
        }
    }

    /// Whether the round has completed.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, RoundPhase::Done)
    }

    /// Stage transitions observed so far: `(cycle, new stage label)`.
    /// Consecutive entries delimit one stage's span; the final entry is
    /// `(completion, "done")` once the round resolves.
    pub fn stage_log(&self) -> &[(Cycle, &'static str)] {
        &self.stage_log
    }

    /// Drains the stage log (used by the system tracer on completion).
    pub fn take_stage_log(&mut self) -> Vec<(Cycle, &'static str)> {
        std::mem::take(&mut self.stage_log)
    }

    /// Records a phase change and stamps it in the stage log.
    fn set_phase(&mut self, now: Cycle, phase: RoundPhase) {
        self.phase = phase;
        self.stage_log.push((now, self.stage()));
    }

    /// Token resends performed so far.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Drains the faults that armed too late to strike in this round (so a
    /// caller can carry them into the next one).
    pub fn take_armed(&mut self) -> Vec<TokenFault> {
        std::mem::take(&mut self.armed)
    }

    /// Injects a control-plane fault into the running round. If the
    /// victim's token is on the ring it is dropped (loss) or marked
    /// corrupted (checksum failure on return); otherwise the fault arms
    /// and strikes at the next ring-stage launch. Faults injected after
    /// the last ring stage are inert.
    pub fn inject_fault(&mut self, fault: TokenFault) {
        if self.is_done() {
            return;
        }
        let v = fault.victim;
        let in_ring_stage = matches!(
            self.phase,
            RoundPhase::BoardRequest | RoundPhase::BoardResponse
        );
        if in_ring_stage && !self.home[v.index()] && self.ring.has_packet_from(v) {
            if fault.corrupt {
                self.corrupted[v.index()] = true;
            } else {
                self.ring.drop_packet_from(v);
            }
            return;
        }
        if !self.armed.iter().any(|f| f.victim == v) {
            self.armed.push(fault);
        }
    }

    /// A fresh copy of `origin`'s token for `stage` (used at launch and
    /// for every resend — re-collection is safe because RC table reads
    /// are idempotent).
    fn fresh_token(&self, origin: BoardId, stage: Stage) -> ControlPacket {
        if stage == Stage::BoardRequest {
            ControlPacket::BoardRequest {
                origin,
                reports: vec![],
            }
        } else {
            ControlPacket::BoardResponse {
                origin,
                grants: self.response_grants[origin.index()].clone(),
            }
        }
    }

    /// Lock-step launch of a ring stage: every board sends its token
    /// simultaneously (Fig. 4(b)), armed faults strike at the launch, and
    /// the stage watchdog is primed.
    fn launch_ring_stage(&mut self, now: Cycle, stage: Stage) {
        self.home.iter_mut().for_each(|h| *h = false);
        self.corrupted.iter_mut().for_each(|c| *c = false);
        self.attempts = 0;
        for b in 0..self.boards {
            let mut lost = false;
            if let Some(pos) = self.armed.iter().position(|f| f.victim == BoardId(b)) {
                let f = self.armed.remove(pos);
                if f.corrupt {
                    self.corrupted[b as usize] = true;
                } else {
                    lost = true;
                }
            }
            if !lost {
                let token = self.fresh_token(BoardId(b), stage);
                self.ring.send(now, BoardId(b), token);
            }
        }
        self.deadline = now + self.ring.round_trip() + self.retry.grace;
    }

    /// One cycle of a ring stage. Returns `true` when every token is home
    /// (stage complete). May set `self.error` when the retry budget runs
    /// out.
    fn tick_ring_stage(&mut self, now: Cycle, stage: Stage) -> bool {
        self.ring.advance(now);
        for b in 0..self.boards {
            while let Some((_, mut packet)) = self.ring.receive(BoardId(b)) {
                let origin = packet.origin();
                if origin == BoardId(b) {
                    if self.corrupted[b as usize] {
                        // Checksum failure at the origin: discard the
                        // mangled token and resend; the fresh copy must
                        // make a full loop.
                        self.corrupted[b as usize] = false;
                        self.retries += 1;
                        let token = self.fresh_token(origin, stage);
                        self.ring.send(now, BoardId(b), token);
                        self.deadline = self
                            .deadline
                            .max(now + self.ring.round_trip() + self.retry.grace);
                    } else {
                        if let ControlPacket::BoardRequest { reports, .. } = &packet {
                            self.rcs[b as usize].update_incoming(reports);
                        }
                        self.home[b as usize] = true;
                    }
                } else {
                    if let ControlPacket::BoardRequest { reports, .. } = &mut packet {
                        if let Some(r) = self.rcs[b as usize].report_toward(origin) {
                            reports.push(r);
                        }
                    }
                    self.ring.send(now, BoardId(b), packet);
                }
            }
        }
        if self.home.iter().all(|&h| h) {
            return true;
        }
        if now >= self.deadline {
            self.watchdog_fire(now, stage);
        }
        false
    }

    /// The stage watchdog: some token missed its deadline. Relaunch every
    /// missing token and double the grace window; give up (set the error)
    /// once the retry budget is exhausted.
    fn watchdog_fire(&mut self, now: Cycle, stage: Stage) {
        if self.attempts >= self.retry.max_retries {
            self.error = Some(ProtocolError::RingStalled {
                stage,
                attempts: self.attempts,
            });
            return;
        }
        self.attempts += 1;
        for b in 0..self.boards {
            if !self.home[b as usize] {
                self.retries += 1;
                let token = self.fresh_token(BoardId(b), stage);
                self.ring.send(now, BoardId(b), token);
            }
        }
        let backoff = self.retry.grace << self.attempts.min(16);
        self.deadline = now + self.ring.round_trip() + backoff;
    }

    /// Fail-safe abort: no grants, the error attached.
    fn fail_outcome(&mut self, now: Cycle) -> RoundOutcome {
        let outcome = RoundOutcome {
            grants: Vec::new(),
            commands: vec![Vec::new(); self.boards as usize],
            completed_at: now - self.start,
            retries: self.retries,
            error: self.error,
        };
        self.outcome = Some(outcome.clone());
        self.set_phase(now, RoundPhase::Done);
        outcome
    }

    /// Advances to cycle `now`; returns the outcome exactly once, on the
    /// cycle the round completes (or aborts).
    pub fn tick(&mut self, now: Cycle) -> Option<RoundOutcome> {
        match self.phase {
            RoundPhase::LinkRequest { until } => {
                if now >= until {
                    self.launch_ring_stage(now, Stage::BoardRequest);
                    self.set_phase(now, RoundPhase::BoardRequest);
                }
                None
            }
            RoundPhase::BoardRequest => {
                if self.tick_ring_stage(now, Stage::BoardRequest) {
                    // All tokens are home: Reconfigure starts.
                    self.set_phase(
                        now,
                        RoundPhase::Reconfigure {
                            until: now + self.timing.stage_cycles(Stage::Reconfigure),
                        },
                    );
                } else if self.error.is_some() {
                    return Some(self.fail_outcome(now));
                }
                None
            }
            RoundPhase::Reconfigure { until } => {
                if now >= until {
                    // Each destination RC folds in the flow demands and
                    // decides; grants launch on the ring as Board Responses.
                    for d in 0..self.boards {
                        let rc = &mut self.rcs[d as usize];
                        let channels: Vec<_> = (1..self.boards)
                            .filter_map(|w| {
                                rc.incoming(photonics::wavelength::Wavelength(w)).copied()
                            })
                            .collect();
                        let grants = rc.policy().reconfigure_with_demands(
                            BoardId(d),
                            &channels,
                            &self.demands[d as usize],
                        );
                        self.grants.extend(grants.iter().copied());
                        self.response_grants[d as usize] = grants;
                    }
                    self.launch_ring_stage(now, Stage::BoardResponse);
                    self.set_phase(now, RoundPhase::BoardResponse);
                }
                None
            }
            RoundPhase::BoardResponse => {
                if self.tick_ring_stage(now, Stage::BoardResponse) {
                    self.set_phase(
                        now,
                        RoundPhase::LinkResponse {
                            until: now + self.timing.stage_cycles(Stage::LinkResponse),
                        },
                    );
                } else if self.error.is_some() {
                    return Some(self.fail_outcome(now));
                }
                None
            }
            RoundPhase::LinkResponse { until } => {
                if now >= until {
                    let commands: Vec<Vec<LaserCommand>> = (0..self.boards)
                        .map(|b| self.rcs[b as usize].commands_from_grants(&self.grants))
                        .collect();
                    let outcome = RoundOutcome {
                        grants: self.grants.clone(),
                        commands,
                        completed_at: now - self.start,
                        retries: self.retries,
                        error: None,
                    };
                    self.outcome = Some(outcome.clone());
                    self.set_phase(now, RoundPhase::Done);
                    return Some(outcome);
                }
                None
            }
            RoundPhase::Done => None,
        }
    }

    /// Runs the round to completion starting from its start cycle.
    pub fn run_to_completion(&mut self) -> RoundOutcome {
        let mut now = self.start;
        loop {
            if let Some(outcome) = self.tick(now) {
                return outcome;
            }
            assert!(
                now < self.start + 100 * self.timing.dbr_latency().max(1),
                "round failed to converge"
            );
            now += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonics::bitrate::RateLevel;
    use photonics::rwa::StaticRwa;

    const BOARDS: u16 = 4;

    fn timing() -> ProtocolTiming {
        ProtocolTiming {
            boards: BOARDS,
            lcs_per_board: BOARDS,
            ..ProtocolTiming::paper64()
        }
    }

    /// Outgoing readings for the complement-like scenario: board 0 hot
    /// toward board 3, all other flows idle.
    fn scenario() -> (Vec<Vec<LinkReading>>, Vec<Vec<FlowDemand>>) {
        let rwa = StaticRwa::new(BOARDS);
        let mut outgoing = vec![Vec::new(); BOARDS as usize];
        for s in 0..BOARDS {
            for d in 0..BOARDS {
                if s == d {
                    continue;
                }
                let w = rwa.wavelength(BoardId(s), BoardId(d));
                let hot = s == 0 && d == 3;
                outgoing[s as usize].push(LinkReading {
                    wavelength: w,
                    destination: Some(BoardId(d)),
                    link_util: if hot { 1.0 } else { 0.0 },
                    buffer_util: if hot { 0.9 } else { 0.0 },
                    level: RateLevel(2),
                });
            }
        }
        let mut demands = vec![Vec::new(); BOARDS as usize];
        for d in 0..BOARDS {
            for s in 0..BOARDS {
                if s == d {
                    continue;
                }
                let hot = s == 0 && d == 3;
                demands[d as usize].push(FlowDemand {
                    source: BoardId(s),
                    buffer_util: if hot { 0.9 } else { 0.0 },
                });
            }
        }
        (outgoing, demands)
    }

    /// Drives a round tick by tick, injecting `fault` at cycle `fault_at`.
    fn run_with_fault(
        mut round: DbrRound,
        start: Cycle,
        fault_at: Cycle,
        fault: TokenFault,
    ) -> RoundOutcome {
        let mut now = start;
        loop {
            if now == fault_at {
                round.inject_fault(fault);
            }
            if let Some(outcome) = round.tick(now) {
                return outcome;
            }
            assert!(now < start + 10_000, "faulted round failed to converge");
            now += 1;
        }
    }

    #[test]
    fn round_reaches_the_direct_decision() {
        let (outgoing, demands) = scenario();
        let mut round = DbrRound::new(timing(), AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = round.run_to_completion();
        // Direct evaluation: two idle wavelengths toward board 3 go to 0.
        assert_eq!(outcome.grants.len(), 2, "{:?}", outcome.grants);
        assert!(outcome.grants.iter().all(|g| g.destination == BoardId(3)));
        assert!(outcome.grants.iter().all(|g| g.to == BoardId(0)));
        // Commands: board 0 lights two lasers, donors darken one each.
        assert_eq!(outcome.commands[0].len(), 2);
        assert!(outcome.commands[0].iter().all(|c| c.on));
        let offs: usize = outcome.commands[1..3]
            .iter()
            .map(|c| c.iter().filter(|c| !c.on).count())
            .sum();
        assert_eq!(offs, 2);
        assert!(round.is_done());
        assert_eq!(outcome.retries, 0);
        assert!(outcome.error.is_none());
    }

    #[test]
    fn completion_time_matches_the_analytic_latency() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let mut round = DbrRound::new(t, AllocPolicy::paper(), 100, outgoing, demands);
        let outcome = round.run_to_completion();
        assert_eq!(
            outcome.completed_at,
            t.dbr_latency(),
            "message-level round must take exactly the analytic latency"
        );
    }

    #[test]
    fn balanced_round_produces_no_grants_but_still_costs_latency() {
        let rwa = StaticRwa::new(BOARDS);
        let mut outgoing = vec![Vec::new(); BOARDS as usize];
        for s in 0..BOARDS {
            for d in 0..BOARDS {
                if s == d {
                    continue;
                }
                outgoing[s as usize].push(LinkReading {
                    wavelength: rwa.wavelength(BoardId(s), BoardId(d)),
                    destination: Some(BoardId(d)),
                    link_util: 0.5,
                    buffer_util: 0.2,
                    level: RateLevel(2),
                });
            }
        }
        let demands = (0..BOARDS)
            .map(|d| {
                (0..BOARDS)
                    .filter(|&s| s != d)
                    .map(|s| FlowDemand {
                        source: BoardId(s),
                        buffer_util: 0.2,
                    })
                    .collect()
            })
            .collect();
        let t = timing();
        let mut round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = round.run_to_completion();
        assert!(outcome.grants.is_empty());
        assert!(outcome.commands.iter().all(|c| c.is_empty()));
        assert_eq!(outcome.completed_at, t.dbr_latency());
    }

    #[test]
    fn stage_labels_progress_in_order() {
        let (outgoing, demands) = scenario();
        let mut round = DbrRound::new(timing(), AllocPolicy::paper(), 0, outgoing, demands);
        let mut seen = vec![round.stage()];
        let mut now = 0;
        while !round.is_done() {
            round.tick(now);
            if *seen.last().unwrap() != round.stage() {
                seen.push(round.stage());
            }
            now += 1;
        }
        assert_eq!(
            seen,
            vec![
                "link_request",
                "board_request",
                "reconfigure",
                "board_response",
                "link_response",
                "done"
            ]
        );
    }

    #[test]
    fn stage_log_records_all_transitions_with_cycles() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let mut round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = round.run_to_completion();
        let log = round.stage_log();
        let labels: Vec<&'static str> = log.iter().map(|&(_, l)| l).collect();
        assert_eq!(
            labels,
            vec![
                "link_request",
                "board_request",
                "reconfigure",
                "board_response",
                "link_response",
                "done"
            ]
        );
        // Entries are time-ordered, start at the round start and end at the
        // completion cycle.
        assert!(log.windows(2).all(|p| p[0].0 <= p[1].0));
        assert_eq!(log[0].0, 0);
        assert_eq!(log[log.len() - 1].0, outcome.completed_at);
        // Draining leaves the log empty for the next round.
        let drained = round.take_stage_log();
        assert_eq!(drained.len(), 6);
        assert!(round.stage_log().is_empty());
    }

    #[test]
    fn token_loss_mid_ring_recovers_with_one_retry() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let baseline = DbrRound::new(
            t,
            AllocPolicy::paper(),
            0,
            outgoing.clone(),
            demands.clone(),
        )
        .run_to_completion();
        // Board Request launches at link_req = 5; drop board 1's token at 6.
        let round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        let policy = RetryPolicy::default();
        let outcome = run_with_fault(
            round,
            0,
            6,
            TokenFault {
                victim: BoardId(1),
                corrupt: false,
            },
        );
        assert!(outcome.error.is_none(), "round must complete via retry");
        assert_eq!(outcome.retries, 1);
        // Exactly the analytic recovery delay on top of the clean latency.
        assert_eq!(
            outcome.completed_at,
            t.dbr_latency() + policy.recovery_delay(&t, false)
        );
        // And the decisions are unchanged: the relaunched token recollected
        // the same statistics.
        assert_eq!(outcome.grants, baseline.grants);
    }

    #[test]
    fn token_loss_before_launch_strikes_at_launch() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        // Injected during Link Request (no token in flight yet): the fault
        // arms and the victim's token never enters the ring at launch.
        let outcome = run_with_fault(
            round,
            0,
            2,
            TokenFault {
                victim: BoardId(2),
                corrupt: false,
            },
        );
        assert!(outcome.error.is_none());
        assert_eq!(outcome.retries, 1);
        assert_eq!(
            outcome.completed_at,
            t.dbr_latency() + RetryPolicy::default().recovery_delay(&t, false)
        );
    }

    #[test]
    fn corrupted_token_is_detected_on_return_and_resent() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let baseline = DbrRound::new(
            t,
            AllocPolicy::paper(),
            0,
            outgoing.clone(),
            demands.clone(),
        )
        .run_to_completion();
        let round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = run_with_fault(
            round,
            0,
            6,
            TokenFault {
                victim: BoardId(1),
                corrupt: true,
            },
        );
        assert!(outcome.error.is_none());
        assert_eq!(outcome.retries, 1);
        // Detection is free (checksum on return); only the resend loop is
        // paid — no grace window.
        assert_eq!(
            outcome.completed_at,
            t.dbr_latency() + RetryPolicy::default().recovery_delay(&t, true)
        );
        assert_eq!(outcome.grants, baseline.grants);
    }

    #[test]
    fn board_response_token_loss_preserves_the_decisions() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let baseline = DbrRound::new(
            t,
            AllocPolicy::paper(),
            0,
            outgoing.clone(),
            demands.clone(),
        )
        .run_to_completion();
        // Reconfigure ends (and Board Response launches) at 5 + 8 + 4 = 17;
        // hit board 3's response token right after.
        let round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = run_with_fault(
            round,
            0,
            18,
            TokenFault {
                victim: BoardId(3),
                corrupt: false,
            },
        );
        assert!(outcome.error.is_none());
        assert_eq!(outcome.retries, 1);
        assert_eq!(outcome.grants, baseline.grants);
        assert_eq!(
            outcome.completed_at,
            t.dbr_latency() + RetryPolicy::default().recovery_delay(&t, false)
        );
    }

    #[test]
    fn persistent_loss_aborts_fail_safe_after_max_retries() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let mut round =
            DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands).with_retry(RetryPolicy {
                grace: 4,
                max_retries: 2,
            });
        // An adversarial jammer: board 1's token is destroyed every cycle,
        // including every relaunch.
        let mut now = 0;
        let outcome = loop {
            round.inject_fault(TokenFault {
                victim: BoardId(1),
                corrupt: false,
            });
            if let Some(outcome) = round.tick(now) {
                break outcome;
            }
            assert!(now < 10_000, "abort path must terminate");
            now += 1;
        };
        assert_eq!(
            outcome.error,
            Some(ProtocolError::RingStalled {
                stage: Stage::BoardRequest,
                attempts: 2,
            })
        );
        assert!(
            outcome.grants.is_empty(),
            "fail-safe abort must not act on partial state"
        );
        assert!(outcome.commands.iter().all(|c| c.is_empty()));
        assert!(outcome.retries >= 2);
    }

    #[test]
    fn fault_after_completion_is_inert() {
        let (outgoing, demands) = scenario();
        let mut round = DbrRound::new(timing(), AllocPolicy::paper(), 0, outgoing, demands);
        round.run_to_completion();
        round.inject_fault(TokenFault {
            victim: BoardId(0),
            corrupt: false,
        });
        assert!(round.is_done());
        assert_eq!(round.retries(), 0);
    }
}
