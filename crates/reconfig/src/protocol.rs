//! Clocked, message-level execution of one full DBR round.
//!
//! The system model in `erapid-core` applies DBR decisions after the
//! analytic five-stage latency of [`crate::stages::ProtocolTiming`]. This
//! module is the ground truth that shortcut is validated against: it runs
//! the round as actual control packets — Link Request through the LC
//! chain, Board Request circulating the [`crate::ring::ControlRing`],
//! Reconfigure at each RC, Board Response around the ring again, Link
//! Response back through the LCs — one cycle at a time, and reports both
//! the decisions and the cycle the round completed.
//!
//! Invariants checked by the tests (and usable by callers):
//! * decisions equal a direct [`crate::alloc::AllocPolicy`] evaluation of
//!   the same window statistics,
//! * completion time equals `ProtocolTiming::dbr_latency()`,
//! * the ring never holds more than one packet per board per hop slot
//!   (the lock-step property).

use crate::alloc::{AllocPolicy, FlowDemand};
use crate::msg::{ControlPacket, LaserCommand, LinkReading, WavelengthGrant};
use crate::rc::ReconfigController;
use crate::ring::ControlRing;
use crate::stages::{ProtocolTiming, Stage};
use desim::Cycle;
use photonics::wavelength::BoardId;

/// The observable result of a completed DBR round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Every ownership transfer decided this round (all destinations).
    pub grants: Vec<WavelengthGrant>,
    /// Per-board laser commands derived from the grants.
    pub commands: Vec<Vec<LaserCommand>>,
    /// Cycle (relative to the round start) at which the Link Response
    /// stage finished and the commands took effect.
    pub completed_at: Cycle,
}

/// Internal phase of the round driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundPhase {
    /// Link Request circulating the LC chains (fixed duration).
    LinkRequest {
        /// Completion cycle of the stage.
        until: Cycle,
    },
    /// Board Request packets circulating the ring.
    BoardRequest {
        /// Hops completed so far.
        hops: u16,
    },
    /// Reconfigure computation at every RC.
    Reconfigure {
        /// Completion cycle of the stage.
        until: Cycle,
    },
    /// Board Response packets circulating the ring.
    BoardResponse {
        /// Hops completed so far.
        hops: u16,
    },
    /// Link Response circulating the LC chains (fixed duration).
    LinkResponse {
        /// Completion cycle of the stage.
        until: Cycle,
    },
    /// Round complete.
    Done,
}

/// Drives one DBR round to completion, cycle by cycle.
pub struct DbrRound {
    boards: u16,
    timing: ProtocolTiming,
    ring: ControlRing,
    rcs: Vec<ReconfigController>,
    /// Flow demands per destination (indexed `[d][..]`), carried alongside
    /// the per-channel readings as described in `alloc`.
    demands: Vec<Vec<FlowDemand>>,
    phase: RoundPhase,
    start: Cycle,
    grants: Vec<WavelengthGrant>,
    outcome: Option<RoundOutcome>,
}

impl DbrRound {
    /// Starts a round at cycle `start`.
    ///
    /// `outgoing[b]` is board `b`'s Link-Request readings (one per
    /// transmitter); `demands[d]` is the per-flow queue telemetry toward
    /// destination `d` (what the static LCs keep reporting even for flows
    /// whose lasers are dark).
    pub fn new(
        timing: ProtocolTiming,
        policy: AllocPolicy,
        start: Cycle,
        outgoing: Vec<Vec<LinkReading>>,
        demands: Vec<Vec<FlowDemand>>,
    ) -> Self {
        let boards = timing.boards;
        assert_eq!(outgoing.len(), boards as usize);
        assert_eq!(demands.len(), boards as usize);
        let mut rcs: Vec<ReconfigController> = (0..boards)
            .map(|b| ReconfigController::new(BoardId(b), boards, policy))
            .collect();
        // Stage 1 payload is known at construction; the stage still costs
        // its chain time before the ring stage may begin.
        for (b, readings) in outgoing.iter().enumerate() {
            rcs[b].update_outgoing(readings);
        }
        let link_req = timing.stage_cycles(Stage::LinkRequest);
        Self {
            boards,
            timing,
            ring: ControlRing::new(boards, timing.ring_hop),
            rcs,
            demands,
            phase: RoundPhase::LinkRequest {
                until: start + link_req,
            },
            start,
            grants: Vec::new(),
            outcome: None,
        }
    }

    /// The phase label, for tracing.
    pub fn stage(&self) -> &'static str {
        match self.phase {
            RoundPhase::LinkRequest { .. } => "link_request",
            RoundPhase::BoardRequest { .. } => "board_request",
            RoundPhase::Reconfigure { .. } => "reconfigure",
            RoundPhase::BoardResponse { .. } => "board_response",
            RoundPhase::LinkResponse { .. } => "link_response",
            RoundPhase::Done => "done",
        }
    }

    /// Whether the round has completed.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, RoundPhase::Done)
    }

    /// Advances to cycle `now`; returns the outcome exactly once, on the
    /// cycle the round completes.
    pub fn tick(&mut self, now: Cycle) -> Option<RoundOutcome> {
        match self.phase {
            RoundPhase::LinkRequest { until } => {
                if now >= until {
                    // Launch every board's Board Request simultaneously —
                    // the lock-step launch of Fig. 4(b).
                    for b in 0..self.boards {
                        self.ring.send(
                            now,
                            BoardId(b),
                            ControlPacket::BoardRequest {
                                origin: BoardId(b),
                                reports: vec![],
                            },
                        );
                    }
                    self.phase = RoundPhase::BoardRequest { hops: 0 };
                }
                None
            }
            RoundPhase::BoardRequest { hops } => {
                self.ring.advance(now);
                let mut progressed = false;
                for b in 0..self.boards {
                    while let Some((_, mut packet)) = self.ring.receive(BoardId(b)) {
                        progressed = true;
                        let origin = packet.origin();
                        if origin == BoardId(b) {
                            if let ControlPacket::BoardRequest { reports, .. } = &packet {
                                self.rcs[b as usize].update_incoming(reports);
                            }
                        } else {
                            if let ControlPacket::BoardRequest { reports, .. } = &mut packet {
                                if let Some(r) = self.rcs[b as usize].report_toward(origin) {
                                    reports.push(r);
                                }
                            }
                            self.ring.send(now, BoardId(b), packet);
                        }
                    }
                }
                if progressed {
                    let hops = hops + 1;
                    if hops == self.boards {
                        // All packets are home: Reconfigure starts.
                        self.phase = RoundPhase::Reconfigure {
                            until: now + self.timing.stage_cycles(Stage::Reconfigure),
                        };
                    } else {
                        self.phase = RoundPhase::BoardRequest { hops };
                    }
                }
                None
            }
            RoundPhase::Reconfigure { until } => {
                if now >= until {
                    // Each destination RC folds in the flow demands and
                    // decides; grants launch on the ring as Board Responses.
                    for d in 0..self.boards {
                        let rc = &mut self.rcs[d as usize];
                        let channels: Vec<_> = (1..self.boards)
                            .filter_map(|w| {
                                rc.incoming(photonics::wavelength::Wavelength(w)).copied()
                            })
                            .collect();
                        let grants = rc.policy().reconfigure_with_demands(
                            BoardId(d),
                            &channels,
                            &self.demands[d as usize],
                        );
                        self.grants.extend(grants.iter().copied());
                        self.ring.send(
                            now,
                            BoardId(d),
                            ControlPacket::BoardResponse {
                                origin: BoardId(d),
                                grants,
                            },
                        );
                    }
                    self.phase = RoundPhase::BoardResponse { hops: 0 };
                }
                None
            }
            RoundPhase::BoardResponse { hops } => {
                self.ring.advance(now);
                let mut progressed = false;
                for b in 0..self.boards {
                    while let Some((_, packet)) = self.ring.receive(BoardId(b)) {
                        progressed = true;
                        let origin = packet.origin();
                        if origin != BoardId(b) {
                            if let ControlPacket::BoardResponse { grants, .. } = &packet {
                                // Each RC notes the grants that concern it;
                                // command synthesis happens at stage end.
                                let _ = grants;
                            }
                            self.ring.send(now, BoardId(b), packet);
                        }
                    }
                }
                if progressed {
                    let hops = hops + 1;
                    if hops == self.boards {
                        self.phase = RoundPhase::LinkResponse {
                            until: now + self.timing.stage_cycles(Stage::LinkResponse),
                        };
                    } else {
                        self.phase = RoundPhase::BoardResponse { hops };
                    }
                }
                None
            }
            RoundPhase::LinkResponse { until } => {
                if now >= until {
                    let commands: Vec<Vec<LaserCommand>> = (0..self.boards)
                        .map(|b| self.rcs[b as usize].commands_from_grants(&self.grants))
                        .collect();
                    let outcome = RoundOutcome {
                        grants: self.grants.clone(),
                        commands,
                        completed_at: now - self.start,
                    };
                    self.outcome = Some(outcome.clone());
                    self.phase = RoundPhase::Done;
                    return Some(outcome);
                }
                None
            }
            RoundPhase::Done => None,
        }
    }

    /// Runs the round to completion starting from its start cycle.
    pub fn run_to_completion(&mut self) -> RoundOutcome {
        let mut now = self.start;
        loop {
            if let Some(outcome) = self.tick(now) {
                return outcome;
            }
            assert!(
                now < self.start + 100 * self.timing.dbr_latency().max(1),
                "round failed to converge"
            );
            now += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonics::bitrate::RateLevel;
    use photonics::rwa::StaticRwa;

    const BOARDS: u16 = 4;

    fn timing() -> ProtocolTiming {
        ProtocolTiming {
            boards: BOARDS,
            lcs_per_board: BOARDS,
            ..ProtocolTiming::paper64()
        }
    }

    /// Outgoing readings for the complement-like scenario: board 0 hot
    /// toward board 3, all other flows idle.
    fn scenario() -> (Vec<Vec<LinkReading>>, Vec<Vec<FlowDemand>>) {
        let rwa = StaticRwa::new(BOARDS);
        let mut outgoing = vec![Vec::new(); BOARDS as usize];
        for s in 0..BOARDS {
            for d in 0..BOARDS {
                if s == d {
                    continue;
                }
                let w = rwa.wavelength(BoardId(s), BoardId(d));
                let hot = s == 0 && d == 3;
                outgoing[s as usize].push(LinkReading {
                    wavelength: w,
                    destination: Some(BoardId(d)),
                    link_util: if hot { 1.0 } else { 0.0 },
                    buffer_util: if hot { 0.9 } else { 0.0 },
                    level: RateLevel(2),
                });
            }
        }
        let mut demands = vec![Vec::new(); BOARDS as usize];
        for d in 0..BOARDS {
            for s in 0..BOARDS {
                if s == d {
                    continue;
                }
                let hot = s == 0 && d == 3;
                demands[d as usize].push(FlowDemand {
                    source: BoardId(s),
                    buffer_util: if hot { 0.9 } else { 0.0 },
                });
            }
        }
        (outgoing, demands)
    }

    #[test]
    fn round_reaches_the_direct_decision() {
        let (outgoing, demands) = scenario();
        let mut round = DbrRound::new(timing(), AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = round.run_to_completion();
        // Direct evaluation: two idle wavelengths toward board 3 go to 0.
        assert_eq!(outcome.grants.len(), 2, "{:?}", outcome.grants);
        assert!(outcome.grants.iter().all(|g| g.destination == BoardId(3)));
        assert!(outcome.grants.iter().all(|g| g.to == BoardId(0)));
        // Commands: board 0 lights two lasers, donors darken one each.
        assert_eq!(outcome.commands[0].len(), 2);
        assert!(outcome.commands[0].iter().all(|c| c.on));
        let offs: usize = outcome.commands[1..3]
            .iter()
            .map(|c| c.iter().filter(|c| !c.on).count())
            .sum();
        assert_eq!(offs, 2);
        assert!(round.is_done());
    }

    #[test]
    fn completion_time_matches_the_analytic_latency() {
        let (outgoing, demands) = scenario();
        let t = timing();
        let mut round = DbrRound::new(t, AllocPolicy::paper(), 100, outgoing, demands);
        let outcome = round.run_to_completion();
        assert_eq!(
            outcome.completed_at,
            t.dbr_latency(),
            "message-level round must take exactly the analytic latency"
        );
    }

    #[test]
    fn balanced_round_produces_no_grants_but_still_costs_latency() {
        let rwa = StaticRwa::new(BOARDS);
        let mut outgoing = vec![Vec::new(); BOARDS as usize];
        for s in 0..BOARDS {
            for d in 0..BOARDS {
                if s == d {
                    continue;
                }
                outgoing[s as usize].push(LinkReading {
                    wavelength: rwa.wavelength(BoardId(s), BoardId(d)),
                    destination: Some(BoardId(d)),
                    link_util: 0.5,
                    buffer_util: 0.2,
                    level: RateLevel(2),
                });
            }
        }
        let demands = (0..BOARDS)
            .map(|d| {
                (0..BOARDS)
                    .filter(|&s| s != d)
                    .map(|s| FlowDemand {
                        source: BoardId(s),
                        buffer_util: 0.2,
                    })
                    .collect()
            })
            .collect();
        let t = timing();
        let mut round = DbrRound::new(t, AllocPolicy::paper(), 0, outgoing, demands);
        let outcome = round.run_to_completion();
        assert!(outcome.grants.is_empty());
        assert!(outcome.commands.iter().all(|c| c.is_empty()));
        assert_eq!(outcome.completed_at, t.dbr_latency());
    }

    #[test]
    fn stage_labels_progress_in_order() {
        let (outgoing, demands) = scenario();
        let mut round = DbrRound::new(timing(), AllocPolicy::paper(), 0, outgoing, demands);
        let mut seen = vec![round.stage()];
        let mut now = 0;
        while !round.is_done() {
            round.tick(now);
            if *seen.last().unwrap() != round.stage() {
                seen.push(round.stage());
            }
            now += 1;
        }
        assert_eq!(
            seen,
            vec![
                "link_request",
                "board_request",
                "reconfigure",
                "board_response",
                "link_response",
                "done"
            ]
        );
    }
}
