//! Control packets of the LS protocol.
//!
//! Two packet families (§3.2, Fig. 4): RC↔LC packets circulate through the
//! board's LCs in sequence; RC↔RC packets circulate on the electrical ring.

use photonics::bitrate::RateLevel;
use photonics::wavelength::{BoardId, Wavelength};

/// One link's statistics as read from an LC's hardware counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReading {
    /// Wavelength (= transmitter index) the reading belongs to.
    pub wavelength: Wavelength,
    /// Destination board the laser currently points at (None = laser off).
    pub destination: Option<BoardId>,
    /// `Link_util` of the previous window.
    pub link_util: f64,
    /// `Buffer_util` of the previous window.
    pub buffer_util: f64,
    /// Current rate level of the transmitter.
    pub level: RateLevel,
}

/// A laser on/off command delivered in the Link Response stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaserCommand {
    /// Which transmitter (wavelength).
    pub wavelength: Wavelength,
    /// Which output port (destination board).
    pub destination: BoardId,
    /// Desired state.
    pub on: bool,
}

/// A wavelength ownership change decided in the Reconfigure stage: at
/// destination `destination`, wavelength `wavelength` is taken from
/// `from` and granted to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavelengthGrant {
    /// The destination board whose incoming wavelength is re-assigned.
    pub destination: BoardId,
    /// The wavelength being re-assigned.
    pub wavelength: Wavelength,
    /// Previous owner (source board losing the laser).
    pub from: BoardId,
    /// New owner (source board gaining the laser).
    pub to: BoardId,
}

impl desim::snap::Snap for WavelengthGrant {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u16(self.destination.0);
        w.u16(self.wavelength.0);
        w.u16(self.from.0);
        w.u16(self.to.0);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            destination: BoardId(r.u16()?),
            wavelength: Wavelength(r.u16()?),
            from: BoardId(r.u16()?),
            to: BoardId(r.u16()?),
        })
    }
}

/// The LS control packets.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlPacket {
    /// RC→LC…→RC: collects link/buffer utilizations in the power cycle.
    PowerRequest {
        /// Issuing board.
        origin: BoardId,
        /// Readings appended by each LC as the packet passes.
        readings: Vec<LinkReading>,
    },
    /// RC→LC…→RC: collects outgoing link statistics in the bandwidth cycle.
    LinkRequest {
        /// Issuing board.
        origin: BoardId,
        /// Readings appended by each LC as the packet passes.
        readings: Vec<LinkReading>,
    },
    /// RC→RC ring: asks every other board for statistics of this board's
    /// *incoming* links.
    BoardRequest {
        /// Issuing board (the destination whose incoming links are queried).
        origin: BoardId,
        /// Per-hop appended readings: (reporting source board, its reading
        /// for the wavelength it uses toward `origin`).
        reports: Vec<(BoardId, LinkReading)>,
    },
    /// RC→RC ring: disseminates the reconfiguration decisions.
    BoardResponse {
        /// Issuing board (the destination that re-allocated its incoming
        /// wavelengths).
        origin: BoardId,
        /// Ownership changes other boards must apply to their transmitters.
        grants: Vec<WavelengthGrant>,
    },
    /// RC→LC…→RC: delivers laser on/off commands.
    LinkResponse {
        /// Issuing board.
        origin: BoardId,
        /// Commands for this board's transmitters.
        commands: Vec<LaserCommand>,
    },
}

impl ControlPacket {
    /// The board that issued the packet.
    pub fn origin(&self) -> BoardId {
        match self {
            ControlPacket::PowerRequest { origin, .. }
            | ControlPacket::LinkRequest { origin, .. }
            | ControlPacket::BoardRequest { origin, .. }
            | ControlPacket::BoardResponse { origin, .. }
            | ControlPacket::LinkResponse { origin, .. } => *origin,
        }
    }

    /// Short tag for traces.
    pub fn tag(&self) -> &'static str {
        match self {
            ControlPacket::PowerRequest { .. } => "power_req",
            ControlPacket::LinkRequest { .. } => "link_req",
            ControlPacket::BoardRequest { .. } => "board_req",
            ControlPacket::BoardResponse { .. } => "board_rsp",
            ControlPacket::LinkResponse { .. } => "link_rsp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_and_tag() {
        let p = ControlPacket::PowerRequest {
            origin: BoardId(3),
            readings: vec![],
        };
        assert_eq!(p.origin(), BoardId(3));
        assert_eq!(p.tag(), "power_req");
        let p = ControlPacket::BoardResponse {
            origin: BoardId(1),
            grants: vec![],
        };
        assert_eq!(p.origin(), BoardId(1));
        assert_eq!(p.tag(), "board_rsp");
    }

    #[test]
    fn grant_fields() {
        let g = WavelengthGrant {
            destination: BoardId(2),
            wavelength: Wavelength(1),
            from: BoardId(3),
            to: BoardId(0),
        };
        assert_ne!(g.from, g.to);
        assert_eq!(g.destination, BoardId(2));
    }
}
