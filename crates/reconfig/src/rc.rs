//! Board Reconfiguration Controllers (RCs).
//!
//! Each board's RC owns an *outgoing* link statistic table (filled by the
//! Link Request stage from its own LCs) and an *incoming* link statistic
//! table (filled by the Board Request stage from the other RCs). Fig. 4.
//! The RC computes the Reconfigure stage with an [`AllocPolicy`] and turns
//! Board Response grants into Link Response laser commands.

use crate::alloc::{AllocPolicy, IncomingLink, Reassignment};
use crate::msg::{LaserCommand, LinkReading, WavelengthGrant};
use photonics::rwa::StaticRwa;
use photonics::wavelength::{BoardId, Wavelength};

/// One board's reconfiguration controller.
#[derive(Debug, Clone)]
pub struct ReconfigController {
    board: BoardId,
    boards: u16,
    policy: AllocPolicy,
    /// Outgoing table indexed by wavelength: latest reading per transmitter.
    outgoing: Vec<Option<LinkReading>>,
    /// Incoming table indexed by wavelength: latest owner + buffer stats.
    incoming: Vec<Option<IncomingLink>>,
    /// Reconfigurations decided (lifetime).
    reassignments_made: u64,
}

impl ReconfigController {
    /// Creates the RC of `board` in a `boards`-board system.
    pub fn new(board: BoardId, boards: u16, policy: AllocPolicy) -> Self {
        assert!(board.0 < boards);
        Self {
            board,
            boards,
            policy,
            outgoing: vec![None; boards as usize],
            incoming: vec![None; boards as usize],
            reassignments_made: 0,
        }
    }

    /// The board this RC controls.
    pub fn board(&self) -> BoardId {
        self.board
    }

    /// The allocation policy.
    pub fn policy(&self) -> &AllocPolicy {
        &self.policy
    }

    /// Lifetime count of re-assignments this RC decided.
    pub fn reassignments_made(&self) -> u64 {
        self.reassignments_made
    }

    /// Link Request stage completion: stores the readings the circulating
    /// packet collected from this board's LCs.
    pub fn update_outgoing(&mut self, readings: &[LinkReading]) {
        for r in readings {
            self.outgoing[r.wavelength.index()] = Some(*r);
        }
    }

    /// The stored outgoing reading for a wavelength.
    pub fn outgoing(&self, w: Wavelength) -> Option<&LinkReading> {
        self.outgoing[w.index()].as_ref()
    }

    /// Board Request stage, responder side: when `requester`'s
    /// `Board_Request` passes through this RC, report the reading of the
    /// channel this board drives *toward* the requester, if any laser of
    /// ours points there.
    pub fn report_toward(&self, requester: BoardId) -> Option<(BoardId, LinkReading)> {
        self.outgoing
            .iter()
            .flatten()
            .find(|r| r.destination == Some(requester))
            .map(|r| (self.board, *r))
    }

    /// Board Request stage, requester side: ingests the reports collected
    /// by our returned `Board_Request` into the incoming table.
    pub fn update_incoming(&mut self, reports: &[(BoardId, LinkReading)]) {
        for (owner, r) in reports {
            self.incoming[r.wavelength.index()] = Some(IncomingLink {
                wavelength: r.wavelength,
                owner: *owner,
                buffer_util: r.buffer_util,
            });
        }
    }

    /// The stored incoming entry for a wavelength.
    pub fn incoming(&self, w: Wavelength) -> Option<&IncomingLink> {
        self.incoming[w.index()].as_ref()
    }

    /// Reconfigure stage: classify the incoming table and compute grants.
    pub fn reconfigure(&mut self) -> Vec<Reassignment> {
        let incoming: Vec<IncomingLink> = self.incoming.iter().flatten().copied().collect();
        let grants = self.policy.reconfigure(self.board, &incoming);
        self.reassignments_made += grants.len() as u64;
        // Keep the incoming table coherent with the decisions.
        for g in &grants {
            if let Some(entry) = &mut self.incoming[g.wavelength.index()] {
                entry.owner = g.to;
            }
        }
        grants
    }

    /// Board Response stage, receiver side: converts the grants that concern
    /// *this* board into laser commands for the Link Response stage, and
    /// updates the outgoing table's notion of destinations.
    pub fn commands_from_grants(&mut self, grants: &[WavelengthGrant]) -> Vec<LaserCommand> {
        let mut cmds = Vec::new();
        for g in grants {
            if g.from == self.board {
                cmds.push(LaserCommand {
                    wavelength: g.wavelength,
                    destination: g.destination,
                    on: false,
                });
                if let Some(r) = &mut self.outgoing[g.wavelength.index()] {
                    if r.destination == Some(g.destination) {
                        r.destination = None;
                    }
                }
            }
            if g.to == self.board {
                cmds.push(LaserCommand {
                    wavelength: g.wavelength,
                    destination: g.destination,
                    on: true,
                });
                if let Some(r) = &mut self.outgoing[g.wavelength.index()] {
                    r.destination = Some(g.destination);
                }
            }
        }
        cmds
    }

    /// Resets both tables to the static RWA view (used at boot and by the
    /// periodic re-synchronisation the paper mentions).
    pub fn reset_to_static(&mut self, rwa: &StaticRwa) {
        assert_eq!(rwa.boards(), self.boards);
        for slot in &mut self.outgoing {
            *slot = None;
        }
        for slot in &mut self.incoming {
            *slot = None;
        }
        for (owner, w) in rwa.incoming(self.board) {
            self.incoming[w.index()] = Some(IncomingLink {
                wavelength: w,
                owner,
                buffer_util: 0.0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonics::bitrate::RateLevel;

    fn reading(w: u16, dest: Option<u16>, link: f64, buf: f64) -> LinkReading {
        LinkReading {
            wavelength: Wavelength(w),
            destination: dest.map(BoardId),
            link_util: link,
            buffer_util: buf,
            level: RateLevel(2),
        }
    }

    #[test]
    fn outgoing_table_updates() {
        let mut rc = ReconfigController::new(BoardId(0), 4, AllocPolicy::paper());
        rc.update_outgoing(&[reading(1, Some(3), 0.5, 0.1), reading(2, Some(2), 0.0, 0.0)]);
        assert_eq!(
            rc.outgoing(Wavelength(1)).unwrap().destination,
            Some(BoardId(3))
        );
        assert!(rc.outgoing(Wavelength(3)).is_none());
        assert_eq!(rc.board(), BoardId(0));
    }

    #[test]
    fn report_toward_finds_the_right_channel() {
        let mut rc = ReconfigController::new(BoardId(1), 4, AllocPolicy::paper());
        rc.update_outgoing(&[reading(1, Some(0), 0.9, 0.6), reading(3, Some(2), 0.1, 0.0)]);
        let (owner, r) = rc.report_toward(BoardId(0)).unwrap();
        assert_eq!(owner, BoardId(1));
        assert_eq!(r.wavelength, Wavelength(1));
        assert!(rc.report_toward(BoardId(3)).is_none());
    }

    #[test]
    fn full_dbr_round_trip() {
        // Destination board 0 in a 4-board system. Static owners of its
        // incoming wavelengths: λ1→board1, λ2→board2, λ3→board3.
        let mut rc0 = ReconfigController::new(BoardId(0), 4, AllocPolicy::paper());
        rc0.update_incoming(&[
            (BoardId(1), reading(1, Some(0), 1.0, 0.8)), // hot flow
            (BoardId(2), reading(2, Some(0), 0.0, 0.0)), // idle
            (BoardId(3), reading(3, Some(0), 0.0, 0.0)), // idle
        ]);
        let grants = rc0.reconfigure();
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.to == BoardId(1)));
        assert_eq!(rc0.reassignments_made(), 2);
        // Incoming table now reflects the new owners.
        assert_eq!(rc0.incoming(Wavelength(2)).unwrap().owner, BoardId(1));

        // Board 2 (loser of λ2) turns its laser off; board 1 turns two on.
        let mut rc2 = ReconfigController::new(BoardId(2), 4, AllocPolicy::paper());
        rc2.update_outgoing(&[reading(2, Some(0), 0.0, 0.0)]);
        let cmds2 = rc2.commands_from_grants(&grants);
        assert_eq!(cmds2.len(), 1);
        assert!(!cmds2[0].on);
        assert_eq!(cmds2[0].wavelength, Wavelength(2));
        assert_eq!(rc2.outgoing(Wavelength(2)).unwrap().destination, None);

        let mut rc1 = ReconfigController::new(BoardId(1), 4, AllocPolicy::paper());
        rc1.update_outgoing(&[
            reading(1, Some(0), 1.0, 0.8),
            reading(2, None, 0.0, 0.0),
            reading(3, None, 0.0, 0.0),
        ]);
        let cmds1 = rc1.commands_from_grants(&grants);
        assert_eq!(cmds1.len(), 2);
        assert!(cmds1.iter().all(|c| c.on && c.destination == BoardId(0)));
        assert_eq!(
            rc1.outgoing(Wavelength(2)).unwrap().destination,
            Some(BoardId(0))
        );
    }

    #[test]
    fn grants_not_involving_this_board_are_ignored() {
        let mut rc = ReconfigController::new(BoardId(3), 8, AllocPolicy::paper());
        let g = WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(1),
            from: BoardId(1),
            to: BoardId(2),
        };
        assert!(rc.commands_from_grants(&[g]).is_empty());
    }

    #[test]
    fn reset_to_static_restores_rwa_owners() {
        let rwa = StaticRwa::new(4);
        let mut rc = ReconfigController::new(BoardId(2), 4, AllocPolicy::paper());
        rc.update_incoming(&[(BoardId(0), reading(2, Some(2), 0.3, 0.9))]);
        rc.reconfigure();
        rc.reset_to_static(&rwa);
        // Static owner of λ1 at destination 2 is board 3 ((2+1) mod 4).
        assert_eq!(rc.incoming(Wavelength(1)).unwrap().owner, BoardId(3));
        assert_eq!(rc.incoming(Wavelength(1)).unwrap().buffer_util, 0.0);
        assert!(rc.outgoing(Wavelength(1)).is_none());
    }
}
