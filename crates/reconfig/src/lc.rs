//! Link Controllers (LCs).
//!
//! "Historical statistics are collected with the hardware counters located
//! at each LC. Each LC is associated with an optical transmitter to measure
//! link statistics, and with an optical receiver to turn on/off the
//! receiver" (§3). The LC also runs the *local* half of DPM: "the bit rate
//! scaling is locally controlled by the LC."

use crate::msg::{LaserCommand, LinkReading};
use desim::Cycle;
use netstats::windowed::WindowedUtilization;
use photonics::bitrate::RateLevel;
use photonics::wavelength::{BoardId, Wavelength};
use powermgmt::regulator::{LinkRegulator, RegulatorAction};

/// One link controller: counters + DPM regulator for a single transmitter.
#[derive(Debug, Clone)]
pub struct LinkController {
    wavelength: Wavelength,
    /// Destination board of the currently-on laser (None = all lasers off).
    destination: Option<BoardId>,
    link_util: WindowedUtilization,
    buffer_util: WindowedUtilization,
    regulator: LinkRegulator,
    /// Laser commands applied (lifetime counter).
    commands_applied: u64,
}

impl LinkController {
    /// Creates the LC for the transmitter of `wavelength`, sampling over
    /// windows of `window` cycles (the paper's `R_w` = 2000).
    pub fn new(wavelength: Wavelength, window: Cycle, regulator: LinkRegulator) -> Self {
        Self {
            wavelength,
            destination: None,
            link_util: WindowedUtilization::new(window),
            buffer_util: WindowedUtilization::new(window),
            regulator,
            commands_applied: 0,
        }
    }

    /// The transmitter's wavelength.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Destination board of the active laser, if any.
    pub fn destination(&self) -> Option<BoardId> {
        self.destination
    }

    /// Sets the active destination (used when the static RWA is applied).
    pub fn set_destination(&mut self, d: Option<BoardId>) {
        self.destination = d;
    }

    /// Current rate level.
    pub fn level(&self) -> RateLevel {
        self.regulator.level()
    }

    /// Forces the level (receiver handoff on re-allocation).
    pub fn force_level(&mut self, level: RateLevel) {
        self.regulator.force_level(level);
    }

    /// Laser commands applied so far.
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied
    }

    /// Records one cycle of hardware-counter activity:
    /// `busy` = a flit occupied the wavelength, `occupancy` = transmitter
    /// queue occupancy fraction.
    pub fn record_cycle(&mut self, busy: bool, occupancy: f64) {
        self.link_util.record(if busy { 1.0 } else { 0.0 });
        self.buffer_util.record(occupancy.clamp(0.0, 1.0));
    }

    /// Closes the current window (called by the RC when `R_w` elapses).
    pub fn roll_window(&mut self) {
        self.link_util.roll();
        self.buffer_util.roll();
    }

    /// The previous window's reading — what the control packets carry.
    pub fn reading(&self) -> LinkReading {
        LinkReading {
            wavelength: self.wavelength,
            destination: self.destination,
            link_util: self.link_util.previous(),
            buffer_util: self.buffer_util.previous(),
            level: self.regulator.level(),
        }
    }

    /// Runs the local DPM decision on the previous window's statistics.
    /// Only meaningful for LCs whose laser is on; dark transmitters hold.
    pub fn power_cycle(&mut self) -> RegulatorAction {
        if self.destination.is_none() {
            return RegulatorAction::Hold;
        }
        let r = self.reading();
        self.regulator.observe(r.link_util, r.buffer_util)
    }

    /// Applies a laser command addressed to this transmitter; returns the
    /// new destination state.
    ///
    /// # Panics
    /// If the command's wavelength does not match.
    pub fn apply(&mut self, cmd: LaserCommand) -> Option<BoardId> {
        assert_eq!(cmd.wavelength, self.wavelength, "command misrouted");
        self.commands_applied += 1;
        if cmd.on {
            self.destination = Some(cmd.destination);
        } else if self.destination == Some(cmd.destination) {
            self.destination = None;
        }
        self.destination
    }
}

/// Edge detector for the DBR trigger threshold `B_max`.
///
/// The LC's hardware comparator watches the window-average buffer
/// occupancy and raises a signal only on *crossings*, not every window —
/// that is what the telemetry layer records as
/// `TraceEvent::BufferThreshold`, keeping traces proportional to activity
/// rather than to run length.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdWatch {
    b_max: f64,
    above: bool,
}

impl ThresholdWatch {
    /// Watches threshold `b_max` (the `AllocPolicy` trigger), starting
    /// below it.
    pub fn new(b_max: f64) -> Self {
        Self {
            b_max,
            above: false,
        }
    }

    /// Whether the last observation was above the threshold.
    pub fn is_above(&self) -> bool {
        self.above
    }

    /// Feeds one window-average occupancy; returns `Some(new_side)` on a
    /// crossing (`true` = now above `B_max`), `None` while the side holds.
    ///
    /// Contract: re-observing the previous value never signals and never
    /// changes state. The engine's window-boundary scan relies on this to
    /// *skip* flows whose occupancy provably repeated the last window
    /// (see the dirty-set in `erapid-core`'s `System`) — weakening it to
    /// anything stateful would silently desynchronize those watches.
    pub fn observe(&mut self, occupancy: f64) -> Option<bool> {
        let above = occupancy > self.b_max;
        if above != self.above {
            self.above = above;
            Some(above)
        } else {
            None
        }
    }

    /// Moves the watched threshold (the auto-tuning controller's
    /// application seam): returns whether it actually changed.
    ///
    /// Contract: retargeting to the current threshold is a no-op, and a
    /// retarget never signals by itself — the hysteresis side is only
    /// re-evaluated at the next [`ThresholdWatch::observe`]. Callers that
    /// park flows on the repeat-observation contract must therefore
    /// un-park every flow when this returns `true` (a parked flow's
    /// steady value may sit on the other side of the new threshold).
    pub fn retarget(&mut self, b_max: f64) -> bool {
        if self.b_max == b_max {
            return false;
        }
        self.b_max = b_max;
        true
    }

    /// Serializes the hysteresis side (`b_max` is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.bool(self.above);
    }

    /// Overlays a checkpointed hysteresis side.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        self.above = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonics::bitrate::RateLadder;
    use powermgmt::policy::DpmPolicy;
    use powermgmt::transition::TransitionModel;

    fn lc() -> LinkController {
        LinkController::new(
            Wavelength(1),
            10,
            LinkRegulator::new(
                DpmPolicy::power_bandwidth(),
                RateLadder::paper(),
                TransitionModel::paper(),
            ),
        )
    }

    #[test]
    fn counters_roll_into_readings() {
        let mut lc = lc();
        lc.set_destination(Some(BoardId(2)));
        for i in 0..10 {
            lc.record_cycle(i < 8, 0.5);
        }
        lc.roll_window();
        let r = lc.reading();
        assert!((r.link_util - 0.8).abs() < 1e-12);
        assert!((r.buffer_util - 0.5).abs() < 1e-12);
        assert_eq!(r.wavelength, Wavelength(1));
        assert_eq!(r.destination, Some(BoardId(2)));
        assert_eq!(r.level, RateLevel(2));
    }

    #[test]
    fn power_cycle_scales_idle_link_down() {
        let mut lc = lc();
        lc.set_destination(Some(BoardId(0)));
        for _ in 0..10 {
            lc.record_cycle(false, 0.0);
        }
        lc.roll_window();
        match lc.power_cycle() {
            RegulatorAction::Retune { level, penalty } => {
                assert_eq!(level, RateLevel(1));
                assert_eq!(penalty, 65);
            }
            a => panic!("expected retune, got {a:?}"),
        }
        assert_eq!(lc.level(), RateLevel(1));
    }

    #[test]
    fn dark_transmitter_holds() {
        let mut lc = lc();
        for _ in 0..10 {
            lc.record_cycle(false, 0.0);
        }
        lc.roll_window();
        assert_eq!(lc.power_cycle(), RegulatorAction::Hold);
        assert_eq!(lc.level(), RateLevel(2));
    }

    #[test]
    fn laser_commands_toggle_destination() {
        let mut lc = lc();
        let on = LaserCommand {
            wavelength: Wavelength(1),
            destination: BoardId(3),
            on: true,
        };
        assert_eq!(lc.apply(on), Some(BoardId(3)));
        // Turning off a *different* destination leaves the laser alone.
        let off_other = LaserCommand {
            wavelength: Wavelength(1),
            destination: BoardId(0),
            on: false,
        };
        assert_eq!(lc.apply(off_other), Some(BoardId(3)));
        let off = LaserCommand {
            wavelength: Wavelength(1),
            destination: BoardId(3),
            on: false,
        };
        assert_eq!(lc.apply(off), None);
        assert_eq!(lc.commands_applied(), 3);
    }

    #[test]
    #[should_panic(expected = "misrouted")]
    fn misrouted_command_panics() {
        let mut lc = lc();
        lc.apply(LaserCommand {
            wavelength: Wavelength(0),
            destination: BoardId(1),
            on: true,
        });
    }

    #[test]
    fn force_level_for_handoff() {
        let mut lc = lc();
        lc.force_level(RateLevel(0));
        assert_eq!(lc.level(), RateLevel(0));
    }

    #[test]
    fn threshold_watch_fires_only_on_crossings() {
        let mut watch = ThresholdWatch::new(0.3);
        assert!(!watch.is_above());
        // Below the threshold: no signal.
        assert_eq!(watch.observe(0.1), None);
        assert_eq!(watch.observe(0.3), None); // boundary is not a crossing
                                              // Crossing up fires once, then holds.
        assert_eq!(watch.observe(0.5), Some(true));
        assert_eq!(watch.observe(0.9), None);
        assert!(watch.is_above());
        // Crossing back down fires the falling edge.
        assert_eq!(watch.observe(0.2), Some(false));
        assert_eq!(watch.observe(0.2), None);
    }

    #[test]
    fn retarget_moves_threshold_without_signalling() {
        let mut watch = ThresholdWatch::new(0.3);
        assert_eq!(watch.observe(0.5), Some(true));
        // Same threshold: no-op.
        assert!(!watch.retarget(0.3));
        // New threshold: no signal until the next observation, which then
        // re-evaluates the side against the new value.
        assert!(watch.retarget(0.6));
        assert!(watch.is_above(), "retarget must not flip the side itself");
        assert_eq!(watch.observe(0.5), Some(false));
        // And crossing the new threshold fires as usual.
        assert_eq!(watch.observe(0.7), Some(true));
    }

    #[test]
    fn threshold_watch_repeat_observation_is_a_no_op() {
        // The dirty-set skip contract: from any reachable state, feeding
        // the previous value again neither signals nor changes state, so
        // an engine that elides repeat observations is indistinguishable
        // from one that performs them.
        let mut watch = ThresholdWatch::new(0.3);
        for v in [0.0, 0.29, 0.9, 0.3, 0.31, 0.1] {
            let first = watch.observe(v);
            let side = watch.is_above();
            for _ in 0..3 {
                assert_eq!(watch.observe(v), None, "repeat of {v} signalled");
                assert_eq!(watch.is_above(), side, "repeat of {v} mutated state");
            }
            // The first observation is the only one that may signal.
            let _ = first;
        }
    }
}
