//! The Reconfigure stage: classification and wavelength re-allocation.
//!
//! §3.2: "Each incoming link statistic is classified into three categories
//! using Buffer_util: *under-utilized* if Buffer_util is less than B_min
//! (implying that this wavelength can be re-allocated), *normal utilized*
//! if Buffer_util falls between B_min and B_max (implying the wavelength is
//! well utilized) and *over-utilized* if Buffer_util is greater than B_max
//! (implying that additional wavelengths are needed). RC would allocate the
//! under-utilized links to the over-utilized links."
//!
//! Paper defaults: `B_min = 0.0`, `B_max = 0.3`.

use crate::msg::WavelengthGrant;
use photonics::wavelength::{BoardId, Wavelength};

/// Buffer-utilization classification of one incoming link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// `Buffer_util ≤ B_min` — re-allocatable.
    Under,
    /// In the normal band.
    Normal,
    /// `Buffer_util > B_max` — needs more wavelengths.
    Over,
}

/// One incoming link's state as seen by the destination's RC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncomingLink {
    /// The wavelength (= one incoming channel of this board).
    pub wavelength: Wavelength,
    /// The source board currently owning the wavelength.
    pub owner: BoardId,
    /// `Buffer_util` reported by the owner's LC for this channel.
    pub buffer_util: f64,
}

/// A re-assignment decision (alias of the wire-format grant).
pub type Reassignment = WavelengthGrant;

/// One flow's bandwidth demand at a destination: the transmitter-queue
/// occupancy of source board `source` toward the destination, reported by
/// the source's LC even when the flow currently owns no wavelength (its
/// statically assigned LC keeps counting — this is what lets a board that
/// donated its wavelength reclaim bandwidth later).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// The source board of the flow.
    pub source: BoardId,
    /// `Buffer_util` of the flow's transmitter queue.
    pub buffer_util: f64,
}

/// Derives per-flow demands from channel readings alone (each owner's
/// hottest channel), for callers without independent queue telemetry.
pub fn demands_from_channels(channels: &[IncomingLink]) -> Vec<FlowDemand> {
    let mut demands: Vec<FlowDemand> = Vec::new();
    for c in channels {
        match demands.iter_mut().find(|d| d.source == c.owner) {
            Some(d) => d.buffer_util = d.buffer_util.max(c.buffer_util),
            None => demands.push(FlowDemand {
                source: c.owner,
                buffer_util: c.buffer_util,
            }),
        }
    }
    demands
}

/// Allocation thresholds and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocPolicy {
    /// Under-utilized boundary (inclusive). Paper: 0.0.
    pub b_min: f64,
    /// Over-utilized boundary (exclusive). Paper: 0.3.
    pub b_max: f64,
    /// Maximum re-assignments per window (`usize::MAX` = unlimited). The
    /// paper's conclusion floats "limited flexibility for reconfigurability"
    /// as a cost reduction; this knob is that ablation.
    pub max_reassignments: usize,
}

impl AllocPolicy {
    /// The paper's thresholds: `B_min = 0.0`, `B_max = 0.3`, unlimited.
    pub fn paper() -> Self {
        Self {
            b_min: 0.0,
            b_max: 0.3,
            max_reassignments: usize::MAX,
        }
    }

    /// Caps re-assignments per window.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.max_reassignments = limit;
        self
    }

    /// Classifies one buffer utilization.
    pub fn classify(&self, buffer_util: f64) -> Classification {
        if buffer_util <= self.b_min {
            Classification::Under
        } else if buffer_util > self.b_max {
            Classification::Over
        } else {
            Classification::Normal
        }
    }

    /// Runs the Reconfigure stage for destination `destination` from
    /// channel readings alone (demands derived from the channels' owners).
    pub fn reconfigure(
        &self,
        destination: BoardId,
        incoming: &[IncomingLink],
    ) -> Vec<Reassignment> {
        let demands = demands_from_channels(incoming);
        self.reconfigure_with_demands(destination, incoming, &demands)
    }

    /// Runs the Reconfigure stage with explicit flow demands.
    ///
    /// Every under-utilized incoming wavelength is re-assigned to the
    /// source board of an over-utilized flow, most congested flows first,
    /// distributing spares round-robin so multiple hot flows share the
    /// spoils. A flow never donates to itself. Demands are what make
    /// re-acquisition possible: a flow that owns no wavelength at all can
    /// still appear over-utilized and win spares.
    #[allow(clippy::explicit_counter_loop)]
    pub fn reconfigure_with_demands(
        &self,
        destination: BoardId,
        incoming: &[IncomingLink],
        demands: &[FlowDemand],
    ) -> Vec<Reassignment> {
        let mut over: Vec<&FlowDemand> = demands
            .iter()
            .filter(|d| self.classify(d.buffer_util) == Classification::Over)
            .collect();
        if over.is_empty() {
            return Vec::new();
        }
        // Most congested first; board index breaks ties for determinism.
        over.sort_by(|a, b| {
            b.buffer_util
                .total_cmp(&a.buffer_util)
                .then(a.source.cmp(&b.source))
        });
        // A spare channel is one whose *owning flow* is under-utilized: use
        // the owner's demand where available, else the channel reading.
        let flow_util = |l: &IncomingLink| {
            demands
                .iter()
                .find(|d| d.source == l.owner)
                .map(|d| d.buffer_util)
                .unwrap_or(l.buffer_util)
        };
        let mut under: Vec<&IncomingLink> = incoming
            .iter()
            .filter(|l| self.classify(flow_util(l)) == Classification::Under)
            .collect();
        under.sort_by(|a, b| {
            flow_util(a)
                .total_cmp(&flow_util(b))
                .then(a.wavelength.cmp(&b.wavelength))
        });
        let mut grants = Vec::new();
        let mut next_over = 0usize;
        for spare in under {
            if grants.len() >= self.max_reassignments {
                break;
            }
            let recipient = over[next_over % over.len()];
            next_over += 1;
            if spare.owner == recipient.source {
                // Donating to itself is a no-op; skip this spare.
                continue;
            }
            grants.push(WavelengthGrant {
                destination,
                wavelength: spare.wavelength,
                from: spare.owner,
                to: recipient.source,
            });
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(w: u16, owner: u16, util: f64) -> IncomingLink {
        IncomingLink {
            wavelength: Wavelength(w),
            owner: BoardId(owner),
            buffer_util: util,
        }
    }

    #[test]
    fn classification_bands() {
        let p = AllocPolicy::paper();
        assert_eq!(p.classify(0.0), Classification::Under);
        assert_eq!(p.classify(0.01), Classification::Normal);
        assert_eq!(p.classify(0.3), Classification::Normal);
        assert_eq!(p.classify(0.31), Classification::Over);
    }

    #[test]
    fn complement_like_scenario_grants_everything_to_the_hot_flow() {
        // Destination board 7: board 0's flow is saturated, every other
        // incoming wavelength is dead — the paper's complement pattern.
        let p = AllocPolicy::paper();
        let incoming: Vec<IncomingLink> = (1..8u16)
            .map(|w| {
                let owner = (7 + w) % 8; // static RWA owner of λw at dest 7
                if owner == 0 {
                    link(w, owner, 0.9)
                } else {
                    link(w, owner, 0.0)
                }
            })
            .collect();
        let grants = p.reconfigure(BoardId(7), &incoming);
        // All 6 idle wavelengths go to board 0.
        assert_eq!(grants.len(), 6);
        assert!(grants.iter().all(|g| g.to == BoardId(0)));
        assert!(grants.iter().all(|g| g.destination == BoardId(7)));
        assert!(grants.iter().all(|g| g.from != BoardId(0)));
        // Distinct wavelengths.
        let mut ws: Vec<u16> = grants.iter().map(|g| g.wavelength.0).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 6);
    }

    #[test]
    fn no_over_utilized_flows_means_no_grants() {
        let p = AllocPolicy::paper();
        let incoming = vec![link(1, 2, 0.0), link(2, 3, 0.2), link(3, 0, 0.1)];
        assert!(p.reconfigure(BoardId(1), &incoming).is_empty());
    }

    #[test]
    fn no_spares_means_no_grants() {
        let p = AllocPolicy::paper();
        let incoming = vec![link(1, 2, 0.9), link(2, 3, 0.8)];
        assert!(p.reconfigure(BoardId(0), &incoming).is_empty());
    }

    #[test]
    fn spares_split_round_robin_between_hot_flows() {
        let p = AllocPolicy::paper();
        let incoming = vec![
            link(1, 4, 0.9), // hottest
            link(2, 5, 0.5), // second
            link(3, 6, 0.0), // spare
            link(4, 7, 0.0), // spare
            link(5, 0, 0.0), // spare
            link(6, 1, 0.0), // spare
        ];
        let grants = p.reconfigure(BoardId(3), &incoming);
        assert_eq!(grants.len(), 4);
        let to4 = grants.iter().filter(|g| g.to == BoardId(4)).count();
        let to5 = grants.iter().filter(|g| g.to == BoardId(5)).count();
        assert_eq!((to4, to5), (2, 2));
        // Hottest flow gets the first spare.
        assert_eq!(grants[0].to, BoardId(4));
    }

    #[test]
    fn self_donation_is_skipped() {
        let p = AllocPolicy::paper();
        // Board 4 is hot on λ1 but also owns idle λ2 toward the same
        // destination (a prior reallocation): no self-grant.
        let incoming = vec![link(1, 4, 0.9), link(2, 4, 0.0)];
        let grants = p.reconfigure(BoardId(0), &incoming);
        assert!(grants.is_empty());
    }

    #[test]
    fn limit_caps_grants() {
        let p = AllocPolicy::paper().with_limit(1);
        let incoming = vec![link(1, 4, 0.9), link(2, 5, 0.0), link(3, 6, 0.0)];
        let grants = p.reconfigure(BoardId(0), &incoming);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn starved_flow_reclaims_via_demand() {
        // Board 5 owns zero wavelengths toward the destination (it donated
        // them earlier) but its queue is hot; board 2 owns two idle ones.
        let p = AllocPolicy::paper();
        let incoming = vec![link(1, 2, 0.0), link(2, 2, 0.0)];
        let demands = vec![
            FlowDemand {
                source: BoardId(5),
                buffer_util: 0.9,
            },
            FlowDemand {
                source: BoardId(2),
                buffer_util: 0.0,
            },
        ];
        let grants = p.reconfigure_with_demands(BoardId(0), &incoming, &demands);
        assert_eq!(grants.len(), 2);
        assert!(grants
            .iter()
            .all(|g| g.to == BoardId(5) && g.from == BoardId(2)));
    }

    #[test]
    fn busy_owners_channels_are_not_spares() {
        // Board 3's flow is over-utilized; its channels must not be donated
        // even if one particular channel reads 0 (demand overrides).
        let p = AllocPolicy::paper();
        let incoming = vec![link(1, 3, 0.0), link(2, 4, 0.0)];
        let demands = vec![
            FlowDemand {
                source: BoardId(3),
                buffer_util: 0.9,
            },
            FlowDemand {
                source: BoardId(4),
                buffer_util: 0.0,
            },
        ];
        let grants = p.reconfigure_with_demands(BoardId(0), &incoming, &demands);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].from, BoardId(4));
        assert_eq!(grants[0].wavelength, Wavelength(2));
    }

    #[test]
    fn demands_from_channels_takes_max_per_owner() {
        let channels = vec![link(1, 2, 0.1), link(2, 2, 0.6), link(3, 4, 0.0)];
        let mut d = demands_from_channels(&channels);
        d.sort_by_key(|x| x.source.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].source, BoardId(2));
        assert!((d[0].buffer_util - 0.6).abs() < 1e-12);
        assert_eq!(d[1].source, BoardId(4));
    }

    #[test]
    fn deterministic_ordering() {
        let p = AllocPolicy::paper();
        let incoming = vec![link(3, 6, 0.0), link(1, 4, 0.9), link(2, 5, 0.0)];
        let a = p.reconfigure(BoardId(0), &incoming);
        let b = p.reconfigure(BoardId(0), &incoming);
        assert_eq!(a, b);
        // Spares assigned lowest wavelength first.
        assert_eq!(a[0].wavelength, Wavelength(2));
    }
}
