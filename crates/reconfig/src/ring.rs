//! The unidirectional electrical control ring connecting RCs.
//!
//! "Each RC_i is connected to RC_{i+1} in a simple electrical ring topology
//! separated from the optical SRS. A ring topology with unidirectional flow
//! of control ensures that what information is sent in one direction is
//! always received in another" (§3.2). The protocol is *lock-step*: "as a
//! new control packet is transmitted by the RC_{i+1}, it receives a control
//! packet from the previous RC_i ... RC_{i+1} will not service the newly
//! received control packet until it transmits its own control packet."
//!
//! [`ControlRing`] is a message-level simulation of the ring used to
//! validate that property and to measure the control-plane latency the
//! system model charges.

use crate::msg::ControlPacket;
use desim::Cycle;
use photonics::wavelength::BoardId;
use std::collections::VecDeque;

/// A control packet in flight on the ring.
#[derive(Debug, Clone)]
struct InFlight {
    packet: ControlPacket,
    /// Next board to visit.
    next_hop: BoardId,
    /// Arrival time at that board.
    arrives_at: Cycle,
}

/// The electrical RC ring.
#[derive(Debug, Clone)]
pub struct ControlRing {
    boards: u16,
    hop_latency: Cycle,
    in_flight: Vec<InFlight>,
    /// Per-board receive queues (delivered packets awaiting service).
    delivered: Vec<VecDeque<(Cycle, ControlPacket)>>,
    hops_taken: u64,
}

impl ControlRing {
    /// Creates a ring of `boards` RCs with `hop_latency` cycles per hop.
    pub fn new(boards: u16, hop_latency: Cycle) -> Self {
        assert!(boards >= 2);
        assert!(hop_latency >= 1);
        Self {
            boards,
            hop_latency,
            in_flight: Vec::new(),
            delivered: (0..boards).map(|_| VecDeque::new()).collect(),
            hops_taken: 0,
        }
    }

    /// Boards on the ring.
    pub fn boards(&self) -> u16 {
        self.boards
    }

    /// Latency of one ring hop.
    pub fn hop_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Total hops completed.
    pub fn hops_taken(&self) -> u64 {
        self.hops_taken
    }

    /// Cycles for a packet to make a full loop back to its origin.
    pub fn round_trip(&self) -> Cycle {
        self.hop_latency * self.boards as Cycle
    }

    /// The board after `b` on the ring.
    pub fn successor(&self, b: BoardId) -> BoardId {
        BoardId((b.0 + 1) % self.boards)
    }

    /// Sends `packet` from `from` toward its successor at time `now`.
    pub fn send(&mut self, now: Cycle, from: BoardId, packet: ControlPacket) {
        let next = self.successor(from);
        self.in_flight.push(InFlight {
            packet,
            next_hop: next,
            arrives_at: now + self.hop_latency,
        });
    }

    /// Advances the ring to time `now`: moves arrivals into their boards'
    /// receive queues.
    pub fn advance(&mut self, now: Cycle) {
        let mut arrived = Vec::new();
        self.in_flight.retain(|f| {
            if f.arrives_at <= now {
                arrived.push((f.arrives_at, f.next_hop, f.packet.clone()));
                false
            } else {
                true
            }
        });
        // Deterministic delivery order: by time, then board.
        arrived.sort_by_key(|(t, b, _)| (*t, b.0));
        for (t, b, p) in arrived {
            self.hops_taken += 1;
            self.delivered[b.index()].push_back((t, p));
        }
    }

    /// Pops the next delivered packet at board `b`, if any.
    pub fn receive(&mut self, b: BoardId) -> Option<(Cycle, ControlPacket)> {
        self.delivered[b.index()].pop_front()
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Packets waiting in receive queues.
    pub fn queued(&self) -> usize {
        self.delivered.iter().map(|q| q.len()).sum()
    }

    /// True when a packet originated by `origin` is in flight or queued.
    pub fn has_packet_from(&self, origin: BoardId) -> bool {
        self.in_flight.iter().any(|f| f.packet.origin() == origin)
            || self
                .delivered
                .iter()
                .any(|q| q.iter().any(|(_, p)| p.origin() == origin))
    }

    /// Removes every packet originated by `origin` from the ring (token
    /// loss). Returns whether anything was dropped.
    pub fn drop_packet_from(&mut self, origin: BoardId) -> bool {
        let before = self.in_flight.len() + self.queued();
        self.in_flight.retain(|f| f.packet.origin() != origin);
        for q in &mut self.delivered {
            q.retain(|(_, p)| p.origin() != origin);
        }
        before != self.in_flight.len() + self.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(origin: u16) -> ControlPacket {
        ControlPacket::BoardRequest {
            origin: BoardId(origin),
            reports: vec![],
        }
    }

    #[test]
    fn packet_circulates_back_to_origin() {
        let mut ring = ControlRing::new(4, 3);
        ring.send(0, BoardId(0), probe(0));
        let mut at = BoardId(1);
        let mut now = 0;
        // Forward at each hop until it returns to board 0.
        for _ in 0..4 {
            now += 3;
            ring.advance(now);
            let (t, p) = ring.receive(at).expect("packet due");
            assert_eq!(t, now);
            if at == BoardId(0) {
                assert_eq!(p.origin(), BoardId(0));
                return;
            }
            ring.send(now, at, p);
            at = ring.successor(at);
        }
        // After 4 hops of 3 cycles we are back at board 0.
        assert_eq!(at, BoardId(0));
        assert_eq!(now, ring.round_trip());
        ring.advance(now);
        let (_, p) = ring.receive(BoardId(0)).expect("returned");
        assert_eq!(p.origin(), BoardId(0));
    }

    #[test]
    fn lock_step_all_boards_launch_simultaneously() {
        // Every RC launches its Board_Request at t=0. The lock-step
        // property: at every hop time k·h, every board receives exactly one
        // packet (the one from its k-th predecessor), services it, and
        // forwards it. After B·h cycles every packet is home.
        let b = 8u16;
        let h = 2u64;
        let mut ring = ControlRing::new(b, h);
        for i in 0..b {
            ring.send(0, BoardId(i), probe(i));
        }
        let mut returned = vec![false; b as usize];
        for k in 1..=b as u64 {
            let now = k * h;
            ring.advance(now);
            for i in 0..b {
                let (t, p) = ring
                    .receive(BoardId(i))
                    .expect("lock-step: one packet per board per hop");
                assert_eq!(t, now);
                // The packet must be from the k-th predecessor.
                let expect_origin = (i as i32 - k as i32).rem_euclid(b as i32) as u16;
                assert_eq!(p.origin(), BoardId(expect_origin));
                // No second packet this hop.
                assert!(ring.receive(BoardId(i)).is_none());
                if p.origin() == BoardId(i) {
                    returned[i as usize] = true;
                } else {
                    ring.send(now, BoardId(i), p);
                }
            }
        }
        assert!(returned.iter().all(|&r| r), "all packets must return home");
        assert_eq!(ring.in_flight(), 0);
        assert_eq!(ring.queued(), 0);
        assert_eq!(ring.hops_taken(), (b as u64) * (b as u64));
    }

    #[test]
    fn round_trip_time() {
        let ring = ControlRing::new(8, 4);
        assert_eq!(ring.round_trip(), 32);
        assert_eq!(ring.successor(BoardId(7)), BoardId(0));
        assert_eq!(ring.hop_latency(), 4);
        assert_eq!(ring.boards(), 8);
    }

    #[test]
    fn advance_is_idempotent_per_time() {
        let mut ring = ControlRing::new(2, 5);
        ring.send(0, BoardId(0), probe(0));
        ring.advance(4);
        assert!(ring.receive(BoardId(1)).is_none());
        ring.advance(5);
        ring.advance(5);
        assert!(ring.receive(BoardId(1)).is_some());
        assert!(ring.receive(BoardId(1)).is_none());
    }
}
