//! Protocol stage timing.
//!
//! The system model charges control-plane latency without simulating every
//! control flit: each stage's duration follows from the ring/LC-chain
//! geometry. "The key requirement of LS is to minimize the impact of
//! reconfiguration latency on the on-going communication" (§3) — decisions
//! take effect only after the full five-stage pipeline completes.

use desim::Cycle;

/// The five DBR stages plus the power stage, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// RC→LC…→RC collection of outgoing statistics.
    LinkRequest,
    /// RC→RC ring collection of incoming statistics.
    BoardRequest,
    /// Local computation at the RC.
    Reconfigure,
    /// RC→RC ring dissemination of grants.
    BoardResponse,
    /// RC→LC…→RC delivery of laser commands.
    LinkResponse,
}

impl Stage {
    /// The five stages in order.
    pub fn all() -> [Stage; 5] {
        [
            Stage::LinkRequest,
            Stage::BoardRequest,
            Stage::Reconfigure,
            Stage::BoardResponse,
            Stage::LinkResponse,
        ]
    }
}

/// Latency model of the LS protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolTiming {
    /// Boards on the RC ring.
    pub boards: u16,
    /// LCs chained per board.
    pub lcs_per_board: u16,
    /// Cycles per RC→RC ring hop.
    pub ring_hop: Cycle,
    /// Cycles per LC→LC (and RC→LC) hop on a board.
    pub lc_hop: Cycle,
    /// Cycles for the RC's Reconfigure computation.
    pub compute: Cycle,
}

impl ProtocolTiming {
    /// Defaults for the paper's 64-node system: 8 boards, 8 LCs per board,
    /// 2-cycle ring hops, 1-cycle LC hops, 4-cycle compute.
    pub fn paper64() -> Self {
        Self {
            boards: 8,
            lcs_per_board: 8,
            ring_hop: 2,
            lc_hop: 1,
            compute: 4,
        }
    }

    /// Duration of one stage.
    pub fn stage_cycles(&self, stage: Stage) -> Cycle {
        match stage {
            // RC → LC_0 → … → LC_{D-1} → RC: D+1 hops.
            Stage::LinkRequest | Stage::LinkResponse => {
                (self.lcs_per_board as Cycle + 1) * self.lc_hop
            }
            // Full ring loop back to the origin.
            Stage::BoardRequest | Stage::BoardResponse => self.boards as Cycle * self.ring_hop,
            Stage::Reconfigure => self.compute,
        }
    }

    /// Latency of the whole five-stage bandwidth-reconfiguration cycle.
    pub fn dbr_latency(&self) -> Cycle {
        Stage::all().iter().map(|&s| self.stage_cycles(s)).sum()
    }

    /// Latency of the power-awareness cycle (one RC→LC chain loop; the DPM
    /// decision is local to each LC).
    pub fn power_latency(&self) -> Cycle {
        (self.lcs_per_board as Cycle + 1) * self.lc_hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper64_latencies() {
        let t = ProtocolTiming::paper64();
        // Link stages: (8+1)×1 = 9; Board stages: 8×2 = 16; compute 4.
        assert_eq!(t.stage_cycles(Stage::LinkRequest), 9);
        assert_eq!(t.stage_cycles(Stage::BoardRequest), 16);
        assert_eq!(t.stage_cycles(Stage::Reconfigure), 4);
        assert_eq!(t.dbr_latency(), 9 + 16 + 4 + 16 + 9);
        assert_eq!(t.power_latency(), 9);
    }

    #[test]
    fn dbr_latency_is_far_below_rw() {
        // The protocol must complete well within the paper's R_w = 2000
        // window, otherwise odd-even scheduling would overlap phases.
        let t = ProtocolTiming::paper64();
        assert!(t.dbr_latency() < 2000 / 10);
    }

    #[test]
    fn all_lists_the_five_stages_in_order() {
        let stages = Stage::all();
        assert_eq!(stages.len(), 5);
        assert_eq!(stages[0], Stage::LinkRequest);
        assert_eq!(stages[2], Stage::Reconfigure);
        assert_eq!(stages[4], Stage::LinkResponse);
    }

    #[test]
    fn latency_scales_with_ring_size() {
        let small = ProtocolTiming {
            boards: 4,
            ..ProtocolTiming::paper64()
        };
        let big = ProtocolTiming {
            boards: 16,
            ..ProtocolTiming::paper64()
        };
        assert!(big.dbr_latency() > small.dbr_latency());
    }
}
