//! Board-sharded compute phase for the cycle engine.
//!
//! Within one cycle, boards never touch each other directly: all
//! cross-board traffic flows through the SRS arrival/wake heaps, the
//! shared run metrics and the power cache — none of which the per-board
//! hot path (the bitset-wavefront router step, DESIGN.md §16, plus lane
//! transmit) needs to *read*. That makes the cycle's dominant cost
//! embarrassingly parallel under a two-phase split:
//!
//! * **compute** — each worker claims whole boards and, per board `b`,
//!   runs `Board::step_into` plus the transmit scan over SRS lane `b`
//!   (see [`crate::srs::SrsLane`]), writing every would-be shared effect
//!   (deliveries, wake/arrival inserts, labelled TX stats, the
//!   power-dirty bit) into that board's [`BoardOut`];
//! * **commit** — the main thread applies the out-buffers in ascending
//!   board order, replaying the exact side-effect sequence of the
//!   sequential engine (see `System::commit_sharded`), so every f64
//!   accumulation order, heap insertion sequence and telemetry emission
//!   is byte-identical to the golden pins.
//!
//! Synchronization is a self-built epoch gate (no external crates): the
//! main thread publishes a fresh [`ShardCtx`] per cycle and bumps the
//! epoch half of a packed `(epoch << 32) | cursor` ticket; workers claim
//! board indices by `fetch_add` on the cursor half, so a claim is
//! **epoch-tagged** — a worker that slept through a cycle can tell its
//! claim is stale and can never compute a board against an outdated
//! context. The invariant making the handoff sound: a claim `(e, b)` with
//! `b < nboards` implies the published context is exactly epoch `e`,
//! because the main thread cannot finish epoch `e` (and republish) until
//! every claimed board's completion has been counted.
//!
//! Context pointers are re-derived from `&mut System` every cycle and die
//! at the commit barrier, so the sequential phases in between run on the
//! plain, fully-checked `&mut self` paths.

#![deny(clippy::perf)]

use crate::board::{Board, Delivered};
use crate::srs::{LaneEffects, SrsLane, SrsShardParts};
use desim::Cycle;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

const CURSOR_MASK: u64 = u32::MAX as u64;

/// One board's buffered cross-board effects for one cycle: everything the
/// sequential engine would have written into shared state during
/// `step_boards` + `transmit`, in board-local order. Applied (and the
/// buffers reused) every cycle; steady-state allocation-free.
#[derive(Debug, Default)]
pub(crate) struct BoardOut {
    /// Packets delivered to this board's nodes this cycle.
    pub(crate) delivered: Vec<Delivered>,
    /// SRS publish-remote effects of this board's lane transmit.
    pub(crate) fx: LaneEffects,
    /// `(src_path, tx_wait)` samples for labelled departures, in
    /// departure order.
    pub(crate) tx_labelled: Vec<(f64, f64)>,
    /// Snapshot of the board's ready destinations (the active set mutates
    /// as packets depart, so the scan iterates a copy — same reason as
    /// `System::transmit`'s `ready_scratch`).
    ready: Vec<u16>,
}

impl BoardOut {
    fn clear(&mut self) {
        self.delivered.clear();
        self.fx.clear();
        self.tx_labelled.clear();
        self.ready.clear();
    }
}

/// Everything one cycle's compute phase needs, as raw views into the
/// `System`: the board array, the out-buffer array and the SRS lane base
/// pointers. Re-captured each cycle (fresh provenance), dead after the
/// commit barrier.
#[derive(Clone, Copy)]
pub(crate) struct ShardCtx {
    pub(crate) now: Cycle,
    pub(crate) boards: *mut Board,
    pub(crate) outs: *mut BoardOut,
    pub(crate) nboards: usize,
    pub(crate) srs: SrsShardParts,
}

// SAFETY: the pointers address disjoint per-board state (each board index
// is handed to exactly one claimant per epoch), and every access is
// bracketed by the gate's acquire/release edges.
unsafe impl Send for ShardCtx {}

/// Runs the compute phase for board `b`: router/NI step into the
/// out-buffer, then the lane transmit scan, mirroring the sequential
/// `step_boards` + `transmit` for this board exactly.
///
/// # Safety
/// `b < ctx.nboards`, the claim protocol guarantees no other thread holds
/// board `b` or SRS lane `b` this epoch, and `ctx` was captured for the
/// current epoch.
unsafe fn compute_board(ctx: &ShardCtx, b: usize) {
    // SAFETY: exclusive by the claim protocol (see above).
    let board = unsafe { &mut *ctx.boards.add(b) };
    let out = unsafe { &mut *ctx.outs.add(b) };
    out.clear();
    board.step_into(ctx.now, &mut out.delivered);
    // SAFETY: lane `b` is exclusive to this claim; `ctx.srs` was captured
    // this cycle with no intervening `&mut Srs` use.
    let mut lane = unsafe { SrsLane::from_parts(&ctx.srs, b as u16) };
    out.ready.extend_from_slice(board.ready_dests());
    for di in 0..out.ready.len() {
        let d = out.ready[di];
        while let Some(pkt) = board.tx_queue(d).peek().copied() {
            if lane.try_transmit(ctx.now, d, pkt, &mut out.fx) {
                let Some(departed) = board.tx_depart(ctx.now, d) else {
                    break; // unreachable: the queue head was just peeked
                };
                debug_assert_eq!(departed.id, pkt.id);
                if pkt.labelled {
                    out.tx_labelled.push((
                        (pkt.completed_at - pkt.injected_at) as f64,
                        (ctx.now - pkt.completed_at) as f64,
                    ));
                }
            } else {
                break;
            }
        }
    }
}

/// The per-run barrier pair: epoch-tagged work tickets plus the published
/// per-cycle context. Lives on the main thread's stack for the duration
/// of one `run_sharded` call; workers hold only `&Gate`.
pub(crate) struct Gate {
    /// `(epoch << 32) | cursor`. The main thread *stores* a new epoch with
    /// cursor 0 to open a compute phase; claimants `fetch_add` the cursor.
    /// Per-epoch increments are bounded by `nboards + workers + 1`, so the
    /// cursor can never carry into the epoch bits.
    ticket: AtomicU64,
    /// Boards whose compute has completed this epoch.
    done: AtomicUsize,
    stop: AtomicBool,
    /// This epoch's context. A mutex (not a seqlock) so a laggard worker's
    /// refresh is race-free; it is locked once per worker per epoch.
    ctx: Mutex<Option<(u32, ShardCtx)>>,
}

/// Bounded spin, then politely yield — on an oversubscribed machine (more
/// workers than cores) the phases still make progress at OS-quantum
/// granularity instead of burning the shared core.
fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl Gate {
    pub(crate) fn new() -> Self {
        Self {
            ticket: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            ctx: Mutex::new(None),
        }
    }

    /// Ends the worker loops (after the last epoch has fully committed).
    pub(crate) fn halt(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Runs one compute phase to completion: publishes `ctx`, opens the
    /// next epoch, participates in the board claims from the calling
    /// thread, and returns only once every board's compute is visible
    /// (the commit barrier).
    pub(crate) fn run_epoch(&self, ctx: ShardCtx) {
        let nboards = ctx.nboards;
        let e = (self.ticket.load(Ordering::Relaxed) >> 32) as u32 + 1;
        {
            let mut slot = self.ctx.lock().unwrap_or_else(|p| p.into_inner());
            *slot = Some((e, ctx));
        }
        self.done.store(0, Ordering::Relaxed);
        self.ticket.store(u64::from(e) << 32, Ordering::Release);
        loop {
            let t = self.ticket.fetch_add(1, Ordering::AcqRel);
            let b = (t & CURSOR_MASK) as usize;
            if (t >> 32) as u32 != e || b >= nboards {
                break;
            }
            // SAFETY: the ticket hands board `b` of epoch `e` to exactly
            // one claimant, and `ctx` is this epoch's context.
            unsafe { compute_board(&ctx, b) };
            self.done.fetch_add(1, Ordering::Release);
        }
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < nboards {
            backoff(&mut spins);
        }
    }
}

/// The worker loop: spin (with yield backoff) for a fresh epoch, claim
/// boards until the epoch drains, repeat until halted.
pub(crate) fn worker(gate: &Gate) {
    // The last epoch this worker finished claiming in (0 = none yet).
    let mut last_done: u32 = 0;
    let mut cached: Option<(u32, ShardCtx)> = None;
    let mut spins = 0u32;
    loop {
        if gate.stop.load(Ordering::Acquire) {
            return;
        }
        let e_now = (gate.ticket.load(Ordering::Acquire) >> 32) as u32;
        if e_now == last_done {
            backoff(&mut spins);
            continue;
        }
        spins = 0;
        loop {
            let t = gate.ticket.fetch_add(1, Ordering::AcqRel);
            let (e, b) = ((t >> 32) as u32, (t & CURSOR_MASK) as usize);
            if e == last_done {
                break; // the epoch we just saw drained before we claimed
            }
            if cached.as_ref().map(|(ce, _)| *ce) != Some(e) {
                let slot = gate.ctx.lock().unwrap_or_else(|p| p.into_inner());
                match *slot {
                    Some((ce, c)) if ce == e => {
                        drop(slot);
                        cached = Some((e, c));
                    }
                    _ => {
                        // The published context has moved past epoch `e`,
                        // which (per the module-level invariant) means this
                        // claim's cursor was already beyond `e`'s boards —
                        // nothing to compute.
                        drop(slot);
                        last_done = e;
                        break;
                    }
                }
            }
            let Some((_, ctx)) = &cached else {
                unreachable!("cache refreshed just above")
            };
            if b >= ctx.nboards {
                last_done = e;
                break;
            }
            // SAFETY: epoch-tagged claim — board `b` of epoch `e` is ours
            // alone, and `ctx` is epoch `e`'s context.
            unsafe { compute_board(ctx, b) };
            gate.done.fetch_add(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_single_participant_completes_epochs() {
        // With zero workers the calling thread must compute every board
        // itself; exercised on an empty board set so no unsafe derefs run.
        let gate = Gate::new();
        let ctx = ShardCtx {
            now: 0,
            boards: std::ptr::null_mut(),
            outs: std::ptr::null_mut(),
            nboards: 0,
            srs: crate::srs::SrsShardParts::dangling(),
        };
        for _ in 0..3 {
            gate.run_epoch(ctx);
        }
        gate.halt();
    }
}
