//! The assembled E-RAPID system and its cycle loop.
//!
//! [`System::step`] advances one router clock cycle:
//!
//! 1. at `R_w` boundaries, roll all hardware-counter windows and trigger
//!    the LS odd–even cycle — DPM decisions apply locally, DBR decisions
//!    apply after the five-stage protocol latency,
//! 2. node traffic generators inject packets into their NIs,
//! 3. every board steps its IBI router (deliveries eject, remote flits
//!    reassemble in TX queues),
//! 4. ready packets in TX queues depart on free owned optical channels,
//! 5. optical arrivals enter the destination boards' receiver injectors,
//! 6. the SRS settles channel state and the power meter samples the
//!    instantaneous link power.

use crate::board::Board;
use crate::config::{ControlPlane, NetworkMode, SystemConfig};
use crate::faults::FaultKind;
use crate::metrics::{PacketDelivery, RunMetrics};
use crate::srs::Srs;
use desim::phase::{Phase, PhasePlan};
use desim::Cycle;
use erapid_telemetry::{
    CounterId, FaultLabel, GaugeId, HistId, HistogramSummary, LsStageLabel, MetricRegistry,
    TraceEvent, TraceRecord, TraceSink, Tracer, WindowLabel, WindowSnapshot,
};
use erapid_tune::{ThresholdController, WindowObservation};
use erapid_workloads::ScenarioEngine;
use photonics::wavelength::{BoardId, Wavelength};
use reconfig::alloc::{FlowDemand, IncomingLink};
use reconfig::lc::ThresholdWatch;
use reconfig::lockstep::WindowKind;
use reconfig::msg::{LinkReading, WavelengthGrant};
use reconfig::protocol::{DbrRound, TokenFault};
use reconfig::stages::Stage;
use router::flit::{NodeId, PacketId};
use router::packet::Packet;
use traffic::generator::{NodeGenerator, PacketRequest};
use traffic::pattern::TrafficPattern;
use traffic::source::InjectionSource;
use traffic::trace::{TraceRecorder, TraceReplayer};

/// A full simulated E-RAPID system.
pub struct System {
    cfg: SystemConfig,
    boards: Vec<Board>,
    srs: Srs,
    generators: Vec<NodeGenerator>,
    /// When set, injection replays this trace instead of the generators.
    replay: Option<TraceReplayer>,
    /// When set (`cfg.scenario`), injection polls this scenario source
    /// instead of the per-node generators.
    scenario: Option<Box<dyn InjectionSource>>,
    /// Reusable per-cycle scenario request buffer.
    scenario_scratch: Vec<PacketRequest>,
    /// Records every injection for later replay (None unless
    /// `cfg.record_injections` — zero cost when off).
    injection_log: Option<TraceRecorder>,
    /// Per-packet delivery rows (None unless `cfg.packet_log`).
    packet_log: Option<Vec<PacketDelivery>>,
    next_packet_id: u64,
    now: Cycle,
    metrics: RunMetrics,
    /// DBR grant batches awaiting their protocol-latency apply time
    /// (analytic control plane).
    pending_dbr: Vec<(Cycle, Vec<WavelengthGrant>)>,
    /// In-flight message-level DBR round (message-level control plane).
    active_round: Option<DbrRound>,
    /// Reusable per-cycle delivery buffer — cleared per board per cycle,
    /// never reallocated in steady state.
    delivered_scratch: Vec<crate::board::Delivered>,
    /// Next unapplied event in `cfg.faults` (the plan is time-sorted).
    fault_cursor: usize,
    /// Token faults waiting for the next DBR round (message-level plane).
    armed_token: Vec<TokenFault>,
    /// Recovery latency the next DBR round must absorb (analytic plane's
    /// mirror of armed token faults).
    armed_analytic_delay: Cycle,
    /// LS token resends performed (loss relaunches + corruption resends).
    ls_retries: u64,
    /// DBR rounds aborted fail-safe after exhausting the retry budget.
    ls_aborted: u64,
    /// Cycle-level event tracer (null unless `cfg.trace.enabled`).
    tracer: Tracer,
    /// Window-granularity metric registry (None when tracing is off).
    registry: Option<(MetricRegistry, TelemetryIds)>,
    /// `R_w` boundaries seen (tags window-boundary events and metric rows).
    window_index: u64,
    /// DBR rounds triggered (tags LS stage and outcome events).
    dbr_rounds: u64,
    /// Per `(board, dest)` B_max edge detectors (empty when tracing is off).
    buffer_watch: Vec<ThresholdWatch>,
    /// Dirty-set companion to `buffer_watch`: `true` when the watch may
    /// not yet have observed the flow's current window value. A flow is
    /// parked (`false`) only after its watch observed a window that was
    /// both fed and *steady* — an untouched steady window reproduces the
    /// previous value bit-for-bit and `ThresholdWatch::observe` of an
    /// equal value is a state-free no-op, so skipping it is identical.
    watch_pending: Vec<bool>,
    /// Reusable snapshot of a board's ready destinations (the board's
    /// active set mutates as packets depart, so `transmit` iterates a
    /// copy).
    ready_scratch: Vec<u16>,
    /// Online threshold auto-tuner (None unless `cfg.tune` is set in a
    /// power-aware mode). Stepped at Power-kind `R_w` boundaries inside
    /// the *sequential prologue*, so the board-sharded engine stays
    /// byte-identical (DESIGN.md §15).
    controller: Option<ThresholdController>,
}

/// Wall-time spent per engine phase over a profiled run — the breakdown
/// `perfreport` emits so the next bottleneck is measured, not guessed.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimers {
    /// Faults + window boundary + DBR apply + active LS round.
    pub reconfig: std::time::Duration,
    /// Traffic generation / trace replay.
    pub inject: std::time::Duration,
    /// Electrical domain: IBI router stepping + delivery.
    pub route: std::time::Duration,
    /// Optical domain: TX departures, arrivals, SRS housekeeping.
    pub optical: std::time::Duration,
    /// Power sampling + metric recording.
    pub stats: std::time::Duration,
}

impl PhaseTimers {
    /// Total wall time across all phases.
    pub fn total(&self) -> std::time::Duration {
        self.reconfig + self.inject + self.route + self.optical + self.stats
    }
}

/// Instrumentation hook for the cycle loop: the null probe monomorphizes
/// to nothing, so `step` pays zero cost for the profiled variant.
trait PhaseProbe {
    fn start(&mut self);
    fn lap(&mut self, bucket: fn(&mut PhaseTimers) -> &mut std::time::Duration);
}

struct NullProbe;
impl PhaseProbe for NullProbe {
    #[inline(always)]
    fn start(&mut self) {}
    #[inline(always)]
    fn lap(&mut self, _bucket: fn(&mut PhaseTimers) -> &mut std::time::Duration) {}
}

struct TimerProbe<'a> {
    timers: &'a mut PhaseTimers,
    mark: std::time::Instant,
}
impl PhaseProbe for TimerProbe<'_> {
    fn start(&mut self) {
        self.mark = std::time::Instant::now();
    }
    fn lap(&mut self, bucket: fn(&mut PhaseTimers) -> &mut std::time::Duration) {
        let now = std::time::Instant::now();
        *bucket(self.timers) += now - self.mark;
        self.mark = now;
    }
}

/// Handles of the metrics a traced run registers (fixed registration order
/// keeps exports byte-identical across runs).
struct TelemetryIds {
    retunes: CounterId,
    grants: CounterId,
    rounds: CounterId,
    faults: CounterId,
    buffer_crossings: CounterId,
    router_peak: GaugeId,
    lasers_on: GaugeId,
    latency_hist: HistId,
    tx_wait_hist: HistId,
}

/// Histogram geometry for labelled-packet latency: 256 × 16-cycle bins
/// cover 4096 cycles (two R_w windows) before overflow.
const LATENCY_HIST_BINS: usize = 256;
const LATENCY_HIST_WIDTH: f64 = 16.0;
/// TX-queue waits are much shorter; 256 × 4-cycle bins.
const TX_WAIT_HIST_BINS: usize = 256;
const TX_WAIT_HIST_WIDTH: f64 = 4.0;

fn build_registry() -> (MetricRegistry, TelemetryIds) {
    let mut reg = MetricRegistry::new();
    let ids = TelemetryIds {
        retunes: reg.counter("dpm_retunes"),
        grants: reg.counter("dbr_grants"),
        rounds: reg.counter("dbr_rounds"),
        faults: reg.counter("faults"),
        buffer_crossings: reg.counter("buffer_crossings"),
        router_peak: reg.gauge("router_peak_flits"),
        lasers_on: reg.gauge("lasers_on"),
        latency_hist: reg.histogram("latency_cycles", LATENCY_HIST_BINS, LATENCY_HIST_WIDTH),
        tx_wait_hist: reg.histogram("tx_wait_cycles", TX_WAIT_HIST_BINS, TX_WAIT_HIST_WIDTH),
    };
    (reg, ids)
}

fn stage_label(stage: Stage) -> LsStageLabel {
    match stage {
        Stage::LinkRequest => LsStageLabel::LinkRequest,
        Stage::BoardRequest => LsStageLabel::BoardRequest,
        Stage::Reconfigure => LsStageLabel::Reconfigure,
        Stage::BoardResponse => LsStageLabel::BoardResponse,
        Stage::LinkResponse => LsStageLabel::LinkResponse,
    }
}

impl System {
    /// Builds a system running `pattern` at normalised `load` (fraction of
    /// the uniform-traffic capacity `N_c`) under the given phase plan.
    pub fn new(cfg: SystemConfig, pattern: TrafficPattern, load: f64, plan: PhasePlan) -> Self {
        cfg.validate();
        let rate = cfg.capacity().injection_rate(load);
        let nodes = cfg.nodes();
        let generators = match cfg.burst {
            None => traffic::generator::build_generators(nodes, &pattern, rate, cfg.seed),
            Some(b) => traffic::generator::build_bursty_generators(
                nodes,
                &pattern,
                rate,
                b.burstiness,
                b.dwell,
                cfg.seed,
            ),
        };
        let boards = (0..cfg.boards).map(|b| Board::new(&cfg, b)).collect();
        let srs = Srs::new(
            cfg.boards,
            cfg.ladder.clone(),
            cfg.serdes,
            cfg.fiber.delay_cycles(),
            cfg.power_model.clone(),
            cfg.schedule.window,
            cfg.transition.penalty(),
        );
        let metrics = RunMetrics::new(nodes as usize, plan);
        let tracer = Tracer::from_config(cfg.trace);
        let registry = cfg.trace.enabled.then(build_registry);
        // `validate()` above already vetted any tune spec, so construction
        // cannot fail here; a controller only exists where DPM runs.
        let controller = match (&cfg.tune, cfg.mode.power_aware()) {
            (Some(spec), true) => ThresholdController::new(*spec).ok(),
            _ => None,
        };
        // With auto-tuning on, the telemetry edge detectors track the
        // controller's live `B_max` (starting at its initial value, and
        // retargeted whenever it moves); otherwise the static DBR trigger.
        let watch_b_max = match &controller {
            Some(c) => c.thresholds_milli().2 as f64 / 1000.0,
            None => cfg.alloc.b_max,
        };
        let buffer_watch = if cfg.trace.enabled {
            vec![ThresholdWatch::new(watch_b_max); cfg.boards as usize * cfg.boards as usize]
        } else {
            Vec::new()
        };
        let injection_log = cfg.record_injections.then(TraceRecorder::new);
        let packet_log = cfg.packet_log.then(Vec::new);
        let watch_pending = vec![true; buffer_watch.len()];
        // A scenario source preempts the generators; the rate is the same
        // load × N_c normalisation the synthetic patterns use, so the
        // bench load axis carries over unchanged.
        let scenario = cfg.scenario.clone().map(|spec| {
            Box::new(ScenarioEngine::new(spec, nodes, rate, cfg.seed)) as Box<dyn InjectionSource>
        });
        Self {
            cfg,
            boards,
            srs,
            generators,
            replay: None,
            scenario,
            scenario_scratch: Vec::new(),
            injection_log,
            packet_log,
            next_packet_id: 0,
            now: 0,
            metrics,
            pending_dbr: Vec::new(),
            active_round: None,
            delivered_scratch: Vec::new(),
            fault_cursor: 0,
            armed_token: Vec::new(),
            armed_analytic_delay: 0,
            ls_retries: 0,
            ls_aborted: 0,
            tracer,
            registry,
            window_index: 0,
            dbr_rounds: 0,
            watch_pending,
            buffer_watch,
            ready_scratch: Vec::new(),
            controller,
        }
    }

    /// Builds a system that replays a recorded injection trace instead of
    /// drawing from live traffic generators — exact workload replay across
    /// configurations (`load`/`pattern` are irrelevant; every injection
    /// comes from the trace).
    pub fn with_trace(cfg: SystemConfig, replay: TraceReplayer, plan: PhasePlan) -> Self {
        let mut sys = Self::new(cfg, TrafficPattern::Uniform, 0.0, plan);
        sys.replay = Some(replay);
        sys
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The optical stage (for inspection).
    pub fn srs(&self) -> &Srs {
        &self.srs
    }

    /// A board (for inspection).
    pub fn board(&self, b: u16) -> &Board {
        &self.boards[b as usize]
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.step_inner(true, &mut NullProbe);
    }

    /// Advances one cycle with the traffic sources silenced — used to
    /// drain the network completely (conservation checks, clean shutdown).
    pub fn step_without_injection(&mut self) {
        self.step_inner(false, &mut NullProbe);
    }

    /// Advances one cycle, attributing wall time per engine phase into
    /// `timers`. Simulation state evolves exactly as [`System::step`].
    pub fn step_profiled(&mut self, timers: &mut PhaseTimers) {
        let mut probe = TimerProbe {
            timers,
            mark: std::time::Instant::now(),
        };
        self.step_inner(true, &mut probe);
    }

    fn step_inner<P: PhaseProbe>(&mut self, inject: bool, probe: &mut P) {
        let now = self.now;
        probe.start();
        self.apply_due_faults(now);
        self.window_boundary(now);
        self.apply_due_dbr(now);
        self.tick_active_round(now);
        probe.lap(|t| &mut t.reconfig);
        if inject {
            self.inject(now);
        }
        probe.lap(|t| &mut t.inject);
        self.step_boards(now);
        probe.lap(|t| &mut t.route);
        self.transmit(now);
        self.receive(now);
        self.srs.tick_traced(now, &mut self.tracer);
        probe.lap(|t| &mut t.optical);
        let mw = self.srs.record_cycle();
        if self.metrics.measuring(now) {
            self.metrics.power.record(mw);
        }
        probe.lap(|t| &mut t.stats);
        self.now += 1;
    }

    /// Runs until every labelled packet drains (or the plan's hard cap).
    /// Returns the final cycle.
    pub fn run(&mut self) -> Cycle {
        let plan = self.metrics.plan;
        while self.now < plan.max_cycles && !self.metrics.tracker.complete(&plan, self.now) {
            self.step();
        }
        self.now
    }

    /// As [`System::run`], attributing wall time per engine phase into
    /// `timers`. The simulation trajectory is identical — the probe only
    /// reads clocks.
    pub fn run_profiled(&mut self, timers: &mut PhaseTimers) -> Cycle {
        let plan = self.metrics.plan;
        while self.now < plan.max_cycles && !self.metrics.tracker.complete(&plan, self.now) {
            self.step_profiled(timers);
        }
        self.now
    }

    /// As [`System::run`], but with the per-cycle hot path (router steps +
    /// lane transmits) sharded across boards onto up to `point_threads`
    /// worker threads (clamped to the board count; `1` falls back to the
    /// plain sequential loop). The run is **byte-identical** to
    /// [`System::run`] for any worker count: the compute phase only
    /// touches disjoint per-board/per-lane state, and the commit phase
    /// replays every shared side effect in the sequential engine's exact
    /// order (see `crate::shard` and DESIGN.md §12).
    pub fn run_sharded(&mut self, point_threads: std::num::NonZeroUsize) -> Cycle {
        let workers = point_threads.get().min(self.cfg.boards as usize);
        if workers <= 1 {
            return self.run();
        }
        let plan = self.metrics.plan;
        let mut outs: Vec<crate::shard::BoardOut> = (0..self.cfg.boards as usize)
            .map(|_| crate::shard::BoardOut::default())
            .collect();
        let gate = crate::shard::Gate::new();
        std::thread::scope(|scope| {
            // The calling thread participates, so spawn `workers - 1`.
            for _ in 1..workers {
                let gate = &gate;
                scope.spawn(move || crate::shard::worker(gate));
            }
            while self.now < plan.max_cycles && !self.metrics.tracker.complete(&plan, self.now) {
                self.step_sharded(&gate, &mut outs);
            }
            gate.halt();
        });
        self.now
    }

    /// One cycle of the sharded engine: the sequential prologue
    /// (faults/windows/DBR/LS/injection) and epilogue (receive, SRS tick,
    /// power record) are exactly [`System::step_inner`]'s; in between, the
    /// board loop runs as a parallel compute phase into per-board
    /// out-buffers, followed by an in-order commit.
    fn step_sharded(&mut self, gate: &crate::shard::Gate, outs: &mut [crate::shard::BoardOut]) {
        let now = self.now;
        self.apply_due_faults(now);
        self.window_boundary(now);
        self.apply_due_dbr(now);
        self.tick_active_round(now);
        self.inject(now);
        // Compute phase: fresh disjoint views over the boards and SRS
        // lanes, published to the workers for this cycle only. `self` is
        // untouched until `run_epoch` returns (the commit barrier).
        let ctx = crate::shard::ShardCtx {
            now,
            boards: self.boards.as_mut_ptr(),
            outs: outs.as_mut_ptr(),
            nboards: outs.len(),
            srs: self.srs.shard_parts(),
        };
        gate.run_epoch(ctx);
        self.commit_sharded(now, outs);
        self.receive(now);
        self.srs.tick_traced(now, &mut self.tracer);
        let mw = self.srs.record_cycle();
        if self.metrics.measuring(now) {
            self.metrics.power.record(mw);
        }
        self.now += 1;
    }

    /// Applies the out-buffers in canonical (ascending) board order, in
    /// two passes replaying the sequential engine's side-effect sequence
    /// exactly: pass A is `step_boards`' per-delivery metric/telemetry
    /// updates for board 0, 1, …; pass B is `transmit`'s wake/arrival
    /// heap inserts, power-cache invalidation and labelled TX stats, again
    /// board-ascending. Identical push order on every f64 accumulator and
    /// identical heap insertion sequence ⇒ bit-identical results.
    fn commit_sharded(&mut self, now: Cycle, outs: &mut [crate::shard::BoardOut]) {
        for out in outs.iter() {
            for d in &out.delivered {
                self.metrics.delivered_total += 1;
                if self.metrics.measuring(now) {
                    self.metrics
                        .throughput
                        .deliver(now, self.cfg.packet_flits as u32);
                }
                if d.labelled {
                    self.metrics.tracker.deliver_labelled();
                    self.metrics.latency.record(d.injected_at, now);
                    if let Some((reg, ids)) = &mut self.registry {
                        reg.observe(ids.latency_hist, (now - d.injected_at) as f64);
                    }
                }
                if let Some(log) = &mut self.packet_log {
                    log.push(PacketDelivery {
                        id: d.id.0,
                        dst: d.dst,
                        injected_at: d.injected_at,
                        delivered_at: now,
                        labelled: d.labelled,
                    });
                }
            }
        }
        for out in outs.iter() {
            self.srs.commit_lane_effects(&out.fx);
            for &(src_path, tx_wait) in &out.tx_labelled {
                self.metrics.src_path.push(src_path);
                self.metrics.tx_wait.push(tx_wait);
                if let Some((reg, ids)) = &mut self.registry {
                    reg.observe(ids.tx_wait_hist, tx_wait);
                }
            }
        }
    }

    /// Coarse heap-footprint estimate in bytes of the live simulation
    /// state: boards (routers, TX queues) plus the optical stage's channel
    /// bank. Analytic capacity × element-size sums — comparable across
    /// board counts, which is what the scaling artifact tracks.
    pub fn approx_memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .boards
                .iter()
                .map(Board::approx_memory_bytes)
                .sum::<usize>()
            + self.srs.approx_memory_bytes()
            + std::mem::size_of_val(self.generators.as_slice())
    }

    /// `R_w` boundary handling: roll windows, trigger the odd–even cycle.
    fn window_boundary(&mut self, now: Cycle) {
        if !self.cfg.schedule.is_boundary(now) {
            return;
        }
        self.srs.roll_windows(now);
        for b in &mut self.boards {
            b.roll_windows(now);
        }
        if self.tracer.enabled() {
            self.boundary_telemetry(now);
        }
        match self.cfg.schedule.kind_at(now) {
            Some(WindowKind::Power) if self.cfg.mode.power_aware() => {
                // The controller steps first so the thresholds it derives
                // from the just-closed window govern this Power cycle. Both
                // calls sit in the sequential prologue of either engine, so
                // the sharded run replays them identically (DESIGN.md §15).
                self.controller_cycle();
                self.power_cycle(now);
            }
            Some(WindowKind::Bandwidth) if self.cfg.mode.bandwidth_reconfig() => {
                self.bandwidth_cycle(now)
            }
            _ => {}
        }
    }

    /// One auto-tuning step (DESIGN.md §15): scan the just-closed window's
    /// lit channels in canonical ascending `(dest, wavelength)` order —
    /// the exact order [`Self::power_cycle`] visits them — into integer
    /// milli counts, feed them to the controller, and when `B_max` moved,
    /// retarget the telemetry edge detectors (un-parking every flow, since
    /// a parked flow's steady value may sit on the other side of the new
    /// threshold). No-op unless the config enabled tuning. Deliberately
    /// independent of the metric registry: the controller must drive
    /// untraced runs (golden, marathon, streaming) identically.
    fn controller_cycle(&mut self) {
        let Some(ctrl) = &self.controller else {
            return;
        };
        let (l_min_milli, _, b_max_milli) = ctrl.thresholds_milli();
        let boards = self.cfg.boards;
        let wavelengths = self.cfg.wavelengths();
        let mut obs = WindowObservation::default();
        for d in 0..boards {
            for w in 0..wavelengths {
                let Some(s) = self.srs.owner(d, w) else {
                    continue;
                };
                if !self.srs.channel(s, d, w).is_on() {
                    continue;
                }
                let link_milli = (self.srs.link_util(s, d, w) * 1000.0).round() as u32;
                let buf_milli = (self.boards[s as usize].buffer_util(d) * 1000.0).round() as u32;
                obs.lit += 1;
                obs.pressured += u32::from(buf_milli > b_max_milli);
                obs.idle += u32::from(link_milli < l_min_milli);
            }
        }
        let Some(ctrl) = &mut self.controller else {
            return;
        };
        let before_b_max = ctrl.thresholds_milli().2;
        ctrl.observe_window(obs);
        let after_b_max = ctrl.thresholds_milli().2;
        if before_b_max != after_b_max {
            let target = after_b_max as f64 / 1000.0;
            for watch in &mut self.buffer_watch {
                watch.retarget(target);
            }
            self.watch_pending.fill(true);
        }
    }

    /// The DPM thresholds this system applies at Power boundaries: the
    /// live controller's when auto-tuning is on, else the config's
    /// (override or mode preset).
    fn effective_dpm_policy(&self) -> Option<powermgmt::policy::DpmPolicy> {
        match &self.controller {
            Some(c) => Some(c.policy()),
            None => self.cfg.dpm_policy(),
        }
    }

    /// The live auto-tuning controller, when enabled (inspection: tests
    /// pin its thresholds/moves across engines and checkpoint legs).
    pub fn controller(&self) -> Option<&ThresholdController> {
        self.controller.as_ref()
    }

    /// Traced-run bookkeeping at an `R_w` boundary: stamp the boundary,
    /// detect `B_max` crossings on the just-closed window's buffer
    /// occupancies, sample the congestion gauges, and finalize the metric
    /// window. Runs only when tracing is enabled; it observes the
    /// simulation without mutating any of its state.
    fn boundary_telemetry(&mut self, now: Cycle) {
        self.window_index += 1;
        if let Some(kind) = self.cfg.schedule.kind_at(now) {
            let kind = match kind {
                WindowKind::Power => WindowLabel::Power,
                WindowKind::Bandwidth => WindowLabel::Bandwidth,
            };
            self.tracer.emit(
                now,
                TraceEvent::WindowBoundary {
                    index: self.window_index,
                    kind,
                },
            );
        }
        let boards = self.cfg.boards;
        for s in 0..boards {
            for d in 0..boards {
                if s == d {
                    continue;
                }
                // Dirty-set scan: park flows whose watch already saw this
                // exact window value (see `watch_pending`). Feeding the
                // watch the identical bits again is a no-op, so the skip
                // cannot change any crossing event.
                let f = s as usize * boards as usize + d as usize;
                let board = &self.boards[s as usize];
                self.watch_pending[f] |= board.buffer_util_touched(d);
                if !self.watch_pending[f] {
                    continue;
                }
                self.watch_pending[f] = !board.buffer_util_steady(d);
                let util = self.boards[s as usize].buffer_util(d);
                let watch = &mut self.buffer_watch[f];
                if let Some(above) = watch.observe(util) {
                    self.tracer.emit(
                        now,
                        TraceEvent::BufferThreshold {
                            board: s,
                            dest: d,
                            above,
                            util_milli: (util * 1000.0).round() as u32,
                        },
                    );
                    if let Some((reg, ids)) = &mut self.registry {
                        reg.inc(ids.buffer_crossings, 1);
                    }
                }
            }
        }
        if let Some((reg, ids)) = &mut self.registry {
            let peak = self
                .boards
                .iter_mut()
                .map(|b| b.take_router_peak())
                .max()
                .unwrap_or(0);
            reg.set(ids.router_peak, peak as f64);
            reg.set(ids.lasers_on, self.srs.lasers_on() as f64);
            reg.roll(self.window_index);
        }
    }

    /// DPM: every lit channel's LC compares the previous window's
    /// `Link_util`/`Buffer_util` against the thresholds and retunes.
    fn power_cycle(&mut self, now: Cycle) {
        let Some(policy) = self.effective_dpm_policy() else {
            return;
        };
        let boards = self.cfg.boards;
        let wavelengths = self.cfg.wavelengths();
        for d in 0..boards {
            for w in 0..wavelengths {
                let Some(s) = self.srs.owner(d, w) else {
                    continue;
                };
                let link_util = self.srs.link_util(s, d, w);
                let buffer_util = self.boards[s as usize].buffer_util(d);
                let channel = self.srs.channel(s, d, w);
                if !channel.is_on() {
                    continue;
                }
                let level = channel.level();
                use powermgmt::policy::ScaleDecision;
                let target = match policy.decide(link_util, buffer_util) {
                    ScaleDecision::Down => self.cfg.ladder.down(level),
                    ScaleDecision::Up => self.cfg.ladder.up(level),
                    ScaleDecision::Hold => level,
                };
                if target != level {
                    let penalty = self.cfg.transition.penalty_between(level, target);
                    if self.tracer.enabled() {
                        let ev = self.cfg.transition.retune_event(s, d, w, level, target);
                        self.tracer.emit(now, ev);
                        if let Some((reg, ids)) = &mut self.registry {
                            reg.inc(ids.retunes, 1);
                        }
                    }
                    self.srs.schedule_retune(s, d, w, target, penalty);
                }
            }
        }
    }

    /// DBR trigger: either compute decisions now and delay their effect by
    /// the analytic five-stage latency, or launch a message-level round on
    /// the control ring that arrives at the same answer the slow way.
    fn bandwidth_cycle(&mut self, now: Cycle) {
        self.dbr_rounds += 1;
        if let Some((reg, ids)) = &mut self.registry {
            reg.inc(ids.rounds, 1);
        }
        match self.cfg.control_plane {
            ControlPlane::AnalyticLatency => {
                let all_grants = self.compute_grants();
                // Token faults armed before this round delay its apply time
                // (the mirror of the message-level round recovering them).
                let delay = std::mem::take(&mut self.armed_analytic_delay);
                if self.tracer.enabled() {
                    // The analytic plane never walks the five stages, but
                    // their spans are fully determined by the timing model;
                    // synthesize them so both planes produce comparable
                    // per-round traces (future-stamped events are fine —
                    // exporters keep emission order, viewers sort by time).
                    let round = self.dbr_rounds;
                    let mut start = now;
                    for &stage in Stage::all().iter() {
                        let end = start + self.cfg.timing.stage_cycles(stage);
                        self.tracer.emit(
                            start,
                            TraceEvent::LsStage {
                                round,
                                stage: stage_label(stage),
                                end,
                            },
                        );
                        start = end;
                    }
                    self.tracer.emit(
                        now + self.cfg.timing.dbr_latency() + delay,
                        TraceEvent::DbrOutcome {
                            round,
                            grants: all_grants.len() as u32,
                            retries: 0,
                            aborted: false,
                        },
                    );
                }
                if let Some((reg, ids)) = &mut self.registry {
                    reg.inc(ids.grants, all_grants.len() as u64);
                }
                if !all_grants.is_empty() {
                    self.pending_dbr
                        .push((now + self.cfg.timing.dbr_latency() + delay, all_grants));
                }
            }
            ControlPlane::MessageLevel => {
                if self.active_round.is_some() {
                    // The previous round is somehow still running (only
                    // possible with an R_w shorter than the protocol);
                    // drop the stale round in favour of fresh statistics.
                    self.active_round = None;
                }
                let (outgoing, demands) = self.round_inputs();
                let mut round =
                    DbrRound::new(self.cfg.timing, self.cfg.alloc, now, outgoing, demands)
                        .with_retry(self.cfg.retry);
                for f in self.armed_token.drain(..) {
                    round.inject_fault(f);
                }
                self.active_round = Some(round);
            }
        }
    }

    /// Direct evaluation of the Reconfigure stage for every destination.
    /// The per-destination channel/demand lists are hoisted out of the loop
    /// and reused, so one window boundary performs O(1) allocations instead
    /// of O(boards).
    fn compute_grants(&self) -> Vec<WavelengthGrant> {
        let boards = self.cfg.boards;
        let wavelengths = self.cfg.wavelengths();
        let mut all_grants = Vec::new();
        let mut channels: Vec<IncomingLink> = Vec::with_capacity(wavelengths as usize);
        let mut demands: Vec<FlowDemand> = Vec::with_capacity(boards as usize);
        for d in 0..boards {
            channels.clear();
            for w in 1..wavelengths {
                if let Some(s) = self.srs.owner(d, w) {
                    channels.push(IncomingLink {
                        wavelength: Wavelength(w),
                        owner: BoardId(s),
                        buffer_util: self.boards[s as usize].buffer_util(d),
                    });
                }
            }
            demands.clear();
            demands.extend((0..boards).filter(|&s| s != d).map(|s| FlowDemand {
                source: BoardId(s),
                buffer_util: self.boards[s as usize].buffer_util(d),
            }));
            let grants = self
                .cfg
                .alloc
                .reconfigure_with_demands(BoardId(d), &channels, &demands);
            all_grants.extend(grants);
        }
        all_grants
    }

    /// Builds the Link-Request readings and flow demands a message-level
    /// round starts from (the LC hardware-counter state of the previous
    /// window).
    fn round_inputs(&self) -> (Vec<Vec<LinkReading>>, Vec<Vec<FlowDemand>>) {
        let boards = self.cfg.boards;
        let wavelengths = self.cfg.wavelengths();
        let mut outgoing = vec![Vec::new(); boards as usize];
        for d in 0..boards {
            for w in 1..wavelengths {
                if let Some(s) = self.srs.owner(d, w) {
                    let ch = self.srs.channel(s, d, w);
                    outgoing[s as usize].push(LinkReading {
                        wavelength: Wavelength(w),
                        destination: Some(BoardId(d)),
                        link_util: self.srs.link_util(s, d, w),
                        buffer_util: self.boards[s as usize].buffer_util(d),
                        level: ch.level(),
                    });
                }
            }
        }
        let demands = (0..boards)
            .map(|d| {
                (0..boards)
                    .filter(|&s| s != d)
                    .map(|s| FlowDemand {
                        source: BoardId(s),
                        buffer_util: self.boards[s as usize].buffer_util(d),
                    })
                    .collect()
            })
            .collect();
        (outgoing, demands)
    }

    /// Advances an in-flight message-level round; applies its outcome on
    /// the cycle the Link Response stage completes.
    fn tick_active_round(&mut self, now: Cycle) {
        let Some(round) = &mut self.active_round else {
            return;
        };
        if let Some(outcome) = round.tick(now) {
            self.ls_retries += outcome.retries as u64;
            if outcome.error.is_some() {
                // Fail-safe abort: the round decided nothing; the system
                // keeps its current allocation.
                self.ls_aborted += 1;
            }
            if self.tracer.enabled() {
                // Rounds never overlap (stale ones are dropped at the next
                // window boundary), so the live round is always the latest.
                let id = self.dbr_rounds;
                let log = round.take_stage_log();
                for pair in log.windows(2) {
                    let (start, label) = pair[0];
                    let (end, _) = pair[1];
                    if let Some(stage) = LsStageLabel::from_name(label) {
                        self.tracer.emit(
                            start,
                            TraceEvent::LsStage {
                                round: id,
                                stage,
                                end,
                            },
                        );
                    }
                }
                self.tracer.emit(
                    now,
                    TraceEvent::DbrOutcome {
                        round: id,
                        grants: outcome.grants.len() as u32,
                        retries: outcome.retries,
                        aborted: outcome.error.is_some(),
                    },
                );
            }
            if let Some((reg, ids)) = &mut self.registry {
                reg.inc(ids.grants, outcome.grants.len() as u64);
            }
            self.srs
                .schedule_grants_traced(now, &outcome.grants, &mut self.tracer);
            // Faults that armed too late to strike this round carry over
            // to the next one.
            let leftovers = round.take_armed();
            self.armed_token.extend(leftovers);
            self.active_round = None;
        }
    }

    fn apply_due_dbr(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.pending_dbr.len() {
            if self.pending_dbr[i].0 <= now {
                let (_, grants) = self.pending_dbr.swap_remove(i);
                self.srs
                    .schedule_grants_traced(now, &grants, &mut self.tracer);
            } else {
                i += 1;
            }
        }
    }

    /// Node injection: Bernoulli sources fire into their NIs (or the
    /// replayed trace's entries due this cycle, or the scenario source's).
    /// All branches funnel through [`Self::inject_one`], so the injection
    /// log sees the exact workload regardless of its source.
    fn inject(&mut self, now: Cycle) {
        let plan = self.metrics.plan;
        let labelled = plan.phase_at(now) == Phase::Measure;
        if let Some(mut rep) = self.replay.take() {
            while let Some(e) = rep.pop_due(now) {
                self.inject_one(now, e.src, e.dst, labelled);
            }
            self.replay = Some(rep);
            return;
        }
        if let Some(mut sc) = self.scenario.take() {
            let mut due = std::mem::take(&mut self.scenario_scratch);
            due.clear();
            sc.poll_into(now, &mut due);
            for req in &due {
                self.inject_one(now, req.src, req.dst, labelled);
            }
            self.scenario_scratch = due;
            self.scenario = Some(sc);
            return;
        }
        // Moving the Vec out and back costs three pointer words and frees
        // `self` for the funnel call; no element is touched.
        let mut gens = std::mem::take(&mut self.generators);
        for g in &mut gens {
            if let Some(req) = g.poll(now) {
                self.inject_one(now, req.src, req.dst, labelled);
            }
        }
        self.generators = gens;
    }

    /// Injects one packet from `src` to `dst`, assigning the next
    /// sequential id and recording into the injection log when enabled.
    fn inject_one(&mut self, now: Cycle, src: u32, dst: u32, labelled: bool) {
        if let Some(log) = &mut self.injection_log {
            // `now` is monotone across calls, so recording cannot fail;
            // a debug build still checks the invariant.
            let recorded = log.record(now, src, dst);
            debug_assert!(recorded.is_ok(), "injection log out of order");
        }
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            flits: self.cfg.packet_flits,
            injected_at: now,
            labelled,
        };
        if labelled {
            self.metrics.tracker.inject_labelled();
        }
        self.metrics.injected_total += 1;
        let b = self.cfg.board_of(src);
        let l = self.cfg.local_of(src);
        self.boards[b as usize].enqueue_node_packet(l, packet);
    }

    fn step_boards(&mut self, now: Cycle) {
        // Reuse one delivery buffer across all boards and cycles.
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        for b in &mut self.boards {
            delivered.clear();
            b.step_into(now, &mut delivered);
            for d in &delivered {
                self.metrics.delivered_total += 1;
                if self.metrics.measuring(now) {
                    self.metrics
                        .throughput
                        .deliver(now, self.cfg.packet_flits as u32);
                }
                if d.labelled {
                    self.metrics.tracker.deliver_labelled();
                    self.metrics.latency.record(d.injected_at, now);
                    if let Some((reg, ids)) = &mut self.registry {
                        reg.observe(ids.latency_hist, (now - d.injected_at) as f64);
                    }
                }
                if let Some(log) = &mut self.packet_log {
                    log.push(PacketDelivery {
                        id: d.id.0,
                        dst: d.dst,
                        injected_at: d.injected_at,
                        delivered_at: now,
                        labelled: d.labelled,
                    });
                }
            }
        }
        self.delivered_scratch = delivered;
    }

    /// Moves ready TX-queue packets onto free owned optical channels.
    /// Only destinations with a completed packet are visited (the board's
    /// ready-destination active set); a queue with nothing ready behaved
    /// as a no-op under the old full `d` scan, so skipping it is
    /// identical. The snapshot keeps the legacy ascending-`d` order.
    fn transmit(&mut self, now: Cycle) {
        let boards = self.cfg.boards;
        let mut ready = std::mem::take(&mut self.ready_scratch);
        for s in 0..boards {
            ready.clear();
            ready.extend_from_slice(self.boards[s as usize].ready_dests());
            for &d in &ready {
                while let Some(pkt) = self.boards[s as usize].tx_queue(d).peek().copied() {
                    if self.srs.try_transmit(now, s, d, pkt).is_some() {
                        let Some(departed) = self.boards[s as usize].tx_depart(now, d) else {
                            break; // unreachable: the queue head was just peeked
                        };
                        debug_assert_eq!(departed.id, pkt.id);
                        if pkt.labelled {
                            self.metrics
                                .src_path
                                .push((pkt.completed_at - pkt.injected_at) as f64);
                            self.metrics.tx_wait.push((now - pkt.completed_at) as f64);
                            if let Some((reg, ids)) = &mut self.registry {
                                reg.observe(ids.tx_wait_hist, (now - pkt.completed_at) as f64);
                            }
                        }
                    } else {
                        break;
                    }
                }
            }
        }
        self.ready_scratch = ready;
    }

    /// Delivers optical arrivals into the destination boards' receivers
    /// (popping one at a time — no per-cycle arrival list is built).
    fn receive(&mut self, now: Cycle) {
        while let Some(arr) = self.srs.pop_arrival_due(now) {
            self.boards[arr.dst_board as usize].enqueue_rx_packet(arr.wavelength, arr.packet);
        }
    }

    /// Applies every fault event scheduled at or before `now` (the plan is
    /// time-sorted, so this is a cursor walk — O(1) when nothing is due).
    fn apply_due_faults(&mut self, now: Cycle) {
        while self.fault_cursor < self.cfg.faults.len() {
            let e = self.cfg.faults.events()[self.fault_cursor];
            if e.at > now {
                break;
            }
            self.fault_cursor += 1;
            self.apply_fault(now, e.kind);
        }
    }

    fn apply_fault(&mut self, now: Cycle, kind: FaultKind) {
        if self.tracer.enabled() {
            // `wavelength: 0` marks "not applicable": the static RWA never
            // assigns wavelength 0 to a flow, so the sentinel is unambiguous.
            let (label, board, dest, wavelength) = match kind {
                FaultKind::ReceiverDown { board, wavelength } => {
                    (FaultLabel::ReceiverDrop, board, board, wavelength)
                }
                FaultKind::ReceiverRepair { board, wavelength } => {
                    (FaultLabel::ReceiverRepair, board, board, wavelength)
                }
                FaultKind::TransmitterDown { board, dest } => {
                    (FaultLabel::TransmitterDrop, board, dest, 0)
                }
                FaultKind::TransmitterRepair { board, dest } => {
                    (FaultLabel::TransmitterRepair, board, dest, 0)
                }
                FaultKind::LcStuck {
                    board,
                    dest,
                    wavelength,
                } => (FaultLabel::LcStuck, board, dest, wavelength),
                FaultKind::LcRepair {
                    board,
                    dest,
                    wavelength,
                } => (FaultLabel::LcUnstuck, board, dest, wavelength),
                FaultKind::CdrRelock {
                    board,
                    dest,
                    wavelength,
                    ..
                } => (FaultLabel::CdrRelock, board, dest, wavelength),
                FaultKind::TokenLoss { victim } => (FaultLabel::TokenLoss, victim, victim, 0),
                FaultKind::TokenCorrupt { victim } => (FaultLabel::TokenCorrupt, victim, victim, 0),
            };
            self.tracer.emit(
                now,
                TraceEvent::Fault {
                    label,
                    board,
                    dest,
                    wavelength,
                },
            );
            if let Some((reg, ids)) = &mut self.registry {
                reg.inc(ids.faults, 1);
            }
        }
        match kind {
            FaultKind::ReceiverDown { board, wavelength } => {
                self.srs
                    .fail_receiver_traced(now, board, wavelength, &mut self.tracer)
            }
            FaultKind::ReceiverRepair { board, wavelength } => {
                self.srs.repair_receiver(now, board, wavelength)
            }
            FaultKind::TransmitterDown { board, dest } => {
                self.srs
                    .fail_transmitter_traced(now, board, dest, &mut self.tracer)
            }
            FaultKind::TransmitterRepair { board, dest } => {
                self.srs.repair_transmitter(now, board, dest)
            }
            FaultKind::LcStuck {
                board,
                dest,
                wavelength,
            } => self.srs.stick_lc(board, dest, wavelength),
            FaultKind::LcRepair {
                board,
                dest,
                wavelength,
            } => self.srs.unstick_lc(board, dest, wavelength),
            FaultKind::CdrRelock {
                board,
                dest,
                wavelength,
                penalty,
            } => self.srs.schedule_relock(board, dest, wavelength, penalty),
            FaultKind::TokenLoss { victim } => self.token_fault(now, victim, false),
            FaultKind::TokenCorrupt { victim } => self.token_fault(now, victim, true),
        }
    }

    /// Routes an LS token fault into whichever control plane is running.
    /// Both planes recover with the same deterministic extra latency for a
    /// single token fault per round (see [`reconfig::protocol::RetryPolicy`]);
    /// only the message-level plane models the fail-safe abort of a
    /// persistently jammed ring.
    fn token_fault(&mut self, now: Cycle, victim: u16, corrupt: bool) {
        if !self.cfg.mode.bandwidth_reconfig() {
            return; // no DBR rounds: nothing on the ring to hit
        }
        let fault = TokenFault {
            victim: BoardId(victim),
            corrupt,
        };
        match self.cfg.control_plane {
            ControlPlane::MessageLevel => {
                if let Some(round) = &mut self.active_round {
                    round.inject_fault(fault);
                } else {
                    self.armed_token.push(fault);
                }
            }
            ControlPlane::AnalyticLatency => {
                self.ls_retries += 1;
                let delay = self.cfg.retry.recovery_delay(&self.cfg.timing, corrupt);
                let link_resp = self.cfg.timing.stage_cycles(Stage::LinkResponse);
                // A fault lands in the round whose Board Response has not
                // yet completed; later faults arm for the next round.
                match self.pending_dbr.iter_mut().min_by_key(|(due, _)| *due) {
                    Some(batch) if now + link_resp <= batch.0 => batch.0 += delay,
                    _ => self.armed_analytic_delay += delay,
                }
            }
        }
    }

    /// Fault injection: kills the receiver for wavelength `w` at board `d`
    /// (see [`Srs::fail_receiver`]). With DBR active the orphaned flow
    /// re-acquires bandwidth through its queue demand; without it the flow
    /// starves — the resilience story reconfigurability buys.
    pub fn fail_receiver(&mut self, d: u16, w: u16) {
        let now = self.now;
        self.srs.fail_receiver(now, d, w);
    }

    /// Fault repair: restores the receiver for wavelength `w` at board `d`
    /// (see [`Srs::repair_receiver`]); the static owner re-lights and DBR
    /// re-admits the wavelength.
    pub fn repair_receiver(&mut self, d: u16, w: u16) {
        let now = self.now;
        self.srs.repair_receiver(now, d, w);
    }

    /// Applies one fault immediately, outside any scheduled plan.
    pub fn inject_fault(&mut self, kind: FaultKind) {
        let now = self.now;
        self.apply_fault(now, kind);
    }

    /// Control-plane health: `(token resends performed, rounds aborted
    /// fail-safe)`.
    pub fn control_stats(&self) -> (u64, u64) {
        (self.ls_retries, self.ls_aborted)
    }

    /// True when this system records a trace (i.e. [`SystemConfig::trace`]
    /// enabled it).
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Drains the recorded trace, oldest event first. Empty when tracing is
    /// off (the default).
    pub fn take_trace_records(&mut self) -> Vec<TraceRecord> {
        self.tracer.take_records()
    }

    /// Events overwritten because the ring-buffer capacity was exceeded.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// Drains the per-window metric snapshots (empty when tracing is off).
    pub fn take_metric_windows(&mut self) -> Vec<WindowSnapshot> {
        match &mut self.registry {
            Some((reg, _)) => reg.take_windows(),
            None => Vec::new(),
        }
    }

    /// Counter column names for [`Self::take_metric_windows`] rows, in
    /// registration (= snapshot) order.
    pub fn metric_counter_names(&self) -> Vec<String> {
        match &self.registry {
            Some((reg, _)) => reg.counter_names().iter().map(|s| s.to_string()).collect(),
            None => Vec::new(),
        }
    }

    /// Gauge column names for [`Self::take_metric_windows`] rows.
    pub fn metric_gauge_names(&self) -> Vec<String> {
        match &self.registry {
            Some((reg, _)) => reg.gauge_names().iter().map(|s| s.to_string()).collect(),
            None => Vec::new(),
        }
    }

    /// Histogram names registered by a traced run (empty when tracing is
    /// off), in registration order.
    pub fn metric_hist_names(&self) -> Vec<String> {
        match &self.registry {
            Some((reg, _)) => reg.hist_names().iter().map(|s| s.to_string()).collect(),
            None => Vec::new(),
        }
    }

    /// Run-cumulative histogram digests (empty when tracing is off).
    pub fn metric_hist_summaries(&self) -> Vec<HistogramSummary> {
        match &self.registry {
            Some((reg, _)) => reg.hist_summaries(),
            None => Vec::new(),
        }
    }

    /// Drains the injection log recorded by this run (None unless
    /// [`SystemConfig::record_injections`] enabled it). The caller attaches
    /// provenance via [`TraceRecorder::into_trace`].
    pub fn take_injection_log(&mut self) -> Option<TraceRecorder> {
        self.injection_log.take()
    }

    /// Drains the per-packet delivery log (empty unless
    /// [`SystemConfig::packet_log`] enabled it).
    pub fn take_packet_log(&mut self) -> Vec<PacketDelivery> {
        self.packet_log.take().unwrap_or_default()
    }

    /// True when no packet is anywhere in flight — boards idle *and* the
    /// optical domain empty (no packet serializing or on a fiber).
    pub fn is_drained(&self) -> bool {
        self.boards.iter().all(|b| b.is_idle()) && self.srs.arrivals_pending() == 0
    }

    /// The mode this system runs.
    pub fn mode(&self) -> NetworkMode {
        self.cfg.mode
    }

    /// True when the system is at a state a checkpoint can capture: no
    /// message-level DBR round in flight. Rounds launch at `R_w`
    /// boundaries and complete well within a window, so boundary-cadence
    /// checkpointing observes this as always-true in practice; a
    /// conservative caller ([`crate::checkpoint::Checkpointer`]) skips the
    /// boundary and retries at the next one if it is not.
    pub fn can_checkpoint(&self) -> bool {
        self.active_round.is_none()
    }

    /// Serializes the full mutable simulation state (boards, SRS,
    /// generators, logs, metrics, control plane, telemetry). Config-derived
    /// geometry is *not* written — restore overlays a freshly-constructed
    /// identical system. Fails if a message-level DBR round is in flight
    /// (see [`Self::can_checkpoint`]); in-flight rounds borrow stage state
    /// that is not worth freezing when the next boundary is at most one
    /// window away.
    pub fn save_state(
        &self,
        w: &mut desim::snap::SnapWriter,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::{Snap, SnapError};
        if self.active_round.is_some() {
            return Err(SnapError::Mismatch(
                "checkpoint requested mid-DBR-round; wait for quiescence".into(),
            ));
        }
        w.tag(b"SYSS");
        w.u64(self.now);
        w.u64(self.next_packet_id);
        w.u64(self.window_index);
        w.u64(self.dbr_rounds);
        w.u64(self.ls_retries);
        w.u64(self.ls_aborted);
        w.u64(self.armed_analytic_delay);
        w.usize(self.fault_cursor);
        w.usize(self.boards.len());
        for b in &self.boards {
            b.save_state(w);
        }
        self.srs.save_state(w);
        w.usize(self.generators.len());
        for g in &self.generators {
            g.save_state(w);
        }
        w.bool(self.replay.is_some());
        if let Some(rp) = &self.replay {
            rp.save_state(w);
        }
        w.bool(self.injection_log.is_some());
        if let Some(log) = &self.injection_log {
            log.save_state(w);
        }
        w.bool(self.packet_log.is_some());
        if let Some(log) = &self.packet_log {
            log.save(w);
        }
        self.metrics.save_state(w);
        self.pending_dbr.save(w);
        self.armed_token.save(w);
        self.tracer.save_state(w);
        w.bool(self.registry.is_some());
        if let Some((reg, _)) = &self.registry {
            reg.save_state(w);
        }
        w.usize(self.buffer_watch.len());
        for watch in &self.buffer_watch {
            watch.save_state(w);
        }
        self.watch_pending.save(w);
        w.bool(self.scenario.is_some());
        if let Some(sc) = &self.scenario {
            sc.save_state(w);
        }
        w.bool(self.controller.is_some());
        if let Some(c) = &self.controller {
            c.save_state(w);
        }
        Ok(())
    }

    /// Overlays a checkpointed state onto a freshly-constructed system
    /// built from the *same* config (and, under replay, the same trace).
    /// Geometry mismatches (board count, channel bank shape, presence of
    /// replay/logs/telemetry) are typed [`desim::snap::SnapError::Mismatch`]
    /// errors, never panics.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::{Snap, SnapError};
        fn presence(got: bool, have: bool, what: &str) -> Result<(), SnapError> {
            if got != have {
                return Err(SnapError::Mismatch(format!(
                    "snapshot {} {what} but this system {}",
                    if got { "has" } else { "lacks" },
                    if have { "has one" } else { "does not" },
                )));
            }
            Ok(())
        }
        r.tag(b"SYSS")?;
        let now = r.u64()?;
        let next_packet_id = r.u64()?;
        let window_index = r.u64()?;
        let dbr_rounds = r.u64()?;
        let ls_retries = r.u64()?;
        let ls_aborted = r.u64()?;
        let armed_analytic_delay = r.u64()?;
        let fault_cursor = r.usize()?;
        if fault_cursor > self.cfg.faults.len() {
            return Err(SnapError::Format(
                "fault cursor beyond this config's fault plan".into(),
            ));
        }
        r.len_eq(self.boards.len(), "system boards")?;
        for b in &mut self.boards {
            b.load_state(r)?;
        }
        self.srs.load_state(r)?;
        r.len_eq(self.generators.len(), "node generators")?;
        for g in &mut self.generators {
            g.load_state(r)?;
        }
        presence(r.bool()?, self.replay.is_some(), "a replay source")?;
        if let Some(rp) = &mut self.replay {
            rp.load_state(r)?;
        }
        presence(r.bool()?, self.injection_log.is_some(), "an injection log")?;
        if let Some(log) = &mut self.injection_log {
            log.load_state(r)?;
        }
        presence(r.bool()?, self.packet_log.is_some(), "a packet log")?;
        if self.packet_log.is_some() {
            self.packet_log = Some(Snap::load(r)?);
        }
        self.metrics.load_state(r)?;
        self.pending_dbr = Snap::load(r)?;
        self.armed_token = Snap::load(r)?;
        self.tracer.load_state(r)?;
        presence(r.bool()?, self.registry.is_some(), "a metric registry")?;
        if let Some((reg, _)) = &mut self.registry {
            reg.load_state(r)?;
        }
        r.len_eq(self.buffer_watch.len(), "buffer watches")?;
        for watch in &mut self.buffer_watch {
            watch.load_state(r)?;
        }
        let watch_pending: Vec<bool> =
            desim::snap::load_vec_exact(r, self.watch_pending.len(), "watch-pending flags")?;
        presence(r.bool()?, self.scenario.is_some(), "a scenario source")?;
        if let Some(sc) = &mut self.scenario {
            sc.load_state(r)?;
        }
        presence(r.bool()?, self.controller.is_some(), "a tuning controller")?;
        if let Some(c) = &mut self.controller {
            c.load_state(r)?;
            // The freshly-built watches carry the config's `B_max`; the
            // killed run's watches had been retargeted to the controller's
            // live value. Reproduce that (the snapshot's hysteresis sides
            // and park flags — loaded above/below — already correspond to
            // it, so no un-parking here).
            let target = c.thresholds_milli().2 as f64 / 1000.0;
            for watch in &mut self.buffer_watch {
                watch.retarget(target);
            }
        }
        self.now = now;
        self.next_packet_id = next_packet_id;
        self.window_index = window_index;
        self.dbr_rounds = dbr_rounds;
        self.ls_retries = ls_retries;
        self.ls_aborted = ls_aborted;
        self.armed_analytic_delay = armed_analytic_delay;
        self.fault_cursor = fault_cursor;
        self.watch_pending = watch_pending;
        self.active_round = None;
        Ok(())
    }

    /// As [`Self::run`]/[`Self::run_sharded`], invoking `hook` at the top
    /// of every cycle *before* the cycle executes. The hook observes the
    /// system exactly as the cycle will (same `now`, pre-boundary state),
    /// which is what checkpointing and streaming export need: a hook at
    /// cycle `t = k·R_w` captures the state an uninterrupted run has when
    /// entering that boundary cycle. The trajectory is byte-identical to
    /// the unhooked engines for any worker count.
    pub fn run_with<F: FnMut(&mut System)>(
        &mut self,
        point_threads: std::num::NonZeroUsize,
        hook: &mut F,
    ) -> Cycle {
        let workers = point_threads.get().min(self.cfg.boards as usize);
        let plan = self.metrics.plan;
        if workers <= 1 {
            while self.now < plan.max_cycles && !self.metrics.tracker.complete(&plan, self.now) {
                hook(self);
                self.step();
            }
            return self.now;
        }
        let mut outs: Vec<crate::shard::BoardOut> = (0..self.cfg.boards as usize)
            .map(|_| crate::shard::BoardOut::default())
            .collect();
        let gate = crate::shard::Gate::new();
        std::thread::scope(|scope| {
            for _ in 1..workers {
                let gate = &gate;
                scope.spawn(move || crate::shard::worker(gate));
            }
            while self.now < plan.max_cycles && !self.metrics.tracker.complete(&plan, self.now) {
                hook(self);
                self.step_sharded(&gate, &mut outs);
            }
            gate.halt();
        });
        self.now
    }

    /// Drains one window's worth of streamable output: recorded trace
    /// events, per-window metric rows, and the packet-delivery log. With a
    /// boundary-cadence caller this bounds all three in-memory buffers to
    /// one window of data — the core of the long-horizon streaming mode.
    pub fn drain_window(&mut self) -> WindowFlush {
        let packets = match &mut self.packet_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        };
        // Drained every window, the log can never exceed one window of
        // deliveries: at most one flit ejects per node per cycle, so
        // deliveries per window ≤ nodes × R_w / packet_flits.
        debug_assert!(
            packets.len()
                <= (self.cfg.boards as usize * self.cfg.nodes_per_board as usize)
                    * (self.cfg.schedule.window as usize)
                    / (self.cfg.packet_flits as usize).max(1),
            "packet log exceeded one window of deliveries"
        );
        WindowFlush {
            records: self.tracer.take_records(),
            windows: self.take_metric_windows(),
            packets,
        }
    }
}

/// One window's worth of streamed output, drained at an `R_w` boundary by
/// [`System::drain_window`].
#[derive(Debug, Default)]
pub struct WindowFlush {
    /// Trace events recorded since the previous drain (empty when tracing
    /// is off).
    pub records: Vec<TraceRecord>,
    /// Per-window metric rows rolled since the previous drain.
    pub windows: Vec<WindowSnapshot>,
    /// Packet deliveries logged since the previous drain.
    pub packets: Vec<PacketDelivery>,
}

/// Adapter running a [`System`] as a [`desim::clocked::Clocked`] component,
/// so it can be composed with other clocked models under one
/// [`desim::clocked::ClockedEngine`].
pub struct ClockedSystem {
    system: System,
}

impl ClockedSystem {
    /// Wraps a system.
    pub fn new(system: System) -> Self {
        Self { system }
    }

    /// The wrapped system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Unwraps.
    pub fn into_inner(self) -> System {
        self.system
    }
}

impl desim::clocked::Clocked for ClockedSystem {
    /// Shared state mirrors the packet counters: `(injected, delivered)`.
    type Shared = (u64, u64);

    fn tick(&mut self, now: Cycle, shared: &mut (u64, u64)) {
        debug_assert_eq!(now, self.system.now(), "engine and system clocks in step");
        self.system.step();
        *shared = (
            self.system.metrics().injected_total,
            self.system.metrics().delivered_total,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkMode;

    fn plan() -> PhasePlan {
        PhasePlan::new(2000, 4000).with_max_cycles(40_000)
    }

    fn run(mode: NetworkMode, pattern: TrafficPattern, load: f64) -> System {
        let cfg = SystemConfig::small(mode);
        let mut sys = System::new(cfg, pattern, load, plan());
        sys.run();
        sys
    }

    #[test]
    fn uniform_low_load_delivers_everything() {
        let sys = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.2);
        let m = sys.metrics();
        assert!(m.injected_total > 0, "traffic must flow");
        assert_eq!(
            m.tracker.outstanding(),
            0,
            "all labelled packets must drain at low load"
        );
        assert!(m.mean_latency() > 0.0);
        assert!(m.throughput_ppc() > 0.0);
        assert!(m.average_power_mw() > 0.0);
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let sys = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.3);
        let m = sys.metrics();
        let offered = sys.config().capacity().injection_rate(0.3);
        let accepted = m.throughput_ppc();
        assert!(
            (accepted - offered).abs() / offered < 0.25,
            "accepted {accepted} vs offered {offered}"
        );
    }

    #[test]
    fn higher_load_does_not_reduce_packets() {
        let lo = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.2);
        let hi = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.6);
        assert!(
            hi.metrics().throughput_ppc() > lo.metrics().throughput_ppc() * 1.5,
            "hi {} lo {}",
            hi.metrics().throughput_ppc(),
            lo.metrics().throughput_ppc()
        );
    }

    #[test]
    fn complement_saturates_np_nb_but_not_np_b() {
        // The paper's headline: with one static wavelength per board pair,
        // complement traffic saturates immediately; DBR re-allocates the
        // idle wavelengths and throughput multiplies.
        let base = run(NetworkMode::NpNb, TrafficPattern::Complement, 0.6);
        let reconf = run(NetworkMode::NpB, TrafficPattern::Complement, 0.6);
        let t_base = base.metrics().throughput_ppc();
        let t_reconf = reconf.metrics().throughput_ppc();
        assert!(
            t_reconf > t_base * 1.5,
            "DBR must improve complement throughput: {t_reconf} vs {t_base}"
        );
        // And reconfiguration actually happened.
        assert!(reconf.srs().reconfig_counts().0 > 0);
        assert_eq!(base.srs().reconfig_counts().0, 0);
    }

    #[test]
    fn power_aware_mode_saves_power_at_low_load() {
        let base = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.2);
        let pa = run(NetworkMode::PNb, TrafficPattern::Uniform, 0.2);
        let p_base = base.metrics().average_power_mw();
        let p_pa = pa.metrics().average_power_mw();
        assert!(
            p_pa < p_base * 0.95,
            "DPM must save power at low load: {p_pa} vs {p_base}"
        );
        assert!(pa.srs().reconfig_counts().1 > 0, "retunes must happen");
    }

    #[test]
    fn np_modes_never_retune_or_regrant() {
        let sys = run(NetworkMode::NpNb, TrafficPattern::Uniform, 0.5);
        assert_eq!(sys.srs().reconfig_counts(), (0, 0));
        assert_eq!(sys.mode(), NetworkMode::NpNb);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(NetworkMode::PB, TrafficPattern::Uniform, 0.4);
        let b = run(NetworkMode::PB, TrafficPattern::Uniform, 0.4);
        assert_eq!(a.metrics().injected_total, b.metrics().injected_total);
        assert_eq!(a.metrics().delivered_total, b.metrics().delivered_total);
        assert_eq!(a.metrics().throughput_ppc(), b.metrics().throughput_ppc());
        assert_eq!(a.metrics().mean_latency(), b.metrics().mean_latency());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn bursty_sources_flow_and_drain() {
        let mut cfg = SystemConfig::small(NetworkMode::PB);
        cfg.burst = Some(crate::config::BurstSpec {
            burstiness: 4.0,
            dwell: 1000.0,
        });
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.3, plan());
        sys.run();
        let m = sys.metrics();
        assert!(m.injected_total > 0);
        assert_eq!(m.tracker.outstanding(), 0, "bursty low load must drain");
    }

    #[test]
    fn message_level_control_plane_matches_analytic_shortcut() {
        // The same run under both control planes must make identical
        // decisions at identical times — identical metrics throughout.
        let run_with = |plane: crate::config::ControlPlane| {
            let mut cfg = SystemConfig::small(NetworkMode::PB);
            cfg.control_plane = plane;
            let mut sys = System::new(cfg, TrafficPattern::Complement, 0.6, plan());
            sys.run();
            (
                sys.metrics().injected_total,
                sys.metrics().delivered_total,
                sys.metrics().throughput_ppc(),
                sys.metrics().mean_latency(),
                sys.srs().reconfig_counts(),
                sys.now(),
            )
        };
        let analytic = run_with(crate::config::ControlPlane::AnalyticLatency);
        let message = run_with(crate::config::ControlPlane::MessageLevel);
        assert_eq!(analytic, message);
        // And reconfiguration genuinely happened in both.
        assert!(analytic.4 .0 > 0, "grants expected under complement");
    }

    /// The metrics compared between control planes: injected, delivered,
    /// throughput, latency, (grants, retunes), (ls_retries, ls_aborts),
    /// final cycle.
    type PlaneFingerprint = (u64, u64, f64, f64, (u64, u64), (u64, u64), Cycle);

    /// Both control planes must recover from a single LS token fault with
    /// the same deterministic extra latency — identical metrics throughout.
    fn run_plane_with_fault(
        plane: crate::config::ControlPlane,
        kind: crate::faults::FaultKind,
    ) -> PlaneFingerprint {
        let mut cfg = SystemConfig::small(NetworkMode::PB);
        cfg.control_plane = plane;
        // The first Bandwidth window boundary is t=4000; the Board Request
        // tokens are on the ring from 4005.
        cfg.faults = crate::faults::FaultPlan::new().at(4006, kind);
        let mut sys = System::new(cfg, TrafficPattern::Complement, 0.6, plan());
        sys.run();
        (
            sys.metrics().injected_total,
            sys.metrics().delivered_total,
            sys.metrics().throughput_ppc(),
            sys.metrics().mean_latency(),
            sys.srs().reconfig_counts(),
            sys.control_stats(),
            sys.now(),
        )
    }

    #[test]
    fn token_loss_parity_between_control_planes() {
        let kind = crate::faults::FaultKind::TokenLoss { victim: 1 };
        let analytic = run_plane_with_fault(crate::config::ControlPlane::AnalyticLatency, kind);
        let message = run_plane_with_fault(crate::config::ControlPlane::MessageLevel, kind);
        assert_eq!(analytic, message);
        assert_eq!(analytic.5, (1, 0), "one resend, no abort");
        assert!(analytic.4 .0 > 0, "the delayed round still granted");
    }

    #[test]
    fn token_corruption_parity_between_control_planes() {
        let kind = crate::faults::FaultKind::TokenCorrupt { victim: 2 };
        let analytic = run_plane_with_fault(crate::config::ControlPlane::AnalyticLatency, kind);
        let message = run_plane_with_fault(crate::config::ControlPlane::MessageLevel, kind);
        assert_eq!(analytic, message);
        assert_eq!(analytic.5, (1, 0));
    }

    #[test]
    fn token_faults_are_inert_without_dbr() {
        let mut cfg = SystemConfig::small(NetworkMode::NpNb);
        cfg.faults = crate::faults::FaultPlan::new()
            .at(4006, crate::faults::FaultKind::TokenLoss { victim: 1 });
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.3, plan());
        sys.run();
        assert_eq!(sys.control_stats(), (0, 0));
        assert_eq!(sys.metrics().tracker.outstanding(), 0);
    }

    #[test]
    fn clocked_adapter_matches_direct_stepping() {
        let mk = || {
            System::new(
                SystemConfig::small(NetworkMode::PB),
                TrafficPattern::Uniform,
                0.4,
                plan(),
            )
        };
        let mut direct = mk();
        for _ in 0..3000 {
            direct.step();
        }
        let mut engine = desim::clocked::ClockedEngine::new((0u64, 0u64));
        engine.add(Box::new(super::ClockedSystem::new(mk())));
        engine.run_to(3000);
        // Identical counters after the same number of cycles — the
        // adapter introduces no drift.
        assert_eq!(
            *engine.shared(),
            (
                direct.metrics().injected_total,
                direct.metrics().delivered_total
            )
        );
    }

    #[test]
    fn trace_replay_reproduces_a_generated_run_exactly() {
        // Record what the generators of a reference run inject, replay the
        // trace into a fresh system of the same configuration, and expect
        // bit-identical metrics.
        let cfg = SystemConfig::small(NetworkMode::PB);
        let rate = cfg.capacity().injection_rate(0.4);
        let mut gens = traffic::generator::build_generators(
            cfg.nodes(),
            &TrafficPattern::Uniform,
            rate,
            cfg.seed,
        );
        let mut rec = traffic::trace::TraceRecorder::new();
        let horizon = plan().max_cycles;
        for now in 0..horizon {
            for g in &mut gens {
                if let Some(r) = g.poll(now) {
                    rec.record(now, r.src, r.dst).unwrap();
                }
            }
        }
        let mut live = System::new(
            SystemConfig::small(NetworkMode::PB),
            TrafficPattern::Uniform,
            0.4,
            plan(),
        );
        live.run();
        let mut replayed = System::with_trace(
            SystemConfig::small(NetworkMode::PB),
            rec.into_replay(),
            plan(),
        );
        replayed.run();
        assert_eq!(
            live.metrics().injected_total,
            replayed.metrics().injected_total
        );
        assert_eq!(
            live.metrics().delivered_total,
            replayed.metrics().delivered_total
        );
        assert_eq!(
            live.metrics().mean_latency(),
            replayed.metrics().mean_latency()
        );
        assert_eq!(live.now(), replayed.now());
    }

    #[test]
    fn zero_load_runs_clean() {
        let cfg = SystemConfig::small(NetworkMode::PB);
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.0, plan());
        sys.run();
        assert_eq!(sys.metrics().injected_total, 0);
        assert!(sys.is_drained());
        // Idle lasers still burn idle power.
        assert!(sys.metrics().average_power_mw() > 0.0);
    }

    #[test]
    fn traced_pb_run_records_ordered_events_and_windows() {
        let mut cfg = SystemConfig::small(NetworkMode::PB);
        cfg.trace = erapid_telemetry::TraceConfig::on();
        let mut sys = System::new(cfg, TrafficPattern::Uniform, 0.5, plan());
        sys.run();
        assert!(sys.trace_enabled());
        assert_eq!(sys.trace_dropped(), 0, "64 KiB ring must fit a small run");
        let records = sys.take_trace_records();
        assert!(!records.is_empty(), "a P-B run must emit events");
        // Emission order is simulation order.
        assert!(records.windows(2).all(|p| p[0].at <= p[1].at));
        let tags: std::collections::BTreeSet<&str> =
            records.iter().map(|r| r.event.tag()).collect();
        for expected in [
            "window",
            "dpm_retune",
            "dpm_applied",
            "ls_stage",
            "dbr_outcome",
        ] {
            assert!(tags.contains(expected), "missing {expected} in {tags:?}");
        }
        let windows = sys.take_metric_windows();
        assert!(!windows.is_empty(), "window boundaries must roll snapshots");
        let names = sys.metric_counter_names();
        assert_eq!(windows[0].counters.len(), names.len());
        let retune_col = names
            .iter()
            .position(|n| n == "dpm_retunes")
            .expect("dpm_retunes registered");
        let total: u64 = windows.iter().map(|w| w.counters[retune_col]).sum();
        assert!(total > 0, "P-B at load 0.5 must retune at least once");
    }

    #[test]
    fn tracing_never_perturbs_the_simulation() {
        let plain = run(NetworkMode::PB, TrafficPattern::Uniform, 0.4);
        let mut cfg = SystemConfig::small(NetworkMode::PB);
        cfg.trace = erapid_telemetry::TraceConfig::on();
        let mut traced = System::new(cfg, TrafficPattern::Uniform, 0.4, plan());
        traced.run();
        assert_eq!(
            plain.metrics().injected_total,
            traced.metrics().injected_total
        );
        assert_eq!(
            plain.metrics().delivered_total,
            traced.metrics().delivered_total
        );
        assert_eq!(
            plain.metrics().mean_latency(),
            traced.metrics().mean_latency()
        );
        assert_eq!(
            plain.srs().reconfig_counts(),
            traced.srs().reconfig_counts()
        );
        assert_eq!(plain.now(), traced.now());
    }
}
