//! Parallel run-level executor.
//!
//! The paper's evaluation is a grid of *independent, deterministic*
//! simulations (mode × pattern × load × seed). Each [`crate::System`] owns
//! its per-node RNG streams (seeded from `cfg.seed`), so runs share no
//! state and a run's result is byte-identical no matter which thread
//! executes it. That makes run-level fan-out safe by construction — only
//! the *scheduling* is concurrent. A second, nested level of parallelism
//! shards the cycle engine *inside* one point across boards
//! (`ERAPID_POINT_THREADS`, [`crate::System::run_sharded`], DESIGN.md
//! §12); it is deterministic by a two-phase compute/commit barrier rather
//! than by independence.
//!
//! No external crates: the pool is a self-scheduling worker loop over
//! [`std::thread::scope`] — workers pull the next unclaimed index from a
//! shared atomic counter (work-stealing-ish: fast runs automatically pick
//! up more points), and results land in their input slot, so output order
//! equals input order regardless of completion order.
//!
//! The thread count comes from the `ERAPID_THREADS` env knob (read once by
//! [`threads_from_env`], which binaries call in `main`), defaulting to the
//! machine's available parallelism.

use crate::config::SystemConfig;
use crate::experiment::{RunResult, RunTrace, TraceSource};
use desim::phase::PhasePlan;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use traffic::pattern::TrafficPattern;

/// The machine's available parallelism (1 if it cannot be queried).
pub fn available_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Parses the `ERAPID_THREADS` env knob; 0, unset or unparsable mean
/// "use [`available_threads`]". Binaries read this once in `main` and pass
/// the value down — library code never touches the environment.
pub fn threads_from_env() -> NonZeroUsize {
    std::env::var("ERAPID_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .and_then(NonZeroUsize::new)
        .unwrap_or_else(available_threads)
}

/// Parses the `ERAPID_POINT_THREADS` env knob — workers *inside* one
/// simulation point for the board-sharded engine
/// (`crate::System::run_sharded`). Unset or unparsable mean `1` (the
/// plain sequential engine: intra-point sharding is opt-in because the
/// run-level executor usually saturates the machine already); `0` means
/// "use [`available_threads`]". Results are byte-identical for any value.
pub fn point_threads_from_env() -> NonZeroUsize {
    match std::env::var("ERAPID_POINT_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => available_threads(),
            Ok(n) => NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN),
            Err(_) => NonZeroUsize::MIN,
        },
        Err(_) => NonZeroUsize::MIN,
    }
}

/// Splits a total worker budget across the two nesting levels: run-level
/// workers (independent points) first — they parallelize perfectly — then
/// whatever is left over as intra-point board-shard workers. Returns
/// `(run_threads, point_threads)` with `run × point ≤ total` (and
/// `run ≤ points` when there are fewer points than budget).
pub fn nested_budget(total: NonZeroUsize, points: usize) -> (NonZeroUsize, NonZeroUsize) {
    let run = NonZeroUsize::new(total.get().min(points.max(1))).unwrap_or(NonZeroUsize::MIN);
    let point = NonZeroUsize::new(total.get() / run.get()).unwrap_or(NonZeroUsize::MIN);
    (run, point)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in input order.
///
/// Workers self-schedule off a shared atomic index, so an expensive item
/// does not stall the queue behind it. With one thread (or one item) this
/// degenerates to a plain sequential map on the calling thread — the
/// output is identical either way for any deterministic `f`. A panic in
/// `f` propagates to the caller when the scope joins.
pub fn parallel_map<T, R, F>(threads: NonZeroUsize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // A zero-cost estimator keeps the stable sort in input order, so this
    // is exactly the unprioritized dispatch.
    parallel_map_prioritized(threads, items, |_| 0, f)
}

/// Claim order for prioritized dispatch: indices sorted by descending
/// cost, ties keeping input order (stable sort).
fn priority_order(costs: &[u128]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]));
    order
}

/// As [`parallel_map`], but workers claim items **longest-estimated
/// first** (stable descending sort by `cost`; ties keep input order).
/// Results still land in input order, so prioritization changes only
/// wall-clock, never output. This fixes the tail-straggler imbalance of
/// FIFO dispatch: when the most expensive point sits late in the grid, a
/// worker would otherwise pick it up last and run it alone while the
/// rest of the pool idles.
pub fn parallel_map_prioritized<T, R, F, C>(
    threads: NonZeroUsize,
    items: Vec<T>,
    cost: C,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    C: Fn(&T) -> u128,
{
    let n = items.len();
    let workers = threads.get().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let order = priority_order(&items.iter().map(&cost).collect::<Vec<_>>());
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let i = order[k];
                // Lock poisoning only means another worker panicked while
                // holding the lock; the data (a plain Option) is still
                // sound, so recover it rather than aborting this worker.
                let taken = jobs[i].lock().unwrap_or_else(|e| e.into_inner()).take();
                let Some(item) = taken else {
                    // Unreachable: the atomic counter hands each index to
                    // exactly one worker.
                    continue;
                };
                let result = f(item);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    let results: Vec<R> = slots
        .into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    // Every slot is filled before the scope joins (a panic in `f` would
    // have propagated at the join); anything else is an internal bug.
    assert_eq!(results.len(), n, "parallel_map lost a result slot");
    results
}

/// One experiment point, fully specified: configuration (mode, seed,
/// topology), traffic pattern, offered load, phase plan and injection
/// source (generated or replayed from a recorded trace).
#[derive(Debug, Clone)]
pub struct RunPoint {
    pub cfg: SystemConfig,
    pub pattern: TrafficPattern,
    pub load: f64,
    pub plan: PhasePlan,
    /// Generated traffic by default; [`TraceSource::Replay`] substitutes a
    /// recorded workload (then `pattern`/`load` are ignored).
    pub source: TraceSource,
}

impl RunPoint {
    /// Estimated simulation cost, for longest-first dispatch: every cycle
    /// walks O(boards²) flow state, so `max_cycles × boards²` ranks a
    /// heterogeneous grid well enough to keep workers busy. Wall-time
    /// feedback from [`run_points_timed`] is the check on this estimate.
    pub fn estimated_cost(&self) -> u128 {
        self.plan.max_cycles as u128 * (self.cfg.boards as u128).pow(2)
    }

    /// Executes this point on the calling thread.
    pub fn run(self) -> RunResult {
        self.run_with(NonZeroUsize::MIN)
    }

    /// Executes this point with its cycle engine sharded across boards
    /// onto `point_threads` workers ([`crate::System::run_sharded`]);
    /// byte-identical to [`RunPoint::run`] for any worker count.
    pub fn run_with(self, point_threads: NonZeroUsize) -> RunResult {
        match self.source {
            TraceSource::Generate => crate::experiment::run_once_sharded(
                self.cfg,
                self.pattern,
                self.load,
                self.plan,
                point_threads,
            ),
            TraceSource::Replay(trace) => crate::experiment::run_once_replayed_sharded(
                self.cfg,
                &trace,
                self.plan,
                point_threads,
            ),
        }
    }

    /// Executes this point on the calling thread, keeping its trace.
    pub fn run_traced(self) -> (RunResult, RunTrace) {
        self.run_traced_with(NonZeroUsize::MIN)
    }

    /// Sharded variant of [`RunPoint::run_traced`].
    pub fn run_traced_with(self, point_threads: NonZeroUsize) -> (RunResult, RunTrace) {
        match self.source {
            TraceSource::Generate => crate::experiment::run_once_traced_sharded(
                self.cfg,
                self.pattern,
                self.load,
                self.plan,
                point_threads,
            ),
            TraceSource::Replay(trace) => crate::experiment::run_once_replayed_traced_sharded(
                self.cfg,
                &trace,
                self.plan,
                point_threads,
            ),
        }
    }
}

/// Fans a batch of experiment points out over `threads` workers; results
/// come back in input order and are byte-identical to running each point
/// sequentially.
pub fn run_points(threads: NonZeroUsize, points: Vec<RunPoint>) -> Vec<RunResult> {
    parallel_map_prioritized(threads, points, RunPoint::estimated_cost, RunPoint::run)
}

/// As [`run_points`], with each point's cycle engine additionally sharded
/// across boards onto `point_threads` workers — the nested point×board
/// budget (see [`nested_budget`]). Byte-identical to [`run_points`] for
/// any `(threads, point_threads)` combination.
pub fn run_points_sharded(
    threads: NonZeroUsize,
    point_threads: NonZeroUsize,
    points: Vec<RunPoint>,
) -> Vec<RunResult> {
    parallel_map_prioritized(threads, points, RunPoint::estimated_cost, |p: RunPoint| {
        p.run_with(point_threads)
    })
}

/// Sharded variant of [`run_points_timed`].
pub fn run_points_timed_sharded(
    threads: NonZeroUsize,
    point_threads: NonZeroUsize,
    points: Vec<RunPoint>,
) -> Vec<(RunResult, std::time::Duration)> {
    parallel_map_prioritized(threads, points, RunPoint::estimated_cost, |p: RunPoint| {
        let start = std::time::Instant::now();
        let r = p.run_with(point_threads);
        (r, start.elapsed())
    })
}

/// Sharded variant of [`run_points_traced`].
pub fn run_points_traced_sharded(
    threads: NonZeroUsize,
    point_threads: NonZeroUsize,
    points: Vec<RunPoint>,
) -> Vec<(RunResult, RunTrace)> {
    parallel_map_prioritized(threads, points, RunPoint::estimated_cost, |p: RunPoint| {
        p.run_traced_with(point_threads)
    })
}

/// As [`run_points`], additionally reporting each point's wall time — the
/// feedback loop on [`RunPoint::estimated_cost`]: binaries log the pairs
/// so a drifting estimator is visible in the perf artifacts rather than
/// silently degrading the schedule.
pub fn run_points_timed(
    threads: NonZeroUsize,
    points: Vec<RunPoint>,
) -> Vec<(RunResult, std::time::Duration)> {
    parallel_map_prioritized(threads, points, RunPoint::estimated_cost, |p: RunPoint| {
        let start = std::time::Instant::now();
        let r = p.run();
        (r, start.elapsed())
    })
}

/// Traced variant of [`run_points`]. Each worker records into its own
/// point-local recorder (a [`crate::System`] field — never shared), and
/// the (result, trace) pairs land in input order, so concatenating the
/// per-point traces yields the same bytes for any thread count.
pub fn run_points_traced(
    threads: NonZeroUsize,
    points: Vec<RunPoint>,
) -> Vec<(RunResult, RunTrace)> {
    parallel_map_prioritized(
        threads,
        points,
        RunPoint::estimated_cost,
        RunPoint::run_traced,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 64] {
            let got = parallel_map(NonZeroUsize::new(threads).unwrap(), items.clone(), |x| {
                x * x
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(NonZeroUsize::new(4).unwrap(), empty, |x| x).is_empty());
        let one = parallel_map(NonZeroUsize::new(4).unwrap(), vec![41u32], |x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn parallel_map_uses_multiple_threads() {
        // Two items that rendezvous on a barrier: they can only both
        // finish if two distinct workers run them concurrently (a single
        // worker claiming an item blocks at the barrier, leaving the
        // other item for the second worker).
        let barrier = std::sync::Barrier::new(2);
        let ids = parallel_map(NonZeroUsize::new(2).unwrap(), vec![0u8, 1], |_| {
            barrier.wait();
            std::thread::current().id()
        });
        assert_ne!(ids[0], ids[1], "expected 2 distinct worker threads");
    }

    #[test]
    fn threads_env_parsing_defaults() {
        // Does not touch the environment: just the default path.
        assert!(available_threads().get() >= 1);
    }

    #[test]
    fn prioritized_map_preserves_input_order_and_results() {
        // Costs deliberately reversed vs input order: dispatch reorders,
        // results must not.
        let items: Vec<u64> = (0..50).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1000).collect();
        for threads in [1, 3, 8] {
            let got = parallel_map_prioritized(
                NonZeroUsize::new(threads).unwrap(),
                items.clone(),
                |&x| x as u128, // largest item first
                |x| x + 1000,
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn priority_order_is_longest_first_and_stable() {
        assert_eq!(priority_order(&[1, 9, 9, 4]), vec![1, 2, 3, 0]);
        assert_eq!(
            priority_order(&[0, 0, 0]),
            vec![0, 1, 2],
            "all ties: input order"
        );
        assert_eq!(priority_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn estimated_cost_scales_with_boards_and_cycles() {
        let mk = |boards: u16, cycles: u64| RunPoint {
            cfg: SystemConfig {
                boards,
                ..SystemConfig::small(crate::config::NetworkMode::NpNb)
            },
            pattern: TrafficPattern::Uniform,
            load: 0.5,
            plan: PhasePlan::new(100, 200).with_max_cycles(cycles),
            source: TraceSource::Generate,
        };
        let small = mk(4, 10_000).estimated_cost();
        let wide = mk(8, 10_000).estimated_cost();
        let long = mk(4, 40_000).estimated_cost();
        assert_eq!(wide, small * 4, "boards² scaling");
        assert_eq!(long, small * 4, "linear cycle scaling");
    }
}
