//! Parallel run-level executor.
//!
//! The paper's evaluation is a grid of *independent, deterministic*
//! simulations (mode × pattern × load × seed). Each [`crate::System`] owns
//! its per-node RNG streams (seeded from `cfg.seed`), so runs share no
//! state and a run's result is byte-identical no matter which thread
//! executes it. That makes run-level fan-out safe by construction — only
//! the *scheduling* is concurrent, never the simulation itself (which
//! stays intentionally single-threaded per run; see DESIGN.md §6).
//!
//! No external crates: the pool is a self-scheduling worker loop over
//! [`std::thread::scope`] — workers pull the next unclaimed index from a
//! shared atomic counter (work-stealing-ish: fast runs automatically pick
//! up more points), and results land in their input slot, so output order
//! equals input order regardless of completion order.
//!
//! The thread count comes from the `ERAPID_THREADS` env knob (read once by
//! [`threads_from_env`], which binaries call in `main`), defaulting to the
//! machine's available parallelism.

use crate::config::SystemConfig;
use crate::experiment::{
    run_once, run_once_replayed, run_once_replayed_traced, run_once_traced, RunResult, RunTrace,
    TraceSource,
};
use desim::phase::PhasePlan;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use traffic::pattern::TrafficPattern;

/// The machine's available parallelism (1 if it cannot be queried).
pub fn available_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Parses the `ERAPID_THREADS` env knob; 0, unset or unparsable mean
/// "use [`available_threads`]". Binaries read this once in `main` and pass
/// the value down — library code never touches the environment.
pub fn threads_from_env() -> NonZeroUsize {
    std::env::var("ERAPID_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .and_then(NonZeroUsize::new)
        .unwrap_or_else(available_threads)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in input order.
///
/// Workers self-schedule off a shared atomic index, so an expensive item
/// does not stall the queue behind it. With one thread (or one item) this
/// degenerates to a plain sequential map on the calling thread — the
/// output is identical either way for any deterministic `f`. A panic in
/// `f` propagates to the caller when the scope joins.
pub fn parallel_map<T, R, F>(threads: NonZeroUsize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.get().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Lock poisoning only means another worker panicked while
                // holding the lock; the data (a plain Option) is still
                // sound, so recover it rather than aborting this worker.
                let taken = jobs[i].lock().unwrap_or_else(|e| e.into_inner()).take();
                let Some(item) = taken else {
                    // Unreachable: the atomic counter hands each index to
                    // exactly one worker.
                    continue;
                };
                let result = f(item);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    let results: Vec<R> = slots
        .into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    // Every slot is filled before the scope joins (a panic in `f` would
    // have propagated at the join); anything else is an internal bug.
    assert_eq!(results.len(), n, "parallel_map lost a result slot");
    results
}

/// One experiment point, fully specified: configuration (mode, seed,
/// topology), traffic pattern, offered load, phase plan and injection
/// source (generated or replayed from a recorded trace).
#[derive(Debug, Clone)]
pub struct RunPoint {
    pub cfg: SystemConfig,
    pub pattern: TrafficPattern,
    pub load: f64,
    pub plan: PhasePlan,
    /// Generated traffic by default; [`TraceSource::Replay`] substitutes a
    /// recorded workload (then `pattern`/`load` are ignored).
    pub source: TraceSource,
}

impl RunPoint {
    /// Executes this point on the calling thread.
    pub fn run(self) -> RunResult {
        match self.source {
            TraceSource::Generate => run_once(self.cfg, self.pattern, self.load, self.plan),
            TraceSource::Replay(trace) => run_once_replayed(self.cfg, &trace, self.plan),
        }
    }

    /// Executes this point on the calling thread, keeping its trace.
    pub fn run_traced(self) -> (RunResult, RunTrace) {
        match self.source {
            TraceSource::Generate => run_once_traced(self.cfg, self.pattern, self.load, self.plan),
            TraceSource::Replay(trace) => run_once_replayed_traced(self.cfg, &trace, self.plan),
        }
    }
}

/// Fans a batch of experiment points out over `threads` workers; results
/// come back in input order and are byte-identical to running each point
/// sequentially.
pub fn run_points(threads: NonZeroUsize, points: Vec<RunPoint>) -> Vec<RunResult> {
    parallel_map(threads, points, RunPoint::run)
}

/// Traced variant of [`run_points`]. Each worker records into its own
/// point-local recorder (a [`crate::System`] field — never shared), and
/// the (result, trace) pairs land in input order, so concatenating the
/// per-point traces yields the same bytes for any thread count.
pub fn run_points_traced(
    threads: NonZeroUsize,
    points: Vec<RunPoint>,
) -> Vec<(RunResult, RunTrace)> {
    parallel_map(threads, points, RunPoint::run_traced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 64] {
            let got = parallel_map(NonZeroUsize::new(threads).unwrap(), items.clone(), |x| {
                x * x
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(NonZeroUsize::new(4).unwrap(), empty, |x| x).is_empty());
        let one = parallel_map(NonZeroUsize::new(4).unwrap(), vec![41u32], |x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn parallel_map_uses_multiple_threads() {
        // Two items that rendezvous on a barrier: they can only both
        // finish if two distinct workers run them concurrently (a single
        // worker claiming an item blocks at the barrier, leaving the
        // other item for the second worker).
        let barrier = std::sync::Barrier::new(2);
        let ids = parallel_map(NonZeroUsize::new(2).unwrap(), vec![0u8, 1], |_| {
            barrier.wait();
            std::thread::current().id()
        });
        assert_ne!(ids[0], ids[1], "expected 2 distinct worker threads");
    }

    #[test]
    fn threads_env_parsing_defaults() {
        // Does not touch the environment: just the default path.
        assert!(available_threads().get() >= 1);
    }
}
