//! Per-destination-board transmitter queues.
//!
//! The optical domain interleaves *packets*, not flits (§2.1: "flit
//! management across multiple domains is extremely complicated"), so the
//! boundary between the electrical IBI and the SRS is a reassembly queue:
//! flits of remote packets stream in from the router (interleaved across
//! packets by the VC mechanism) and complete packets leave on optical
//! channels. Queue occupancy is the `Buffer_util` the LC hardware counters
//! report.

use router::flit::{Flit, PacketId};
use std::collections::VecDeque;

/// A packet fully reassembled and ready for optical transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyPacket {
    /// Packet id.
    pub id: PacketId,
    /// Global source node.
    pub src: u32,
    /// Global destination node.
    pub dst: u32,
    /// Injection cycle (for latency accounting).
    pub injected_at: desim::Cycle,
    /// Labelled for measurement.
    pub labelled: bool,
    /// Flit count.
    pub flits: u16,
    /// The router output VC the packet's flits occupied (for exact credit
    /// return when the packet departs).
    pub vc: u8,
    /// Cycle the packet finished reassembling in the TX queue (for the
    /// latency decomposition: source path vs queue wait vs optical).
    pub completed_at: desim::Cycle,
}

/// One (source board → destination board) transmitter queue.
#[derive(Debug, Clone)]
pub struct TransmitQueue {
    capacity_flits: u32,
    flits_held: u32,
    /// Per-packet reassembly: flits received so far.
    assembling: Vec<(PacketId, u16, ReadyPacket)>,
    /// Completed packets in completion order.
    ready: VecDeque<ReadyPacket>,
    /// Lifetime counters.
    packets_completed: u64,
    packets_departed: u64,
}

impl TransmitQueue {
    /// Creates a queue holding at most `capacity_flits` flits.
    pub fn new(capacity_flits: u32) -> Self {
        assert!(capacity_flits > 0);
        Self {
            capacity_flits,
            flits_held: 0,
            assembling: Vec::new(),
            ready: VecDeque::new(),
            packets_completed: 0,
            packets_departed: 0,
        }
    }

    /// Capacity in flits (= the credit pool the router sees).
    pub fn capacity_flits(&self) -> u32 {
        self.capacity_flits
    }

    /// Flits currently held (assembling + ready).
    pub fn flits_held(&self) -> u32 {
        self.flits_held
    }

    /// Occupancy fraction in `[0,1]` — the LC's `Buffer_util` sample.
    pub fn occupancy(&self) -> f64 {
        self.flits_held as f64 / self.capacity_flits as f64
    }

    /// Complete packets awaiting transmission.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Lifetime `(completed, departed)` packet counts.
    pub fn totals(&self) -> (u64, u64) {
        (self.packets_completed, self.packets_departed)
    }

    /// Accepts one flit from the router. Returns `true` when this flit
    /// completed a packet (it moved to the ready queue) — the board uses
    /// this to maintain its ready-destination active set without
    /// re-scanning every queue.
    ///
    /// `total_flits` is the system packet size (all packets are fixed-size
    /// in the paper's runs).
    ///
    /// # Panics
    /// If the queue would exceed capacity — the router's credit counter for
    /// this output port must make that impossible.
    pub fn accept(&mut self, flit: Flit, total_flits: u16, out_vc: u8, now: desim::Cycle) -> bool {
        assert!(
            self.flits_held < self.capacity_flits,
            "TX queue overflow: credits out of sync"
        );
        self.flits_held += 1;
        let idx = self
            .assembling
            .iter()
            .position(|(id, _, _)| *id == flit.packet);
        let idx = match idx {
            Some(i) => i,
            None => {
                self.assembling.push((
                    flit.packet,
                    0,
                    ReadyPacket {
                        id: flit.packet,
                        src: flit.src.0,
                        dst: flit.dst.0,
                        injected_at: flit.injected_at,
                        labelled: flit.labelled,
                        flits: total_flits,
                        vc: out_vc,
                        completed_at: 0,
                    },
                ));
                self.assembling.len() - 1
            }
        };
        self.assembling[idx].1 += 1;
        if self.assembling[idx].1 == total_flits {
            let (_, _, mut pkt) = self.assembling.swap_remove(idx);
            pkt.completed_at = now;
            self.ready.push_back(pkt);
            self.packets_completed += 1;
            return true;
        }
        false
    }

    /// Peeks the next ready packet.
    pub fn peek(&self) -> Option<&ReadyPacket> {
        self.ready.front()
    }

    /// Removes the next ready packet for transmission; returns it. The
    /// packet's flits leave the queue (the caller returns that many credits
    /// to the router).
    pub fn depart(&mut self) -> Option<ReadyPacket> {
        let pkt = self.ready.pop_front()?;
        debug_assert!(self.flits_held >= pkt.flits as u32);
        self.flits_held -= pkt.flits as u32;
        self.packets_departed += 1;
        Some(pkt)
    }

    /// Serializes occupancy, in-flight reassembly, the ready queue and
    /// lifetime counters (capacity is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        w.u32(self.flits_held);
        w.usize(self.assembling.len());
        for (id, got, pkt) in &self.assembling {
            w.u64(id.0);
            w.u16(*got);
            pkt.save(w);
        }
        self.ready.save(w);
        w.u64(self.packets_completed);
        w.u64(self.packets_departed);
    }

    /// Overlays checkpointed queue state; occupancy must fit capacity.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::{Snap, SnapError};
        let flits_held = r.u32()?;
        if flits_held > self.capacity_flits {
            return Err(SnapError::Mismatch(format!(
                "TX queue snapshot holds {flits_held} flits but capacity is {}",
                self.capacity_flits
            )));
        }
        let n = r.len_at_most(1 << 20, "TX assembling entries")?;
        let mut assembling = Vec::with_capacity(n);
        for _ in 0..n {
            let id = PacketId(r.u64()?);
            let got = r.u16()?;
            let pkt = ReadyPacket::load(r)?;
            assembling.push((id, got, pkt));
        }
        self.flits_held = flits_held;
        self.assembling = assembling;
        self.ready = Snap::load(r)?;
        self.packets_completed = r.u64()?;
        self.packets_departed = r.u64()?;
        Ok(())
    }
}

impl desim::snap::Snap for ReadyPacket {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u64(self.id.0);
        w.u32(self.src);
        w.u32(self.dst);
        w.u64(self.injected_at);
        w.bool(self.labelled);
        w.u16(self.flits);
        w.u8(self.vc);
        w.u64(self.completed_at);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            id: PacketId(r.u64()?),
            src: r.u32()?,
            dst: r.u32()?,
            injected_at: r.u64()?,
            labelled: r.bool()?,
            flits: r.u16()?,
            vc: r.u8()?,
            completed_at: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use router::flit::NodeId;
    use router::packet::Packet;

    fn flits(id: u64, n: u16) -> Vec<Flit> {
        Packet {
            id: PacketId(id),
            src: NodeId(0),
            dst: NodeId(9),
            flits: n,
            injected_at: 5,
            labelled: true,
        }
        .flitize()
    }

    #[test]
    fn reassembles_in_order_flits() {
        let mut q = TransmitQueue::new(64);
        for f in flits(1, 8) {
            q.accept(f, 8, 0, 7);
        }
        assert_eq!(q.ready_len(), 1);
        assert_eq!(q.flits_held(), 8);
        let p = q.depart().unwrap();
        assert_eq!(p.id, PacketId(1));
        assert_eq!(p.dst, 9);
        assert_eq!(p.src, 0);
        assert_eq!(p.vc, 0);
        assert_eq!(p.flits, 8);
        assert!(p.labelled);
        assert_eq!(p.injected_at, 5);
        assert_eq!(p.completed_at, 7);
        assert_eq!(q.flits_held(), 0);
        assert_eq!(q.totals(), (1, 1));
    }

    #[test]
    fn interleaved_packets_complete_in_completion_order() {
        let mut q = TransmitQueue::new(64);
        let a = flits(1, 2);
        let b = flits(2, 2);
        // Interleave: a0, b0, b1 (b completes), a1 (a completes).
        q.accept(a[0], 2, 0, 1);
        q.accept(b[0], 2, 1, 2);
        q.accept(b[1], 2, 1, 3);
        q.accept(a[1], 2, 0, 4);
        assert_eq!(q.ready_len(), 2);
        assert_eq!(q.depart().unwrap().id, PacketId(2));
        assert_eq!(q.depart().unwrap().id, PacketId(1));
    }

    #[test]
    fn occupancy_counts_partial_packets() {
        let mut q = TransmitQueue::new(16);
        let a = flits(1, 8);
        for f in &a[..4] {
            q.accept(*f, 8, 0, 0);
        }
        assert!((q.occupancy() - 0.25).abs() < 1e-12);
        assert_eq!(q.ready_len(), 0);
        assert!(q.peek().is_none());
        assert!(q.depart().is_none());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = TransmitQueue::new(2);
        let a = flits(1, 3);
        for f in a {
            q.accept(f, 3, 0, 0);
        }
    }

    #[test]
    fn capacity_accessor() {
        let q = TransmitQueue::new(64);
        assert_eq!(q.capacity_flits(), 64);
    }
}
