//! Deterministic fault-event scheduling.
//!
//! A [`FaultPlan`] is an ordered list of timestamped [`FaultEvent`]s the
//! [`crate::system::System`] consumes at the start of each cycle. The plan
//! travels inside [`crate::config::SystemConfig`], so a faulted run is just
//! another experiment point: the same plan plus the same seed reproduces
//! the same run byte-for-byte, under the sequential and the parallel
//! runner alike.
//!
//! The taxonomy covers the failure surfaces of the architecture:
//! * optical datapath — receiver/demux death and repair, transmitter
//!   (laser/modulator) death and repair, an extended CDR relock on a live
//!   channel,
//! * power management — an LC stuck at its current power level (DPM
//!   retunes silently dropped until repair),
//! * control plane — loss or corruption of a board's LS token on the RC
//!   ring (recovered by the retry/backoff in [`reconfig::protocol`]).

use crate::error::ErapidError;
use desim::rng::Pcg32;
use desim::Cycle;

/// What breaks (or heals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The receiver/demux for wavelength `wavelength` at board `board`
    /// dies: the owning laser darkens once idle and the wavelength leaves
    /// the ownership map.
    ReceiverDown { board: u16, wavelength: u16 },
    /// The receiver recovers: the static owner re-lights the wavelength
    /// (after a lock-in window) and DBR may grant it again.
    ReceiverRepair { board: u16, wavelength: u16 },
    /// Board `board`'s transmitters toward `dest` die: owned lasers darken
    /// once idle; ownership is retained so repair restores service.
    TransmitterDown { board: u16, dest: u16 },
    /// The transmitters recover; surviving owned wavelengths re-light.
    TransmitterRepair { board: u16, dest: u16 },
    /// The LC of channel `(board → dest, wavelength)` wedges at its
    /// current power level: DPM retunes are dropped until repair.
    LcStuck {
        board: u16,
        dest: u16,
        wavelength: u16,
    },
    /// The stuck LC recovers.
    LcRepair {
        board: u16,
        dest: u16,
        wavelength: u16,
    },
    /// The receiver CDR of channel `(board → dest, wavelength)` loses
    /// lock: the channel goes dark for `penalty` cycles before relocking.
    CdrRelock {
        board: u16,
        dest: u16,
        wavelength: u16,
        penalty: Cycle,
    },
    /// Board `victim`'s LS control token vanishes from the RC ring; the
    /// round's watchdog must detect the loss and relaunch.
    TokenLoss { victim: u16 },
    /// Board `victim`'s LS control token is corrupted in flight; the
    /// origin detects the bad checksum on return and resends.
    TokenCorrupt { victim: u16 },
}

/// One timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault strikes (applied at the start of that cycle).
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, kept sorted by time (stable:
/// events at the same cycle apply in insertion order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every config preset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event, keeping the plan time-sorted.
    pub fn push(&mut self, at: Cycle, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
    }

    /// Builder form of [`FaultPlan::push`].
    pub fn at(mut self, at: Cycle, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Convenience: a receiver outage window — down at `down_at`, repaired
    /// at `up_at`.
    pub fn receiver_outage(
        self,
        board: u16,
        wavelength: u16,
        down_at: Cycle,
        up_at: Cycle,
    ) -> Self {
        self.at(down_at, FaultKind::ReceiverDown { board, wavelength })
            .at(up_at, FaultKind::ReceiverRepair { board, wavelength })
    }

    /// Convenience: a transmitter outage window toward one destination.
    pub fn transmitter_outage(self, board: u16, dest: u16, down_at: Cycle, up_at: Cycle) -> Self {
        self.at(down_at, FaultKind::TransmitterDown { board, dest })
            .at(up_at, FaultKind::TransmitterRepair { board, dest })
    }

    /// Seed-reproducible CDR relock storm: `count` relock events on random
    /// live channels, at random cycles in `[start, end)`. The storm is a
    /// pure function of `(seed, boards, start, end, count, penalty)` — the
    /// same arguments always produce the same plan.
    pub fn relock_storm(
        seed: u64,
        boards: u16,
        start: Cycle,
        end: Cycle,
        count: usize,
        penalty: Cycle,
    ) -> Self {
        assert!(boards >= 2 && end > start);
        let mut rng = Pcg32::stream(seed, 0x5707_1243);
        let mut plan = Self::new();
        let span = (end - start).min(u32::MAX as Cycle) as u32;
        for _ in 0..count {
            let at = start + rng.below(span) as Cycle;
            // A random remote (board, dest) pair and its *static* wavelength
            // — the channel most likely to be lit whenever the event fires.
            let board = rng.below(boards as u32) as u16;
            let mut dest = rng.below(boards as u32 - 1) as u16;
            if dest >= board {
                dest += 1;
            }
            let wavelength = (board as i32 - dest as i32).rem_euclid(boards as i32) as u16;
            plan.push(
                at,
                FaultKind::CdrRelock {
                    board,
                    dest,
                    wavelength,
                    penalty,
                },
            );
        }
        plan
    }

    /// The sorted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event targets hardware that exists in a system of
    /// `boards` boards (W = B wavelengths).
    pub fn validate(&self, boards: u16) -> Result<(), ErapidError> {
        let err = |at: Cycle, reason: String| Err(ErapidError::FaultTarget { at, reason });
        for e in &self.events {
            match e.kind {
                FaultKind::ReceiverDown { board, wavelength }
                | FaultKind::ReceiverRepair { board, wavelength } => {
                    if board >= boards {
                        return err(e.at, format!("board {board} out of range (B={boards})"));
                    }
                    if wavelength == 0 || wavelength >= boards {
                        return err(e.at, format!("wavelength {wavelength} has no remote owner"));
                    }
                }
                FaultKind::TransmitterDown { board, dest }
                | FaultKind::TransmitterRepair { board, dest } => {
                    if board >= boards || dest >= boards {
                        return err(e.at, format!("pair ({board},{dest}) out of range"));
                    }
                    if board == dest {
                        return err(e.at, "transmitter target must be remote".into());
                    }
                }
                FaultKind::LcStuck {
                    board,
                    dest,
                    wavelength,
                }
                | FaultKind::LcRepair {
                    board,
                    dest,
                    wavelength,
                }
                | FaultKind::CdrRelock {
                    board,
                    dest,
                    wavelength,
                    ..
                } => {
                    if board >= boards || dest >= boards || wavelength >= boards {
                        return err(
                            e.at,
                            format!("channel ({board},{dest},λ{wavelength}) out of range"),
                        );
                    }
                    if board == dest {
                        return err(e.at, "channel target must be remote".into());
                    }
                }
                FaultKind::TokenLoss { victim } | FaultKind::TokenCorrupt { victim } => {
                    if victim >= boards {
                        return err(e.at, format!("victim board {victim} out of range"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stays_sorted_and_stable() {
        let plan = FaultPlan::new()
            .at(50, FaultKind::TokenLoss { victim: 1 })
            .at(
                10,
                FaultKind::ReceiverDown {
                    board: 0,
                    wavelength: 1,
                },
            )
            .at(50, FaultKind::TokenCorrupt { victim: 2 });
        let times: Vec<Cycle> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![10, 50, 50]);
        // Stable at equal times: the loss was inserted before the corrupt.
        assert!(matches!(plan.events()[1].kind, FaultKind::TokenLoss { .. }));
        assert!(matches!(
            plan.events()[2].kind,
            FaultKind::TokenCorrupt { .. }
        ));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn outage_builders_pair_down_and_up() {
        let plan = FaultPlan::new()
            .receiver_outage(3, 1, 100, 200)
            .transmitter_outage(0, 2, 150, 250);
        assert_eq!(plan.len(), 4);
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn relock_storm_is_seed_reproducible() {
        let a = FaultPlan::relock_storm(42, 8, 1000, 5000, 16, 65);
        let b = FaultPlan::relock_storm(42, 8, 1000, 5000, 16, 65);
        assert_eq!(a, b, "same seed must give the same storm");
        let c = FaultPlan::relock_storm(43, 8, 1000, 5000, 16, 65);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.len(), 16);
        assert!(a.validate(8).is_ok());
        assert!(a.events().iter().all(|e| (1000..5000).contains(&e.at)
            && matches!(e.kind, FaultKind::CdrRelock { penalty: 65, .. })));
    }

    #[test]
    fn validate_rejects_bad_targets() {
        let bad_board = FaultPlan::new().at(
            0,
            FaultKind::ReceiverDown {
                board: 9,
                wavelength: 1,
            },
        );
        assert!(bad_board.validate(4).is_err());
        let lambda0 = FaultPlan::new().at(
            0,
            FaultKind::ReceiverDown {
                board: 1,
                wavelength: 0,
            },
        );
        assert!(lambda0.validate(4).is_err());
        let self_tx = FaultPlan::new().at(0, FaultKind::TransmitterDown { board: 2, dest: 2 });
        assert!(self_tx.validate(4).is_err());
        let bad_victim = FaultPlan::new().at(0, FaultKind::TokenLoss { victim: 4 });
        assert!(bad_victim.validate(4).is_err());
        let ok = FaultPlan::new()
            .at(
                5,
                FaultKind::LcStuck {
                    board: 1,
                    dest: 0,
                    wavelength: 1,
                },
            )
            .at(9, FaultKind::TokenCorrupt { victim: 3 });
        assert!(ok.validate(4).is_ok());
    }
}
