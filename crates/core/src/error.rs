//! Typed errors for the system model.
//!
//! Library code in `erapid-core` (and the crates below it) must not abort
//! on conditions a caller can meaningfully handle — an invalid
//! configuration, a fault event aimed at hardware that does not exist, or
//! a control-plane round that exhausted its retries. Those surface as
//! [`ErapidError`] values; `panic!`/`assert!` remain reserved for genuine
//! internal invariant violations.

use desim::Cycle;
use reconfig::protocol::ProtocolError;
use traffic::trace::TraceError;

/// Any recoverable error the system model can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErapidError {
    /// The [`crate::config::SystemConfig`] is internally inconsistent.
    Config(String),
    /// A fault event targets hardware outside the configured system.
    FaultTarget {
        /// The event's scheduled cycle.
        at: Cycle,
        /// What was wrong with the target.
        reason: String,
    },
    /// The LS control protocol failed permanently (retries exhausted).
    Protocol(ProtocolError),
    /// Injection-trace recording, encoding or decoding failed.
    Trace(TraceError),
}

impl std::fmt::Display for ErapidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErapidError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ErapidError::FaultTarget { at, reason } => {
                write!(f, "invalid fault event at cycle {at}: {reason}")
            }
            ErapidError::Protocol(e) => write!(f, "control protocol failure: {e}"),
            ErapidError::Trace(e) => write!(f, "trace failure: {e}"),
        }
    }
}

impl std::error::Error for ErapidError {}

impl From<ProtocolError> for ErapidError {
    fn from(e: ProtocolError) -> Self {
        ErapidError::Protocol(e)
    }
}

impl From<TraceError> for ErapidError {
    fn from(e: TraceError) -> Self {
        ErapidError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reconfig::stages::Stage;

    #[test]
    fn display_is_informative() {
        let e = ErapidError::Config("TX queue must hold at least one packet".into());
        assert!(e.to_string().contains("at least one packet"));
        let e = ErapidError::FaultTarget {
            at: 42,
            reason: "board 9 out of range".into(),
        };
        assert!(e.to_string().contains("cycle 42"));
        let e: ErapidError = ProtocolError::RingStalled {
            stage: Stage::BoardRequest,
            attempts: 3,
        }
        .into();
        assert!(matches!(e, ErapidError::Protocol(_)));
        assert!(e.to_string().contains("protocol"));
        let e: ErapidError = TraceError::OutOfOrder { at: 3, last: 7 }.into();
        assert!(matches!(e, ErapidError::Trace(_)));
        assert!(e.to_string().contains("time-ordered"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ErapidError::Config("x".into()));
        assert!(!e.to_string().is_empty());
    }
}
