//! Crash-safe checkpoint/restore of a running [`System`].
//!
//! A snapshot (`.ersp`) captures the *entire* mutable simulation state —
//! boards, router VA/SA lists, the SRS channel bank and its wake/retune/
//! relock queues, occupancy integrals, fault-plan cursor, RNG streams and
//! the telemetry registry — plus the [`StreamCursor`] of the streaming
//! export, so a killed run resumes byte-identical to an uninterrupted one.
//!
//! ## Snapshot layout
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | magic | 4 | `ERSP` |
//! | version | 2 | [`SNAP_VERSION`] |
//! | fingerprint | 8 | FNV-1a-64 of `format!("{cfg:?}")` |
//! | cursor | 32 | [`StreamCursor`] (trace/delivery positions) |
//! | body | … | [`System::save_state`] byte stream |
//! | checksum | 8 | FNV-1a-64 over everything above |
//!
//! ## Atomicity and fallback
//!
//! Snapshots are written to `ckpt-<cycle>.ersp.tmp` and `rename`d into
//! place after an fsync, so a reader never observes a half-written file
//! under its final name. Restore ([`latest_valid`]) walks the directory's
//! snapshots newest-first and takes the first one whose checksum, magic,
//! version and config fingerprint all verify — a torn, truncated or
//! bit-flipped newest snapshot falls back to the previous good one
//! instead of panicking. [`Checkpointer`] keeps the last two on disk for
//! exactly this reason.
//!
//! Not serialized (config-derived or scratch): geometry, rate ladders,
//! power models, the fault *plan* (only its cursor), per-cycle scratch
//! buffers, and any in-flight message-level DBR round — checkpoints are
//! taken only at quiescent `R_w` boundaries (see
//! [`System::can_checkpoint`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::config::SystemConfig;
use crate::stream::StreamCursor;
use crate::system::System;
use desim::snap::{fnv1a, Snap, SnapError, SnapReader, SnapWriter};
use desim::Cycle;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic prefix of a snapshot file.
pub const SNAP_MAGIC: [u8; 4] = *b"ERSP";
/// Snapshot format version this build reads and writes.
pub const SNAP_VERSION: u16 = 1;
/// Env var setting the checkpoint cadence in `R_w` windows (0 disables).
pub const CHECKPOINT_EVERY_ENV: &str = "ERAPID_CHECKPOINT_EVERY";

/// FNV-1a-64 over the config's `Debug` rendering — cheap structural
/// identity that refuses to overlay a snapshot onto a differently-shaped
/// system before any geometry check runs.
pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Serializes `sys` + `cursor` into a self-verifying snapshot byte block.
/// Fails (typed, no panic) if the system is not quiescent.
pub fn encode_snapshot(sys: &System, cursor: StreamCursor) -> Result<Vec<u8>, SnapError> {
    let mut w = SnapWriter::new();
    w.tag(&SNAP_MAGIC);
    w.u16(SNAP_VERSION);
    w.u64(config_fingerprint(sys.config()));
    cursor.save(&mut w);
    sys.save_state(&mut w)?;
    let mut bytes = w.into_bytes();
    let sum = fnv1a(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    Ok(bytes)
}

/// Verifies a snapshot's checksum, magic, version and config fingerprint;
/// returns its stream cursor and the [`System::load_state`] body. Every
/// corruption mode is a typed error — the caller's contract is "any
/// `Err` means try the previous snapshot".
pub fn decode_snapshot(bytes: &[u8], fingerprint: u64) -> Result<(StreamCursor, &[u8]), SnapError> {
    if bytes.len() < 8 {
        return Err(SnapError::Format(
            "snapshot shorter than its checksum".into(),
        ));
    }
    let (payload, sum) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(sum);
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(SnapError::Checksum { stored, computed });
    }
    let mut r = SnapReader::new(payload);
    r.tag(&SNAP_MAGIC)?;
    let ver = r.u16()?;
    if ver != SNAP_VERSION {
        return Err(SnapError::Version(ver));
    }
    let fp = r.u64()?;
    if fp != fingerprint {
        return Err(SnapError::Mismatch(format!(
            "snapshot config fingerprint {fp:#018x} != this config's {fingerprint:#018x}"
        )));
    }
    let cursor = StreamCursor::load(&mut r)?;
    Ok((cursor, &payload[r.pos()..]))
}

/// Overlays a decoded snapshot onto a freshly-constructed system built
/// from the same config (and, under replay, the same trace). Returns the
/// stream cursor to resume the [`crate::stream::StreamSink`] at.
pub fn restore_system(sys: &mut System, bytes: &[u8]) -> Result<StreamCursor, SnapError> {
    let fp = config_fingerprint(sys.config());
    let (cursor, body) = decode_snapshot(bytes, fp)?;
    let mut r = SnapReader::new(body);
    sys.load_state(&mut r)?;
    r.expect_end()?;
    Ok(cursor)
}

/// Window-cadence checkpoint writer: atomic tmp-then-rename snapshots,
/// pruned to the newest `keep` so a torn newest file always has a good
/// predecessor.
pub struct Checkpointer {
    dir: PathBuf,
    every_cycles: Cycle,
    keep: usize,
    written: Vec<PathBuf>,
    last_at: Option<Cycle>,
    count: u64,
}

impl Checkpointer {
    /// Creates a checkpointer writing into `dir` every `every_windows`
    /// `R_w` windows of `window` cycles each. Keeps the newest 2
    /// snapshots.
    pub fn new(dir: impl Into<PathBuf>, every_windows: u64, window: Cycle) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            every_cycles: every_windows.max(1) * window,
            keep: 2,
            written: Vec::new(),
            last_at: None,
            count: 0,
        })
    }

    /// Cadence from [`CHECKPOINT_EVERY_ENV`] in windows: unset defaults to
    /// `default_windows`, `0` (or unparsable) disables (returns `None`).
    pub fn from_env(
        dir: impl Into<PathBuf>,
        window: Cycle,
        default_windows: u64,
    ) -> io::Result<Option<Self>> {
        let every = match std::env::var(CHECKPOINT_EVERY_ENV) {
            Ok(v) => v.trim().parse::<u64>().unwrap_or(0),
            Err(_) => default_windows,
        };
        if every == 0 {
            return Ok(None);
        }
        Self::new(dir, every, window).map(Some)
    }

    /// Snapshots written so far this run.
    pub fn written_count(&self) -> u64 {
        self.count
    }

    /// True when the hook should snapshot at this cycle: on cadence, not
    /// already taken, and the system quiescent (a round in flight skips to
    /// the next boundary).
    pub fn due(&self, sys: &System) -> bool {
        let now = sys.now();
        now > 0
            && now.is_multiple_of(self.every_cycles)
            && self.last_at != Some(now)
            && sys.can_checkpoint()
    }

    /// Writes a snapshot if one is due. `cursor` must cover everything the
    /// streaming sink has durably flushed (i.e. call this *after*
    /// [`crate::stream::StreamSink::flush_window`] at the same boundary).
    /// Returns whether a snapshot was written.
    pub fn maybe_checkpoint(&mut self, sys: &System, cursor: StreamCursor) -> io::Result<bool> {
        if !self.due(sys) {
            return Ok(false);
        }
        let bytes = encode_snapshot(sys, cursor).map_err(|e| io::Error::other(e.to_string()))?;
        let name = format!("ckpt-{:012}.ersp", sys.now());
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(&name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &fin)?;
        self.written.push(fin);
        self.last_at = Some(sys.now());
        self.count += 1;
        while self.written.len() > self.keep {
            let old = self.written.remove(0);
            let _ = fs::remove_file(old);
        }
        Ok(true)
    }
}

/// Finds the newest snapshot in `dir` that fully verifies against `cfg`:
/// walks `ckpt-*.ersp` newest-first (the zero-padded cycle number makes
/// lexicographic = numeric order) and returns the first whose checksum,
/// version and fingerprint all pass — the fallback chain that makes a
/// torn newest snapshot recoverable. `None` when no valid snapshot
/// exists.
pub fn latest_valid(dir: &Path, cfg: &SystemConfig) -> Option<(PathBuf, Vec<u8>)> {
    let fp = config_fingerprint(cfg);
    let names = snapshot_paths(dir)?;
    for p in names.iter().rev() {
        if let Ok(bytes) = fs::read(p) {
            if decode_snapshot(&bytes, fp).is_ok() {
                return Some((p.clone(), bytes));
            }
        }
    }
    None
}

/// Restores `sys` from the newest snapshot in `dir` that both verifies
/// *and* overlays cleanly, falling back past any that do not. Returns the
/// snapshot used and the stream cursor to resume at, or `None` when no
/// snapshot works — in which case `sys` may be partially overlaid and the
/// caller must rebuild it before a cold start.
pub fn resume_latest(sys: &mut System, dir: &Path) -> Option<(PathBuf, StreamCursor)> {
    let fp = config_fingerprint(sys.config());
    let names = snapshot_paths(dir)?;
    for p in names.iter().rev() {
        let Ok(bytes) = fs::read(p) else { continue };
        if decode_snapshot(&bytes, fp).is_err() {
            continue;
        }
        if let Ok(cursor) = restore_system(sys, &bytes) {
            return Some((p.clone(), cursor));
        }
    }
    None
}

/// Snapshot files in `dir`, cycle-ascending (zero-padded names make
/// lexicographic order numeric).
fn snapshot_paths(dir: &Path) -> Option<Vec<PathBuf>> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "ersp")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-"))
        })
        .collect();
    names.sort();
    Some(names)
}
