//! System configuration: the R(C,B,D) tuple, the four network modes, and
//! the paper's parameter presets (Table 1).

use crate::error::ErapidError;
use crate::faults::FaultPlan;
use erapid_telemetry::TraceConfig;
use erapid_tune::ControllerSpec;
use erapid_workloads::ScenarioSpec;
use photonics::bitrate::RateLadder;
use photonics::fiber::Fiber;
use photonics::power::LinkPowerModel;
use photonics::serdes::Serdes;
use powermgmt::policy::DpmPolicy;
use powermgmt::transition::TransitionModel;
use reconfig::alloc::AllocPolicy;
use reconfig::lockstep::LockStepSchedule;
use reconfig::protocol::RetryPolicy;
use reconfig::stages::ProtocolTiming;

/// The four evaluated network configurations (§3, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkMode {
    /// Non-power-aware, non-bandwidth-reconfigured baseline.
    NpNb,
    /// Power-aware only (DPM, no DBR).
    PNb,
    /// Bandwidth-reconfigured only (DBR, no DPM).
    NpB,
    /// The paper's proposal: both (Lock-Step).
    PB,
}

impl NetworkMode {
    /// All four modes in the paper's presentation order.
    pub fn all() -> [NetworkMode; 4] {
        [
            NetworkMode::NpNb,
            NetworkMode::NpB,
            NetworkMode::PNb,
            NetworkMode::PB,
        ]
    }

    /// Whether DPM (bit-rate/voltage scaling) is active.
    pub fn power_aware(self) -> bool {
        matches!(self, NetworkMode::PNb | NetworkMode::PB)
    }

    /// Whether DBR (wavelength re-allocation) is active.
    pub fn bandwidth_reconfig(self) -> bool {
        matches!(self, NetworkMode::NpB | NetworkMode::PB)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NetworkMode::NpNb => "NP-NB",
            NetworkMode::PNb => "P-NB",
            NetworkMode::NpB => "NP-B",
            NetworkMode::PB => "P-B",
        }
    }

    /// The DPM thresholds this mode runs with (§4.2: P-NB uses
    /// `L_max = 0.7, B_max = 0`; P-B uses `L_max = 0.9, B_max = 0.3`).
    pub fn dpm_policy(self) -> Option<DpmPolicy> {
        match self {
            NetworkMode::PNb => Some(DpmPolicy::power_only()),
            NetworkMode::PB => Some(DpmPolicy::power_bandwidth()),
            _ => None,
        }
    }
}

/// How DBR decisions travel from statistics to laser commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlPlane {
    /// Decisions computed at the window boundary and applied after the
    /// analytic five-stage latency (fast; the default).
    #[default]
    AnalyticLatency,
    /// The five stages executed as real control packets on the RC ring,
    /// cycle by cycle ([`reconfig::protocol::DbrRound`]). Produces the
    /// same decisions at the same cycle; used to validate the shortcut.
    MessageLevel,
}

/// Bursty-source parameters (extension workload; None = the paper's
/// memoryless Bernoulli sources).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// ON-state rate multiplier over the long-run rate.
    pub burstiness: f64,
    /// Mean dwell time per source state, cycles.
    pub dwell: f64,
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Clusters (the paper's evaluation uses C = 1).
    pub clusters: u16,
    /// Boards per cluster (B).
    pub boards: u16,
    /// Nodes per board (D).
    pub nodes_per_board: u16,
    /// Flits per packet (paper: 8 flits = 64 bytes).
    pub packet_flits: u16,
    /// Virtual channels per router input port.
    pub vcs: u8,
    /// Router input buffer depth per VC, in flits.
    pub buf_depth: usize,
    /// Transmitter queue capacity per destination board, in flits.
    pub tx_queue_flits: u32,
    /// Network configuration.
    pub mode: NetworkMode,
    /// The LS window schedule (`R_w`).
    pub schedule: LockStepSchedule,
    /// Bit-rate ladder.
    pub ladder: RateLadder,
    /// Link power model.
    pub power_model: LinkPowerModel,
    /// Transition timing.
    pub transition: TransitionModel,
    /// DBR allocation thresholds.
    pub alloc: AllocPolicy,
    /// Overrides the DPM thresholds the mode would imply (None = use
    /// [`NetworkMode::dpm_policy`]). Ignored in non-power-aware modes.
    pub dpm_override: Option<DpmPolicy>,
    /// Online threshold auto-tuning (DESIGN.md §15). When set in a
    /// power-aware mode, a [`erapid_tune::ThresholdController`] seeded from
    /// this spec adapts the live DPM thresholds at Power-kind `R_w`
    /// boundaries, preempting both the mode preset and `dpm_override`.
    /// Ignored in non-power-aware modes; None (the default) keeps the
    /// paper-constant thresholds.
    pub tune: Option<ControllerSpec>,
    /// Bursty sources (None = Bernoulli, the paper's model).
    pub burst: Option<BurstSpec>,
    /// Production-shaped workload scenario. When set, injection comes from
    /// an `erapid_workloads::ScenarioEngine` built from this spec (seeded
    /// from [`SystemConfig::seed`], rate-normalised like the synthetic
    /// patterns) instead of the per-node pattern generators.
    pub scenario: Option<ScenarioSpec>,
    /// DBR control-plane execution model.
    pub control_plane: ControlPlane,
    /// Control-plane latency model.
    pub timing: ProtocolTiming,
    /// Board-to-board fiber.
    pub fiber: Fiber,
    /// Flit serialization calculator.
    pub serdes: Serdes,
    /// Master RNG seed.
    pub seed: u64,
    /// Deterministic fault schedule (empty = fault-free, the default).
    pub faults: FaultPlan,
    /// LS control-plane detection/recovery policy.
    pub retry: RetryPolicy,
    /// Cycle-level event tracing (off by default — the null sink costs one
    /// never-taken branch per emit point). Plain data, so the config stays
    /// `Clone + Debug`; each `System` builds its own recorder from it.
    pub trace: TraceConfig,
    /// Record every injection into a [`traffic::trace::TraceRecorder`] for
    /// later replay (off by default — when off, the hot path pays one
    /// never-taken branch, the same zero-cost contract as `trace`).
    pub record_injections: bool,
    /// Log every delivery as a per-packet `(id, dst, injected, delivered)`
    /// row for packet-for-packet diffing (off by default).
    pub packet_log: bool,
}

impl SystemConfig {
    /// The paper's 64-node system (B = 8, D = 8) with Table 1 parameters.
    pub fn paper64(mode: NetworkMode) -> Self {
        Self {
            clusters: 1,
            boards: 8,
            nodes_per_board: 8,
            packet_flits: 8,
            vcs: 4,
            buf_depth: 4,
            tx_queue_flits: 64,
            mode,
            schedule: LockStepSchedule::paper(),
            ladder: RateLadder::paper(),
            power_model: LinkPowerModel::paper_table(),
            transition: TransitionModel::paper(),
            alloc: AllocPolicy::paper(),
            dpm_override: None,
            tune: None,
            burst: None,
            scenario: None,
            control_plane: ControlPlane::default(),
            timing: ProtocolTiming::paper64(),
            fiber: Fiber::rack_scale(),
            serdes: Serdes::paper(),
            seed: 0xE4A9_1D07,
            faults: FaultPlan::new(),
            retry: RetryPolicy::default(),
            trace: TraceConfig::off(),
            record_injections: false,
            packet_log: false,
        }
    }

    /// A small R(1,4,4) system for fast tests (the paper's Fig. 1 example).
    pub fn small(mode: NetworkMode) -> Self {
        let mut c = Self::paper64(mode);
        c.boards = 4;
        c.nodes_per_board = 4;
        c.timing = ProtocolTiming {
            boards: 4,
            lcs_per_board: 4,
            ..ProtocolTiming::paper64()
        };
        c
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.boards as u32 * self.nodes_per_board as u32
    }

    /// Wavelength count (W = B).
    pub fn wavelengths(&self) -> u16 {
        self.boards
    }

    /// The board of a global node id.
    pub fn board_of(&self, node: u32) -> u16 {
        (node / self.nodes_per_board as u32) as u16
    }

    /// The local index of a global node id on its board.
    pub fn local_of(&self, node: u32) -> u16 {
        (node % self.nodes_per_board as u32) as u16
    }

    /// The effective DPM policy: the override when set, else the mode's.
    pub fn dpm_policy(&self) -> Option<DpmPolicy> {
        if !self.mode.power_aware() {
            return None;
        }
        self.dpm_override.or_else(|| self.mode.dpm_policy())
    }

    /// The capacity model for normalising injected load.
    pub fn capacity(&self) -> traffic::capacity::CapacityModel {
        let flit_cycles = self
            .serdes
            .flit_cycles(self.ladder.rate(self.ladder.highest()));
        traffic::capacity::CapacityModel {
            boards: self.boards as u32,
            nodes_per_board: self.nodes_per_board as u32,
            packet_flits: self.packet_flits as u32,
            flit_cycles: flit_cycles as u32,
        }
    }

    /// Checks internal consistency, reporting the first problem as a
    /// typed error (including every fault event targeting hardware that
    /// exists, via [`FaultPlan::validate`]).
    pub fn try_validate(&self) -> Result<(), ErapidError> {
        let fail = |msg: &str| Err(ErapidError::Config(msg.into()));
        if self.clusters != 1 {
            return fail("multi-cluster systems are future work");
        }
        if self.boards < 2 {
            return fail("need at least two boards");
        }
        if self.nodes_per_board < 1 {
            return fail("need at least one node per board");
        }
        if self.packet_flits < 1 {
            return fail("packets must carry at least one flit");
        }
        if self.vcs < 1 {
            return fail("need at least one VC");
        }
        if self.buf_depth < 1 {
            return fail("need at least one buffer slot");
        }
        if self.tx_queue_flits < self.packet_flits as u32 {
            return fail("TX queue must hold at least one packet");
        }
        if self.ladder.len() != self.power_model.ladder().len() {
            return fail("power model must cover the ladder");
        }
        if let Some(spec) = &self.scenario {
            spec.validate(self.nodes())
                .map_err(|e| ErapidError::Config(e.0))?;
        }
        if let Some(spec) = &self.tune {
            spec.try_validate()
                .map_err(|e| ErapidError::Config(e.to_string()))?;
        }
        self.faults.validate(self.boards)?;
        Ok(())
    }

    /// Validates internal consistency, aborting on the first problem
    /// (construction-time contract; see [`SystemConfig::try_validate`] for
    /// the non-aborting form).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid SystemConfig: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags() {
        assert!(!NetworkMode::NpNb.power_aware());
        assert!(!NetworkMode::NpNb.bandwidth_reconfig());
        assert!(NetworkMode::PNb.power_aware());
        assert!(!NetworkMode::PNb.bandwidth_reconfig());
        assert!(!NetworkMode::NpB.power_aware());
        assert!(NetworkMode::NpB.bandwidth_reconfig());
        assert!(NetworkMode::PB.power_aware());
        assert!(NetworkMode::PB.bandwidth_reconfig());
        assert_eq!(NetworkMode::all().len(), 4);
        assert_eq!(NetworkMode::PB.name(), "P-B");
    }

    #[test]
    fn mode_policies_match_paper() {
        assert!(NetworkMode::NpNb.dpm_policy().is_none());
        let pnb = NetworkMode::PNb.dpm_policy().unwrap();
        assert_eq!((pnb.l_max, pnb.b_max), (0.7, 0.0));
        let pb = NetworkMode::PB.dpm_policy().unwrap();
        assert_eq!((pb.l_max, pb.b_max), (0.9, 0.3));
    }

    #[test]
    fn paper64_geometry() {
        let c = SystemConfig::paper64(NetworkMode::PB);
        c.validate();
        assert_eq!(c.nodes(), 64);
        assert_eq!(c.wavelengths(), 8);
        assert_eq!(c.board_of(0), 0);
        assert_eq!(c.board_of(63), 7);
        assert_eq!(c.local_of(63), 7);
        assert_eq!(c.board_of(8), 1);
        assert_eq!(c.schedule.window, 2000);
    }

    #[test]
    fn small_config_validates() {
        let c = SystemConfig::small(NetworkMode::NpNb);
        c.validate();
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.timing.boards, 4);
    }

    #[test]
    fn dpm_override_takes_precedence() {
        let mut c = SystemConfig::paper64(NetworkMode::PB);
        assert_eq!(c.dpm_policy(), Some(DpmPolicy::power_bandwidth()));
        let custom = DpmPolicy::new(0.1, 0.2, 0.0);
        c.dpm_override = Some(custom);
        assert_eq!(c.dpm_policy(), Some(custom));
        // Non-power-aware modes ignore the override entirely.
        c.mode = NetworkMode::NpB;
        assert_eq!(c.dpm_policy(), None);
    }

    #[test]
    fn capacity_matches_paper_model() {
        let c = SystemConfig::paper64(NetworkMode::NpNb);
        let cap = c.capacity();
        let paper = traffic::capacity::CapacityModel::paper64();
        assert!((cap.uniform_capacity() - paper.uniform_capacity()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn tiny_tx_queue_rejected() {
        let mut c = SystemConfig::paper64(NetworkMode::NpNb);
        c.tx_queue_flits = 4;
        c.validate();
    }

    #[test]
    fn scenario_specs_are_validated() {
        let mut c = SystemConfig::small(NetworkMode::PB);
        c.scenario = Some(ScenarioSpec::incast());
        assert!(c.try_validate().is_ok());
        let mut bad = ScenarioSpec::hotspot();
        bad.rate_scale = f64::NAN;
        c.scenario = Some(bad);
        assert!(matches!(c.try_validate(), Err(ErapidError::Config(_))));
    }

    #[test]
    fn tune_specs_are_validated() {
        let mut c = SystemConfig::small(NetworkMode::PB);
        c.tune = Some(ControllerSpec::paper_pb());
        assert!(c.try_validate().is_ok());
        let mut bad = ControllerSpec::paper_pb();
        bad.l_min_milli = 950; // inverted band
        c.tune = Some(bad);
        assert!(matches!(c.try_validate(), Err(ErapidError::Config(_))));
    }

    #[test]
    fn try_validate_reports_typed_errors() {
        let mut c = SystemConfig::paper64(NetworkMode::PB);
        assert!(c.try_validate().is_ok());
        c.tx_queue_flits = 4;
        assert!(matches!(c.try_validate(), Err(ErapidError::Config(_))));
        // Fault plans are validated against the geometry too.
        let mut c = SystemConfig::small(NetworkMode::PB);
        c.faults = FaultPlan::new().at(
            10,
            crate::faults::FaultKind::ReceiverDown {
                board: 9,
                wavelength: 1,
            },
        );
        assert!(matches!(
            c.try_validate(),
            Err(ErapidError::FaultTarget { at: 10, .. })
        ));
    }
}
