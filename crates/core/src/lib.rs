#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::perf)]
//! # erapid-core — the E-RAPID system model
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: an R(C,B,D) opto-electronic interconnect
//! (§2) with Lock-Step power/bandwidth reconfiguration (§3) and the
//! evaluation harness that regenerates §4.
//!
//! Architecture of one simulated system:
//!
//! ```text
//!  per board:                                  shared:
//!  ┌──────────────────────────────┐
//!  │ D nodes ──► IBI VC router ───┼─► per-destination TX queues
//!  │   ▲                          │        │ (flit reassembly)
//!  │   └── RX injectors ◄─────────┼────┐   ▼
//!  └──────────────────────────────┘    │  SRS: wavelength ownership map,
//!                                      │  optical channels (serialization,
//!          packet arrivals ◄──────────-┘  bit-rate levels, fiber delay)
//! ```
//!
//! * [`config`] — system parameters and the four network configurations
//!   NP-NB / P-NB / NP-B / P-B,
//! * [`inject`] — flit injectors feeding the IBI router from node NIs and
//!   optical receivers,
//! * [`txqueue`] — per-destination-board transmitter queues (packets are
//!   the interleaving unit in the optical domain, §2.1),
//! * [`srs`] — the Scalable Remote Optical Super-Highway: ownership map +
//!   channel bank + in-flight arrivals,
//! * [`board`] — one board: router, NIs, TX queues, receivers,
//! * [`system`] — the full system and its cycle loop, including the LS
//!   odd–even reconfiguration triggers,
//! * [`metrics`] — run metrics (throughput, latency, power, reconfig
//!   counters),
//! * [`experiment`] — load sweeps and the figure-series runner,
//! * [`runner`] — the parallel run-level executor fanning independent
//!   experiment points over a worker pool (`ERAPID_THREADS`),
//! * [`faults`] — deterministic, seed-reproducible fault-event scheduling
//!   (receiver/transmitter outages, stuck LCs, CDR relocks, LS token
//!   faults),
//! * [`error`] — the typed [`ErapidError`] the library reports instead of
//!   aborting.
//!
//! Telemetry: enabling [`SystemConfig`]`::trace` (see
//! [`erapid_telemetry::TraceConfig`]) makes each system record a
//! cycle-stamped event trace (DPM retunes, CDR relocks, LS stages, DBR
//! grants, faults, buffer-threshold crossings) plus per-window metric
//! snapshots into a preallocated, point-local ring buffer. Tracing never
//! perturbs the simulation, and per-point traces are byte-identical
//! across sequential and parallel sweeps (see
//! [`runner::run_points_traced`]).

//!
//! ## Example: one experiment point
//!
//! ```
//! use erapid_core::config::{NetworkMode, SystemConfig};
//! use erapid_core::experiment::run_once;
//! use desim::phase::PhasePlan;
//! use traffic::pattern::TrafficPattern;
//!
//! let cfg = SystemConfig::small(NetworkMode::PB); // fast R(1,4,4) system
//! let plan = PhasePlan::new(2000, 4000).with_max_cycles(40_000);
//! let r = run_once(cfg, TrafficPattern::Uniform, 0.3, plan);
//! assert!(r.throughput > 0.0);
//! assert!(r.power_mw > 0.0);
//! assert_eq!(r.undrained, 0);
//! ```

pub mod board;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod experiment;
pub mod faults;
pub mod inject;
pub mod metrics;
pub mod runner;
pub(crate) mod shard;
pub mod srs;
pub mod stream;
pub mod system;
pub mod txqueue;

pub use checkpoint::{latest_valid, restore_system, Checkpointer};
pub use config::{NetworkMode, SystemConfig};
pub use error::ErapidError;
pub use experiment::{
    run_once, run_once_recorded, run_once_replayed, run_once_replayed_sharded,
    run_once_replayed_traced, run_once_replayed_traced_sharded, run_once_sharded, run_once_traced,
    run_once_traced_sharded, sweep_loads, sweep_loads_with, trace_meta, RunResult, RunTrace,
    TraceSource,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::PacketDelivery;
pub use runner::{
    nested_budget, parallel_map, parallel_map_prioritized, point_threads_from_env, run_points,
    run_points_sharded, run_points_timed, run_points_timed_sharded, run_points_traced,
    run_points_traced_sharded, RunPoint,
};
pub use stream::{StreamCursor, StreamPaths, StreamSink};
pub use system::{PhaseTimers, System, WindowFlush};
