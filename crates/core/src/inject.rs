//! Flit injectors — re-exported from the `router` crate.
//!
//! The injector state machine lives with the router it feeds
//! ([`router::inject`]); this module preserves the original path within
//! `erapid-core`.

pub use router::inject::FlitInjector;
