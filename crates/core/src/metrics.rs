//! Run metrics: the three quantities every figure of §4 reports, plus
//! reconfiguration counters.

use desim::phase::{PhasePlan, PhaseTracker};
use desim::Cycle;
use netstats::meter::{LatencyMeter, PowerMeter, ThroughputMeter};
use netstats::running::Running;

/// One delivered packet, as logged when `SystemConfig::packet_log` is on.
///
/// Packet ids are assigned sequentially in injection order, so under trace
/// replay id `k` is the trace's `k`-th entry — a replayed delivery joins
/// back to its `(cycle, src, dst)` provenance without carrying `src` here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDelivery {
    /// Sequential packet id (injection order).
    pub id: u64,
    /// Destination node.
    pub dst: u32,
    /// Injection cycle.
    pub injected_at: Cycle,
    /// Delivery cycle.
    pub delivered_at: Cycle,
    /// Whether the packet was injected during the measurement phase.
    pub labelled: bool,
}

/// Metrics collected over one simulation run.
pub struct RunMetrics {
    /// Accepted throughput (deliveries during the measurement interval).
    pub throughput: ThroughputMeter,
    /// End-to-end latency of labelled packets.
    pub latency: LatencyMeter,
    /// Average optical-link power over the measurement interval.
    pub power: PowerMeter,
    /// Labelled-packet completion tracking.
    pub tracker: PhaseTracker,
    /// The phase plan of the run.
    pub plan: PhasePlan,
    /// Total packets injected (all phases).
    pub injected_total: u64,
    /// Total packets delivered (all phases).
    pub delivered_total: u64,
    /// Latency decomposition, source side: injection → TX-queue-ready
    /// (NI wait + IBI traversal + reassembly), labelled remote packets.
    pub src_path: Running,
    /// Latency decomposition: TX-queue wait (ready → optical departure).
    pub tx_wait: Running,
}

impl desim::snap::Snap for PacketDelivery {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u64(self.id);
        w.u32(self.dst);
        w.u64(self.injected_at);
        w.u64(self.delivered_at);
        w.bool(self.labelled);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            id: r.u64()?,
            dst: r.u32()?,
            injected_at: r.u64()?,
            delivered_at: r.u64()?,
            labelled: r.bool()?,
        })
    }
}

impl RunMetrics {
    /// Serializes all accumulators and counters (the phase plan is
    /// config-derived and not persisted).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        self.throughput.save(w);
        self.latency.save(w);
        self.power.save(w);
        self.tracker.save(w);
        w.u64(self.injected_total);
        w.u64(self.delivered_total);
        self.src_path.save(w);
        self.tx_wait.save(w);
    }

    /// Overlays checkpointed metric accumulators.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        self.throughput = ThroughputMeter::load(r)?;
        self.latency = LatencyMeter::load(r)?;
        self.power = PowerMeter::load(r)?;
        self.tracker = PhaseTracker::load(r)?;
        self.injected_total = r.u64()?;
        self.delivered_total = r.u64()?;
        self.src_path = Running::load(r)?;
        self.tx_wait = Running::load(r)?;
        Ok(())
    }
}

impl RunMetrics {
    /// Creates metrics for a network of `nodes` nodes under `plan`.
    pub fn new(nodes: usize, plan: PhasePlan) -> Self {
        let mut throughput = ThroughputMeter::new(nodes);
        throughput.start(plan.measure_start());
        Self {
            throughput,
            latency: LatencyMeter::standard(),
            power: PowerMeter::new(),
            tracker: PhaseTracker::new(),
            plan,
            injected_total: 0,
            delivered_total: 0,
            src_path: Running::new(),
            tx_wait: Running::new(),
        }
    }

    /// True while `now` is inside the measurement interval.
    pub fn measuring(&self, now: Cycle) -> bool {
        now >= self.plan.measure_start() && now < self.plan.measure_end()
    }

    /// Accepted throughput in packets/node/cycle.
    pub fn throughput_ppc(&self) -> f64 {
        self.throughput.throughput(self.plan.measure_end())
    }

    /// Mean latency in cycles of measured packets.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Average power in mW over the measurement interval.
    pub fn average_power_mw(&self) -> f64 {
        self.power.average_mw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measuring_window() {
        let m = RunMetrics::new(4, PhasePlan::new(100, 50));
        assert!(!m.measuring(99));
        assert!(m.measuring(100));
        assert!(m.measuring(149));
        assert!(!m.measuring(150));
    }

    #[test]
    fn throughput_starts_at_measure_start() {
        let mut m = RunMetrics::new(2, PhasePlan::new(100, 100));
        m.throughput.deliver(150, 8);
        m.throughput.deliver(180, 8);
        // 2 packets / (2 nodes × 100 cycles).
        assert!((m.throughput_ppc() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::new(4, PhasePlan::new(10, 10));
        assert_eq!(m.throughput_ppc(), 0.0);
        assert_eq!(m.mean_latency(), 0.0);
        assert_eq!(m.average_power_mw(), 0.0);
        assert_eq!(m.injected_total, 0);
        assert_eq!(m.delivered_total, 0);
    }
}
