//! Experiment runner: single runs and load sweeps.
//!
//! §4's methodology: warm up, label packets injected during a measurement
//! interval, run until the labelled packets drain, report throughput
//! (packets/node/cycle), mean latency (cycles) and power (mW). The load
//! axis is normalised to the uniform-traffic capacity `N_c`, swept 0.1–0.9.

use crate::config::{NetworkMode, SystemConfig};
use crate::metrics::PacketDelivery;
use crate::system::System;
use desim::phase::PhasePlan;
use desim::Cycle;
use erapid_telemetry::{HistogramSummary, TraceRecord, WindowSnapshot};
use std::sync::Arc;
use traffic::pattern::TrafficPattern;
use traffic::trace::{InjectionTrace, TraceMeta};

/// One run's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Normalised offered load (fraction of `N_c`).
    pub load: f64,
    /// Accepted throughput, packets/node/cycle.
    pub throughput: f64,
    /// Accepted throughput normalised to `N_c`.
    pub throughput_norm: f64,
    /// Mean end-to-end latency, cycles.
    pub latency: f64,
    /// 95th-percentile latency, cycles.
    pub latency_p95: f64,
    /// Average optical power, mW.
    pub power_mw: f64,
    /// Mean source-side path time of remote packets (injection →
    /// TX-queue-ready), cycles.
    pub src_path: f64,
    /// Mean TX-queue wait of remote packets (ready → optical departure),
    /// cycles.
    pub tx_wait: f64,
    /// Labelled packets still stuck when the run stopped (0 = clean drain).
    pub undrained: u64,
    /// Ownership grants applied (DBR activity).
    pub grants: u64,
    /// Bit-rate transitions applied (DPM activity).
    pub retunes: u64,
    /// LS token resends performed by the control-plane watchdog.
    pub ls_retries: u64,
    /// DBR rounds aborted fail-safe (retry budget exhausted).
    pub ls_aborts: u64,
    /// Packets injected over the whole run (all phases).
    pub injected: u64,
    /// Packets delivered over the whole run (all phases).
    pub delivered: u64,
    /// Final cycle of the run.
    pub cycles: Cycle,
}

impl RunResult {
    /// Whole-run delivered fraction (`delivered / injected`; 1.0 for an
    /// idle run) — the survival headline the scenario bench ranks by.
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }
}

/// Default phase plan used by the figure benches: three R_w windows of
/// warm-up, six of measurement (enough for several odd–even LS rounds).
pub fn default_plan(window: Cycle) -> PhasePlan {
    PhasePlan::new(3 * window, 6 * window).with_max_cycles(40 * window)
}

/// Where a run's injections come from.
///
/// `Generate` is the paper's model: per-node Bernoulli (or bursty) sources
/// seeded from the config. `Replay` feeds a recorded [`InjectionTrace`]
/// instead, so two runs under *different* configurations see the exact
/// same packets — the packet-for-packet comparison a distribution-wise A/B
/// cannot provide. The trace rides in an [`Arc`] because one recording is
/// typically replayed across many points (four modes × N loads), and
/// [`crate::runner::RunPoint`] stays `Clone + Send` for the parallel
/// executor.
#[derive(Debug, Clone, Default)]
pub enum TraceSource {
    /// Live traffic generators (the default).
    #[default]
    Generate,
    /// Replay this recorded trace; the point's `pattern`/`load` are
    /// ignored (every injection comes from the trace; the reported
    /// `RunResult::load` is the trace's recorded load).
    Replay(Arc<InjectionTrace>),
}

/// Everything a traced run recorded beyond its [`RunResult`]: the
/// cycle-stamped event stream plus the per-window metric snapshots
/// (column names in registration order). Empty (but well-formed) when the
/// point's [`SystemConfig::trace`] was off.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Recorded events, in emission (= simulation) order.
    pub records: Vec<TraceRecord>,
    /// Events lost to ring-buffer overwrite (0 = complete trace).
    pub dropped: u64,
    /// Counter column names for [`WindowSnapshot::counters`].
    pub counter_names: Vec<String>,
    /// Gauge column names for [`WindowSnapshot::gauges`].
    pub gauge_names: Vec<String>,
    /// One snapshot per completed lock-step window.
    pub windows: Vec<WindowSnapshot>,
    /// Run-cumulative histogram digests (latency, TX wait), in
    /// registration order.
    pub hist_summaries: Vec<HistogramSummary>,
    /// Per-packet delivery rows (empty unless the point's
    /// [`SystemConfig::packet_log`] was on).
    pub packets: Vec<PacketDelivery>,
}

/// Runs one configuration at one load point.
pub fn run_once(
    cfg: SystemConfig,
    pattern: TrafficPattern,
    load: f64,
    plan: PhasePlan,
) -> RunResult {
    run_once_traced(cfg, pattern, load, plan).0
}

/// Runs one configuration at one load point, returning the trace the
/// system recorded alongside the headline numbers. Tracing observes the
/// run without perturbing it: the [`RunResult`] is byte-identical whether
/// `cfg.trace` is on or off.
pub fn run_once_traced(
    cfg: SystemConfig,
    pattern: TrafficPattern,
    load: f64,
    plan: PhasePlan,
) -> (RunResult, RunTrace) {
    run_once_traced_sharded(cfg, pattern, load, plan, std::num::NonZeroUsize::MIN)
}

/// As [`run_once`], with the cycle engine sharded across boards onto
/// `point_threads` workers (see [`System::run_sharded`]). Byte-identical
/// to the sequential run for any worker count.
pub fn run_once_sharded(
    cfg: SystemConfig,
    pattern: TrafficPattern,
    load: f64,
    plan: PhasePlan,
    point_threads: std::num::NonZeroUsize,
) -> RunResult {
    run_once_traced_sharded(cfg, pattern, load, plan, point_threads).0
}

/// Sharded variant of [`run_once_traced`] — one worker degenerates to the
/// plain sequential engine.
pub fn run_once_traced_sharded(
    cfg: SystemConfig,
    pattern: TrafficPattern,
    load: f64,
    plan: PhasePlan,
    point_threads: std::num::NonZeroUsize,
) -> (RunResult, RunTrace) {
    let capacity = cfg.capacity().uniform_capacity();
    let mut sys = System::new(cfg, pattern, load, plan);
    let cycles = sys.run_sharded(point_threads);
    collect(sys, load, capacity, cycles)
}

/// Drains a finished system into its `(RunResult, RunTrace)` pair — the
/// common tail of the generated, recorded and replayed run flavours.
fn collect(mut sys: System, load: f64, capacity: f64, cycles: Cycle) -> (RunResult, RunTrace) {
    let trace = RunTrace {
        counter_names: sys.metric_counter_names(),
        gauge_names: sys.metric_gauge_names(),
        hist_summaries: sys.metric_hist_summaries(),
        dropped: sys.trace_dropped(),
        records: sys.take_trace_records(),
        windows: sys.take_metric_windows(),
        packets: sys.take_packet_log(),
    };
    let m = sys.metrics();
    let (grants, retunes) = sys.srs().reconfig_counts();
    let (ls_retries, ls_aborts) = sys.control_stats();
    let result = RunResult {
        load,
        throughput: m.throughput_ppc(),
        throughput_norm: m.throughput_ppc() / capacity,
        latency: m.mean_latency(),
        latency_p95: m.latency.p95().unwrap_or(0.0),
        power_mw: m.average_power_mw(),
        src_path: m.src_path.mean(),
        tx_wait: m.tx_wait.mean(),
        undrained: m.tracker.outstanding(),
        grants,
        retunes,
        ls_retries,
        ls_aborts,
        injected: m.injected_total,
        delivered: m.delivered_total,
        cycles,
    };
    (result, trace)
}

/// The provenance header a recording run stamps on its trace. The
/// `git_sha` is left `"unknown"` — library code does not inspect the
/// checkout; binaries overwrite it (see `erapid_bench::git_sha`).
pub fn trace_meta(cfg: &SystemConfig, pattern: &TrafficPattern, load: f64) -> TraceMeta {
    TraceMeta {
        seed: cfg.seed,
        boards: cfg.boards,
        nodes_per_board: cfg.nodes_per_board,
        pattern: pattern.name().to_string(),
        load,
        git_sha: "unknown".to_string(),
    }
}

/// Runs one generated point with injection recording on, returning the
/// headline numbers plus the recorded workload (with provenance attached).
/// The recording observes the run without perturbing it: the [`RunResult`]
/// matches [`run_once`] on the same inputs byte-identically.
pub fn run_once_recorded(
    cfg: SystemConfig,
    pattern: TrafficPattern,
    load: f64,
    plan: PhasePlan,
) -> (RunResult, InjectionTrace) {
    let mut cfg = cfg;
    cfg.record_injections = true;
    let capacity = cfg.capacity().uniform_capacity();
    let meta = trace_meta(&cfg, &pattern, load);
    let mut sys = System::new(cfg, pattern, load, plan);
    let cycles = sys.run();
    let rec = sys.take_injection_log().unwrap_or_default();
    let (result, _) = collect(sys, load, capacity, cycles);
    (result, rec.into_trace(meta))
}

/// Replays a recorded trace against `cfg` (which may differ from the
/// recording configuration in mode, thresholds, faults — anything but the
/// B×D geometry the node ids assume). The reported load is the trace's
/// recorded load.
pub fn run_once_replayed(cfg: SystemConfig, trace: &InjectionTrace, plan: PhasePlan) -> RunResult {
    run_once_replayed_traced(cfg, trace, plan).0
}

/// Traced variant of [`run_once_replayed`].
pub fn run_once_replayed_traced(
    cfg: SystemConfig,
    trace: &InjectionTrace,
    plan: PhasePlan,
) -> (RunResult, RunTrace) {
    run_once_replayed_traced_sharded(cfg, trace, plan, std::num::NonZeroUsize::MIN)
}

/// As [`run_once_replayed`], on the board-sharded engine. Replay and
/// sharding compose: injection stays a sequential phase, so the replayed
/// packet stream is identical for any worker count.
pub fn run_once_replayed_sharded(
    cfg: SystemConfig,
    trace: &InjectionTrace,
    plan: PhasePlan,
    point_threads: std::num::NonZeroUsize,
) -> RunResult {
    run_once_replayed_traced_sharded(cfg, trace, plan, point_threads).0
}

/// Sharded variant of [`run_once_replayed_traced`].
pub fn run_once_replayed_traced_sharded(
    cfg: SystemConfig,
    trace: &InjectionTrace,
    plan: PhasePlan,
    point_threads: std::num::NonZeroUsize,
) -> (RunResult, RunTrace) {
    let capacity = cfg.capacity().uniform_capacity();
    let load = trace.meta.load;
    let mut sys = System::with_trace(cfg, trace.replayer(), plan);
    let cycles = sys.run_sharded(point_threads);
    collect(sys, load, capacity, cycles)
}

/// Sweeps the load axis for one (mode, pattern) pair on `threads` workers.
///
/// The points are built sequentially (so `make_cfg` may be stateful) and
/// executed by [`crate::runner::run_points`]; results come back in load
/// order, byte-identical to a sequential sweep for any thread count.
pub fn sweep_loads_with(
    threads: std::num::NonZeroUsize,
    mode: NetworkMode,
    pattern: &TrafficPattern,
    loads: &[f64],
    mut make_cfg: impl FnMut(NetworkMode) -> SystemConfig,
) -> Vec<RunResult> {
    let points: Vec<crate::runner::RunPoint> = loads
        .iter()
        .map(|&load| {
            let cfg = make_cfg(mode);
            let plan = default_plan(cfg.schedule.window);
            crate::runner::RunPoint {
                cfg,
                pattern: pattern.clone(),
                load,
                plan,
                source: TraceSource::Generate,
            }
        })
        .collect();
    crate::runner::run_points(threads, points)
}

/// Sweeps the load axis for one (mode, pattern) pair, using every
/// available core (see [`sweep_loads_with`] to control the thread count).
pub fn sweep_loads(
    mode: NetworkMode,
    pattern: &TrafficPattern,
    loads: &[f64],
    make_cfg: impl FnMut(NetworkMode) -> SystemConfig,
) -> Vec<RunResult> {
    sweep_loads_with(
        crate::runner::available_threads(),
        mode,
        pattern,
        loads,
        make_cfg,
    )
}

/// The paper's load axis: 0.1 – 0.9 in steps of 0.1.
pub fn paper_loads() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivered_fraction_guards_zero_injection() {
        // Regression: an idle run (scenario window with no generators
        // active, or a zero-load point) must rank as fully delivered, not
        // NaN — the scenario bench sorts by this value and a NaN would
        // poison the worst-offender ranking.
        let mut r = RunResult {
            load: 0.0,
            throughput: 0.0,
            throughput_norm: 0.0,
            latency: 0.0,
            latency_p95: 0.0,
            power_mw: 0.0,
            src_path: 0.0,
            tx_wait: 0.0,
            undrained: 0,
            grants: 0,
            retunes: 0,
            ls_retries: 0,
            ls_aborts: 0,
            injected: 0,
            delivered: 0,
            cycles: 0,
        };
        assert_eq!(r.delivered_fraction(), 1.0);
        r.injected = 4;
        r.delivered = 3;
        assert!((r.delivered_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn paper_loads_axis() {
        let l = paper_loads();
        assert_eq!(l.len(), 9);
        assert!((l[0] - 0.1).abs() < 1e-12);
        assert!((l[8] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn run_once_produces_consistent_result() {
        let cfg = SystemConfig::small(NetworkMode::NpNb);
        let plan = default_plan(cfg.schedule.window);
        let r = run_once(cfg, TrafficPattern::Uniform, 0.3, plan);
        assert!((r.load - 0.3).abs() < 1e-12);
        assert!(r.throughput > 0.0);
        assert!(r.throughput_norm > 0.0 && r.throughput_norm < 1.2);
        assert!(r.latency > 0.0);
        assert!(r.latency_p95 >= r.latency * 0.5);
        assert!(r.power_mw > 0.0);
        assert_eq!(r.undrained, 0);
        assert_eq!(r.grants, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn sweep_is_monotone_in_load_below_saturation() {
        let results = sweep_loads(
            NetworkMode::NpNb,
            &TrafficPattern::Uniform,
            &[0.2, 0.4],
            SystemConfig::small,
        );
        assert_eq!(results.len(), 2);
        assert!(results[1].throughput > results[0].throughput);
    }
}
