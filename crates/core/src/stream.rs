//! Streaming export for long-horizon runs.
//!
//! A million-window run cannot hold its trace, metric rows or packet log
//! in memory. [`StreamSink`] flushes all three to disk at every `R_w`
//! boundary, so the in-memory buffers ([`crate::system::System`]'s ring
//! recorder, registry window list and packet log) hold at most one window
//! of data. Two files are produced:
//!
//! - a **JSONL trace** (`.jsonl`): one line per trace event, then one line
//!   per metric window — the same line formats `tracereport` emits, so
//!   existing tooling reads a streamed trace unchanged;
//! - a **binary delivery log** (`.erpd`): fixed 29-byte little-endian
//!   records (`id u64, dst u32, injected u64, delivered u64, labelled
//!   u8`), guarded by an FNV-1a-64 checksum trailer — the `.ertr`
//!   discipline applied to output instead of input.
//!
//! Crash-safe resume: the byte positions and the *running* delivery
//! checksum live in a [`StreamCursor`] that every checkpoint embeds
//! (see [`crate::checkpoint`]). [`StreamSink::resume`] truncates both
//! files back to the cursor — anything a killed run wrote past its last
//! checkpoint is discarded, and the resumed run regenerates it
//! byte-for-byte.

use crate::metrics::PacketDelivery;
use crate::system::WindowFlush;
use desim::snap::{fnv1a_update, Snap, SnapError, SnapReader, SnapWriter, FNV_OFFSET};
use erapid_telemetry::jsonl_line;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Magic prefix of a streamed delivery log.
pub const DELIV_MAGIC: [u8; 4] = *b"ERPD";
/// Delivery-log format version.
pub const DELIV_VERSION: u16 = 1;
/// Trailer tag ending a finalized delivery log.
pub const DELIV_TRAILER: [u8; 4] = *b"END.";
/// Header length: magic + version.
const DELIV_HEADER: u64 = 6;
/// One fixed-width delivery record.
const DELIV_RECORD: u64 = 29;
/// Trailer length: tag + record count + checksum.
const DELIV_TRAILER_LEN: u64 = 20;

/// Resume point of a [`StreamSink`]: how many bytes of each file are
/// checkpoint-covered, and the running checksum over the delivery records
/// written so far. Embedded in every snapshot so a restore can truncate
/// the files back to exactly the state the checkpoint saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCursor {
    /// Bytes of JSONL trace covered.
    pub trace_bytes: u64,
    /// Bytes of the delivery log covered (including its header).
    pub deliv_bytes: u64,
    /// Delivery records covered.
    pub deliv_records: u64,
    /// Running FNV-1a-64 over the covered delivery record bytes.
    pub deliv_fnv: u64,
}

impl StreamCursor {
    /// The cursor of a freshly-created sink: empty trace, header-only
    /// delivery log, checksum at the FNV offset basis.
    pub fn start() -> Self {
        Self {
            trace_bytes: 0,
            deliv_bytes: DELIV_HEADER,
            deliv_records: 0,
            deliv_fnv: FNV_OFFSET,
        }
    }
}

impl Snap for StreamCursor {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.trace_bytes);
        w.u64(self.deliv_bytes);
        w.u64(self.deliv_records);
        w.u64(self.deliv_fnv);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            trace_bytes: r.u64()?,
            deliv_bytes: r.u64()?,
            deliv_records: r.u64()?,
            deliv_fnv: r.u64()?,
        })
    }
}

/// Which files a [`StreamSink`] writes. Either side is optional: a
/// metrics-only marathon can stream just the trace, a replay diff just the
/// deliveries.
#[derive(Debug, Clone, Default)]
pub struct StreamPaths {
    /// JSONL trace + metric-window output path.
    pub trace: Option<PathBuf>,
    /// Binary packet-delivery log path.
    pub deliveries: Option<PathBuf>,
}

/// Window-boundary flusher bounding in-memory telemetry to one window.
pub struct StreamSink {
    trace: Option<BufWriter<File>>,
    deliv: Option<BufWriter<File>>,
    cursor: StreamCursor,
    line: String,
}

impl StreamSink {
    /// Creates the output files fresh (truncating any stale leftovers) and
    /// writes the delivery-log header.
    pub fn create(paths: &StreamPaths) -> io::Result<Self> {
        let trace = match &paths.trace {
            Some(p) => Some(BufWriter::new(File::create(p)?)),
            None => None,
        };
        let deliv = match &paths.deliveries {
            Some(p) => {
                let mut f = BufWriter::new(File::create(p)?);
                f.write_all(&DELIV_MAGIC)?;
                f.write_all(&DELIV_VERSION.to_le_bytes())?;
                Some(f)
            }
            None => None,
        };
        Ok(Self {
            trace,
            deliv,
            cursor: StreamCursor::start(),
            line: String::new(),
        })
    }

    /// Reopens existing output files at a checkpointed cursor, truncating
    /// anything a killed run wrote past it. The resumed run then
    /// regenerates those bytes exactly.
    pub fn resume(paths: &StreamPaths, cursor: StreamCursor) -> io::Result<Self> {
        fn reopen(path: &Path, keep: u64) -> io::Result<BufWriter<File>> {
            let f = OpenOptions::new().read(true).write(true).open(path)?;
            if f.metadata()?.len() < keep {
                return Err(io::Error::other(format!(
                    "{} is shorter than its checkpoint cursor",
                    path.display()
                )));
            }
            f.set_len(keep)?;
            let mut f = BufWriter::new(f);
            f.seek(SeekFrom::Start(keep))?;
            Ok(f)
        }
        let trace = match &paths.trace {
            Some(p) => Some(reopen(p, cursor.trace_bytes)?),
            None => None,
        };
        let deliv = match &paths.deliveries {
            Some(p) => Some(reopen(p, cursor.deliv_bytes)?),
            None => None,
        };
        Ok(Self {
            trace,
            deliv,
            cursor,
            line: String::new(),
        })
    }

    /// The current resume point. Valid to embed in a checkpoint only after
    /// [`Self::flush_window`] returned (the data behind it is on disk).
    pub fn cursor(&self) -> StreamCursor {
        self.cursor
    }

    /// Streams one window's drain: trace events as JSONL, metric windows
    /// as JSONL rows (named by `counter_names`/`gauge_names`, the
    /// [`crate::system::System::metric_counter_names`] order), deliveries
    /// as binary records. Flushes to the OS so the advanced cursor is
    /// durable before any checkpoint embeds it.
    pub fn flush_window(
        &mut self,
        flush: &WindowFlush,
        counter_names: &[String],
        gauge_names: &[String],
    ) -> io::Result<()> {
        if let Some(out) = &mut self.trace {
            self.line.clear();
            for rec in &flush.records {
                self.line.push_str(&jsonl_line(rec));
                self.line.push('\n');
            }
            for win in &flush.windows {
                let _ = write!(self.line, "{{\"window\":{}", win.window);
                for (name, v) in counter_names.iter().zip(&win.counters) {
                    let _ = write!(self.line, ",\"{name}\":{v}");
                }
                for (name, v) in gauge_names.iter().zip(&win.gauges) {
                    let _ = write!(self.line, ",\"{name}\":{v}");
                }
                self.line.push_str("}\n");
            }
            out.write_all(self.line.as_bytes())?;
            out.flush()?;
            self.cursor.trace_bytes += self.line.len() as u64;
        }
        if let Some(out) = &mut self.deliv {
            let mut buf = [0u8; DELIV_RECORD as usize];
            for p in &flush.packets {
                encode_delivery(p, &mut buf);
                out.write_all(&buf)?;
                self.cursor.deliv_fnv = fnv1a_update(self.cursor.deliv_fnv, &buf);
                self.cursor.deliv_bytes += DELIV_RECORD;
                self.cursor.deliv_records += 1;
            }
            out.flush()?;
        }
        Ok(())
    }

    /// Writes the delivery-log trailer (record count + checksum) and
    /// flushes both files. Returns the final cursor (pre-trailer — the
    /// trailer itself is never checkpoint-covered).
    pub fn finalize(mut self) -> io::Result<StreamCursor> {
        if let Some(out) = &mut self.trace {
            out.flush()?;
        }
        if let Some(out) = &mut self.deliv {
            out.write_all(&DELIV_TRAILER)?;
            out.write_all(&self.cursor.deliv_records.to_le_bytes())?;
            out.write_all(&self.cursor.deliv_fnv.to_le_bytes())?;
            out.flush()?;
        }
        Ok(self.cursor)
    }
}

/// Drives a run with streaming export and optional checkpointing: at
/// every `R_w` boundary the hook drains one window into `sink`, then (if
/// due) snapshots the quiescent system with the post-flush cursor. Covers
/// both engines — `point_threads` of 1 is the sequential loop, more is
/// the board-sharded engine — with byte-identical output. After the run,
/// the post-last-boundary tail is flushed; the caller finalizes the sink.
///
/// A sink or checkpoint I/O error stops all further streaming (the run
/// itself completes — simulation state never depends on export I/O) and
/// is returned at the end.
pub fn run_streaming(
    sys: &mut crate::system::System,
    point_threads: std::num::NonZeroUsize,
    sink: &mut StreamSink,
    mut ckpt: Option<&mut crate::checkpoint::Checkpointer>,
) -> io::Result<desim::Cycle> {
    let window = sys.config().schedule.window;
    let counters = sys.metric_counter_names();
    let gauges = sys.metric_gauge_names();
    let mut failed: Option<io::Error> = None;
    let end = sys.run_with(point_threads, &mut |s| {
        let now = s.now();
        if failed.is_some() || now == 0 || !now.is_multiple_of(window) {
            return;
        }
        let flush = s.drain_window();
        if let Err(e) = sink.flush_window(&flush, &counters, &gauges) {
            failed = Some(e);
            return;
        }
        if let Some(c) = ckpt.as_deref_mut() {
            if let Err(e) = c.maybe_checkpoint(s, sink.cursor()) {
                failed = Some(e);
            }
        }
    });
    if let Some(e) = failed {
        return Err(e);
    }
    let tail = sys.drain_window();
    sink.flush_window(&tail, &counters, &gauges)?;
    Ok(end)
}

fn encode_delivery(p: &PacketDelivery, buf: &mut [u8; DELIV_RECORD as usize]) {
    buf[0..8].copy_from_slice(&p.id.to_le_bytes());
    buf[8..12].copy_from_slice(&p.dst.to_le_bytes());
    buf[12..20].copy_from_slice(&p.injected_at.to_le_bytes());
    buf[20..28].copy_from_slice(&p.delivered_at.to_le_bytes());
    buf[28] = u8::from(p.labelled);
}

/// Reads back a finalized delivery log, verifying magic, version, record
/// framing, trailer count and checksum. The verification half of the
/// streaming contract — `marathon` diffs two of these byte-for-byte.
pub fn read_deliveries(path: &Path) -> Result<Vec<PacketDelivery>, SnapError> {
    let bytes = std::fs::read(path).map_err(|e| SnapError::Io(e.to_string()))?;
    let min = DELIV_HEADER + DELIV_TRAILER_LEN;
    if (bytes.len() as u64) < min {
        return Err(SnapError::Format(
            "delivery log shorter than header + trailer".into(),
        ));
    }
    if bytes[0..4] != DELIV_MAGIC {
        return Err(SnapError::Format("delivery log magic mismatch".into()));
    }
    let ver = u16::from_le_bytes([bytes[4], bytes[5]]);
    if ver != DELIV_VERSION {
        return Err(SnapError::Version(ver));
    }
    let body = &bytes[DELIV_HEADER as usize..bytes.len() - DELIV_TRAILER_LEN as usize];
    if !(body.len() as u64).is_multiple_of(DELIV_RECORD) {
        return Err(SnapError::Format(
            "delivery log body is not whole records".into(),
        ));
    }
    let trailer = &bytes[bytes.len() - DELIV_TRAILER_LEN as usize..];
    if trailer[0..4] != DELIV_TRAILER {
        return Err(SnapError::Format("delivery log trailer missing".into()));
    }
    let mut count = [0u8; 8];
    count.copy_from_slice(&trailer[4..12]);
    let count = u64::from_le_bytes(count);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&trailer[12..20]);
    let stored = u64::from_le_bytes(stored);
    if count != body.len() as u64 / DELIV_RECORD {
        return Err(SnapError::Format(
            "delivery log trailer count disagrees with body length".into(),
        ));
    }
    let computed = fnv1a_update(FNV_OFFSET, body);
    if computed != stored {
        return Err(SnapError::Checksum { stored, computed });
    }
    let mut out = Vec::with_capacity(count as usize);
    for rec in body.chunks_exact(DELIV_RECORD as usize) {
        let mut id = [0u8; 8];
        id.copy_from_slice(&rec[0..8]);
        let mut dst = [0u8; 4];
        dst.copy_from_slice(&rec[8..12]);
        let mut injected = [0u8; 8];
        injected.copy_from_slice(&rec[12..20]);
        let mut delivered = [0u8; 8];
        delivered.copy_from_slice(&rec[20..28]);
        out.push(PacketDelivery {
            id: u64::from_le_bytes(id),
            dst: u32::from_le_bytes(dst),
            injected_at: u64::from_le_bytes(injected),
            delivered_at: u64::from_le_bytes(delivered),
            labelled: rec[28] != 0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("erapid-stream-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn deliveries(n: u64, base: u64) -> Vec<PacketDelivery> {
        (0..n)
            .map(|i| PacketDelivery {
                id: base + i,
                dst: (i % 64) as u32,
                injected_at: 10 * i,
                delivered_at: 10 * i + 37,
                labelled: i % 3 == 0,
            })
            .collect()
    }

    #[test]
    fn delivery_log_round_trips() {
        let dir = tmpdir("roundtrip");
        let paths = StreamPaths {
            trace: None,
            deliveries: Some(dir.join("d.erpd")),
        };
        let mut sink = StreamSink::create(&paths).unwrap();
        let flush = WindowFlush {
            records: Vec::new(),
            windows: Vec::new(),
            packets: deliveries(5, 0),
        };
        sink.flush_window(&flush, &[], &[]).unwrap();
        let cursor = sink.finalize().unwrap();
        assert_eq!(cursor.deliv_records, 5);
        let back = read_deliveries(paths.deliveries.as_deref().unwrap()).unwrap();
        assert_eq!(back, flush.packets);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn resume_truncates_uncheckpointed_tail() {
        let dir = tmpdir("resume");
        let paths = StreamPaths {
            trace: Some(dir.join("t.jsonl")),
            deliveries: Some(dir.join("d.erpd")),
        };
        // Window 1 flushed and checkpointed; window 2 flushed but "lost"
        // to a crash (its cursor never made a checkpoint).
        let mut sink = StreamSink::create(&paths).unwrap();
        let w1 = WindowFlush {
            records: Vec::new(),
            windows: Vec::new(),
            packets: deliveries(3, 0),
        };
        sink.flush_window(&w1, &[], &[]).unwrap();
        let ckpt = sink.cursor();
        let w2_lost = WindowFlush {
            records: Vec::new(),
            windows: Vec::new(),
            packets: deliveries(4, 100),
        };
        sink.flush_window(&w2_lost, &[], &[]).unwrap();
        drop(sink); // killed: no finalize, trailing bytes past the cursor
                    // Resume from the checkpoint and regenerate window 2 differently
                    // sized — proving the stale tail really was discarded.
        let mut sink = StreamSink::resume(&paths, ckpt).unwrap();
        assert_eq!(sink.cursor(), ckpt);
        let w2 = WindowFlush {
            records: Vec::new(),
            windows: Vec::new(),
            packets: deliveries(2, 200),
        };
        sink.flush_window(&w2, &[], &[]).unwrap();
        sink.finalize().unwrap();
        let back = read_deliveries(paths.deliveries.as_deref().unwrap()).unwrap();
        let mut expect = w1.packets.clone();
        expect.extend_from_slice(&w2.packets);
        assert_eq!(back, expect);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_delivery_log_is_detected() {
        let dir = tmpdir("corrupt");
        let paths = StreamPaths {
            trace: None,
            deliveries: Some(dir.join("d.erpd")),
        };
        let mut sink = StreamSink::create(&paths).unwrap();
        let flush = WindowFlush {
            records: Vec::new(),
            windows: Vec::new(),
            packets: deliveries(8, 0),
        };
        sink.flush_window(&flush, &[], &[]).unwrap();
        sink.finalize().unwrap();
        let p = paths.deliveries.as_deref().unwrap();
        let mut bytes = std::fs::read(p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(p, &bytes).unwrap();
        assert!(matches!(
            read_deliveries(p),
            Err(SnapError::Checksum { .. })
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn cursor_snap_round_trip() {
        let c = StreamCursor {
            trace_bytes: 123,
            deliv_bytes: 456,
            deliv_records: 7,
            deliv_fnv: 0xdead_beef_cafe_f00d,
        };
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(StreamCursor::load(&mut r).unwrap(), c);
        r.expect_end().unwrap();
    }
}
