//! The Scalable Remote Optical Super-Highway (SRS).
//!
//! Owns the wavelength ownership map (which source board may light
//! wavelength `w` toward destination board `d`), the bank of optical
//! channels, in-flight packet arrivals, and the per-channel DPM/DBR state
//! machines (pending retunes and pending grants). The WDM invariant — at
//! most one lit laser per (destination, wavelength) — is enforced here: a
//! granted channel only lights after the donor's laser is dark.

use crate::txqueue::ReadyPacket;
use desim::queue::{BinaryHeapQueue, EventQueue};
use desim::Cycle;
use erapid_telemetry::{NullSink, TraceEvent, TraceSink};
use photonics::bitrate::{RateLadder, RateLevel};
use photonics::channel::{ChannelState, OpticalChannel};
use photonics::power::LinkPowerModel;
use photonics::rwa::StaticRwa;
use photonics::serdes::Serdes;
use photonics::wavelength::{BoardId, Wavelength};
use reconfig::msg::WavelengthGrant;

/// A packet arriving at a destination board's receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Destination board.
    pub dst_board: u16,
    /// Wavelength it arrived on.
    pub wavelength: u16,
    /// Source board.
    pub src_board: u16,
    /// The packet.
    pub packet: ReadyPacket,
}

/// One in-flight ownership transfer.
#[derive(Debug, Clone, Copy)]
struct PendingGrant {
    grant: WavelengthGrant,
    donor_dark: bool,
}

impl desim::snap::Snap for Arrival {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u16(self.dst_board);
        w.u16(self.wavelength);
        w.u16(self.src_board);
        self.packet.save(w);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            dst_board: r.u16()?,
            wavelength: r.u16()?,
            src_board: r.u16()?,
            packet: ReadyPacket::load(r)?,
        })
    }
}

impl desim::snap::Snap for PendingGrant {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        self.grant.save(w);
        w.bool(self.donor_dark);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(Self {
            grant: WavelengthGrant::load(r)?,
            donor_dark: r.bool()?,
        })
    }
}

/// The optical stage.
pub struct Srs {
    boards: u16,
    wavelengths: u16,
    /// `owner[d][w]` — board allowed to light `w` toward `d`.
    owner: Vec<Vec<Option<u16>>>,
    /// Sorted wavelengths owned per `(s·B + d)` flow — the mirror of
    /// `owner` that lets `try_transmit` scan only lit wavelengths.
    /// Maintained exclusively through [`Srs::set_owner`]; ascending order
    /// reproduces the legacy full `0..W` scan exactly.
    owned: Vec<Vec<u16>>,
    /// Dense channel bank indexed by `(s·B + d)·W + w`.
    channels: Vec<OpticalChannel>,
    /// Window length (`R_w`) for the link-utilization spans.
    window: Cycle,
    /// Per-channel `Link_util` of the last completed window (what the LS
    /// protocol reads). Busy time is integrated from serialization spans
    /// instead of per-cycle sampling; the division at the roll reproduces
    /// the eager `Σ 1.0 / window` bits exactly (integer-valued f64 sum).
    link_prev: Vec<f64>,
    /// Busy cycles accumulated in the running window (closed spans).
    win_busy: Vec<Cycle>,
    /// Open serialization span per channel: `busy_open` guards
    /// `busy_start` (first unaccounted busy cycle) and `busy_cap`
    /// (serialization end, exclusive).
    busy_open: Vec<bool>,
    busy_start: Vec<Cycle>,
    busy_cap: Vec<Cycle>,
    /// Serialization-end wake queue: channel indices keyed by their
    /// `Sending` `until`, so `tick` settles only channels whose packet
    /// actually ended instead of scanning the whole bank.
    wake: BinaryHeapQueue<usize>,
    /// Sorted channel indices with a pending retune/relock — the only
    /// slots `tick` visits. Ascending index order is the legacy full-scan
    /// order, so trace-event order is preserved. Stale entries (slot
    /// cleared by a fault/grant) are dropped on the next sweep.
    retune_queue: Vec<usize>,
    relock_queue: Vec<usize>,
    /// Total laser power changes only on state/level/ownership edges;
    /// between edges `record_cycle` returns this cached sum (recomputed
    /// in the legacy `(d asc, w asc)` order, so the bits match).
    power_dirty: bool,
    power_cache: f64,
    arrivals: BinaryHeapQueue<Arrival>,
    pending_grants: Vec<PendingGrant>,
    /// Per-channel pending DPM retune: `(target level, penalty)`.
    pending_retune: Vec<Option<(RateLevel, Cycle)>>,
    power_model: LinkPowerModel,
    /// Receiver lock-in penalty charged when a granted channel lights.
    lock_penalty: Cycle,
    /// Failed (destination, wavelength) pairs: the demux/receiver is dead,
    /// nobody can use the wavelength toward that board any more.
    failed: Vec<(u16, u16)>,
    /// Failed (source, destination) transmitter groups: `s`'s lasers
    /// toward `d` cannot light. Ownership is retained so repair restores
    /// service.
    failed_tx: Vec<(u16, u16)>,
    /// Per-channel stuck-LC flags: DPM retunes are silently dropped.
    stuck_lc: Vec<bool>,
    /// Per-channel pending CDR relock penalty, applied once the channel is
    /// between packets.
    pending_relock: Vec<Option<Cycle>>,
    /// The static RWA (used to restore ownership on receiver repair).
    rwa: StaticRwa,
    /// Lifetime counters.
    grants_applied: u64,
    retunes_applied: u64,
    relocks_applied: u64,
}

impl Srs {
    /// Builds the SRS with static RWA ownership, all static channels on at
    /// the ladder's highest level.
    pub fn new(
        boards: u16,
        ladder: RateLadder,
        serdes: Serdes,
        fiber_delay: Cycle,
        power_model: LinkPowerModel,
        window: Cycle,
        lock_penalty: Cycle,
    ) -> Self {
        let w_count = boards;
        let rwa = StaticRwa::new(boards);
        let owner = vec![vec![None; w_count as usize]; boards as usize];
        let n = (boards as usize).pow(2) * w_count as usize;
        let mut channels = Vec::with_capacity(n);
        for s in 0..boards {
            for d in 0..boards {
                for w in 0..w_count {
                    channels.push(OpticalChannel::new(
                        BoardId(s),
                        BoardId(d),
                        Wavelength(w),
                        ladder.clone(),
                        serdes,
                        fiber_delay,
                    ));
                }
            }
        }
        let mut srs = Self {
            boards,
            wavelengths: w_count,
            owner,
            owned: vec![Vec::new(); (boards as usize).pow(2)],
            channels,
            window,
            link_prev: vec![0.0; n],
            win_busy: vec![0; n],
            busy_open: vec![false; n],
            busy_start: vec![0; n],
            busy_cap: vec![0; n],
            wake: BinaryHeapQueue::with_capacity(boards as usize * w_count as usize),
            retune_queue: Vec::new(),
            relock_queue: Vec::new(),
            power_dirty: true,
            power_cache: 0.0,
            // At most one packet is in flight per (source, wavelength), so
            // this pre-sizing makes arrival pushes allocation-free.
            arrivals: BinaryHeapQueue::with_capacity(boards as usize * w_count as usize),
            pending_grants: Vec::new(),
            pending_retune: vec![None; n],
            power_model,
            lock_penalty,
            failed: Vec::new(),
            failed_tx: Vec::new(),
            stuck_lc: vec![false; n],
            pending_relock: vec![None; n],
            rwa,
            grants_applied: 0,
            retunes_applied: 0,
            relocks_applied: 0,
        };
        // Static RWA: one lit laser per (destination, remote wavelength).
        for d in 0..boards {
            for w in 1..w_count {
                let s = srs.rwa.static_owner(BoardId(d), Wavelength(w));
                srs.set_owner(0, d, w, Some(s.0));
                srs.channel_mut(s.0, d, w).power_on();
            }
        }
        srs
    }

    fn idx(&self, s: u16, d: u16, w: u16) -> usize {
        ((s as usize * self.boards as usize) + d as usize) * self.wavelengths as usize + w as usize
    }

    /// Inverse of [`Srs::idx`]: `(source, destination, wavelength)` of a
    /// dense channel index (used to stamp trace events).
    fn coords(&self, i: usize) -> (u16, u16, u16) {
        let w = i % self.wavelengths as usize;
        let sd = i / self.wavelengths as usize;
        let d = sd % self.boards as usize;
        let s = sd / self.boards as usize;
        (s as u16, d as u16, w as u16)
    }

    fn flow(&self, s: u16, d: u16) -> usize {
        s as usize * self.boards as usize + d as usize
    }

    /// Closes the open busy span on channel `i` at `at` (clamped to the
    /// serialization end), folding its cycles into the running window.
    /// A span closed at its own start cycle contributes nothing — exactly
    /// the eager sampler, which never saw the channel busy.
    fn close_busy(&mut self, i: usize, at: Cycle) {
        if !self.busy_open[i] {
            return;
        }
        let end = self.busy_cap[i].min(at);
        if end > self.busy_start[i] {
            self.win_busy[i] += end - self.busy_start[i];
        }
        self.busy_open[i] = false;
    }

    /// The single mutation point for the ownership map: updates `owner`,
    /// the per-flow sorted `owned` mirror, closes the de-owned channel's
    /// busy span at `now` (the eager per-cycle sampler stopped counting a
    /// channel the moment its owner changed), and invalidates the power
    /// cache.
    fn set_owner(&mut self, now: Cycle, d: u16, w: u16, new: Option<u16>) {
        let old = self.owner[d as usize][w as usize];
        if old == new {
            return;
        }
        if let Some(s) = old {
            let f = self.flow(s, d);
            if let Ok(p) = self.owned[f].binary_search(&w) {
                self.owned[f].remove(p);
            }
            let i = self.idx(s, d, w);
            self.close_busy(i, now);
        }
        if let Some(s) = new {
            let f = self.flow(s, d);
            if let Err(p) = self.owned[f].binary_search(&w) {
                self.owned[f].insert(p, w);
            }
        }
        self.owner[d as usize][w as usize] = new;
        self.power_dirty = true;
    }

    /// Inserts `i` into a sorted pending-work queue (no duplicates).
    fn queue_push(queue: &mut Vec<usize>, i: usize) {
        if let Err(p) = queue.binary_search(&i) {
            queue.insert(p, i);
        }
    }

    /// The channel for `(source, destination, wavelength)`.
    pub fn channel(&self, s: u16, d: u16, w: u16) -> &OpticalChannel {
        &self.channels[self.idx(s, d, w)]
    }

    fn channel_mut(&mut self, s: u16, d: u16, w: u16) -> &mut OpticalChannel {
        let i = self.idx(s, d, w);
        &mut self.channels[i]
    }

    /// Current owner of wavelength `w` toward destination `d`.
    pub fn owner(&self, d: u16, w: u16) -> Option<u16> {
        self.owner[d as usize][w as usize]
    }

    /// Wavelengths board `s` currently owns toward destination `d`
    /// (ascending — the maintained mirror of the ownership map).
    pub fn owned_wavelengths(&self, s: u16, d: u16) -> Vec<u16> {
        self.owned[self.flow(s, d)].clone()
    }

    /// Lifetime `(grants, retunes)` applied.
    pub fn reconfig_counts(&self) -> (u64, u64) {
        (self.grants_applied, self.retunes_applied)
    }

    /// Number of lasers currently on.
    pub fn lasers_on(&self) -> usize {
        self.channels.iter().filter(|c| c.is_on()).count()
    }

    /// True when the receiver for wavelength `w` at board `d` has failed.
    pub fn is_failed(&self, d: u16, w: u16) -> bool {
        self.failed.contains(&(d, w))
    }

    /// Fault injection: the receiver/demux for wavelength `w` at board `d`
    /// dies. The owning laser (if any) goes dark as soon as it is idle and
    /// the wavelength is withdrawn from the ownership map — DBR can no
    /// longer grant it, and the orphaned flow must win a different
    /// wavelength through its queue demand.
    ///
    /// Any packet already serializing or on the fiber still arrives (the
    /// photons left before the failure); packets that would *start* after
    /// `now` cannot.
    pub fn fail_receiver(&mut self, now: Cycle, d: u16, w: u16) {
        self.fail_receiver_traced(now, d, w, &mut NullSink);
    }

    /// As [`Srs::fail_receiver`], emitting a [`TraceEvent::Revoke`] for the
    /// withdrawn wavelength when one was in service.
    pub fn fail_receiver_traced(&mut self, now: Cycle, d: u16, w: u16, sink: &mut dyn TraceSink) {
        if self.is_failed(d, w) {
            return;
        }
        self.failed.push((d, w));
        if let Some(owner) = self.owner[d as usize][w as usize] {
            if sink.enabled() {
                sink.emit(
                    now,
                    TraceEvent::Revoke {
                        dest: d,
                        wavelength: w,
                        owner,
                    },
                );
            }
        }
        if let Some(s) = self.owner[d as usize][w as usize] {
            self.set_owner(now, d, w, None);
            let i = self.idx(s, d, w);
            self.pending_retune[i] = None;
            self.power_dirty = true;
            let c = &mut self.channels[i];
            c.settle(now);
            if c.is_on() && c.can_send(now) {
                c.power_off(now);
            } else if c.is_on() {
                // Mid-packet: schedule the shutdown through the grant
                // machinery's donor path by marking a self-grant-free
                // pending power-off.
                self.pending_grants.push(PendingGrant {
                    grant: WavelengthGrant {
                        destination: BoardId(d),
                        wavelength: Wavelength(w),
                        from: BoardId(s),
                        // A failed wavelength has no recipient: `to` is the
                        // donor itself, and the relight is suppressed by
                        // the failure check in `tick`.
                        to: BoardId(s),
                    },
                    donor_dark: false,
                });
            }
        }
        // Any in-flight ownership transfer on the dead wavelength becomes a
        // donor-only shutdown: the donor still darkens, but the recipient's
        // relight is suppressed (tick skips failed pairs).
        for pg in &mut self.pending_grants {
            if pg.grant.destination.0 == d && pg.grant.wavelength.0 == w {
                pg.grant.to = pg.grant.from;
            }
        }
    }

    /// Fault repair: the receiver/demux for wavelength `w` at board `d`
    /// recovers. Ownership reverts to the static RWA owner and its laser
    /// re-lights through a fresh receiver lock-in window, after which DBR
    /// may grant the wavelength away again.
    pub fn repair_receiver(&mut self, now: Cycle, d: u16, w: u16) {
        let Some(pos) = self.failed.iter().position(|&p| p == (d, w)) else {
            return; // never failed (or already repaired): nothing to do
        };
        self.failed.swap_remove(pos);
        let s = self.rwa.static_owner(BoardId(d), Wavelength(w)).0;
        self.set_owner(now, d, w, Some(s));
        // A shutdown still draining from the failure becomes a re-light:
        // once the old laser darkens, the static owner comes back up (with
        // its lock-in penalty) instead of staying dark.
        let mut handover = false;
        for pg in &mut self.pending_grants {
            if pg.grant.destination.0 == d && pg.grant.wavelength.0 == w {
                pg.grant.to = BoardId(s);
                handover = true;
            }
        }
        if !handover && !self.channel(s, d, w).is_on() && !self.is_tx_failed(s, d) {
            let lock = self.lock_penalty;
            self.channel_mut(s, d, w).power_on_dark(now, lock);
        }
    }

    /// True when board `s`'s transmitters toward `d` have failed.
    pub fn is_tx_failed(&self, s: u16, d: u16) -> bool {
        self.failed_tx.contains(&(s, d))
    }

    /// Fault injection: board `s`'s transmitters toward `d` die. Owned
    /// lasers darken once idle; in-flight packets still land. Ownership is
    /// retained so [`Srs::repair_transmitter`] restores service.
    pub fn fail_transmitter(&mut self, now: Cycle, s: u16, d: u16) {
        self.fail_transmitter_traced(now, s, d, &mut NullSink);
    }

    /// As [`Srs::fail_transmitter`], emitting a [`TraceEvent::Revoke`] per
    /// owned wavelength taken out of service.
    pub fn fail_transmitter_traced(
        &mut self,
        now: Cycle,
        s: u16,
        d: u16,
        sink: &mut dyn TraceSink,
    ) {
        if self.is_tx_failed(s, d) {
            return;
        }
        self.failed_tx.push((s, d));
        for w in self.owned_wavelengths(s, d) {
            if sink.enabled() {
                sink.emit(
                    now,
                    TraceEvent::Revoke {
                        dest: d,
                        wavelength: w,
                        owner: s,
                    },
                );
            }
            let i = self.idx(s, d, w);
            self.pending_retune[i] = None;
            self.pending_relock[i] = None;
            self.power_dirty = true;
            let c = &mut self.channels[i];
            c.settle(now);
            if c.is_on() && c.can_send(now) {
                c.power_off(now);
            } else if c.is_on() {
                // Mid-packet: darken through the grant machinery once the
                // wavelength clears (relight suppressed by `is_tx_failed`).
                self.pending_grants.push(PendingGrant {
                    grant: WavelengthGrant {
                        destination: BoardId(d),
                        wavelength: Wavelength(w),
                        from: BoardId(s),
                        to: BoardId(s),
                    },
                    donor_dark: false,
                });
            }
        }
    }

    /// Fault repair: board `s`'s transmitters toward `d` recover; every
    /// owned wavelength whose receiver is alive re-lights through a lock-in
    /// window.
    pub fn repair_transmitter(&mut self, now: Cycle, s: u16, d: u16) {
        let Some(pos) = self.failed_tx.iter().position(|&p| p == (s, d)) else {
            return;
        };
        self.failed_tx.swap_remove(pos);
        // Cancel shutdowns still pending from the failure: those channels
        // are lit and may simply keep running.
        self.pending_grants.retain(|pg| {
            !(pg.grant.destination.0 == d && pg.grant.from == pg.grant.to && pg.grant.from.0 == s)
        });
        let lock = self.lock_penalty;
        for w in self.owned_wavelengths(s, d) {
            if !self.is_failed(d, w) && !self.channel(s, d, w).is_on() {
                self.channel_mut(s, d, w).power_on_dark(now, lock);
                self.power_dirty = true;
            }
        }
    }

    /// Fault injection: the LC of channel `(s → d, w)` wedges at its
    /// current power level. Pending and future DPM retunes are dropped
    /// until [`Srs::unstick_lc`].
    pub fn stick_lc(&mut self, s: u16, d: u16, w: u16) {
        let i = self.idx(s, d, w);
        self.stuck_lc[i] = true;
        self.pending_retune[i] = None;
    }

    /// Fault repair: the stuck LC recovers; the next DPM decision can
    /// retune the channel again.
    pub fn unstick_lc(&mut self, s: u16, d: u16, w: u16) {
        let i = self.idx(s, d, w);
        self.stuck_lc[i] = false;
    }

    /// True when the LC of channel `(s → d, w)` is stuck.
    pub fn is_lc_stuck(&self, s: u16, d: u16, w: u16) -> bool {
        self.stuck_lc[self.idx(s, d, w)]
    }

    /// Fault injection: the receiver CDR of channel `(s → d, w)` loses
    /// lock. The channel goes dark for `penalty` cycles as soon as it is
    /// between packets (in-flight photons still land). Inert on a dark
    /// channel.
    pub fn schedule_relock(&mut self, s: u16, d: u16, w: u16, penalty: Cycle) {
        let i = self.idx(s, d, w);
        if self.channels[i].is_on() {
            self.pending_relock[i] = Some(penalty);
            Self::queue_push(&mut self.relock_queue, i);
        }
    }

    /// CDR relock events actually applied (storm observability).
    pub fn relocks_applied(&self) -> u64 {
        self.relocks_applied
    }

    /// Tries to transmit `packet` from board `s` to board `d` on any free
    /// owned channel. On success returns the wavelength used; the arrival
    /// is scheduled internally.
    pub fn try_transmit(&mut self, now: Cycle, s: u16, d: u16, packet: ReadyPacket) -> Option<u16> {
        if self.is_tx_failed(s, d) {
            return None;
        }
        // Scan only owned wavelengths; ascending order matches the legacy
        // full `0..W` scan over the ownership map.
        let flow = self.flow(s, d);
        let mut chosen = None;
        for k in 0..self.owned[flow].len() {
            let w = self.owned[flow][k];
            let i = self.idx(s, d, w);
            // A channel with a pending retune must not start a packet:
            // the retune would never get a free window under load.
            if self.channels[i].can_send(now) && self.pending_retune[i].is_none() {
                chosen = Some(w);
                break;
            }
        }
        let w = chosen?;
        let i = self.idx(s, d, w);
        // Back-to-back reuse exactly at the previous packet's end: its
        // wake entry has not fired yet, so close its span here first.
        if self.busy_open[i] {
            debug_assert!(self.busy_cap[i] <= now, "span open past serialization");
            let cap = self.busy_cap[i];
            self.close_busy(i, cap);
        }
        let arrive_at = self.channels[i].begin_packet(now, packet.flits as u32);
        let Some(until) = self.channels[i].sending_until() else {
            unreachable!("begin_packet leaves the channel Sending")
        };
        self.wake.insert(until, i);
        self.busy_open[i] = true;
        self.busy_start[i] = now;
        self.busy_cap[i] = until;
        self.power_dirty = true;
        self.arrivals.insert(
            arrive_at,
            Arrival {
                dst_board: d,
                wavelength: w,
                src_board: s,
                packet,
            },
        );
        Some(w)
    }

    /// Captures the raw base pointers the sharded engine slices per-lane
    /// views from. The channel bank and its busy-span companions are dense
    /// `(s·B + d)·W + w` arrays, so source board `s` owns the contiguous
    /// block `[s·B·W, (s+1)·B·W)` of every one of them — a worker holding
    /// lane `s` never aliases lane `s'`. All the backing vectors are
    /// fixed-capacity after construction within one cycle's compute phase
    /// (`owned`'s *inner* vectors and `failed_tx` mutate only in the
    /// sequential phases), so pointers captured at the top of a cycle stay
    /// valid through it.
    ///
    /// Safety contract (upheld by `system::step_sharded`): between
    /// capturing parts and the commit barrier, nothing touches the SRS
    /// through `&mut self`, and each lane index is materialized by at most
    /// one worker.
    pub(crate) fn shard_parts(&mut self) -> SrsShardParts {
        SrsShardParts {
            channels: self.channels.as_mut_ptr(),
            win_busy: self.win_busy.as_mut_ptr(),
            busy_open: self.busy_open.as_mut_ptr(),
            busy_start: self.busy_start.as_mut_ptr(),
            busy_cap: self.busy_cap.as_mut_ptr(),
            pending_retune: self.pending_retune.as_ptr(),
            owned: self.owned.as_ptr(),
            failed_tx: self.failed_tx.as_ptr(),
            failed_tx_len: self.failed_tx.len(),
            boards: self.boards,
            wavelengths: self.wavelengths,
        }
    }

    /// Applies one board's buffered publish-remote effects in arrival
    /// order: wake-queue entries and fiber arrivals re-insert in exactly
    /// the sequence the sequential `transmit` would have produced (each
    /// [`BinaryHeapQueue`] breaks time ties by insertion sequence, so an
    /// identical insertion order is an identical pop order), and the power
    /// cache is invalidated iff the lane lit a laser.
    pub(crate) fn commit_lane_effects(&mut self, fx: &LaneEffects) {
        for &(until, i) in &fx.wakes {
            self.wake.insert(until, i);
        }
        for &(arrive_at, arr) in &fx.arrivals {
            self.arrivals.insert(arrive_at, arr);
        }
        if fx.power_dirty {
            self.power_dirty = true;
        }
    }

    /// Packets still in flight in the optical domain (serializing or on
    /// the fiber).
    pub fn arrivals_pending(&self) -> usize {
        self.arrivals.len()
    }

    /// Pops the next packet that has fully arrived by `now`, if any — the
    /// allocation-free form the cycle loop drains arrivals with.
    pub fn pop_arrival_due(&mut self, now: Cycle) -> Option<Arrival> {
        match self.arrivals.peek_time() {
            Some(t) if t <= now => self.arrivals.pop().map(|(_, a)| a),
            _ => None,
        }
    }

    /// All packets that have fully arrived by `now` (allocating wrapper
    /// over [`Srs::pop_arrival_due`], for tests and inspection).
    pub fn arrivals_due(&mut self, now: Cycle) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(arr) = self.pop_arrival_due(now) {
            out.push(arr);
        }
        out
    }

    /// Schedules a DPM retune for channel `(s,d,w)`; applied as soon as the
    /// wavelength is free.
    pub fn schedule_retune(&mut self, s: u16, d: u16, w: u16, level: RateLevel, penalty: Cycle) {
        let i = self.idx(s, d, w);
        if self.stuck_lc[i] {
            // A wedged LC silently drops the retune command.
            return;
        }
        if self.channels[i].level() != level {
            self.pending_retune[i] = Some((level, penalty));
            Self::queue_push(&mut self.retune_queue, i);
        }
    }

    /// Schedules DBR ownership transfers (already delayed by the protocol
    /// latency — the caller passes decisions at their apply time).
    pub fn schedule_grants(&mut self, grants: &[WavelengthGrant]) {
        self.schedule_grants_traced(0, grants, &mut NullSink);
    }

    /// As [`Srs::schedule_grants`], emitting a [`TraceEvent::Grant`] per
    /// accepted ownership flip, stamped `now` (grants dropped by the
    /// failure race produce no event).
    pub fn schedule_grants_traced(
        &mut self,
        now: Cycle,
        grants: &[WavelengthGrant],
        sink: &mut dyn TraceSink,
    ) {
        for &grant in grants {
            if self.is_failed(grant.destination.0, grant.wavelength.0)
                || self.is_tx_failed(grant.to.0, grant.destination.0)
            {
                // A decision raced with a failure (dead receiver, or a
                // recipient that cannot light a laser); drop it.
                continue;
            }
            // Ownership flips immediately (the Board Response told everyone);
            // the physical laser swap completes over the next cycles.
            let d = grant.destination.0;
            let w = grant.wavelength.0;
            debug_assert_eq!(self.owner[d as usize][w as usize], Some(grant.from.0));
            self.set_owner(now, d, w, Some(grant.to.0));
            if sink.enabled() {
                sink.emit(
                    now,
                    TraceEvent::Grant {
                        dest: d,
                        wavelength: w,
                        from: grant.from.0,
                        to: grant.to.0,
                    },
                );
            }
            // Cancel any pending retune on the donor channel.
            let di = self.idx(grant.from.0, d, w);
            self.pending_retune[di] = None;
            self.pending_grants.push(PendingGrant {
                grant,
                donor_dark: false,
            });
            self.grants_applied += 1;
        }
    }

    /// Per-cycle housekeeping: settle channels, complete retunes and
    /// ownership transfers.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_traced(now, &mut NullSink);
    }

    /// As [`Srs::tick`], emitting [`TraceEvent::RelockStart`]/
    /// [`TraceEvent::RelockEnd`] when a CDR relock engages (the end event
    /// is stamped `now + penalty` — the blackout span is deterministic) and
    /// [`TraceEvent::DpmApplied`] when a pending retune takes effect.
    pub fn tick_traced(&mut self, now: Cycle, sink: &mut dyn TraceSink) {
        // Settle channels whose serialization has ended (event-driven
        // replacement for the legacy settle-every-channel scan). Channels
        // left in a stale `Transitioning{until ≤ now}` state are
        // observationally identical to settled-`Idle` ones — `is_on`,
        // `can_send`, and the power accounting all agree — so only
        // `Sending` ends need wakes. A stale wake (the channel started a
        // new packet at exactly its old `until`) settles harmlessly.
        while self.wake.peek_time().is_some_and(|t| t <= now) {
            let Some((_, i)) = self.wake.pop() else {
                break;
            };
            self.channels[i].settle(now);
            if self.busy_open[i] && self.busy_cap[i] <= now {
                let cap = self.busy_cap[i];
                self.close_busy(i, cap);
            }
            self.power_dirty = true;
        }
        // Apply pending CDR relocks on idle channels: the laser stays up
        // but the link is unusable until the receiver re-locks — modeled
        // as a dark window of the relock penalty. Only queued slots are
        // visited; ascending index order is the legacy scan order.
        let mut k = 0;
        while k < self.relock_queue.len() {
            let i = self.relock_queue[k];
            let mut keep = false;
            if let Some(penalty) = self.pending_relock[i] {
                let c = &mut self.channels[i];
                if c.is_on() && c.can_send(now) {
                    c.power_off(now);
                    c.power_on_dark(now, penalty);
                    self.pending_relock[i] = None;
                    self.relocks_applied += 1;
                    self.power_dirty = true;
                    if sink.enabled() {
                        let (src, dest, wavelength) = self.coords(i);
                        sink.emit(
                            now,
                            TraceEvent::RelockStart {
                                src,
                                dest,
                                wavelength,
                                penalty,
                            },
                        );
                        sink.emit(
                            now + penalty,
                            TraceEvent::RelockEnd {
                                src,
                                dest,
                                wavelength,
                            },
                        );
                    }
                } else if !c.is_on() {
                    self.pending_relock[i] = None;
                } else {
                    keep = true;
                }
            }
            if keep {
                k += 1;
            } else {
                self.relock_queue.remove(k);
            }
        }
        // Apply pending retunes on idle channels (same sweep discipline).
        let mut k = 0;
        while k < self.retune_queue.len() {
            let i = self.retune_queue[k];
            let mut keep = false;
            if let Some((level, penalty)) = self.pending_retune[i] {
                let c = &mut self.channels[i];
                if c.is_on() && c.can_send(now) {
                    c.begin_transition(now, level, penalty);
                    self.pending_retune[i] = None;
                    self.retunes_applied += 1;
                    self.power_dirty = true;
                    if sink.enabled() {
                        let (src, dest, wavelength) = self.coords(i);
                        sink.emit(
                            now,
                            TraceEvent::DpmApplied {
                                src,
                                dest,
                                wavelength,
                                level: level.0,
                            },
                        );
                    }
                } else if !c.is_on() {
                    self.pending_retune[i] = None;
                } else {
                    keep = true;
                }
            }
            if keep {
                k += 1;
            } else {
                self.retune_queue.remove(k);
            }
        }
        // Progress ownership transfers: donor darkens, then recipient lights.
        let lock = self.lock_penalty;
        let mut j = 0;
        while j < self.pending_grants.len() {
            let pg = self.pending_grants[j];
            let (d, w) = (pg.grant.destination.0, pg.grant.wavelength.0);
            if !pg.donor_dark {
                let di = self.idx(pg.grant.from.0, d, w);
                let donor = &mut self.channels[di];
                donor.settle(now);
                if !donor.is_on() {
                    self.pending_grants[j].donor_dark = true;
                } else if donor.can_send(now) {
                    donor.power_off(now);
                    self.pending_grants[j].donor_dark = true;
                    self.power_dirty = true;
                }
            }
            if self.pending_grants[j].donor_dark {
                // A failed wavelength (dead receiver or dead transmitter
                // group) never relights; a repaired one relights its
                // retargeted recipient even when that is the donor itself.
                if !self.is_failed(d, w) && !self.is_tx_failed(pg.grant.to.0, d) {
                    let ri = self.idx(pg.grant.to.0, d, w);
                    let recipient = &mut self.channels[ri];
                    if !recipient.is_on() {
                        recipient.power_on_dark(now, lock);
                        self.power_dirty = true;
                    }
                }
                self.pending_grants.swap_remove(j);
            } else {
                j += 1;
            }
        }
    }

    /// Returns the total instantaneous power draw (mW) of all lit lasers.
    /// Between power-relevant edges (packet start/end, retune, relock,
    /// grant, fault) the cached sum is returned unchanged; on an edge it
    /// is recomputed by [`Srs::compute_power`] in the legacy summation
    /// order, so the bits match the eager per-cycle loop exactly.
    /// Link-utilization recording needs no per-cycle work any more: busy
    /// time is integrated from serialization spans.
    pub fn record_cycle(&mut self) -> f64 {
        if self.power_dirty {
            self.power_cache = self.compute_power();
            self.power_dirty = false;
        }
        self.power_cache
    }

    /// The eager power sum, in its original `(d asc, w asc)` order —
    /// identical state always reproduces identical f64 bits.
    fn compute_power(&self) -> f64 {
        let mut total = 0.0;
        for d in 0..self.boards {
            for w in 0..self.wavelengths {
                let Some(s) = self.owner[d as usize][w as usize] else {
                    continue;
                };
                let c = &self.channels[self.idx(s, d, w)];
                if !c.is_on() {
                    // Mid-transfer gap: nothing lit on this wavelength.
                    continue;
                }
                let busy = matches!(c.state(), ChannelState::Sending { .. });
                total += if busy {
                    self.power_model.active_mw(c.level())
                } else {
                    self.power_model.idle_mw(c.level())
                };
            }
        }
        total
    }

    /// Rolls all utilization windows at the `R_w` boundary `now`; the
    /// frozen values feed the next DPM/DBR decisions. Open serialization
    /// spans are split at the boundary: cycles before `now` land in the
    /// closing window, the rest stay with the (still open) span.
    pub fn roll_windows(&mut self, now: Cycle) {
        for i in 0..self.channels.len() {
            if self.busy_open[i] {
                let end = self.busy_cap[i].min(now);
                if end > self.busy_start[i] {
                    self.win_busy[i] += end - self.busy_start[i];
                }
                if self.busy_cap[i] <= now {
                    self.busy_open[i] = false;
                } else {
                    self.busy_start[i] = now;
                }
            }
            self.link_prev[i] = (self.win_busy[i] as f64 / self.window as f64).clamp(0.0, 1.0);
            self.win_busy[i] = 0;
        }
    }

    /// Previous-window `Link_util` of channel `(s,d,w)`.
    pub fn link_util(&self, s: u16, d: u16, w: u16) -> f64 {
        self.link_prev[self.idx(s, d, w)]
    }

    /// Board count.
    pub fn boards(&self) -> u16 {
        self.boards
    }

    /// Wavelength count.
    pub fn wavelengths(&self) -> u16 {
        self.wavelengths
    }

    /// Serializes the full mutable optical-stage state: ownership map,
    /// channel bank, busy spans, wake/arrival queues, pending DPM/DBR/CDR
    /// work, fault sets and lifetime counters. Geometry (board count,
    /// ladder, power model, RWA, penalties) is config-derived. The `owned`
    /// mirror is rebuilt from `owner` on load rather than persisted.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        w.tag(b"SRSS");
        w.usize(self.owner.len());
        for row in &self.owner {
            row.save(w);
        }
        w.usize(self.channels.len());
        for c in &self.channels {
            c.save_state(w);
        }
        self.link_prev.save(w);
        self.win_busy.save(w);
        self.busy_open.save(w);
        self.busy_start.save(w);
        self.busy_cap.save(w);
        self.wake.save_state(w);
        self.retune_queue.save(w);
        self.relock_queue.save(w);
        w.bool(self.power_dirty);
        w.f64(self.power_cache);
        self.arrivals.save_state(w);
        self.pending_grants.save(w);
        self.pending_retune.save(w);
        self.failed.save(w);
        self.failed_tx.save(w);
        self.stuck_lc.save(w);
        self.pending_relock.save(w);
        w.u64(self.grants_applied);
        w.u64(self.retunes_applied);
        w.u64(self.relocks_applied);
    }

    /// Overlays checkpointed optical-stage state onto a freshly built SRS
    /// with identical geometry.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::{Snap, SnapError};
        r.tag(b"SRSS")?;
        r.len_eq(self.owner.len(), "SRS ownership rows")?;
        let mut owner: Vec<Vec<Option<u16>>> = Vec::with_capacity(self.owner.len());
        for _ in 0..self.owner.len() {
            let row: Vec<Option<u16>> = Snap::load(r)?;
            if row.len() != self.wavelengths as usize {
                return Err(SnapError::Mismatch(format!(
                    "SRS ownership row: expected {} wavelengths, snapshot has {}",
                    self.wavelengths,
                    row.len()
                )));
            }
            if let Some(s) = row.iter().flatten().find(|&&s| s >= self.boards) {
                return Err(SnapError::Format(format!(
                    "SRS snapshot names board {s} but the system has {}",
                    self.boards
                )));
            }
            owner.push(row);
        }
        r.len_eq(self.channels.len(), "SRS channel bank")?;
        for c in &mut self.channels {
            c.load_state(r)?;
        }
        let link_prev: Vec<f64> = Snap::load(r)?;
        let n = self.channels.len();
        let check = |len: usize, what: &str| {
            if len == n {
                Ok(())
            } else {
                Err(SnapError::Mismatch(format!(
                    "{what}: expected {n} entries, snapshot has {len}"
                )))
            }
        };
        check(link_prev.len(), "SRS link_prev")?;
        let win_busy: Vec<Cycle> = Snap::load(r)?;
        check(win_busy.len(), "SRS win_busy")?;
        let busy_open: Vec<bool> = Snap::load(r)?;
        check(busy_open.len(), "SRS busy_open")?;
        let busy_start: Vec<Cycle> = Snap::load(r)?;
        check(busy_start.len(), "SRS busy_start")?;
        let busy_cap: Vec<Cycle> = Snap::load(r)?;
        check(busy_cap.len(), "SRS busy_cap")?;
        self.wake.load_state(r)?;
        let retune_queue: Vec<usize> = Snap::load(r)?;
        let relock_queue: Vec<usize> = Snap::load(r)?;
        if let Some(&i) = retune_queue.iter().chain(&relock_queue).find(|&&i| i >= n) {
            return Err(SnapError::Format(format!(
                "SRS work queue names channel {i} of {n}"
            )));
        }
        let power_dirty = r.bool()?;
        let power_cache = r.f64()?;
        self.arrivals.load_state(r)?;
        let pending_grants: Vec<PendingGrant> = Snap::load(r)?;
        let pending_retune: Vec<Option<(RateLevel, Cycle)>> = Snap::load(r)?;
        check(pending_retune.len(), "SRS pending retunes")?;
        let failed: Vec<(u16, u16)> = Snap::load(r)?;
        let failed_tx: Vec<(u16, u16)> = Snap::load(r)?;
        let stuck_lc: Vec<bool> = Snap::load(r)?;
        check(stuck_lc.len(), "SRS stuck LCs")?;
        let pending_relock: Vec<Option<Cycle>> = Snap::load(r)?;
        check(pending_relock.len(), "SRS pending relocks")?;
        self.grants_applied = r.u64()?;
        self.retunes_applied = r.u64()?;
        self.relocks_applied = r.u64()?;
        // Rebuild the per-flow sorted mirror from the ownership map. The
        // `d` outer / `w` inner scan appends each flow's wavelengths in
        // ascending order, matching the `set_owner` insertion discipline.
        for f in &mut self.owned {
            f.clear();
        }
        for d in 0..self.boards {
            for w in 0..self.wavelengths {
                if let Some(s) = owner[d as usize][w as usize] {
                    let f = self.flow(s, d);
                    self.owned[f].push(w);
                }
            }
        }
        self.owner = owner;
        self.link_prev = link_prev;
        self.win_busy = win_busy;
        self.busy_open = busy_open;
        self.busy_start = busy_start;
        self.busy_cap = busy_cap;
        self.retune_queue = retune_queue;
        self.relock_queue = relock_queue;
        self.power_dirty = power_dirty;
        self.power_cache = power_cache;
        self.pending_grants = pending_grants;
        self.pending_retune = pending_retune;
        self.failed = failed;
        self.failed_tx = failed_tx;
        self.stuck_lc = stuck_lc;
        self.pending_relock = pending_relock;
        Ok(())
    }

    /// Coarse heap-footprint estimate in bytes. The channel bank and its
    /// per-channel span/retune/relock side tables are the O(B²·W) = O(B³)
    /// bulk of the optical stage; smaller maps are counted per element
    /// too. Analytic capacity × element-size sums, not an allocator probe.
    pub fn approx_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_channel = size_of::<OpticalChannel>()
            + size_of::<f64>()          // link_prev
            + 3 * size_of::<Cycle>()    // win_busy, busy_start, busy_cap
            + size_of::<bool>() * 2     // busy_open, stuck_lc
            + size_of::<Option<(RateLevel, Cycle)>>()
            + size_of::<Option<Cycle>>();
        size_of::<Self>()
            + self.channels.len() * per_channel
            + self
                .owner
                .iter()
                .map(|v| size_of::<Vec<Option<u16>>>() + std::mem::size_of_val(v.as_slice()))
                .sum::<usize>()
            + self
                .owned
                .iter()
                .map(|v| size_of::<Vec<u16>>() + v.capacity() * size_of::<u16>())
                .sum::<usize>()
            + self.retune_queue.capacity() * size_of::<usize>()
            + self.relock_queue.capacity() * size_of::<usize>()
    }
}

/// Raw base pointers over the SRS's source-sharded dense arrays plus the
/// read-only shared state the transmit path consults. Captured once per
/// cycle by [`Srs::shard_parts`]; each worker derives its disjoint
/// [`SrsLane`] from these. Plain data — `Send`-ness is asserted by the
/// shard context that carries it (`system::shard`).
#[derive(Clone, Copy)]
pub(crate) struct SrsShardParts {
    channels: *mut OpticalChannel,
    win_busy: *mut Cycle,
    busy_open: *mut bool,
    busy_start: *mut Cycle,
    busy_cap: *mut Cycle,
    pending_retune: *const Option<(RateLevel, Cycle)>,
    owned: *const Vec<u16>,
    failed_tx: *const (u16, u16),
    failed_tx_len: usize,
    boards: u16,
    wavelengths: u16,
}

#[cfg(test)]
impl SrsShardParts {
    /// A zero-board parts bundle for gate-protocol tests that never
    /// materialize a lane.
    pub(crate) fn dangling() -> Self {
        Self {
            channels: std::ptr::NonNull::dangling().as_ptr(),
            win_busy: std::ptr::NonNull::dangling().as_ptr(),
            busy_open: std::ptr::NonNull::dangling().as_ptr(),
            busy_start: std::ptr::NonNull::dangling().as_ptr(),
            busy_cap: std::ptr::NonNull::dangling().as_ptr(),
            pending_retune: std::ptr::NonNull::dangling().as_ptr(),
            owned: std::ptr::NonNull::dangling().as_ptr(),
            failed_tx: std::ptr::NonNull::dangling().as_ptr(),
            failed_tx_len: 0,
            boards: 0,
            wavelengths: 0,
        }
    }
}

/// The publish-remote half of a lane's transmit work: everything
/// [`Srs::try_transmit`] would have pushed into *shared* SRS state, buffered
/// per source board during the compute phase and applied in canonical board
/// order by [`Srs::commit_lane_effects`]. The mutate-local half (channel
/// `begin_packet`, busy spans, window integrals) needs no buffering — it
/// lives entirely inside the lane's array block.
#[derive(Debug, Default)]
pub(crate) struct LaneEffects {
    /// `(serialization end, dense channel index)` wake-queue entries.
    pub(crate) wakes: Vec<(Cycle, usize)>,
    /// `(fiber arrival cycle, arrival)` pairs.
    pub(crate) arrivals: Vec<(Cycle, Arrival)>,
    /// Whether the lane lit a laser (invalidates the power cache).
    pub(crate) power_dirty: bool,
}

impl LaneEffects {
    pub(crate) fn clear(&mut self) {
        self.wakes.clear();
        self.arrivals.clear();
        self.power_dirty = false;
    }
}

/// One source board's mutable window into the SRS: the `B·W` contiguous
/// block of channel/busy-span state that board `s` alone serializes onto,
/// plus shared read-only views (ownership mirror, failed transmitters,
/// pending retunes). [`SrsLane::try_transmit`] is [`Srs::try_transmit`]
/// with the shared-queue pushes routed into a [`LaneEffects`] buffer.
pub(crate) struct SrsLane<'a> {
    s: u16,
    wavelengths: u16,
    /// Dense index of the lane's first channel (`s·B·W`).
    base: usize,
    channels: &'a mut [OpticalChannel],
    win_busy: &'a mut [Cycle],
    busy_open: &'a mut [bool],
    busy_start: &'a mut [Cycle],
    busy_cap: &'a mut [Cycle],
    /// Lane slice of the pending-retune table (transmit only reads it).
    pending_retune: &'a [Option<(RateLevel, Cycle)>],
    /// The lane's `B` per-destination sorted owned-wavelength lists.
    owned: &'a [Vec<u16>],
    failed_tx: &'a [(u16, u16)],
}

impl<'a> SrsLane<'a> {
    /// Materializes lane `s` from captured base pointers.
    ///
    /// # Safety
    /// `parts` must come from a live [`Srs`] whose backing storage has not
    /// been touched through `&mut Srs` since capture, and no other lane
    /// view for the same `s` may exist for `'a`. Disjointness across
    /// different `s` is guaranteed by the dense layout.
    pub(crate) unsafe fn from_parts(parts: &SrsShardParts, s: u16) -> Self {
        let b = parts.boards as usize;
        let bw = b * parts.wavelengths as usize;
        let base = s as usize * bw;
        // SAFETY: each lane addresses its own `[base, base + bw)` block of
        // the `B²·W`-sized arrays and the `[s·B, (s+1)·B)` block of the
        // `B²`-sized flow table; the caller guarantees exclusivity.
        unsafe {
            Self {
                s,
                wavelengths: parts.wavelengths,
                base,
                channels: std::slice::from_raw_parts_mut(parts.channels.add(base), bw),
                win_busy: std::slice::from_raw_parts_mut(parts.win_busy.add(base), bw),
                busy_open: std::slice::from_raw_parts_mut(parts.busy_open.add(base), bw),
                busy_start: std::slice::from_raw_parts_mut(parts.busy_start.add(base), bw),
                busy_cap: std::slice::from_raw_parts_mut(parts.busy_cap.add(base), bw),
                pending_retune: std::slice::from_raw_parts(parts.pending_retune.add(base), bw),
                owned: std::slice::from_raw_parts(parts.owned.add(s as usize * b), b),
                failed_tx: std::slice::from_raw_parts(parts.failed_tx, parts.failed_tx_len),
            }
        }
    }

    /// Lane-local dense index of `(d, w)` — [`Srs::idx`] minus `base`.
    fn li(&self, d: u16, w: u16) -> usize {
        d as usize * self.wavelengths as usize + w as usize
    }

    /// Lane-local mirror of [`Srs::close_busy`].
    fn close_busy(&mut self, li: usize, at: Cycle) {
        if !self.busy_open[li] {
            return;
        }
        let end = self.busy_cap[li].min(at);
        if end > self.busy_start[li] {
            self.win_busy[li] += end - self.busy_start[li];
        }
        self.busy_open[li] = false;
    }

    /// [`Srs::try_transmit`] over the lane view: identical scan order,
    /// identical channel mutations, with the wake/arrival inserts and the
    /// power-cache invalidation deferred into `fx`. Returns whether the
    /// packet departed.
    pub(crate) fn try_transmit(
        &mut self,
        now: Cycle,
        d: u16,
        packet: ReadyPacket,
        fx: &mut LaneEffects,
    ) -> bool {
        if self.failed_tx.contains(&(self.s, d)) {
            return false;
        }
        // Scan only owned wavelengths; ascending order matches the legacy
        // full `0..W` scan over the ownership map.
        let flow = d as usize;
        let mut chosen = None;
        for k in 0..self.owned[flow].len() {
            let w = self.owned[flow][k];
            let li = self.li(d, w);
            // A channel with a pending retune must not start a packet:
            // the retune would never get a free window under load.
            if self.channels[li].can_send(now) && self.pending_retune[li].is_none() {
                chosen = Some(w);
                break;
            }
        }
        let Some(w) = chosen else {
            return false;
        };
        let li = self.li(d, w);
        // Back-to-back reuse exactly at the previous packet's end: its
        // wake entry has not fired yet, so close its span here first.
        if self.busy_open[li] {
            debug_assert!(self.busy_cap[li] <= now, "span open past serialization");
            let cap = self.busy_cap[li];
            self.close_busy(li, cap);
        }
        let arrive_at = self.channels[li].begin_packet(now, packet.flits as u32);
        let Some(until) = self.channels[li].sending_until() else {
            unreachable!("begin_packet leaves the channel Sending")
        };
        fx.wakes.push((until, self.base + li));
        self.busy_open[li] = true;
        self.busy_start[li] = now;
        self.busy_cap[li] = until;
        fx.power_dirty = true;
        fx.arrivals.push((
            arrive_at,
            Arrival {
                dst_board: d,
                wavelength: w,
                src_board: self.s,
                packet,
            },
        ));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use router::flit::PacketId;

    fn srs() -> Srs {
        Srs::new(
            4,
            RateLadder::paper(),
            Serdes::paper(),
            4,
            LinkPowerModel::paper_table(),
            100,
            65,
        )
    }

    fn pkt(id: u64) -> ReadyPacket {
        ReadyPacket {
            id: PacketId(id),
            src: 0,
            dst: 0,
            injected_at: 0,
            labelled: false,
            flits: 8,
            vc: 0,
            completed_at: 0,
        }
    }

    #[test]
    fn static_rwa_ownership_at_boot() {
        let s = srs();
        // Destination 0: λ1 owned by board 1, λ2 by board 2, λ3 by board 3.
        assert_eq!(s.owner(0, 1), Some(1));
        assert_eq!(s.owner(0, 2), Some(2));
        assert_eq!(s.owner(0, 3), Some(3));
        assert_eq!(s.owner(0, 0), None);
        // (B-1) lasers per board on: 4 boards × 3 = 12.
        assert_eq!(s.lasers_on(), 12);
        assert_eq!(s.owned_wavelengths(1, 0), vec![1]);
        assert_eq!(s.boards(), 4);
        assert_eq!(s.wavelengths(), 4);
    }

    #[test]
    fn transmit_and_arrival_roundtrip() {
        let mut s = srs();
        let w = s.try_transmit(0, 1, 0, pkt(7)).expect("channel free");
        assert_eq!(w, 1);
        // 8 flits × 6 cycles + 4 fiber = arrival at 52.
        assert!(s.arrivals_due(51).is_empty());
        let arr = s.arrivals_due(52);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].dst_board, 0);
        assert_eq!(arr[0].src_board, 1);
        assert_eq!(arr[0].packet.id, PacketId(7));
    }

    #[test]
    fn busy_channel_rejects_second_packet() {
        let mut s = srs();
        assert!(s.try_transmit(0, 1, 0, pkt(1)).is_some());
        assert!(s.try_transmit(1, 1, 0, pkt(2)).is_none());
        s.tick(48); // serialization (48) done
        assert!(s.try_transmit(48, 1, 0, pkt(2)).is_some());
    }

    #[test]
    fn grant_transfers_ownership_and_relights() {
        let mut s = srs();
        let g = WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(2),
            from: BoardId(2),
            to: BoardId(1),
        };
        s.schedule_grants(&[g]);
        assert_eq!(s.owner(0, 2), Some(1));
        s.tick(10);
        // Donor dark, recipient locking (dark for 65 cycles).
        assert!(!s.channel(2, 0, 2).is_on());
        assert!(s.channel(1, 0, 2).is_on());
        // Before lock-in the granted channel cannot carry data on λ2, but
        // board 1 can still use its static λ1 toward 0 — and only that one.
        assert_eq!(s.try_transmit(11, 1, 0, pkt(9)), Some(1));
        assert_eq!(s.try_transmit(11, 1, 0, pkt(10)), None);
        s.tick(80);
        // Now both of board 1's channels are usable.
        assert!(s.try_transmit(80, 1, 0, pkt(1)).is_some());
        assert!(s.try_transmit(80, 1, 0, pkt(2)).is_some());
        assert_eq!(s.owned_wavelengths(1, 0), vec![1, 2]);
        assert_eq!(s.reconfig_counts().0, 1);
    }

    #[test]
    fn grant_waits_for_donor_mid_packet() {
        let mut s = srs();
        // Donor (board 2 → 0 on λ2) starts a long packet at t=0.
        assert!(s.try_transmit(0, 2, 0, pkt(1)).is_some());
        let g = WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(2),
            from: BoardId(2),
            to: BoardId(1),
        };
        s.schedule_grants(&[g]);
        s.tick(10);
        // Donor still sending: recipient must not be lit yet.
        assert!(s.channel(2, 0, 2).is_on());
        assert!(!s.channel(1, 0, 2).is_on());
        // After serialization ends (48 cycles) the transfer completes.
        s.tick(48);
        assert!(!s.channel(2, 0, 2).is_on());
        assert!(s.channel(1, 0, 2).is_on());
        // The in-flight packet still arrives.
        assert_eq!(s.arrivals_due(52).len(), 1);
    }

    #[test]
    fn retune_applies_when_idle_and_blocks_sending() {
        let mut s = srs();
        s.schedule_retune(1, 0, 1, RateLevel(0), 65);
        // Channel is idle: retune applies on the next tick.
        s.tick(5);
        assert_eq!(s.channel(1, 0, 1).level(), RateLevel(0));
        assert_eq!(s.reconfig_counts().1, 1);
        // Dark during transition.
        assert!(s.try_transmit(6, 1, 0, pkt(1)).is_none());
        s.tick(70);
        assert!(s.try_transmit(70, 1, 0, pkt(1)).is_some());
    }

    #[test]
    fn retune_to_same_level_is_ignored() {
        let mut s = srs();
        s.schedule_retune(1, 0, 1, RateLevel(2), 65);
        s.tick(1);
        assert_eq!(s.reconfig_counts().1, 0);
        assert!(s.try_transmit(1, 1, 0, pkt(1)).is_some());
    }

    #[test]
    fn power_accounting_idle_vs_active() {
        let mut s = srs();
        let idle_total = s.record_cycle();
        // 12 idle lasers at 43.03 × 0.05.
        assert!((idle_total - 12.0 * 43.03 * 0.05).abs() < 1e-6);
        s.try_transmit(0, 1, 0, pkt(1)).unwrap();
        let one_active = s.record_cycle();
        assert!((one_active - (11.0 * 43.03 * 0.05 + 43.03)).abs() < 1e-6);
    }

    #[test]
    fn link_util_windows_roll() {
        let mut s = srs();
        s.try_transmit(0, 1, 0, pkt(1)).unwrap();
        for now in 0..100u64 {
            s.tick(now);
            s.record_cycle();
        }
        s.roll_windows(100);
        // 48 of 100 cycles busy on (1,0,λ1).
        assert!((s.link_util(1, 0, 1) - 0.48).abs() < 0.02);
        assert_eq!(s.link_util(2, 0, 2), 0.0);
    }

    #[test]
    fn transmit_spreads_over_multiple_owned_channels() {
        let mut s = srs();
        s.schedule_grants(&[WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(2),
            from: BoardId(2),
            to: BoardId(1),
        }]);
        s.tick(0);
        s.tick(66); // lock-in done
        let w1 = s.try_transmit(66, 1, 0, pkt(1)).unwrap();
        let w2 = s.try_transmit(66, 1, 0, pkt(2)).unwrap();
        assert_ne!(w1, w2, "two packets in flight on two wavelengths");
        assert!(s.try_transmit(66, 1, 0, pkt(3)).is_none());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use photonics::bitrate::RateLadder;
    use photonics::serdes::Serdes;
    use router::flit::PacketId;

    fn srs() -> Srs {
        Srs::new(
            4,
            RateLadder::paper(),
            Serdes::paper(),
            4,
            LinkPowerModel::paper_table(),
            100,
            65,
        )
    }

    fn pkt(id: u64) -> ReadyPacket {
        ReadyPacket {
            id: PacketId(id),
            src: 0,
            dst: 0,
            injected_at: 0,
            labelled: false,
            flits: 8,
            vc: 0,
            completed_at: 0,
        }
    }

    #[test]
    fn failing_an_idle_receiver_darkens_the_owner() {
        let mut s = srs();
        assert_eq!(s.owner(0, 1), Some(1));
        s.fail_receiver(0, 0, 1);
        assert!(s.is_failed(0, 1));
        assert_eq!(s.owner(0, 1), None);
        assert!(!s.channel(1, 0, 1).is_on());
        // The flow 1→0 can no longer transmit (no owned wavelength).
        assert!(s.try_transmit(1, 1, 0, pkt(1)).is_none());
        assert_eq!(s.lasers_on(), 11);
    }

    #[test]
    fn failing_mid_packet_lets_the_photons_land_then_darkens() {
        let mut s = srs();
        assert!(s.try_transmit(0, 1, 0, pkt(7)).is_some());
        s.fail_receiver(5, 0, 1);
        // Still lit mid-packet.
        assert!(s.channel(1, 0, 1).is_on());
        s.tick(20);
        assert!(s.channel(1, 0, 1).is_on(), "packet still serializing");
        // The in-flight packet arrives (left before the failure)...
        assert_eq!(s.arrivals_due(52).len(), 1);
        // ...and once the wavelength clears, the laser goes dark for good.
        s.tick(48);
        assert!(!s.channel(1, 0, 1).is_on());
        assert_eq!(s.owner(0, 1), None);
    }

    #[test]
    fn grants_on_failed_wavelengths_are_dropped() {
        let mut s = srs();
        s.fail_receiver(0, 0, 2);
        let g = WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(2),
            from: BoardId(2),
            to: BoardId(1),
        };
        s.schedule_grants(&[g]);
        s.tick(1);
        s.tick(100);
        assert_eq!(s.owner(0, 2), None);
        assert!(!s.channel(1, 0, 2).is_on());
        assert_eq!(s.reconfig_counts().0, 0);
    }

    #[test]
    fn failure_during_ownership_transfer_suppresses_relight() {
        let mut s = srs();
        // Donor busy so the transfer stays pending.
        assert!(s.try_transmit(0, 2, 0, pkt(1)).is_some());
        s.schedule_grants(&[WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(2),
            from: BoardId(2),
            to: BoardId(1),
        }]);
        s.tick(5);
        assert!(s.channel(2, 0, 2).is_on(), "donor mid-packet");
        // The receiver dies while the transfer is in flight.
        s.fail_receiver(6, 0, 2);
        s.tick(48);
        s.tick(120);
        // Donor dark, recipient never lit.
        assert!(!s.channel(2, 0, 2).is_on());
        assert!(!s.channel(1, 0, 2).is_on());
        assert_eq!(s.owner(0, 2), None);
    }

    #[test]
    fn double_failure_is_idempotent() {
        let mut s = srs();
        s.fail_receiver(0, 0, 1);
        s.fail_receiver(1, 0, 1);
        assert!(s.is_failed(0, 1));
        assert_eq!(s.lasers_on(), 11);
    }

    #[test]
    fn repair_restores_static_ownership_and_capacity() {
        let mut s = srs();
        s.fail_receiver(0, 0, 1);
        assert_eq!(s.lasers_on(), 11);
        assert_eq!(s.owner(0, 1), None);
        s.repair_receiver(100, 0, 1);
        assert!(!s.is_failed(0, 1));
        assert_eq!(s.owner(0, 1), Some(1), "static owner readmitted");
        assert!(s.channel(1, 0, 1).is_on());
        assert_eq!(s.lasers_on(), 12);
        // Fresh receiver lock-in: dark for 65 cycles, then usable.
        assert!(s.try_transmit(120, 1, 0, pkt(1)).is_none());
        s.tick(170);
        assert!(s.try_transmit(170, 1, 0, pkt(1)).is_some());
    }

    #[test]
    fn repair_before_the_failure_drain_completes_relights() {
        let mut s = srs();
        assert!(s.try_transmit(0, 1, 0, pkt(7)).is_some());
        s.fail_receiver(5, 0, 1); // mid-packet: shutdown is pending
        s.repair_receiver(10, 0, 1); // repaired before the laser idles
        assert_eq!(s.owner(0, 1), Some(1));
        assert_eq!(s.arrivals_due(52).len(), 1, "in-flight photons land");
        // Once the wavelength clears, the laser cycles through a lock-in
        // window instead of dying.
        s.tick(48);
        assert!(s.channel(1, 0, 1).is_on());
        s.tick(120);
        assert!(s.try_transmit(120, 1, 0, pkt(8)).is_some());
    }

    #[test]
    fn repair_without_failure_is_a_no_op() {
        let mut s = srs();
        s.repair_receiver(10, 0, 1);
        assert_eq!(s.owner(0, 1), Some(1));
        assert_eq!(s.lasers_on(), 12);
    }

    #[test]
    fn transmitter_outage_darkens_and_repair_restores() {
        let mut s = srs();
        s.fail_transmitter(0, 1, 0);
        assert!(s.is_tx_failed(1, 0));
        assert!(!s.channel(1, 0, 1).is_on());
        assert_eq!(s.lasers_on(), 11);
        assert!(s.try_transmit(1, 1, 0, pkt(1)).is_none());
        // Ownership is retained through the outage.
        assert_eq!(s.owner(0, 1), Some(1));
        s.repair_transmitter(50, 1, 0);
        assert!(!s.is_tx_failed(1, 0));
        assert!(s.channel(1, 0, 1).is_on());
        s.tick(120);
        assert!(s.try_transmit(120, 1, 0, pkt(2)).is_some());
    }

    #[test]
    fn grants_to_failed_transmitters_are_dropped() {
        let mut s = srs();
        s.fail_transmitter(0, 1, 0);
        s.schedule_grants(&[WavelengthGrant {
            destination: BoardId(0),
            wavelength: Wavelength(2),
            from: BoardId(2),
            to: BoardId(1),
        }]);
        assert_eq!(s.owner(0, 2), Some(2), "grant to a dead TX is dropped");
        assert_eq!(s.reconfig_counts().0, 0);
    }

    #[test]
    fn stuck_lc_drops_retunes_until_repair() {
        let mut s = srs();
        s.stick_lc(1, 0, 1);
        assert!(s.is_lc_stuck(1, 0, 1));
        s.schedule_retune(1, 0, 1, RateLevel(0), 65);
        s.tick(5);
        assert_eq!(s.channel(1, 0, 1).level(), RateLevel(2));
        assert_eq!(s.reconfig_counts().1, 0);
        s.unstick_lc(1, 0, 1);
        s.schedule_retune(1, 0, 1, RateLevel(0), 65);
        s.tick(6);
        assert_eq!(s.channel(1, 0, 1).level(), RateLevel(0));
        assert_eq!(s.reconfig_counts().1, 1);
    }

    #[test]
    fn cdr_relock_waits_for_the_packet_then_darkens() {
        let mut s = srs();
        assert!(s.try_transmit(0, 1, 0, pkt(1)).is_some());
        s.schedule_relock(1, 0, 1, 200);
        s.tick(10);
        assert_eq!(s.relocks_applied(), 0, "mid-packet: relock waits");
        assert_eq!(s.arrivals_due(52).len(), 1, "photons land");
        s.tick(48);
        assert_eq!(s.relocks_applied(), 1);
        assert!(s.channel(1, 0, 1).is_on(), "laser stays up while relocking");
        assert!(s.try_transmit(100, 1, 0, pkt(2)).is_none(), "link dark");
        s.tick(250);
        assert!(s.try_transmit(250, 1, 0, pkt(2)).is_some());
    }

    #[test]
    fn cdr_relock_on_a_dark_channel_is_inert() {
        let mut s = srs();
        s.schedule_relock(2, 0, 1, 200); // unowned, dark channel
        s.tick(5);
        assert_eq!(s.relocks_applied(), 0);
    }
}
