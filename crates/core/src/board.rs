//! One E-RAPID board: the IBI router, node network interfaces, optical
//! receiver injectors, and per-destination transmitter queues.
//!
//! Port layout of the board router (D nodes, W wavelengths, B boards):
//!
//! ```text
//! inputs:  [0, D)       node NIs
//!          [D, D+W)     optical receivers (one per wavelength)
//! outputs: [0, D)       node ejection ports
//!          [D, D+B)     transmitter queues (one per destination board)
//! ```
//!
//! Credit plumbing: node-ejection ports behave as sinks (credits return one
//! cycle after traversal); TX ports' credits return when the packet departs
//! optically — every flit of a packet rides one output VC, so the departing
//! packet returns exactly `flits` credits to that VC.
//!
//! `Board::step_into` is the per-cycle hot path of the whole simulator —
//! dominated by `Router::step_into`, whose VA/SA arbitration runs on
//! packed `u64` bitset words over requester ids `in_port · V + in_vc`
//! (DESIGN.md §16). The board's `D + B` output ports and `D + W` input
//! ports set those bitset widths.

use crate::config::SystemConfig;
use crate::inject::FlitInjector;
use crate::txqueue::{ReadyPacket, TransmitQueue};
use desim::Cycle;
use netstats::occupancy::OccupancyIntegral;
use router::flit::NodeId;
use router::packet::Packet;
use router::routing::{PortId, TableRoute};
use router::{Router, RouterConfig};

/// A packet delivered to its destination node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivered {
    /// Packet id.
    pub id: router::flit::PacketId,
    /// Destination node (global id).
    pub dst: u32,
    /// Injection cycle at the source NI.
    pub injected_at: Cycle,
    /// Labelled for measurement.
    pub labelled: bool,
}

/// One board.
pub struct Board {
    id: u16,
    d: u16,
    packet_flits: u16,
    router: Router,
    node_inj: Vec<FlitInjector>,
    rx_inj: Vec<FlitInjector>,
    /// One TX queue per destination board (`tx[self]` unused).
    tx: Vec<TransmitQueue>,
    /// `Buffer_util` counters, one per destination board — event-driven
    /// flit-cycle integrals, updated on enqueue/dequeue instead of
    /// re-sampled every cycle (bit-identical; see `OccupancyIntegral`).
    buffer_util: Vec<OccupancyIntegral>,
    /// Packets inside the electrical domain (NI backlogs, mid-injection,
    /// or with flits still in the router). Zero means stepping the board
    /// is a provable no-op, so the system skips it entirely.
    inflight: u32,
    /// Destinations whose TX queue holds at least one *ready* packet,
    /// ascending — the active set the optical transmit stage walks in the
    /// same order the full `0..B` scan used to.
    tx_ready: Vec<u16>,
    /// Node-sink credits owed back next cycle: (port, vc).
    node_credits: Vec<(PortId, u8)>,
    /// Reusable per-cycle traversal buffer (cleared each step, never
    /// reallocated in steady state).
    traversal_scratch: Vec<router::Traversal>,
}

impl Board {
    /// Builds board `id` of the system.
    pub fn new(cfg: &SystemConfig, id: u16) -> Self {
        let d = cfg.nodes_per_board;
        let w = cfg.wavelengths();
        let b = cfg.boards;
        let table: Vec<PortId> = (0..cfg.nodes())
            .map(|n| {
                let nb = cfg.board_of(n);
                if nb == id {
                    PortId(cfg.local_of(n))
                } else {
                    PortId(d + nb)
                }
            })
            .collect();
        let mut router = Router::new(
            RouterConfig {
                in_ports: d + w,
                out_ports: d + b,
                vcs: cfg.vcs,
                buf_depth: cfg.buf_depth,
                downstream_depth: 1,
            },
            Box::new(TableRoute::new(table)),
        );
        // Node sinks: shallow per-VC buffers, credits return next cycle.
        for p in 0..d {
            router.set_downstream_depth(PortId(p), 8);
        }
        // TX ports: the queue capacity split across output VCs so the
        // per-VC credit pools can never oversubscribe the queue.
        let per_vc = (cfg.tx_queue_flits / cfg.vcs as u32).max(cfg.packet_flits as u32);
        for p in d..d + b {
            router.set_downstream_depth(PortId(p), per_vc);
        }
        Self {
            id,
            d,
            packet_flits: cfg.packet_flits,
            router,
            node_inj: (0..d).map(|p| FlitInjector::new(PortId(p))).collect(),
            rx_inj: (0..w).map(|i| FlitInjector::new(PortId(d + i))).collect(),
            tx: (0..b)
                .map(|_| TransmitQueue::new(per_vc * cfg.vcs as u32))
                .collect(),
            buffer_util: (0..b)
                .map(|_| OccupancyIntegral::new(cfg.schedule.window, per_vc * cfg.vcs as u32))
                .collect(),
            inflight: 0,
            tx_ready: Vec::new(),
            node_credits: Vec::new(),
            traversal_scratch: Vec::new(),
        }
    }

    /// Board id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The IBI router (for statistics).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Drains the router's buffered-flit high-water mark (per-window
    /// congestion gauge for the telemetry layer).
    pub fn take_router_peak(&mut self) -> u64 {
        self.router.take_buffered_peak()
    }

    /// Queues a freshly generated packet at a node NI.
    pub fn enqueue_node_packet(&mut self, local_node: u16, packet: Packet) {
        self.inflight += 1;
        self.node_inj[local_node as usize].enqueue(packet);
    }

    /// Queues an optically arrived packet at the receiver for `wavelength`
    /// for IBI injection toward the destination node.
    pub fn enqueue_rx_packet(&mut self, wavelength: u16, pkt: ReadyPacket) {
        let packet = Packet {
            id: pkt.id,
            src: NodeId(pkt.src),
            dst: NodeId(pkt.dst),
            flits: pkt.flits,
            injected_at: pkt.injected_at,
            labelled: pkt.labelled,
        };
        self.inflight += 1;
        self.rx_inj[wavelength as usize].enqueue(packet);
    }

    /// Source-side NI backlog (packets) at a node.
    pub fn ni_backlog(&self, local_node: u16) -> usize {
        self.node_inj[local_node as usize].backlog_len()
    }

    /// Receiver-side backlog (packets) at the receiver for `wavelength`.
    pub fn rx_backlog(&self, wavelength: u16) -> usize {
        self.rx_inj[wavelength as usize].backlog_len()
    }

    /// The TX queue toward destination board `dest`.
    pub fn tx_queue(&self, dest: u16) -> &TransmitQueue {
        &self.tx[dest as usize]
    }

    /// Pops the next ready packet toward `dest`, returning its router
    /// credits (one per flit, to the VC its flits occupied).
    pub fn tx_depart(&mut self, now: Cycle, dest: u16) -> Option<ReadyPacket> {
        let pkt = self.tx[dest as usize].depart()?;
        self.buffer_util[dest as usize].dequeue(now, pkt.flits as u32);
        if self.tx[dest as usize].ready_len() == 0 {
            if let Ok(i) = self.tx_ready.binary_search(&dest) {
                self.tx_ready.remove(i);
            }
        }
        let port = PortId(self.d + dest);
        for _ in 0..pkt.flits {
            self.router.credit(port, pkt.vc);
        }
        Some(pkt)
    }

    /// Destinations with at least one ready packet, ascending.
    pub fn ready_dests(&self) -> &[u16] {
        &self.tx_ready
    }

    /// Previous-window `Buffer_util` toward `dest`.
    pub fn buffer_util(&self, dest: u16) -> f64 {
        self.buffer_util[dest as usize].previous()
    }

    /// Whether the last completed `Buffer_util` window toward `dest` saw
    /// any queue activity (threshold-watch dirty bit).
    pub fn buffer_util_touched(&self, dest: u16) -> bool {
        self.buffer_util[dest as usize].last_touched()
    }

    /// Whether the last completed `Buffer_util` window toward `dest` sat
    /// at one flat level (threshold-watch park condition).
    pub fn buffer_util_steady(&self, dest: u16) -> bool {
        self.buffer_util[dest as usize].last_steady()
    }

    /// Rolls the board's `Buffer_util` windows at the boundary `now`.
    pub fn roll_windows(&mut self, now: Cycle) {
        for u in &mut self.buffer_util {
            u.roll(now);
        }
    }

    /// Coarse heap-footprint estimate in bytes: the router plus the
    /// per-destination TX/occupancy state (analytic capacity ×
    /// element-size sums — see [`router::Router::approx_memory_bytes`]).
    pub fn approx_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.router.approx_memory_bytes()
            + std::mem::size_of_val(self.node_inj.as_slice())
            + std::mem::size_of_val(self.rx_inj.as_slice())
            + std::mem::size_of_val(self.tx.as_slice())
            + std::mem::size_of_val(self.buffer_util.as_slice())
            + self.tx_ready.capacity() * size_of::<u16>()
    }

    /// Serializes the full mutable board state: router, injectors, TX
    /// queues, occupancy integrals, active sets and pending credits.
    /// Geometry (port counts, capacities, route table) is config-derived.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        use desim::snap::Snap;
        w.tag(b"BRDS");
        self.router.save_state(w);
        w.usize(self.node_inj.len());
        for inj in &self.node_inj {
            inj.save_state(w);
        }
        w.usize(self.rx_inj.len());
        for inj in &self.rx_inj {
            inj.save_state(w);
        }
        w.usize(self.tx.len());
        for q in &self.tx {
            q.save_state(w);
        }
        w.usize(self.buffer_util.len());
        for u in &self.buffer_util {
            u.save(w);
        }
        w.u32(self.inflight);
        self.tx_ready.save(w);
        w.usize(self.node_credits.len());
        for (port, vc) in &self.node_credits {
            w.u16(port.0);
            w.u8(*vc);
        }
    }

    /// Overlays checkpointed board state onto a freshly built board with
    /// identical geometry.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::Snap;
        r.tag(b"BRDS")?;
        self.router.load_state(r)?;
        r.len_eq(self.node_inj.len(), "board node injectors")?;
        for inj in &mut self.node_inj {
            inj.load_state(r)?;
        }
        r.len_eq(self.rx_inj.len(), "board RX injectors")?;
        for inj in &mut self.rx_inj {
            inj.load_state(r)?;
        }
        r.len_eq(self.tx.len(), "board TX queues")?;
        for q in &mut self.tx {
            q.load_state(r)?;
        }
        r.len_eq(self.buffer_util.len(), "board occupancy integrals")?;
        for u in &mut self.buffer_util {
            *u = OccupancyIntegral::load(r)?;
        }
        self.inflight = r.u32()?;
        self.tx_ready = Snap::load(r)?;
        let n = r.len_at_most(1 << 20, "board pending node credits")?;
        let mut credits = Vec::with_capacity(n);
        for _ in 0..n {
            let port = PortId(r.u16()?);
            let vc = r.u8()?;
            credits.push((port, vc));
        }
        self.node_credits = credits;
        Ok(())
    }

    /// Whether the board is completely idle (no queued or in-flight flits).
    pub fn is_idle(&self) -> bool {
        self.router.buffered_flits() == 0
            && self.node_inj.iter().all(|i| i.is_idle())
            && self.rx_inj.iter().all(|i| i.is_idle())
            && self
                .tx
                .iter()
                .all(|q| q.ready_len() == 0 && q.flits_held() == 0)
    }

    /// Advances the board one cycle, allocating a fresh delivery vector.
    ///
    /// Convenience wrapper over [`Board::step_into`] for tests and one-off
    /// drivers; the simulation hot loop passes a reusable buffer instead.
    pub fn step(&mut self, now: Cycle) -> Vec<Delivered> {
        let mut delivered = Vec::new();
        self.step_into(now, &mut delivered);
        delivered
    }

    /// Advances the board one cycle: injectors feed the router, the router
    /// steps, traversals land in node sinks (appended to `delivered` —
    /// which is *not* cleared, the caller owns it) or TX queues, which
    /// maintain `Buffer_util` incrementally.
    ///
    /// The traversal list is accumulated into a persistent scratch buffer,
    /// so a steady-state cycle performs no heap allocation.
    pub fn step_into(&mut self, now: Cycle, delivered: &mut Vec<Delivered>) {
        if !self.node_credits.is_empty() {
            for (port, vc) in self.node_credits.drain(..) {
                self.router.credit(port, vc);
            }
        }
        // Idle board: injectors have nothing (their tick is a pure no-op)
        // and the router holds no flits (its step is an early-out that
        // touches no arbitration state), so the whole cycle is skipped.
        if self.inflight == 0 {
            return;
        }
        for inj in &mut self.node_inj {
            inj.tick(&mut self.router);
        }
        for inj in &mut self.rx_inj {
            inj.tick(&mut self.router);
        }
        // Take the scratch to sidestep the simultaneous `&mut self.router`
        // / `&mut self.traversal_scratch` borrow; restored below.
        let mut traversals = std::mem::take(&mut self.traversal_scratch);
        traversals.clear();
        self.router.step_into(now, &mut traversals);
        for t in &traversals {
            let out = t.out_port.0;
            if out < self.d {
                self.node_credits.push((t.out_port, t.out_vc));
                if t.flit.kind.is_tail() {
                    self.inflight -= 1;
                    delivered.push(Delivered {
                        id: t.flit.packet,
                        dst: t.flit.dst.0,
                        injected_at: t.flit.injected_at,
                        labelled: t.flit.labelled,
                    });
                }
            } else {
                let dest = out - self.d;
                debug_assert_ne!(dest, self.id, "self-directed remote flit");
                self.buffer_util[dest as usize].enqueue(now, 1);
                let completed =
                    self.tx[dest as usize].accept(t.flit, self.packet_flits, t.out_vc, now);
                if t.flit.kind.is_tail() {
                    self.inflight -= 1;
                }
                if completed && self.tx[dest as usize].ready_len() == 1 {
                    if let Err(i) = self.tx_ready.binary_search(&dest) {
                        self.tx_ready.insert(i, dest);
                    }
                }
            }
        }
        self.traversal_scratch = traversals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkMode, SystemConfig};
    use router::flit::PacketId;

    fn cfg() -> SystemConfig {
        SystemConfig::small(NetworkMode::NpNb)
    }

    fn packet(cfg: &SystemConfig, id: u64, src: u32, dst: u32) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            flits: cfg.packet_flits,
            injected_at: 0,
            labelled: true,
        }
    }

    #[test]
    fn intra_board_packet_is_delivered_locally() {
        let cfg = cfg();
        let mut b = Board::new(&cfg, 0);
        // Node 1 → node 2, both on board 0.
        b.enqueue_node_packet(1, packet(&cfg, 1, 1, 2));
        let mut delivered = Vec::new();
        for now in 0..100 {
            delivered.extend(b.step(now));
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].dst, 2);
        assert!(delivered[0].labelled);
        assert!(b.is_idle());
    }

    #[test]
    fn remote_packet_lands_in_tx_queue() {
        let cfg = cfg();
        let mut b = Board::new(&cfg, 0);
        // Node 0 → node 12 (board 3).
        b.enqueue_node_packet(0, packet(&cfg, 1, 0, 12));
        for now in 0..100 {
            let d = b.step(now);
            assert!(d.is_empty(), "remote packet must not eject locally");
        }
        assert_eq!(b.tx_queue(3).ready_len(), 1);
        assert_eq!(b.tx_queue(1).ready_len(), 0);
        let pkt = b.tx_depart(100, 3).unwrap();
        assert_eq!(pkt.dst, 12);
        assert_eq!(pkt.src, 0);
        assert_eq!(pkt.flits, cfg.packet_flits);
    }

    #[test]
    fn rx_packet_is_delivered_to_node() {
        let cfg = cfg();
        let mut b = Board::new(&cfg, 2);
        // A packet arrived optically on λ1 destined for node 10 (board 2).
        let rp = ReadyPacket {
            id: PacketId(9),
            src: 1,
            dst: 10,
            injected_at: 3,
            labelled: true,
            flits: cfg.packet_flits,
            vc: 0,
            completed_at: 0,
        };
        b.enqueue_rx_packet(1, rp);
        assert_eq!(b.rx_backlog(1), 1);
        let mut delivered = Vec::new();
        for now in 0..100 {
            delivered.extend(b.step(now));
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].dst, 10);
        assert_eq!(delivered[0].injected_at, 3);
        assert_eq!(b.rx_backlog(1), 0);
    }

    #[test]
    fn tx_credits_recycle_under_sustained_load() {
        let cfg = cfg();
        let mut b = Board::new(&cfg, 0);
        // Push far more packets toward board 1 than the TX queue holds;
        // departing packets must recycle credits so all eventually pass.
        for i in 0..32 {
            b.enqueue_node_packet((i % 4) as u16, packet(&cfg, i, 0, 4));
        }
        let mut departed = 0;
        for now in 0..4000 {
            b.step(now);
            while b.tx_depart(now, 1).is_some() {
                departed += 1;
            }
        }
        assert_eq!(departed, 32);
        assert!(b.is_idle());
    }

    #[test]
    fn buffer_util_tracks_queue_occupancy() {
        let cfg = cfg();
        let mut b = Board::new(&cfg, 0);
        b.enqueue_node_packet(0, packet(&cfg, 1, 0, 4));
        for now in 0..cfg.schedule.window {
            b.step(now);
        }
        b.roll_windows(cfg.schedule.window);
        // The packet sits in tx[1] for most of the window: util > 0.
        assert!(b.buffer_util(1) > 0.0);
        assert_eq!(b.buffer_util(2), 0.0);
        assert_eq!(b.id(), 0);
        assert!(b.ni_backlog(0) == 0);
        assert!(b.router().stats().traversed >= 8);
    }
}
