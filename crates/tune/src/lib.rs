//! Telemetry-driven policy auto-tuning (ROADMAP: "telemetry-driven policy
//! auto-tuning").
//!
//! The paper fixes the DPM operating point (`L_min`/`L_max`/`B_max`, window
//! `R_w`) as constants; the PR-8 scenario matrix shows hostile workloads
//! (incast, Zipf hotspot, collective phases) punishing exactly those
//! constants. This crate closes the loop the metric registry opened, in two
//! layers:
//!
//! * **Offline** ([`sweep`]): enumerate an operating-point grid, join each
//!   point's traced outcome (power, p95 latency, reconfiguration activity
//!   from the per-window counter columns), compute the power/latency Pareto
//!   front per workload and choose the point minimising the
//!   power × p95-latency objective. The `autotune` bench bin drives this
//!   through `run_points_traced_sharded` and emits `TUNE_<sha>.json`.
//! * **Online** ([`controller`]): a deterministic windowed controller that
//!   nudges the live DPM thresholds at `R_w` boundaries from the just-closed
//!   window's link/buffer counters. All state is integer milli-units, so its
//!   decisions are bit-exact across the sequential and board-sharded engines
//!   and across checkpoint/resume (DESIGN.md §15).
//!
//! Everything here is a pure function of its inputs — no clocks, no
//! ambient RNG, no filesystem — which is what the determinism-first test
//! tier (props/golden/checkpoint) pins.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod controller;
pub mod error;
pub mod sweep;

pub use controller::{ControllerSpec, Regime, ThresholdController, WindowObservation};
pub use error::TuneError;
pub use sweep::{choose, improves, pareto_front, OperatingPoint, SweepOutcome, TuneGrid};
