//! Offline operating-point sweeps: grid enumeration, telemetry joins,
//! Pareto fronts and the power × p95-latency choice rule.
//!
//! The `autotune` bench bin runs every [`OperatingPoint`] of a [`TuneGrid`]
//! through the traced sharded runner, joins each run's counters and
//! latency digest into a [`SweepOutcome`], and per workload computes the
//! power/latency [`pareto_front`] and [`choose`]s the point minimising
//! `power_mw × latency_p95` among outcomes that kept delivery intact.
//! Everything is deterministic: grids enumerate in fixed nested order,
//! sorts use `f64::total_cmp`, and ties resolve to the earlier grid point.

use crate::controller::MILLI;
use crate::error::TuneError;
use erapid_telemetry::{counter_column, WindowSnapshot};
use powermgmt::policy::DpmPolicy;

/// One candidate operating point: the DPM threshold triple plus the
/// Lock-Step window `R_w` it runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatingPoint {
    /// `L_min`, milli-units.
    pub l_min_milli: u32,
    /// `L_max`, milli-units.
    pub l_max_milli: u32,
    /// `B_max`, milli-units.
    pub b_max_milli: u32,
    /// Lock-Step window length, cycles.
    pub r_w: u64,
}

impl OperatingPoint {
    /// Quantizes an existing policy (e.g. a paper preset) onto the milli
    /// grid — the baseline the sweep compares against.
    pub fn from_policy(policy: DpmPolicy, r_w: u64) -> Self {
        let q = |v: f64| (v * MILLI as f64).round() as u32;
        Self {
            l_min_milli: q(policy.l_min),
            l_max_milli: q(policy.l_max),
            b_max_milli: q(policy.b_max),
            r_w,
        }
    }

    /// The thresholds as a DPM policy (exact small-integer / 1000.0).
    pub fn dpm_policy(&self) -> DpmPolicy {
        DpmPolicy::new(
            self.l_min_milli as f64 / MILLI as f64,
            self.l_max_milli as f64 / MILLI as f64,
            self.b_max_milli as f64 / MILLI as f64,
        )
    }

    /// Compact display label, e.g. `l500-800 b100 rw2000`.
    pub fn label(&self) -> String {
        format!(
            "l{}-{} b{} rw{}",
            self.l_min_milli, self.l_max_milli, self.b_max_milli, self.r_w
        )
    }
}

/// Axis-product grid of candidate operating points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneGrid {
    /// `L_min` candidates, milli-units.
    pub l_min_milli: Vec<u32>,
    /// `L_max` candidates, milli-units.
    pub l_max_milli: Vec<u32>,
    /// `B_max` candidates, milli-units.
    pub b_max_milli: Vec<u32>,
    /// `R_w` candidates, cycles.
    pub r_w: Vec<u64>,
}

impl TuneGrid {
    /// The CI smoke grid: 2 × 2 straddling the paper's P-B point (more
    /// aggressive scale-down on one side, a laxer upscale trigger on the
    /// other), paper `R_w`.
    pub fn smoke() -> Self {
        Self {
            l_min_milli: vec![750, 850],
            l_max_milli: vec![900],
            b_max_milli: vec![300, 500],
            r_w: vec![2000],
        }
    }

    /// The default offline grid: spans both paper presets plus the
    /// power-saving side (`L_min` above the presets' 0.5/0.7).
    pub fn coarse() -> Self {
        Self {
            l_min_milli: vec![500, 700, 800],
            l_max_milli: vec![750, 900],
            b_max_milli: vec![100, 300, 500],
            r_w: vec![2000],
        }
    }

    /// The fine grid: 4 × 3 × 3 thresholds × 2 window lengths.
    pub fn fine() -> Self {
        Self {
            l_min_milli: vec![300, 500, 700, 800],
            l_max_milli: vec![750, 850, 950],
            b_max_milli: vec![0, 100, 300],
            r_w: vec![1000, 2000],
        }
    }

    /// Enumerates the grid in fixed nested order (`l_min` outermost, `r_w`
    /// innermost), dropping combinations that violate `L_min < L_max`.
    /// Typed errors, never panics: an empty axis is [`TuneError::EmptyGrid`],
    /// out-of-range values are [`TuneError::InvalidSpec`], and a grid whose
    /// every combination has an inverted band is [`TuneError::InvalidBand`].
    pub fn points(&self) -> Result<Vec<OperatingPoint>, TuneError> {
        for (name, axis) in [
            ("l_min", &self.l_min_milli),
            ("l_max", &self.l_max_milli),
            ("b_max", &self.b_max_milli),
        ] {
            if axis.is_empty() {
                return Err(TuneError::EmptyGrid(format!("{name} axis has no values")));
            }
            if let Some(&v) = axis.iter().find(|&&v| v > MILLI) {
                return Err(TuneError::InvalidSpec(format!(
                    "{name} value {v} exceeds {MILLI}‰"
                )));
            }
        }
        if self.r_w.is_empty() {
            return Err(TuneError::EmptyGrid("r_w axis has no values".into()));
        }
        if let Some(&w) = self.r_w.iter().find(|&&w| w == 0) {
            return Err(TuneError::InvalidSpec(format!("r_w value {w} must be > 0")));
        }
        let mut points = Vec::new();
        let mut first_bad: Option<(u32, u32)> = None;
        for &l_min in &self.l_min_milli {
            for &l_max in &self.l_max_milli {
                if l_min >= l_max {
                    first_bad.get_or_insert((l_min, l_max));
                    continue;
                }
                for &b_max in &self.b_max_milli {
                    for &r_w in &self.r_w {
                        points.push(OperatingPoint {
                            l_min_milli: l_min,
                            l_max_milli: l_max,
                            b_max_milli: b_max,
                            r_w,
                        });
                    }
                }
            }
        }
        if points.is_empty() {
            let (l_min_milli, l_max_milli) = match first_bad {
                Some(pair) => pair,
                None => {
                    return Err(TuneError::EmptyGrid(
                        "axis product enumerated no candidates".into(),
                    ))
                }
            };
            return Err(TuneError::InvalidBand {
                l_min_milli,
                l_max_milli,
            });
        }
        Ok(points)
    }
}

/// One operating point's measured outcome, joined from a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The point that produced this outcome.
    pub point: OperatingPoint,
    /// Packets injected over the run.
    pub injected: u64,
    /// Packets delivered over the run.
    pub delivered: u64,
    /// Mean network power, mW.
    pub power_mw: f64,
    /// Mean labelled-packet latency, cycles.
    pub latency_mean: f64,
    /// 95th-percentile labelled-packet latency, cycles.
    pub latency_p95: f64,
    /// Whole-run `dpm_retunes` total from the window columns.
    pub retunes: u64,
    /// Whole-run `dbr_grants` total.
    pub grants: u64,
    /// Whole-run `buffer_crossings` total.
    pub buffer_crossings: u64,
}

impl SweepOutcome {
    /// Joins a run's scalar results with its telemetry export. Typed
    /// errors for every degenerate input: no metric windows
    /// ([`TuneError::EmptyWindows`]), zero injected packets
    /// ([`TuneError::ZeroInjected`]) and a registry missing one of the
    /// joined counters ([`TuneError::MissingCounter`]).
    #[allow(clippy::too_many_arguments)]
    pub fn join(
        point: OperatingPoint,
        injected: u64,
        delivered: u64,
        power_mw: f64,
        latency_mean: f64,
        latency_p95: f64,
        counter_names: &[String],
        windows: &[WindowSnapshot],
    ) -> Result<Self, TuneError> {
        if windows.is_empty() {
            return Err(TuneError::EmptyWindows);
        }
        if injected == 0 {
            return Err(TuneError::ZeroInjected);
        }
        let total = |name: &'static str| -> Result<u64, TuneError> {
            counter_column(counter_names, windows, name)
                .map(|col| col.iter().sum())
                .ok_or(TuneError::MissingCounter(name))
        };
        Ok(Self {
            point,
            injected,
            delivered,
            power_mw,
            latency_mean,
            latency_p95,
            retunes: total("dpm_retunes")?,
            grants: total("dbr_grants")?,
            buffer_crossings: total("buffer_crossings")?,
        })
    }

    /// Delivered fraction; the constructor rejects `injected == 0`, so
    /// the division is always defined.
    pub fn delivered_fraction(&self) -> f64 {
        self.delivered as f64 / self.injected as f64
    }

    /// The scalar objective the chooser minimises: mean power × p95
    /// latency (mW · cycles). Lower is better on both axes, so the
    /// product rewards any non-regressive trade.
    pub fn objective(&self) -> f64 {
        self.power_mw * self.latency_p95
    }
}

/// The non-dominated subset under (power, p95 latency) minimisation,
/// sorted by ascending power (ties by ascending p95, then grid order).
/// NaN measurements order after every finite value (`total_cmp`), so they
/// never shadow a real point.
pub fn pareto_front(outcomes: &[SweepOutcome]) -> Vec<SweepOutcome> {
    let mut sorted: Vec<&SweepOutcome> = outcomes.iter().collect();
    sorted.sort_by(|a, b| {
        a.power_mw
            .total_cmp(&b.power_mw)
            .then(a.latency_p95.total_cmp(&b.latency_p95))
    });
    let mut front: Vec<SweepOutcome> = Vec::new();
    for o in sorted {
        let dominated = front.last().is_some_and(|f| {
            f.latency_p95.total_cmp(&o.latency_p95).is_le()
                // Equal power + equal p95 is a duplicate point, not a
                // front member twice.
                || (f.power_mw.total_cmp(&o.power_mw).is_eq()
                    && f.latency_p95.total_cmp(&o.latency_p95).is_eq())
        });
        if !dominated {
            front.push(o.clone());
        }
    }
    front
}

/// Fraction of the best delivered fraction an outcome must retain to stay
/// eligible for [`choose`]: a point that starves delivery cannot win on a
/// latency statistic computed over the few packets that survived.
pub const DELIVERY_GUARD: f64 = 0.95;

/// Picks the outcome minimising [`SweepOutcome::objective`] among those
/// within [`DELIVERY_GUARD`] of the best delivered fraction. Deterministic:
/// `total_cmp` ordering, ties resolve to the earliest outcome in slice
/// (= grid) order. Typed [`TuneError::NoViablePoint`] when the slice is
/// empty or the guard eliminates everything.
pub fn choose(outcomes: &[SweepOutcome]) -> Result<&SweepOutcome, TuneError> {
    if outcomes.is_empty() {
        return Err(TuneError::NoViablePoint(
            "no outcomes to choose from".into(),
        ));
    }
    let best_frac = outcomes
        .iter()
        .map(SweepOutcome::delivered_fraction)
        .fold(f64::NEG_INFINITY, f64::max);
    let viable = outcomes
        .iter()
        .filter(|o| o.delivered_fraction() >= DELIVERY_GUARD * best_frac);
    viable
        .reduce(|best, o| {
            if o.objective().total_cmp(&best.objective()).is_lt() {
                o
            } else {
                best
            }
        })
        .ok_or_else(|| {
            TuneError::NoViablePoint(format!(
                "delivery guard ({DELIVERY_GUARD} × best fraction {best_frac:.3}) eliminated every outcome"
            ))
        })
}

/// Whether `chosen` improves on the `base`line. Two ways to win, mirroring
/// the [`choose`] eligibility rule:
/// * the baseline starves delivery — its delivered fraction falls outside
///   [`DELIVERY_GUARD`] of the chosen point's — so restoring delivery is
///   the improvement (the baseline's latency statistic is survivor-biased
///   and not comparable);
/// * at comparable delivery, a strictly lower `power × p95` objective.
pub fn improves(chosen: &SweepOutcome, base: &SweepOutcome) -> bool {
    if base.delivered_fraction() < DELIVERY_GUARD * chosen.delivered_fraction() {
        return true;
    }
    chosen.objective().total_cmp(&base.objective()).is_lt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(l_min: u32, l_max: u32) -> OperatingPoint {
        OperatingPoint {
            l_min_milli: l_min,
            l_max_milli: l_max,
            b_max_milli: 300,
            r_w: 2000,
        }
    }

    fn outcome(power: f64, p95: f64, delivered: u64) -> SweepOutcome {
        SweepOutcome {
            point: point(500, 900),
            injected: 1000,
            delivered,
            power_mw: power,
            latency_mean: p95 / 2.0,
            latency_p95: p95,
            retunes: 0,
            grants: 0,
            buffer_crossings: 0,
        }
    }

    #[test]
    fn grid_enumerates_in_fixed_order_and_filters_bands() {
        let g = TuneGrid {
            l_min_milli: vec![500, 900],
            l_max_milli: vec![800],
            b_max_milli: vec![0, 300],
            r_w: vec![2000],
        };
        // (900, 800) is filtered; (500, 800) survives with both b_max.
        let pts = g.points().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], point(500, 800).with_b(0));
        assert_eq!(pts[1], point(500, 800).with_b(300));
    }

    impl OperatingPoint {
        fn with_b(mut self, b: u32) -> Self {
            self.b_max_milli = b;
            self
        }
    }

    #[test]
    fn all_inverted_bands_is_a_typed_error() {
        let g = TuneGrid {
            l_min_milli: vec![900, 950],
            l_max_milli: vec![700],
            b_max_milli: vec![300],
            r_w: vec![2000],
        };
        assert_eq!(
            g.points(),
            Err(TuneError::InvalidBand {
                l_min_milli: 900,
                l_max_milli: 700
            })
        );
    }

    #[test]
    fn empty_axes_and_bad_values_are_typed_errors() {
        let mut g = TuneGrid::coarse();
        g.b_max_milli.clear();
        assert!(matches!(g.points(), Err(TuneError::EmptyGrid(_))));
        let mut g = TuneGrid::coarse();
        g.r_w.clear();
        assert!(matches!(g.points(), Err(TuneError::EmptyGrid(_))));
        let mut g = TuneGrid::coarse();
        g.l_max_milli.push(1200);
        assert!(matches!(g.points(), Err(TuneError::InvalidSpec(_))));
        let mut g = TuneGrid::coarse();
        g.r_w = vec![0];
        assert!(matches!(g.points(), Err(TuneError::InvalidSpec(_))));
    }

    #[test]
    fn preset_grids_enumerate() {
        assert_eq!(TuneGrid::smoke().points().unwrap().len(), 4);
        // coarse: (800, 750) is the only inverted band → 5 × 3 survive.
        assert_eq!(TuneGrid::coarse().points().unwrap().len(), 15);
        // fine: 300/500/700 clear every l_max, 800 only 850/950 →
        // 11 bands × 3 b_max × 2 r_w.
        assert_eq!(TuneGrid::fine().points().unwrap().len(), 66);
    }

    #[test]
    fn baseline_quantizes_paper_policies() {
        let p = OperatingPoint::from_policy(DpmPolicy::power_bandwidth(), 2000);
        assert_eq!(
            (p.l_min_milli, p.l_max_milli, p.b_max_milli),
            (700, 900, 300)
        );
        assert_eq!(p.dpm_policy(), DpmPolicy::power_bandwidth());
        assert_eq!(p.label(), "l700-900 b300 rw2000");
    }

    #[test]
    fn join_errors_on_empty_windows_and_zero_injected() {
        let names: Vec<String> = vec!["dpm_retunes".into()];
        let err = SweepOutcome::join(point(500, 900), 10, 10, 1.0, 1.0, 1.0, &names, &[]);
        assert_eq!(err, Err(TuneError::EmptyWindows));
        let w = vec![WindowSnapshot {
            window: 1,
            counters: vec![0],
            gauges: vec![],
        }];
        let err = SweepOutcome::join(point(500, 900), 0, 0, 1.0, 1.0, 1.0, &names, &w);
        assert_eq!(err, Err(TuneError::ZeroInjected));
    }

    #[test]
    fn join_errors_on_missing_counter_and_sums_columns() {
        let names: Vec<String> = ["dpm_retunes", "dbr_grants", "buffer_crossings"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let w = |a: u64, b: u64, c: u64| WindowSnapshot {
            window: 0,
            counters: vec![a, b, c],
            gauges: vec![],
        };
        let windows = vec![w(1, 2, 3), w(4, 5, 6)];
        let o = SweepOutcome::join(point(500, 900), 100, 90, 2.0, 50.0, 80.0, &names, &windows)
            .unwrap();
        assert_eq!((o.retunes, o.grants, o.buffer_crossings), (5, 7, 9));
        assert!((o.delivered_fraction() - 0.9).abs() < 1e-12);
        assert!((o.objective() - 160.0).abs() < 1e-12);
        let short: Vec<String> = vec!["dpm_retunes".into()];
        let err = SweepOutcome::join(point(500, 900), 100, 90, 2.0, 50.0, 80.0, &short, &windows);
        assert_eq!(err, Err(TuneError::MissingCounter("dbr_grants")));
    }

    #[test]
    fn pareto_front_is_sorted_and_non_dominated() {
        let outcomes = vec![
            outcome(3.0, 100.0, 1000), // dominated by (2.0, 90)
            outcome(2.0, 90.0, 1000),
            outcome(1.0, 200.0, 1000),
            outcome(4.0, 50.0, 1000),
            outcome(2.0, 90.0, 1000), // exact duplicate
        ];
        let front = pareto_front(&outcomes);
        let coords: Vec<(f64, f64)> = front.iter().map(|o| (o.power_mw, o.latency_p95)).collect();
        assert_eq!(coords, vec![(1.0, 200.0), (2.0, 90.0), (4.0, 50.0)]);
        // Sorted ascending power, strictly descending p95 (non-dominated).
        for pair in front.windows(2) {
            assert!(pair[0].power_mw < pair[1].power_mw);
            assert!(pair[0].latency_p95 > pair[1].latency_p95);
        }
    }

    #[test]
    fn nan_outcomes_never_shadow_real_points() {
        let outcomes = vec![outcome(f64::NAN, f64::NAN, 1000), outcome(2.0, 90.0, 1000)];
        let front = pareto_front(&outcomes);
        assert_eq!(front[0].power_mw, 2.0);
        let chosen = choose(&outcomes).unwrap();
        assert_eq!(chosen.power_mw, 2.0);
    }

    #[test]
    fn choose_minimises_objective_with_delivery_guard() {
        let outcomes = vec![
            outcome(2.0, 100.0, 1000), // objective 200
            outcome(1.0, 150.0, 1000), // objective 150 → winner
            outcome(0.1, 100.0, 100),  // cheapest but starved: guarded out
        ];
        let chosen = choose(&outcomes).unwrap();
        assert_eq!(chosen.power_mw, 1.0);
        assert!(matches!(choose(&[]), Err(TuneError::NoViablePoint(_))));
    }

    #[test]
    fn improvement_is_objective_or_restored_delivery() {
        let base = outcome(2.0, 100.0, 1000); // objective 200
                                              // Lower objective at equal delivery: improvement.
        assert!(improves(&outcome(1.5, 100.0, 1000), &base));
        // Equal objective: not an improvement (ties keep the baseline).
        assert!(!improves(&outcome(2.0, 100.0, 1000), &base));
        // Worse objective at comparable delivery: not an improvement.
        assert!(!improves(&outcome(2.0, 120.0, 1000), &base));
        // Baseline starved delivery: even a worse objective wins, because
        // the baseline's p95 is survivor-biased and not comparable.
        let starved = outcome(2.0, 100.0, 480);
        assert!(improves(&outcome(2.0, 150.0, 560), &starved));
        // NaN objectives never count as an improvement.
        assert!(!improves(&outcome(f64::NAN, 100.0, 1000), &base));
    }

    #[test]
    fn choose_ties_resolve_to_grid_order() {
        let outcomes = vec![outcome(1.0, 100.0, 1000), outcome(2.0, 50.0, 1000)];
        // Equal objectives (100): the earlier outcome wins.
        let chosen = choose(&outcomes).unwrap();
        assert_eq!(chosen.power_mw, 1.0);
    }
}
