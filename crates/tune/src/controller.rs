//! The online windowed threshold controller (DESIGN.md §15).
//!
//! At every Power-kind `R_w` boundary the engine hands the controller one
//! [`WindowObservation`] — integer counts of lit, pressured and idle
//! channels over the just-closed window, gathered in canonical ascending
//! `(dest, wavelength)` order — and the controller nudges the live DPM
//! thresholds one [`ControllerSpec::step_milli`] toward the regime the
//! window revealed:
//!
//! * **Congested** (pressured fraction above `hot_frac_milli`): lower
//!   `L_max` and `B_max` so up-scaling triggers sooner, and lower `L_min`
//!   so links stop down-scaling away bandwidth the queues need.
//! * **Idle** (idle fraction above `idle_frac_milli`): raise `L_min` so
//!   links shed power sooner, and drift `L_max`/`B_max` back toward their
//!   ceilings (the paper's aggressive power-saving posture).
//! * **Hold** otherwise (or when no channel is lit).
//!
//! All state is integer milli-units (`0..=1000`); every decision is a pure
//! function of `(spec, current thresholds, observation)` with no floats,
//! clocks or RNG — which is what makes the controller bit-exact across the
//! sequential and board-sharded engines and across checkpoint/resume. The
//! step/clamp arithmetic maintains three invariants from any reachable
//! state: `l_min + min_gap ≤ l_max`, `l_min_floor ≤ l_min`,
//! `l_max ≤ l_max_ceil`, and `b_max_floor ≤ b_max ≤ b_max_ceil`.

use crate::error::TuneError;
use powermgmt::policy::DpmPolicy;

/// Milli-unit denominator: thresholds live in `0..=1000`.
pub const MILLI: u32 = 1000;

/// Static controller parameters (plain data; rides in `SystemConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Initial `L_min`, milli-units.
    pub l_min_milli: u32,
    /// Initial `L_max`, milli-units.
    pub l_max_milli: u32,
    /// Initial `B_max`, milli-units.
    pub b_max_milli: u32,
    /// Per-boundary adjustment step, milli-units (≥ 1).
    pub step_milli: u32,
    /// Minimum `L_max − L_min` band width the controller preserves.
    pub min_gap_milli: u32,
    /// `L_min` never drops below this.
    pub l_min_floor_milli: u32,
    /// `L_max` never rises above this.
    pub l_max_ceil_milli: u32,
    /// `B_max` never drops below this.
    pub b_max_floor_milli: u32,
    /// `B_max` never rises above this.
    pub b_max_ceil_milli: u32,
    /// Pressured-channel fraction (milli) above which the window counts as
    /// congested.
    pub hot_frac_milli: u32,
    /// Idle-channel fraction (milli) above which the window counts as idle.
    pub idle_frac_milli: u32,
}

impl ControllerSpec {
    /// Default dynamics around an initial `(L_min, L_max, B_max)` point:
    /// 25‰ steps, a 100‰ minimum band, and regime triggers at 25 %
    /// pressured / 50 % idle. The band/floor/ceiling bounds widen to admit
    /// the seed, so *any* point with `L_min < L_max` (every sweep
    /// candidate) yields a spec that validates — narrow seeds just get a
    /// correspondingly narrow guaranteed band.
    pub fn around_milli(l_min_milli: u32, l_max_milli: u32, b_max_milli: u32) -> Self {
        Self {
            l_min_milli,
            l_max_milli,
            b_max_milli,
            step_milli: 25,
            min_gap_milli: 100.min(l_max_milli.saturating_sub(l_min_milli)),
            l_min_floor_milli: 100.min(l_min_milli),
            l_max_ceil_milli: 950.max(l_max_milli),
            b_max_floor_milli: 0,
            b_max_ceil_milli: 500.max(b_max_milli),
            hot_frac_milli: 250,
            idle_frac_milli: 500,
        }
    }

    /// Seeded from the paper's P-B constants (`0.7 / 0.9 / 0.3`).
    pub fn paper_pb() -> Self {
        Self::around_milli(700, 900, 300)
    }

    /// Seeded from the paper's P-NB constants (`0.5 / 0.7 / 0.0`).
    pub fn paper_pnb() -> Self {
        Self::around_milli(500, 700, 0)
    }

    /// Checks range and ordering, reporting the first problem as a typed
    /// [`TuneError`] (construction-time contract for `SystemConfig`).
    pub fn try_validate(&self) -> Result<(), TuneError> {
        let milli = [
            ("l_min", self.l_min_milli),
            ("l_max", self.l_max_milli),
            ("b_max", self.b_max_milli),
            ("min_gap", self.min_gap_milli),
            ("l_min_floor", self.l_min_floor_milli),
            ("l_max_ceil", self.l_max_ceil_milli),
            ("b_max_floor", self.b_max_floor_milli),
            ("b_max_ceil", self.b_max_ceil_milli),
            ("hot_frac", self.hot_frac_milli),
            ("idle_frac", self.idle_frac_milli),
        ];
        for (name, v) in milli {
            if v > MILLI {
                return Err(TuneError::InvalidSpec(format!(
                    "{name}_milli = {v} exceeds {MILLI}"
                )));
            }
        }
        if self.step_milli == 0 {
            return Err(TuneError::InvalidSpec("step_milli must be nonzero".into()));
        }
        if self.l_min_milli + self.min_gap_milli > self.l_max_milli {
            return Err(TuneError::InvalidBand {
                l_min_milli: self.l_min_milli,
                l_max_milli: self.l_max_milli,
            });
        }
        if self.l_min_floor_milli > self.l_min_milli {
            return Err(TuneError::InvalidSpec(
                "l_min starts below its own floor".into(),
            ));
        }
        if self.l_max_milli > self.l_max_ceil_milli {
            return Err(TuneError::InvalidSpec(
                "l_max starts above its own ceiling".into(),
            ));
        }
        if self.b_max_floor_milli > self.b_max_milli || self.b_max_milli > self.b_max_ceil_milli {
            return Err(TuneError::InvalidSpec(
                "b_max starts outside its floor..ceiling band".into(),
            ));
        }
        Ok(())
    }
}

/// One just-closed window's channel counts, in canonical scan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowObservation {
    /// Lit, owned channels scanned.
    pub lit: u32,
    /// Channels whose buffer occupancy exceeded the controller's current
    /// `B_max`.
    pub pressured: u32,
    /// Channels whose link utilization sat below the controller's current
    /// `L_min`.
    pub idle: u32,
}

/// Which regime the controller judged a window to be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Neither trigger fired (or nothing was lit): thresholds held.
    Hold,
    /// Pressured fraction above `hot_frac_milli`: thresholds eased toward
    /// bandwidth.
    Congested,
    /// Idle fraction above `idle_frac_milli`: thresholds drifted toward
    /// power saving.
    Idle,
}

/// The live controller: spec plus current milli thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdController {
    spec: ControllerSpec,
    l_min: u32,
    l_max: u32,
    b_max: u32,
    /// Boundaries at which at least one threshold moved.
    moves: u64,
    /// Power-boundary observations consumed.
    windows_seen: u64,
}

impl ThresholdController {
    /// Builds a controller at the spec's initial operating point. The spec
    /// must validate (see [`ControllerSpec::try_validate`]).
    pub fn new(spec: ControllerSpec) -> Result<Self, TuneError> {
        spec.try_validate()?;
        Ok(Self {
            spec,
            l_min: spec.l_min_milli,
            l_max: spec.l_max_milli,
            b_max: spec.b_max_milli,
            moves: 0,
            windows_seen: 0,
        })
    }

    /// The static parameters.
    pub fn spec(&self) -> &ControllerSpec {
        &self.spec
    }

    /// Current `(L_min, L_max, B_max)`, milli-units.
    pub fn thresholds_milli(&self) -> (u32, u32, u32) {
        (self.l_min, self.l_max, self.b_max)
    }

    /// Boundaries at which at least one threshold moved.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Power-boundary observations consumed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// The current thresholds as the policy the DPM loop applies. Exact:
    /// small-integer / 1000.0 is one correctly-rounded IEEE operation, so
    /// equal milli state ⇒ bit-equal policy on every platform.
    pub fn policy(&self) -> DpmPolicy {
        DpmPolicy::new(
            self.l_min as f64 / MILLI as f64,
            self.l_max as f64 / MILLI as f64,
            self.b_max as f64 / MILLI as f64,
        )
    }

    /// Consumes one window's counts; returns the regime and moves the
    /// thresholds one step with clamps that keep every invariant. Pure in
    /// `(self, obs)` — no clocks, floats or RNG.
    pub fn observe_window(&mut self, obs: WindowObservation) -> Regime {
        self.windows_seen += 1;
        if obs.lit == 0 {
            return Regime::Hold;
        }
        let s = self.spec;
        let lit = obs.lit as u64;
        let hot = obs.pressured as u64 * MILLI as u64 > lit * s.hot_frac_milli as u64;
        let idle = obs.idle as u64 * MILLI as u64 > lit * s.idle_frac_milli as u64;
        let before = (self.l_min, self.l_max, self.b_max);
        // A window can be pressured and idle at once (bimodal traffic);
        // congestion wins — latency damage is immediate, power drift is not.
        let regime = if hot {
            self.l_max = self
                .l_max
                .saturating_sub(s.step_milli)
                .max(self.l_min + s.min_gap_milli);
            self.l_min = self
                .l_min
                .saturating_sub(s.step_milli)
                .max(s.l_min_floor_milli);
            self.b_max = self
                .b_max
                .saturating_sub(s.step_milli)
                .max(s.b_max_floor_milli);
            Regime::Congested
        } else if idle {
            self.l_min = (self.l_min + s.step_milli)
                .min(self.l_max.saturating_sub(s.min_gap_milli))
                .max(self.l_min);
            self.l_max = (self.l_max + s.step_milli).min(s.l_max_ceil_milli);
            self.b_max = (self.b_max + s.step_milli).min(s.b_max_ceil_milli);
            Regime::Idle
        } else {
            Regime::Hold
        };
        if (self.l_min, self.l_max, self.b_max) != before {
            self.moves += 1;
        }
        debug_assert!(self.l_min + s.min_gap_milli <= self.l_max);
        debug_assert!(self.l_min >= s.l_min_floor_milli && self.l_max <= s.l_max_ceil_milli);
        debug_assert!(self.b_max >= s.b_max_floor_milli && self.b_max <= s.b_max_ceil_milli);
        regime
    }

    /// Serializes the mutable state (the spec is config-derived).
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.tag(b"TUNC");
        w.u32(self.l_min);
        w.u32(self.l_max);
        w.u32(self.b_max);
        w.u64(self.moves);
        w.u64(self.windows_seen);
    }

    /// Overlays checkpointed state; thresholds violating this spec's
    /// invariants are a typed mismatch, never trusted.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        use desim::snap::SnapError;
        r.tag(b"TUNC")?;
        let l_min = r.u32()?;
        let l_max = r.u32()?;
        let b_max = r.u32()?;
        let moves = r.u64()?;
        let windows_seen = r.u64()?;
        let s = self.spec;
        let ok = l_min + s.min_gap_milli <= l_max
            && l_min >= s.l_min_floor_milli
            && l_max <= s.l_max_ceil_milli
            && (s.b_max_floor_milli..=s.b_max_ceil_milli).contains(&b_max);
        if !ok {
            return Err(SnapError::Mismatch(format!(
                "controller thresholds ({l_min}, {l_max}, {b_max})‰ violate this spec's bounds"
            )));
        }
        self.l_min = l_min;
        self.l_max = l_max;
        self.b_max = b_max;
        self.moves = moves;
        self.windows_seen = windows_seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::snap::{SnapReader, SnapWriter};

    fn ctrl() -> ThresholdController {
        ThresholdController::new(ControllerSpec::paper_pb()).unwrap()
    }

    #[test]
    fn paper_seeds_match_mode_constants() {
        let pb = ThresholdController::new(ControllerSpec::paper_pb())
            .unwrap()
            .policy();
        assert_eq!((pb.l_min, pb.l_max, pb.b_max), (0.7, 0.9, 0.3));
        let pnb = ThresholdController::new(ControllerSpec::paper_pnb())
            .unwrap()
            .policy();
        assert_eq!((pnb.l_min, pnb.l_max, pnb.b_max), (0.5, 0.7, 0.0));
    }

    #[test]
    fn around_milli_admits_any_valid_band() {
        // Narrow (50‰) and extreme seeds must all produce validating
        // specs — these are sweep-chosen points seeding the online stage.
        for (l_min, l_max, b_max) in [(700, 750, 300), (50, 150, 0), (800, 950, 800), (0, 25, 0)] {
            let s = ControllerSpec::around_milli(l_min, l_max, b_max);
            assert!(s.try_validate().is_ok(), "({l_min}, {l_max}, {b_max})");
        }
        // The paper presets keep the canonical 100‰ band and bounds.
        let pb = ControllerSpec::paper_pb();
        assert_eq!(pb.min_gap_milli, 100);
        assert_eq!(pb.l_min_floor_milli, 100);
        assert_eq!(pb.l_max_ceil_milli, 950);
        assert_eq!(pb.b_max_ceil_milli, 500);
    }

    #[test]
    fn congestion_eases_thresholds_down() {
        let mut c = ctrl();
        let obs = WindowObservation {
            lit: 10,
            pressured: 8,
            idle: 0,
        };
        assert_eq!(c.observe_window(obs), Regime::Congested);
        assert_eq!(c.thresholds_milli(), (675, 875, 275));
        assert_eq!(c.moves(), 1);
    }

    #[test]
    fn idle_drifts_toward_power_saving() {
        let mut c = ctrl();
        let obs = WindowObservation {
            lit: 10,
            pressured: 0,
            idle: 9,
        };
        assert_eq!(c.observe_window(obs), Regime::Idle);
        assert_eq!(c.thresholds_milli(), (725, 925, 325));
    }

    #[test]
    fn mixed_window_prefers_congestion() {
        let mut c = ctrl();
        let obs = WindowObservation {
            lit: 10,
            pressured: 10,
            idle: 10,
        };
        assert_eq!(c.observe_window(obs), Regime::Congested);
    }

    #[test]
    fn dark_window_holds() {
        let mut c = ctrl();
        assert_eq!(c.observe_window(WindowObservation::default()), Regime::Hold);
        assert_eq!(c.thresholds_milli(), (700, 900, 300));
        assert_eq!(c.moves(), 0);
        assert_eq!(c.windows_seen(), 1);
    }

    #[test]
    fn clamps_hold_under_sustained_pressure() {
        let mut c = ctrl();
        let hot = WindowObservation {
            lit: 4,
            pressured: 4,
            idle: 0,
        };
        for _ in 0..200 {
            c.observe_window(hot);
        }
        let s = *c.spec();
        let (l_min, l_max, b_max) = c.thresholds_milli();
        assert_eq!(l_min, s.l_min_floor_milli);
        assert_eq!(l_max, s.l_min_floor_milli + s.min_gap_milli);
        assert_eq!(b_max, s.b_max_floor_milli);
        let cold = WindowObservation {
            lit: 4,
            pressured: 0,
            idle: 4,
        };
        for _ in 0..200 {
            c.observe_window(cold);
        }
        let (l_min, l_max, b_max) = c.thresholds_milli();
        assert_eq!(l_max, s.l_max_ceil_milli);
        assert_eq!(l_min, s.l_max_ceil_milli - s.min_gap_milli);
        assert_eq!(b_max, s.b_max_ceil_milli);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let mut s = ControllerSpec::paper_pb();
        s.l_min_milli = 900;
        s.l_max_milli = 700;
        assert!(matches!(
            ThresholdController::new(s),
            Err(TuneError::InvalidBand { .. })
        ));
        let mut s = ControllerSpec::paper_pb();
        s.step_milli = 0;
        assert!(matches!(
            ThresholdController::new(s),
            Err(TuneError::InvalidSpec(_))
        ));
        let mut s = ControllerSpec::paper_pb();
        s.b_max_ceil_milli = 100;
        assert!(matches!(
            ThresholdController::new(s),
            Err(TuneError::InvalidSpec(_))
        ));
        let mut s = ControllerSpec::paper_pb();
        s.l_max_ceil_milli = 1500;
        assert!(matches!(
            ThresholdController::new(s),
            Err(TuneError::InvalidSpec(_))
        ));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut c = ctrl();
        for i in 0..20u32 {
            c.observe_window(WindowObservation {
                lit: 8,
                pressured: if i % 3 == 0 { 8 } else { 0 },
                idle: if i % 3 == 1 { 8 } else { 0 },
            });
        }
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut back = ctrl();
        back.load_state(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn snapshot_violating_bounds_is_refused() {
        let mut w = SnapWriter::new();
        w.tag(b"TUNC");
        w.u32(900); // l_min above l_max - gap
        w.u32(920);
        w.u32(300);
        w.u64(0);
        w.u64(0);
        let bytes = w.into_bytes();
        let mut c = ctrl();
        assert!(c.load_state(&mut SnapReader::new(&bytes)).is_err());
    }
}
