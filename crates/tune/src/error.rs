//! Typed auto-tuning errors.
//!
//! Every malformed input the sweep joiner or grid builder can receive — an
//! empty grid, a band where `L_min ≥ L_max`, a traced run that produced no
//! windows or injected nothing — is a [`TuneError`], never a panic. The
//! crate denies `clippy::unwrap_used`/`expect_used` to keep that contract
//! honest.

use std::fmt;

/// What went wrong while building a grid, joining a traced outcome, or
/// choosing an operating point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// A grid axis was empty, so no operating point can be enumerated.
    EmptyGrid(String),
    /// Every candidate violated the `L_min < L_max` band ordering (the
    /// first offender is reported in milli-units).
    InvalidBand {
        /// Offending lower threshold, milli-units.
        l_min_milli: u32,
        /// Offending upper threshold, milli-units.
        l_max_milli: u32,
    },
    /// A controller spec or grid value was out of range (thresholds are
    /// milli-units in `0..=1000`; steps and windows must be nonzero).
    InvalidSpec(String),
    /// The traced run rolled no metric windows, so there is nothing to
    /// join (horizon shorter than one `R_w`, or tracing disabled).
    EmptyWindows,
    /// The run injected zero packets — its latency and delivery columns
    /// are meaningless, and a ratio over them would divide by zero.
    ZeroInjected,
    /// The export lacks a counter the joiner needs (wrong registry shape).
    MissingCounter(&'static str),
    /// No sweep outcome survived the delivery guard (or the slice was
    /// empty), so no operating point can be chosen.
    NoViablePoint(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptyGrid(what) => write!(f, "empty tuning grid: {what}"),
            TuneError::InvalidBand {
                l_min_milli,
                l_max_milli,
            } => write!(
                f,
                "invalid threshold band: L_min {l_min_milli}‰ must lie strictly below L_max {l_max_milli}‰"
            ),
            TuneError::InvalidSpec(what) => write!(f, "invalid tuning spec: {what}"),
            TuneError::EmptyWindows => {
                write!(f, "traced run exported no metric windows to join")
            }
            TuneError::ZeroInjected => {
                write!(f, "run injected zero packets; outcome carries no signal")
            }
            TuneError::MissingCounter(name) => {
                write!(f, "telemetry export lacks required counter {name:?}")
            }
            TuneError::NoViablePoint(what) => write!(f, "no viable operating point: {what}"),
        }
    }
}

impl std::error::Error for TuneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = TuneError::InvalidBand {
            l_min_milli: 900,
            l_max_milli: 700,
        };
        let msg = e.to_string();
        assert!(msg.contains("900"));
        assert!(msg.contains("700"));
        assert!(TuneError::MissingCounter("dpm_retunes")
            .to_string()
            .contains("dpm_retunes"));
        assert!(TuneError::EmptyGrid("l_max axis".into())
            .to_string()
            .contains("l_max axis"));
    }
}
