//! Wavelength and board identifiers.
//!
//! Wavelengths in E-RAPID are indexed `λ_0 .. λ_{W-1}` where `W = B` (the
//! board count): "if Λ = λ_0, λ_1, ... λ_{W-1} is the total number of
//! wavelengths associated with the system, this is exactly the number of
//! wavelengths transmitted/received from each system board" (§3.2).

use std::fmt;

/// A wavelength index `λ_i` within the system's WDM set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wavelength(pub u16);

impl Wavelength {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A system board identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoardId(pub u16);

impl BoardId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BoardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// The WDM wavelength set of a system with `boards` boards: one wavelength
/// per board offset, `λ_0` being the (unused) self-offset.
#[derive(Debug, Clone)]
pub struct WavelengthSet {
    count: u16,
}

impl WavelengthSet {
    /// Creates the set for a system of `boards` boards.
    pub fn for_boards(boards: u16) -> Self {
        assert!(boards >= 2, "a system needs at least 2 boards");
        Self { count: boards }
    }

    /// Number of wavelengths (`W = B`).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Always false: a valid set has ≥ 2 wavelengths.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates all wavelengths `λ_0 .. λ_{W-1}`.
    pub fn iter(&self) -> impl Iterator<Item = Wavelength> {
        (0..self.count).map(Wavelength)
    }

    /// Iterates the remote-traffic wavelengths `λ_1 .. λ_{W-1}` (`λ_0` is
    /// the self-offset and carries no inter-board traffic under static RWA).
    pub fn remote(&self) -> impl Iterator<Item = Wavelength> {
        (1..self.count).map(Wavelength)
    }

    /// True if `w` belongs to this set.
    pub fn contains(&self, w: Wavelength) -> bool {
        w.0 < self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Wavelength(3).to_string(), "λ3");
        assert_eq!(BoardId(7).to_string(), "B7");
        assert_eq!(Wavelength(3).index(), 3);
        assert_eq!(BoardId(7).index(), 7);
    }

    #[test]
    fn set_size_equals_board_count() {
        let set = WavelengthSet::for_boards(8);
        assert_eq!(set.len(), 8);
        assert_eq!(set.iter().count(), 8);
        assert_eq!(set.remote().count(), 7);
        assert!(set.contains(Wavelength(7)));
        assert!(!set.contains(Wavelength(8)));
        assert!(!set.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2 boards")]
    fn single_board_system_rejected() {
        WavelengthSet::for_boards(1);
    }

    #[test]
    fn remote_skips_lambda_zero() {
        let set = WavelengthSet::for_boards(4);
        let remote: Vec<u16> = set.remote().map(|w| w.0).collect();
        assert_eq!(remote, vec![1, 2, 3]);
    }
}
