//! Fiber propagation delay.
//!
//! Board-to-board fibers in a rack-scale E-RAPID are metres long; at
//! ~5 ns/m (group index ≈ 1.5) a 2 m fiber adds ~10 ns ≈ 4 router cycles.
//! The delay is constant per fiber and independent of bit rate.

use desim::Cycle;

/// Speed of light in vacuum, m/s.
const C_VACUUM: f64 = 2.99792458e8;

/// A point-to-point fiber with fixed propagation delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fiber {
    length_m: f64,
    group_index: f64,
}

impl Fiber {
    /// Creates a fiber of `length_m` metres with the given group index.
    pub fn new(length_m: f64, group_index: f64) -> Self {
        assert!(length_m >= 0.0);
        assert!(group_index >= 1.0);
        Self {
            length_m,
            group_index,
        }
    }

    /// Standard single-mode fiber (group index 1.468) of the given length.
    pub fn smf(length_m: f64) -> Self {
        Self::new(length_m, 1.468)
    }

    /// Default rack-scale board-to-board fiber: 2 m SMF.
    pub fn rack_scale() -> Self {
        Self::smf(2.0)
    }

    /// Length in metres.
    pub fn length_m(&self) -> f64 {
        self.length_m
    }

    /// One-way propagation delay in nanoseconds.
    pub fn delay_ns(&self) -> f64 {
        self.length_m * self.group_index / C_VACUUM * 1.0e9
    }

    /// One-way propagation delay in (rounded-up) router cycles.
    pub fn delay_cycles(&self) -> Cycle {
        desim::ns_to_cycles(self.delay_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_scale_delay_is_a_few_cycles() {
        let f = Fiber::rack_scale();
        // 2 m at n=1.468: ~9.8 ns → 4 cycles at 2.5 ns/cycle.
        assert!((f.delay_ns() - 9.79).abs() < 0.05, "{}", f.delay_ns());
        assert_eq!(f.delay_cycles(), 4);
        assert_eq!(f.length_m(), 2.0);
    }

    #[test]
    fn zero_length_fiber_is_free() {
        let f = Fiber::smf(0.0);
        assert_eq!(f.delay_cycles(), 0);
    }

    #[test]
    fn delay_scales_linearly() {
        let short = Fiber::smf(1.0);
        let long = Fiber::smf(10.0);
        assert!((long.delay_ns() / short.delay_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn sub_unity_index_rejected() {
        Fiber::new(1.0, 0.5);
    }
}
