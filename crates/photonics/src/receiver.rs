//! Optical receivers with CDR re-lock behaviour.
//!
//! Each board has one receiver per wavelength ("the multiplexed signal
//! received at the board is demultiplexed such that every optical receiver
//! detects a wavelength", §2.1). The receiver's CDR is locked to a bit
//! rate; when the transmitter scales its rate it sends a bit-rate control
//! packet and the receiver re-locks, during which the link is unusable
//! (§3.1: the link is conservatively disabled for 65 cycles, the slow
//! voltage-transition bound from Chen et al.).

use crate::bitrate::RateLevel;
use crate::wavelength::Wavelength;
use desim::Cycle;

/// Receiver state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverState {
    /// Powered down (laser on the other end is off).
    Off,
    /// Locked to the current bit rate and able to receive.
    Locked,
    /// Re-locking after a bit-rate change; usable again at the stored cycle.
    Relocking {
        /// First cycle at which the receiver is locked again.
        until: Cycle,
    },
}

/// One wavelength's receiver on a board.
#[derive(Debug, Clone)]
pub struct Receiver {
    wavelength: Wavelength,
    state: ReceiverState,
    level: RateLevel,
    relocks: u64,
}

impl Receiver {
    /// Creates a powered-down receiver for `wavelength` at the given
    /// initial rate level.
    pub fn new(wavelength: Wavelength, level: RateLevel) -> Self {
        Self {
            wavelength,
            state: ReceiverState::Off,
            level,
            relocks: 0,
        }
    }

    /// The wavelength this receiver detects.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Current state.
    pub fn state(&self) -> ReceiverState {
        self.state
    }

    /// Current rate level the CDR is (re-)locking to.
    pub fn level(&self) -> RateLevel {
        self.level
    }

    /// Number of re-lock events so far.
    pub fn relock_count(&self) -> u64 {
        self.relocks
    }

    /// Powers the receiver on (locked immediately at its current level —
    /// power-up lock time is folded into the transition penalty charged at
    /// the transmitter side).
    pub fn power_on(&mut self) {
        if self.state == ReceiverState::Off {
            self.state = ReceiverState::Locked;
        }
    }

    /// Powers the receiver off.
    pub fn power_off(&mut self) {
        self.state = ReceiverState::Off;
    }

    /// Handles a bit-rate control packet: begin re-locking to `level`,
    /// unusable until `now + relock_cycles`.
    pub fn retune(&mut self, now: Cycle, level: RateLevel, relock_cycles: Cycle) {
        if self.state == ReceiverState::Off {
            // A control packet on a dark wavelength is a protocol error in
            // the model; tolerate it by just recording the level.
            self.level = level;
            return;
        }
        self.level = level;
        self.relocks += 1;
        self.state = ReceiverState::Relocking {
            until: now + relock_cycles,
        };
    }

    /// Advances time: resolves re-lock completion.
    pub fn tick(&mut self, now: Cycle) {
        if let ReceiverState::Relocking { until } = self.state {
            if now >= until {
                self.state = ReceiverState::Locked;
            }
        }
    }

    /// True when a data flit can be accepted this cycle.
    pub fn can_receive(&self, now: Cycle) -> bool {
        match self.state {
            ReceiverState::Locked => true,
            ReceiverState::Relocking { until } => now >= until,
            ReceiverState::Off => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_off_and_powers_on() {
        let mut r = Receiver::new(Wavelength(1), RateLevel(2));
        assert_eq!(r.state(), ReceiverState::Off);
        assert!(!r.can_receive(0));
        r.power_on();
        assert_eq!(r.state(), ReceiverState::Locked);
        assert!(r.can_receive(0));
        assert_eq!(r.wavelength(), Wavelength(1));
    }

    #[test]
    fn retune_blocks_until_relock() {
        let mut r = Receiver::new(Wavelength(0), RateLevel(2));
        r.power_on();
        r.retune(100, RateLevel(1), 65);
        assert_eq!(r.level(), RateLevel(1));
        assert!(!r.can_receive(100));
        assert!(!r.can_receive(164));
        assert!(r.can_receive(165));
        r.tick(165);
        assert_eq!(r.state(), ReceiverState::Locked);
        assert_eq!(r.relock_count(), 1);
    }

    #[test]
    fn retune_while_off_records_level_only() {
        let mut r = Receiver::new(Wavelength(0), RateLevel(2));
        r.retune(0, RateLevel(0), 65);
        assert_eq!(r.state(), ReceiverState::Off);
        assert_eq!(r.level(), RateLevel(0));
        assert_eq!(r.relock_count(), 0);
    }

    #[test]
    fn power_off_from_any_state() {
        let mut r = Receiver::new(Wavelength(0), RateLevel(2));
        r.power_on();
        r.retune(0, RateLevel(1), 10);
        r.power_off();
        assert_eq!(r.state(), ReceiverState::Off);
        assert!(!r.can_receive(100));
    }

    #[test]
    fn tick_before_deadline_keeps_relocking() {
        let mut r = Receiver::new(Wavelength(0), RateLevel(2));
        r.power_on();
        r.retune(0, RateLevel(1), 10);
        r.tick(5);
        assert!(matches!(r.state(), ReceiverState::Relocking { until: 10 }));
    }
}
