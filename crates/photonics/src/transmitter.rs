//! The multi-port optical transmitter of Fig. 2(b).
//!
//! Each board hosts `W` transmitters; transmitter `x` contains an array of
//! lasers all emitting wavelength `λ_x`, one laser per *output port*, and
//! there is one output port per destination board. Reconfiguration is the
//! act of turning individual lasers on/off: "Each transmitter associated
//! with every wavelength ... has a on/off value. This binary value indicates
//! which lasers within a transmitter are either on (1) or off (0)" (§3.2).

use crate::wavelength::{BoardId, Wavelength};

/// One transmitter: a laser array for a single wavelength with one port per
/// destination board.
#[derive(Debug, Clone)]
pub struct Transmitter {
    wavelength: Wavelength,
    /// `lasers[d]` — laser driving output port `d` (toward board `d`).
    lasers: Vec<bool>,
}

impl Transmitter {
    /// Creates a transmitter for `wavelength` with `ports` output ports,
    /// all lasers off.
    pub fn new(wavelength: Wavelength, ports: usize) -> Self {
        assert!(ports >= 2);
        Self {
            wavelength,
            lasers: vec![false; ports],
        }
    }

    /// The wavelength all lasers in this transmitter emit.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Number of output ports (= destination boards).
    pub fn ports(&self) -> usize {
        self.lasers.len()
    }

    /// Whether the laser driving port `d` is on.
    pub fn is_on(&self, d: BoardId) -> bool {
        self.lasers[d.index()]
    }

    /// Turns the laser toward board `d` on or off. Returns the prior state.
    pub fn set(&mut self, d: BoardId, on: bool) -> bool {
        std::mem::replace(&mut self.lasers[d.index()], on)
    }

    /// Number of lasers currently on.
    pub fn active_lasers(&self) -> usize {
        self.lasers.iter().filter(|&&on| on).count()
    }

    /// Destinations with an active laser.
    pub fn active_ports(&self) -> impl Iterator<Item = BoardId> + '_ {
        self.lasers
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| BoardId(i as u16))
    }
}

/// The full transmitter bank of one board: `W` transmitters × `B` ports.
#[derive(Debug, Clone)]
pub struct TransmitterBank {
    board: BoardId,
    transmitters: Vec<Transmitter>,
}

impl TransmitterBank {
    /// Creates the bank for `board` in a `boards`-board system
    /// (`W = boards` transmitters, each with `boards` ports), all off.
    pub fn new(board: BoardId, boards: u16) -> Self {
        Self {
            board,
            transmitters: (0..boards)
                .map(|w| Transmitter::new(Wavelength(w), boards as usize))
                .collect(),
        }
    }

    /// The board this bank belongs to.
    pub fn board(&self) -> BoardId {
        self.board
    }

    /// Number of transmitters (`W`).
    pub fn len(&self) -> usize {
        self.transmitters.len()
    }

    /// Never true for a constructed bank.
    pub fn is_empty(&self) -> bool {
        self.transmitters.is_empty()
    }

    /// The transmitter for wavelength `w`.
    pub fn transmitter(&self, w: Wavelength) -> &Transmitter {
        &self.transmitters[w.index()]
    }

    /// Mutable access to the transmitter for wavelength `w`.
    pub fn transmitter_mut(&mut self, w: Wavelength) -> &mut Transmitter {
        &mut self.transmitters[w.index()]
    }

    /// Applies the static RWA: for every remote destination `d`, turn on
    /// exactly the laser `(λ = rwa(s,d), port = d)`; everything else off.
    pub fn apply_static_rwa(&mut self, rwa: &crate::rwa::StaticRwa) {
        for t in &mut self.transmitters {
            for p in 0..t.ports() {
                t.set(BoardId(p as u16), false);
            }
        }
        for d in 0..rwa.boards() {
            let d = BoardId(d);
            if d == self.board {
                continue;
            }
            let w = rwa.wavelength(self.board, d);
            self.transmitter_mut(w).set(d, true);
        }
    }

    /// Total lasers on across the bank.
    pub fn active_lasers(&self) -> usize {
        self.transmitters.iter().map(|t| t.active_lasers()).sum()
    }

    /// All `(wavelength, destination)` pairs with an active laser.
    pub fn active_channels(&self) -> Vec<(Wavelength, BoardId)> {
        let mut v = Vec::new();
        for t in &self.transmitters {
            for d in t.active_ports() {
                v.push((t.wavelength(), d));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwa::StaticRwa;

    #[test]
    fn lasers_toggle() {
        let mut t = Transmitter::new(Wavelength(2), 4);
        assert_eq!(t.wavelength(), Wavelength(2));
        assert_eq!(t.ports(), 4);
        assert!(!t.is_on(BoardId(1)));
        assert!(!t.set(BoardId(1), true));
        assert!(t.is_on(BoardId(1)));
        assert_eq!(t.active_lasers(), 1);
        assert!(t.set(BoardId(1), false));
        assert_eq!(t.active_lasers(), 0);
    }

    #[test]
    fn static_rwa_lights_one_laser_per_destination() {
        let rwa = StaticRwa::new(4);
        let mut bank = TransmitterBank::new(BoardId(0), 4);
        bank.apply_static_rwa(&rwa);
        // B-1 = 3 lasers on, one per remote board.
        assert_eq!(bank.active_lasers(), 3);
        let mut chans = bank.active_channels();
        chans.sort_by_key(|(w, d)| (d.0, w.0));
        // Destinations 1, 2, 3 each served exactly once.
        let dests: Vec<u16> = chans.iter().map(|(_, d)| d.0).collect();
        assert_eq!(dests, vec![1, 2, 3]);
        // And with the RWA wavelengths: s=0→d uses λ_{(0-d) mod 4}.
        assert_eq!(chans[0].0, Wavelength(3)); // d=1
        assert_eq!(chans[1].0, Wavelength(2)); // d=2
        assert_eq!(chans[2].0, Wavelength(1)); // d=3
    }

    #[test]
    fn reapplying_static_rwa_resets_extra_lasers() {
        let rwa = StaticRwa::new(4);
        let mut bank = TransmitterBank::new(BoardId(1), 4);
        bank.apply_static_rwa(&rwa);
        // DBR-style extra laser: λ2 toward board 0.
        bank.transmitter_mut(Wavelength(2)).set(BoardId(0), true);
        assert_eq!(bank.active_lasers(), 4);
        bank.apply_static_rwa(&rwa);
        assert_eq!(bank.active_lasers(), 3);
    }

    #[test]
    fn bank_geometry() {
        let bank = TransmitterBank::new(BoardId(2), 8);
        assert_eq!(bank.len(), 8);
        assert!(!bank.is_empty());
        assert_eq!(bank.board(), BoardId(2));
        assert_eq!(bank.transmitter(Wavelength(5)).ports(), 8);
    }
}
