//! Analytic optical-link power models (§3.1 and Table 1).
//!
//! The paper gives the scaling trends of each component with supply voltage
//! `V_DD` and bit rate `BR`:
//!
//! | component     | scaling        | paper constant                     |
//! |---------------|----------------|------------------------------------|
//! | VCSEL         | `V_DD`         | slope efficiency 0.42 A/W, I_m = 16.6 mA |
//! | VCSEL driver  | `V_DD²·BR`     | C_driver = 0.62 pF                 |
//! | TIA           | `V_DD·BR`      | I_ds = 27.8 mA at 5 Gbps           |
//! | CDR           | `V_DD²·BR`     | C_CDR = 9.26 pF                    |
//! | photodetector | (negligible)   | 1.4 µW                             |
//!
//! With a switching activity of 0.5 for the CMOS-like driver/CDR terms the
//! model lands on the paper's quoted component numbers at 5 Gbps / 0.9 V:
//! driver 1.23 mW (paper: 1.23), TIA 25.02 mW (paper: 25.02) and CDR
//! 17.05 mW (paper: 17.05, after calibrating the CDR activity to 0.455),
//! totalling ≈ 43.3 mW against the paper's rounded 43.03 mW.
//!
//! At the two lower operating points the analytic model yields 8.54 mW
//! (paper: 8.6) and 16.4 mW (paper: 26). The paper's 26 mW mid-level total
//! is *not* reproducible from its own scaling laws and constants; we expose
//! both the analytic model and a [`LinkPowerModel::paper_table`] preset that
//! pins the paper's three published totals, and the simulation uses the
//! paper preset so power ratios match the published figures.

use crate::bitrate::{BitRate, RateLadder, RateLevel};

/// Paper constants (Table 1 / §4.1).
pub mod constants {
    /// VCSEL driver capacitance, farads (0.62 pF).
    pub const C_DRIVER_F: f64 = 0.62e-12;
    /// CDR capacitance, farads (9.26 pF).
    pub const C_CDR_F: f64 = 9.26e-12;
    /// TIA drain-source current at 5 Gbps, amperes (27.8 mA).
    pub const I_DS_5G_A: f64 = 27.8e-3;
    /// VCSEL modulation current, amperes (16.6 mA).
    pub const I_MOD_A: f64 = 16.6e-3;
    /// VCSEL slope efficiency as printed in the paper (A/W).
    pub const SLOPE_EFFICIENCY: f64 = 0.42;
    /// Photodetector power, watts (1.4 µW).
    pub const P_PHOTODETECTOR_W: f64 = 1.4e-6;
    /// Average VCSEL power while transmitting 64-byte packets (1.5 µW).
    pub const P_VCSEL_AVG_W: f64 = 1.5e-6;
    /// Switching activity of the driver stage.
    pub const ALPHA_DRIVER: f64 = 0.5;
    /// Switching activity of the CDR, calibrated so the 5 Gbps CDR power
    /// equals the paper's 17.05 mW.
    pub const ALPHA_CDR: f64 = 0.4546;
    /// Reference bit rate for the TIA current constant (5 Gbps).
    pub const BR_REF_GBPS: f64 = 5.0;
    /// Reference voltage for the TIA current constant (0.9 V).
    pub const VDD_REF: f64 = 0.9;
}

/// Per-component power at one operating point, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// VCSEL laser (average while transmitting).
    pub vcsel_mw: f64,
    /// VCSEL driver / modulator.
    pub driver_mw: f64,
    /// Transimpedance amplifier.
    pub tia_mw: f64,
    /// Clock-and-data recovery.
    pub cdr_mw: f64,
    /// Photodetector.
    pub photodetector_mw: f64,
}

impl PowerBreakdown {
    /// Total link power in mW.
    pub fn total_mw(&self) -> f64 {
        self.vcsel_mw + self.driver_mw + self.tia_mw + self.cdr_mw + self.photodetector_mw
    }

    /// Transmit-side power (VCSEL + driver).
    pub fn transmitter_mw(&self) -> f64 {
        self.vcsel_mw + self.driver_mw
    }

    /// Receive-side power (photodetector + TIA + CDR).
    pub fn receiver_mw(&self) -> f64 {
        self.photodetector_mw + self.tia_mw + self.cdr_mw
    }
}

/// Computes the analytic per-component breakdown at an operating point.
pub fn analytic_breakdown(rate: BitRate) -> PowerBreakdown {
    use constants::*;
    let br = rate.gbps * 1.0e9;
    let v = rate.vdd;
    // CMOS dynamic power α·C·V²·f, in watts → mW.
    let driver = ALPHA_DRIVER * C_DRIVER_F * v * v * br * 1.0e3;
    let cdr = ALPHA_CDR * C_CDR_F * v * v * br * 1.0e3;
    // TIA bias current scales linearly with bit rate; P = I·V.
    let i_ds = I_DS_5G_A * (rate.gbps / BR_REF_GBPS);
    let tia = i_ds * v * 1.0e3;
    // VCSEL and photodetector average powers scale with V_DD relative to
    // the reference point; both are micro-watt noise in the total.
    let vcsel = P_VCSEL_AVG_W * (v / VDD_REF) * 1.0e3;
    let pd = P_PHOTODETECTOR_W * 1.0e3;
    PowerBreakdown {
        vcsel_mw: vcsel,
        driver_mw: driver,
        tia_mw: tia,
        cdr_mw: cdr,
        photodetector_mw: pd,
    }
}

/// Where per-level total power numbers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerSource {
    /// Totals computed from the analytic component models.
    Analytic,
    /// Totals pinned to the paper's published Table 1 values.
    PaperTable,
}

/// Total link power per rate level, plus the idle (laser-on, no data)
/// fraction used by the simulation's power accounting.
#[derive(Debug, Clone)]
pub struct LinkPowerModel {
    ladder: RateLadder,
    totals_mw: Vec<f64>,
    /// Fraction of the level's power drawn while the laser is on but no flit
    /// is being transmitted (laser bias + receiver keep-alive).
    idle_fraction: f64,
    source: PowerSource,
}

/// The paper's published Table 1 link-power ladder, mW, indexed by
/// [`RateLevel`]: 8.6 mW @ 2.5 Gbps, 26 mW @ 3.75 Gbps, 43.03 mW @ 5 Gbps.
///
/// This is the single source of truth for the published numbers — every
/// table pinned to the paper (here and in `powermgmt`'s energy accounting)
/// must read it rather than repeat the literals.
pub const PAPER_LADDER_MW: [f64; 3] = [8.6, 26.0, 43.03];

impl LinkPowerModel {
    /// The paper's published totals ([`PAPER_LADDER_MW`]) on the paper
    /// ladder.
    pub fn paper_table() -> Self {
        Self {
            ladder: RateLadder::paper(),
            totals_mw: PAPER_LADDER_MW.to_vec(),
            idle_fraction: DEFAULT_IDLE_FRACTION,
            source: PowerSource::PaperTable,
        }
    }

    /// Analytic totals derived from the component models, for any ladder.
    pub fn analytic(ladder: RateLadder) -> Self {
        let totals = ladder
            .iter()
            .map(|(_, rate)| analytic_breakdown(rate).total_mw())
            .collect();
        Self {
            ladder,
            totals_mw: totals,
            idle_fraction: DEFAULT_IDLE_FRACTION,
            source: PowerSource::Analytic,
        }
    }

    /// Overrides the idle (laser-on, not transmitting) power fraction.
    pub fn with_idle_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.idle_fraction = f;
        self
    }

    /// The rate ladder this model covers.
    pub fn ladder(&self) -> &RateLadder {
        &self.ladder
    }

    /// Which totals are in use.
    pub fn source(&self) -> PowerSource {
        self.source
    }

    /// Total power at `level` while actively transmitting, mW.
    pub fn active_mw(&self, level: RateLevel) -> f64 {
        self.totals_mw[level.index()]
    }

    /// Power at `level` while on but idle, mW.
    pub fn idle_mw(&self, level: RateLevel) -> f64 {
        self.totals_mw[level.index()] * self.idle_fraction
    }

    /// Idle fraction in use.
    pub fn idle_fraction(&self) -> f64 {
        self.idle_fraction
    }

    /// Energy per bit at `level`, picojoules.
    pub fn energy_per_bit_pj(&self, level: RateLevel) -> f64 {
        let rate = self.ladder.rate(level);
        // mW / Gbps = pJ/bit.
        self.active_mw(level) / rate.gbps
    }
}

/// Default idle fraction: a small laser-bias + receiver keep-alive draw.
///
/// The paper's complement-traffic result (NP-NB and P-NB consume the *same*
/// power while 6 of 7 links sit idle) only holds if idle links are nearly
/// free, i.e. power accounting is dominated by activity.
pub const DEFAULT_IDLE_FRACTION: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrate::RateLadder;

    #[test]
    fn analytic_components_match_paper_at_5gbps() {
        let high = RateLadder::paper().rate(RateLevel(2));
        let b = analytic_breakdown(high);
        // Paper §4.1: driver 1.23 mW, TIA 25.02 mW, CDR 17.05 mW.
        assert!((b.driver_mw - 1.23).abs() < 0.05, "driver {}", b.driver_mw);
        assert!((b.tia_mw - 25.02).abs() < 0.01, "tia {}", b.tia_mw);
        assert!((b.cdr_mw - 17.05).abs() < 0.05, "cdr {}", b.cdr_mw);
        // Photodetector 1.4 µW, VCSEL ~1.5 µW.
        assert!((b.photodetector_mw - 0.0014).abs() < 1e-6);
        assert!((b.vcsel_mw - 0.0015).abs() < 1e-4);
        // Total ≈ 43.3 mW (paper rounds to 43.03).
        assert!((b.total_mw() - 43.3).abs() < 0.2, "total {}", b.total_mw());
    }

    #[test]
    fn analytic_low_level_close_to_paper() {
        let low = RateLadder::paper().rate(RateLevel(0));
        let b = analytic_breakdown(low);
        // Paper: 8.6 mW at 2.5 Gbps / 0.45 V; analytic lands at 8.54.
        assert!((b.total_mw() - 8.6).abs() < 0.15, "total {}", b.total_mw());
    }

    #[test]
    fn split_matches_total() {
        let b = analytic_breakdown(RateLadder::paper().rate(RateLevel(1)));
        assert!((b.transmitter_mw() + b.receiver_mw() - b.total_mw()).abs() < 1e-12);
    }

    #[test]
    fn paper_table_pins_published_totals() {
        let m = LinkPowerModel::paper_table();
        assert_eq!(m.source(), PowerSource::PaperTable);
        for (i, &mw) in PAPER_LADDER_MW.iter().enumerate() {
            assert_eq!(m.active_mw(RateLevel(i as u8)), mw);
        }
    }

    #[test]
    fn paper_ladder_constant_is_the_published_table1() {
        // Regression pin for the single source of truth: the paper's
        // Table 1 reads 8.6 / 26 / 43.03 mW. Any edit to PAPER_LADDER_MW
        // must consciously change this test too.
        assert_eq!(PAPER_LADDER_MW, [8.6, 26.0, 43.03]);
        assert_eq!(PAPER_LADDER_MW.len(), RateLadder::paper().len());
    }

    #[test]
    fn idle_power_is_fraction_of_active() {
        let m = LinkPowerModel::paper_table().with_idle_fraction(0.1);
        assert!((m.idle_mw(RateLevel(2)) - 4.303).abs() < 1e-9);
        assert_eq!(m.idle_fraction(), 0.1);
    }

    #[test]
    fn energy_per_bit_improves_at_lower_rates() {
        // The entire point of DPM: scaling the rate down reduces energy/bit.
        let m = LinkPowerModel::paper_table();
        let low = m.energy_per_bit_pj(RateLevel(0));
        let mid = m.energy_per_bit_pj(RateLevel(1));
        let high = m.energy_per_bit_pj(RateLevel(2));
        assert!(low < mid && mid < high, "{low} {mid} {high}");
        // 8.6/2.5 = 3.44 pJ/bit, 43.03/5 = 8.606 pJ/bit.
        assert!((low - 3.44).abs() < 0.01);
        assert!((high - 8.606).abs() < 0.01);
    }

    #[test]
    fn analytic_model_is_monotone_in_level() {
        let m = LinkPowerModel::analytic(RateLadder::paper());
        assert!(m.active_mw(RateLevel(0)) < m.active_mw(RateLevel(1)));
        assert!(m.active_mw(RateLevel(1)) < m.active_mw(RateLevel(2)));
        assert_eq!(m.source(), PowerSource::Analytic);
    }

    #[test]
    fn analytic_model_works_on_interpolated_ladders() {
        let m = LinkPowerModel::analytic(RateLadder::interpolated(6));
        for i in 0..5u8 {
            assert!(m.active_mw(RateLevel(i)) < m.active_mw(RateLevel(i + 1)));
        }
    }

    #[test]
    #[should_panic]
    fn idle_fraction_out_of_range_panics() {
        LinkPowerModel::paper_table().with_idle_fraction(1.5);
    }
}
