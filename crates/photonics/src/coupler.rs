//! Passive optical couplers (Fig. 2b).
//!
//! "The basis of reconfiguration is to combine, at a given coupler,
//! different wavelengths from similar numbered ports, but from different
//! transmitters." A coupler is purely passive: it merges whatever its input
//! ports carry. The model's job is to *verify* the WDM invariant — no two
//! active inputs at the same wavelength — because a physical coupler would
//! merge them into garbage.

use crate::wavelength::{BoardId, Wavelength};

/// A passive coupler collecting one same-numbered port from every
/// transmitter of a board; its output fiber heads to one destination board.
#[derive(Debug, Clone)]
pub struct Coupler {
    /// The destination board this coupler's output fiber reaches.
    destination: BoardId,
    /// Wavelengths currently inserted (laser on) at this coupler.
    active: Vec<Wavelength>,
}

impl Coupler {
    /// Creates the coupler feeding `destination`.
    pub fn new(destination: BoardId) -> Self {
        Self {
            destination,
            active: Vec::new(),
        }
    }

    /// The destination board of the output fiber.
    pub fn destination(&self) -> BoardId {
        self.destination
    }

    /// Inserts a wavelength (laser turned on into this coupler).
    ///
    /// # Errors
    /// Returns `Err(CouplerCollision)` if the wavelength is already present —
    /// a WDM collision that would corrupt both signals.
    pub fn insert(&mut self, w: Wavelength) -> Result<(), CouplerCollision> {
        if self.active.contains(&w) {
            return Err(CouplerCollision {
                destination: self.destination,
                wavelength: w,
            });
        }
        self.active.push(w);
        Ok(())
    }

    /// Removes a wavelength (laser turned off). Returns whether it was
    /// present.
    pub fn remove(&mut self, w: Wavelength) -> bool {
        if let Some(i) = self.active.iter().position(|&x| x == w) {
            self.active.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Wavelengths currently multiplexed on the output fiber.
    pub fn multiplexed(&self) -> &[Wavelength] {
        &self.active
    }

    /// True if `w` is currently on the output fiber.
    pub fn carries(&self, w: Wavelength) -> bool {
        self.active.contains(&w)
    }

    /// Number of wavelengths multiplexed.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True if the output fiber is dark.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }
}

/// A WDM collision: two lasers of the same wavelength into one coupler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplerCollision {
    /// The coupler's destination board.
    pub destination: BoardId,
    /// The colliding wavelength.
    pub wavelength: Wavelength,
}

impl std::fmt::Display for CouplerCollision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WDM collision: {} inserted twice at coupler toward {}",
            self.wavelength, self.destination
        )
    }
}

impl std::error::Error for CouplerCollision {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_remove() {
        let mut c = Coupler::new(BoardId(2));
        assert!(c.is_empty());
        c.insert(Wavelength(1)).unwrap();
        c.insert(Wavelength(3)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.carries(Wavelength(1)));
        assert!(!c.carries(Wavelength(0)));
        assert!(c.remove(Wavelength(1)));
        assert!(!c.remove(Wavelength(1)));
        assert_eq!(c.multiplexed(), &[Wavelength(3)]);
        assert_eq!(c.destination(), BoardId(2));
    }

    #[test]
    fn duplicate_wavelength_is_a_collision() {
        let mut c = Coupler::new(BoardId(0));
        c.insert(Wavelength(2)).unwrap();
        let err = c.insert(Wavelength(2)).unwrap_err();
        assert_eq!(err.wavelength, Wavelength(2));
        assert_eq!(err.destination, BoardId(0));
        let msg = err.to_string();
        assert!(msg.contains("λ2"));
        assert!(msg.contains("B0"));
        // State unchanged by the failed insert.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_wdm_load() {
        let mut c = Coupler::new(BoardId(1));
        for w in 0..8 {
            c.insert(Wavelength(w)).unwrap();
        }
        assert_eq!(c.len(), 8);
    }
}
