//! Flit serialization times in the optical domain.
//!
//! The electrical IBI moves 16 bits per 400 MHz cycle (Table 1: 6.4 Gbps per
//! direction). The optical stage moves `BR / f_clk` bits per cycle, so a
//! flit's wavelength occupancy stretches as the bit rate scales down — this
//! is exactly the latency/power trade DPM exercises.

use crate::bitrate::BitRate;

/// Serialization calculator for a fixed flit size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Serdes {
    /// Flit payload size in bits.
    pub flit_bits: u32,
    /// Router clock in Hz.
    pub clock_hz_x1000: u64,
}

impl Serdes {
    /// Creates a calculator for `flit_bits`-bit flits at `clock_hz`.
    pub fn new(flit_bits: u32, clock_hz: f64) -> Self {
        assert!(flit_bits > 0);
        assert!(clock_hz > 0.0);
        Self {
            flit_bits,
            clock_hz_x1000: (clock_hz * 1000.0) as u64,
        }
    }

    /// Paper defaults: 64-bit flits (64-byte packet = 8 flits) at 400 MHz.
    pub fn paper() -> Self {
        Self::new(64, desim::CLOCK_HZ)
    }

    /// Router clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz_x1000 as f64 / 1000.0
    }

    /// Cycles a single flit occupies the wavelength at the given bit rate
    /// (rounded up — the laser cannot release mid-flit).
    pub fn flit_cycles(&self, rate: BitRate) -> u64 {
        let bits_per_cycle = rate.bits_per_cycle(self.clock_hz());
        (self.flit_bits as f64 / bits_per_cycle).ceil() as u64
    }

    /// Cycles a whole packet of `flits` flits occupies the wavelength.
    pub fn packet_cycles(&self, rate: BitRate, flits: u32) -> u64 {
        self.flit_cycles(rate) * flits as u64
    }

    /// Effective flits per cycle the wavelength can sustain at this rate.
    pub fn flits_per_cycle(&self, rate: BitRate) -> f64 {
        1.0 / self.flit_cycles(rate) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrate::{RateLadder, RateLevel};

    #[test]
    fn paper_rates_give_expected_occupancy() {
        let s = Serdes::paper();
        let ladder = RateLadder::paper();
        // 5 Gbps: 12.5 bits/cycle → 64 bits need ceil(5.12) = 6 cycles.
        assert_eq!(s.flit_cycles(ladder.rate(RateLevel(2))), 6);
        // 3.3 Gbps: 8.25 bits/cycle → ceil(7.76) = 8 cycles.
        assert_eq!(s.flit_cycles(ladder.rate(RateLevel(1))), 8);
        // 2.5 Gbps: 6.25 bits/cycle → ceil(10.24) = 11 cycles.
        assert_eq!(s.flit_cycles(ladder.rate(RateLevel(0))), 11);
    }

    #[test]
    fn packet_time_scales_with_flits() {
        let s = Serdes::paper();
        let high = RateLadder::paper().rate(RateLevel(2));
        // 8-flit (64-byte) packet at 5 Gbps: 48 cycles of occupancy.
        assert_eq!(s.packet_cycles(high, 8), 48);
    }

    #[test]
    fn lower_rate_is_slower() {
        let s = Serdes::paper();
        let ladder = RateLadder::paper();
        assert!(
            s.flit_cycles(ladder.rate(RateLevel(0))) > s.flit_cycles(ladder.rate(RateLevel(2)))
        );
    }

    #[test]
    fn flits_per_cycle_inverse() {
        let s = Serdes::paper();
        let high = RateLadder::paper().rate(RateLevel(2));
        assert!((s.flits_per_cycle(high) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn exact_division_has_no_rounding() {
        // 32-bit flits at 5 Gbps / 400 MHz = 12.5 b/cyc → ceil(2.56)=3;
        // at a hypothetical 8 Gbps (20 b/cyc) → ceil(1.6)=2;
        // with 40-bit flits and 20 b/cyc → exactly 2.
        let s = Serdes::new(40, 400.0e6);
        let r = BitRate {
            gbps: 8.0,
            vdd: 1.0,
        };
        assert_eq!(s.flit_cycles(r), 2);
    }
}
