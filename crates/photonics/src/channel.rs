//! End-to-end optical channel state machine.
//!
//! An [`OpticalChannel`] is one (source board, destination board, wavelength)
//! lightpath: the laser at the source, the fiber, and the receiver at the
//! destination. It tracks:
//!
//! * on/off state (DBR turns whole channels on and off),
//! * the current bit-rate level (DPM scales it),
//! * packet serialization occupancy (busy-until bookkeeping),
//! * rate-transition disable windows (the conservative 65-cycle CDR/voltage
//!   penalty of §4.1).

use crate::bitrate::{RateLadder, RateLevel};
use crate::serdes::Serdes;
use crate::wavelength::{BoardId, Wavelength};
use desim::Cycle;

/// Channel availability state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Laser off; the channel carries nothing.
    Off,
    /// On and idle.
    Idle,
    /// Serializing a packet; the wavelength frees at `until`.
    Sending {
        /// First cycle after the current packet clears the transmitter.
        until: Cycle,
    },
    /// Disabled during a bit-rate/voltage transition until the given cycle.
    Transitioning {
        /// First usable cycle after the transition.
        until: Cycle,
    },
}

/// One lightpath with DPM/DBR state.
#[derive(Debug, Clone)]
pub struct OpticalChannel {
    src: BoardId,
    dst: BoardId,
    wavelength: Wavelength,
    ladder: RateLadder,
    serdes: Serdes,
    fiber_delay: Cycle,
    level: RateLevel,
    state: ChannelState,
    /// Lifetime counters.
    packets_sent: u64,
    flits_sent: u64,
    transitions: u64,
}

impl OpticalChannel {
    /// Creates a channel, initially off, at the ladder's highest level.
    pub fn new(
        src: BoardId,
        dst: BoardId,
        wavelength: Wavelength,
        ladder: RateLadder,
        serdes: Serdes,
        fiber_delay: Cycle,
    ) -> Self {
        let level = ladder.highest();
        Self {
            src,
            dst,
            wavelength,
            ladder,
            serdes,
            fiber_delay,
            level,
            state: ChannelState::Off,
            packets_sent: 0,
            flits_sent: 0,
            transitions: 0,
        }
    }

    /// Source board.
    pub fn src(&self) -> BoardId {
        self.src
    }

    /// Destination board.
    pub fn dst(&self) -> BoardId {
        self.dst
    }

    /// Wavelength of the lightpath.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Current availability state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Current rate level.
    pub fn level(&self) -> RateLevel {
        self.level
    }

    /// The rate ladder in use.
    pub fn ladder(&self) -> &RateLadder {
        &self.ladder
    }

    /// True when the laser is on (any state except `Off`).
    pub fn is_on(&self) -> bool {
        self.state != ChannelState::Off
    }

    /// The serialization-end cycle of the in-flight packet, if one is
    /// being sent. Unlike the [`Self::begin_packet`] return value this
    /// excludes the fiber flight time: it is the cycle the *transmitter*
    /// frees up — what an event-driven scheduler must wake at.
    pub fn sending_until(&self) -> Option<Cycle> {
        match self.state {
            ChannelState::Sending { until } => Some(until),
            _ => None,
        }
    }

    /// Lifetime packet count.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Lifetime flit count.
    pub fn flits_sent(&self) -> u64 {
        self.flits_sent
    }

    /// Lifetime rate-transition count.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Turns the laser on (idle). No-op when already on.
    pub fn power_on(&mut self) {
        if self.state == ChannelState::Off {
            self.state = ChannelState::Idle;
        }
    }

    /// Turns the laser off, aborting nothing: callers must not power off a
    /// sending channel (the LS protocol only reconfigures idle links).
    ///
    /// # Panics
    /// If the channel is mid-packet.
    pub fn power_off(&mut self, now: Cycle) {
        if let ChannelState::Sending { until } = self.state {
            assert!(
                now >= until,
                "cannot power off mid-packet (busy until {until}, now {now})"
            );
        }
        self.state = ChannelState::Off;
    }

    /// Settles time-dependent state: a finished packet or transition moves
    /// the channel back to `Idle`.
    pub fn settle(&mut self, now: Cycle) {
        match self.state {
            ChannelState::Sending { until } | ChannelState::Transitioning { until }
                if now >= until =>
            {
                self.state = ChannelState::Idle;
            }
            _ => {}
        }
    }

    /// True when a new packet can start this cycle.
    pub fn can_send(&self, now: Cycle) -> bool {
        match self.state {
            ChannelState::Idle => true,
            ChannelState::Sending { until } | ChannelState::Transitioning { until } => now >= until,
            ChannelState::Off => false,
        }
    }

    /// Cycles one flit occupies the wavelength at the current level.
    pub fn flit_cycles(&self) -> u64 {
        self.serdes.flit_cycles(self.ladder.rate(self.level))
    }

    /// Starts serializing a packet of `flits` flits. Returns the cycle at
    /// which the last bit *arrives at the destination* (serialization +
    /// fiber propagation).
    ///
    /// # Panics
    /// If the channel cannot send at `now`.
    pub fn begin_packet(&mut self, now: Cycle, flits: u32) -> Cycle {
        assert!(self.can_send(now), "channel busy/off at {now}");
        let occupancy = self
            .serdes
            .packet_cycles(self.ladder.rate(self.level), flits);
        let clear = now + occupancy;
        self.state = ChannelState::Sending { until: clear };
        self.packets_sent += 1;
        self.flits_sent += flits as u64;
        clear + self.fiber_delay
    }

    /// Begins a bit-rate transition to `level`: the link goes dark for
    /// `penalty` cycles (bit-rate control packet + CDR re-lock / voltage
    /// settle). No-op (and uncounted) if the level is unchanged.
    ///
    /// # Panics
    /// If the channel is mid-packet or off.
    pub fn begin_transition(&mut self, now: Cycle, level: RateLevel, penalty: Cycle) {
        if level == self.level {
            return;
        }
        assert!(
            self.can_send(now),
            "transition must wait for the wavelength to clear"
        );
        assert!(self.is_on(), "cannot retune a dark channel");
        assert!(level.index() < self.ladder.len(), "level out of range");
        self.level = level;
        self.transitions += 1;
        self.state = ChannelState::Transitioning {
            until: now + penalty,
        };
    }

    /// Directly sets the level of an off channel (used when DBR powers a
    /// channel on at a chosen level without a live transition).
    pub fn preset_level(&mut self, level: RateLevel) {
        assert!(level.index() < self.ladder.len());
        assert_eq!(self.state, ChannelState::Off, "preset only while off");
        self.level = level;
    }

    /// Powers on a granted channel with a dark lock-in window: the laser
    /// lights at `now` but the destination receiver needs `lock_penalty`
    /// cycles to lock onto the new transmitter before data can flow.
    ///
    /// # Panics
    /// If the channel is already on.
    pub fn power_on_dark(&mut self, now: Cycle, lock_penalty: Cycle) {
        assert_eq!(self.state, ChannelState::Off, "channel already on");
        self.state = if lock_penalty == 0 {
            ChannelState::Idle
        } else {
            ChannelState::Transitioning {
                until: now + lock_penalty,
            }
        };
    }

    /// Serializes the mutable channel state for a checkpoint. Identity and
    /// geometry (endpoints, ladder, serdes, fiber delay) come from the
    /// configuration and are not persisted.
    pub fn save_state(&self, w: &mut desim::snap::SnapWriter) {
        w.u8(self.level.index() as u8);
        match self.state {
            ChannelState::Off => w.u8(0),
            ChannelState::Idle => w.u8(1),
            ChannelState::Sending { until } => {
                w.u8(2);
                w.u64(until);
            }
            ChannelState::Transitioning { until } => {
                w.u8(3);
                w.u64(until);
            }
        }
        w.u64(self.packets_sent);
        w.u64(self.flits_sent);
        w.u64(self.transitions);
    }

    /// Overlays checkpointed mutable state onto a freshly built channel.
    pub fn load_state(
        &mut self,
        r: &mut desim::snap::SnapReader<'_>,
    ) -> Result<(), desim::snap::SnapError> {
        let level = r.u8()? as usize;
        if level >= self.ladder.len() {
            return Err(desim::snap::SnapError::Mismatch(format!(
                "rate level {level} outside ladder of {}",
                self.ladder.len()
            )));
        }
        self.level = RateLevel(level as u8);
        self.state = match r.u8()? {
            0 => ChannelState::Off,
            1 => ChannelState::Idle,
            2 => ChannelState::Sending { until: r.u64()? },
            3 => ChannelState::Transitioning { until: r.u64()? },
            b => {
                return Err(desim::snap::SnapError::Format(format!(
                    "bad channel state tag {b:#x}"
                )))
            }
        };
        self.packets_sent = r.u64()?;
        self.flits_sent = r.u64()?;
        self.transitions = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> OpticalChannel {
        OpticalChannel::new(
            BoardId(0),
            BoardId(2),
            Wavelength(2),
            RateLadder::paper(),
            Serdes::paper(),
            4,
        )
    }

    #[test]
    fn starts_off_at_highest_level() {
        let c = chan();
        assert_eq!(c.state(), ChannelState::Off);
        assert_eq!(c.level(), RateLevel(2));
        assert!(!c.is_on());
        assert!(!c.can_send(0));
    }

    #[test]
    fn packet_occupancy_and_delivery() {
        let mut c = chan();
        c.power_on();
        assert!(c.can_send(10));
        // 8 flits at 5 Gbps: 8 × 6 = 48 cycles; +4 fiber = arrives at 62.
        let arrival = c.begin_packet(10, 8);
        assert_eq!(arrival, 62);
        assert_eq!(c.state(), ChannelState::Sending { until: 58 });
        assert!(!c.can_send(57));
        assert!(c.can_send(58));
        c.settle(58);
        assert_eq!(c.state(), ChannelState::Idle);
        assert_eq!(c.packets_sent(), 1);
        assert_eq!(c.flits_sent(), 8);
    }

    #[test]
    fn lower_level_stretches_occupancy() {
        let mut c = chan();
        c.power_on();
        c.begin_transition(0, RateLevel(0), 65);
        assert_eq!(c.transitions(), 1);
        assert!(!c.can_send(64));
        assert!(c.can_send(65));
        // 8 flits at 2.5 Gbps: 8 × 11 = 88 cycles.
        let arrival = c.begin_packet(65, 8);
        assert_eq!(arrival, 65 + 88 + 4);
        assert_eq!(c.flit_cycles(), 11);
    }

    #[test]
    fn same_level_transition_is_free() {
        let mut c = chan();
        c.power_on();
        c.begin_transition(0, RateLevel(2), 65);
        assert_eq!(c.transitions(), 0);
        assert!(c.can_send(0));
    }

    #[test]
    #[should_panic(expected = "channel busy/off")]
    fn cannot_send_mid_packet() {
        let mut c = chan();
        c.power_on();
        c.begin_packet(0, 8);
        c.begin_packet(1, 8);
    }

    #[test]
    #[should_panic(expected = "cannot power off mid-packet")]
    fn cannot_power_off_mid_packet() {
        let mut c = chan();
        c.power_on();
        c.begin_packet(0, 8);
        c.power_off(5);
    }

    #[test]
    fn power_off_after_settle_ok() {
        let mut c = chan();
        c.power_on();
        c.begin_packet(0, 1); // 6 cycles
        c.settle(6);
        c.power_off(6);
        assert_eq!(c.state(), ChannelState::Off);
    }

    #[test]
    fn preset_level_while_off() {
        let mut c = chan();
        c.preset_level(RateLevel(0));
        c.power_on();
        assert_eq!(c.level(), RateLevel(0));
        assert_eq!(c.flit_cycles(), 11);
    }

    #[test]
    #[should_panic(expected = "preset only while off")]
    fn preset_while_on_panics() {
        let mut c = chan();
        c.power_on();
        c.preset_level(RateLevel(0));
    }

    #[test]
    fn power_on_dark_blocks_until_locked() {
        let mut c = chan();
        c.power_on_dark(100, 65);
        assert!(c.is_on());
        assert!(!c.can_send(164));
        assert!(c.can_send(165));
        c.settle(165);
        assert_eq!(c.state(), ChannelState::Idle);
    }

    #[test]
    fn power_on_dark_zero_penalty_is_idle() {
        let mut c = chan();
        c.power_on_dark(0, 0);
        assert_eq!(c.state(), ChannelState::Idle);
    }

    #[test]
    #[should_panic(expected = "already on")]
    fn power_on_dark_twice_panics() {
        let mut c = chan();
        c.power_on();
        c.power_on_dark(0, 65);
    }

    #[test]
    fn identity_accessors() {
        let c = chan();
        assert_eq!(c.src(), BoardId(0));
        assert_eq!(c.dst(), BoardId(2));
        assert_eq!(c.wavelength(), Wavelength(2));
        assert_eq!(c.ladder().len(), 3);
    }
}
