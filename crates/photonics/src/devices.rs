//! Device-level models beneath the link power table.
//!
//! The paper's power numbers (§4.1) come from device equations in Kibar et
//! al. (JLT '99) and Chen et al. (HPCA '05). This module implements those
//! devices explicitly — a VCSEL with an L-I curve, a photodetector with a
//! responsivity, a transimpedance receiver chain — so the link budget
//! (emitted power → received photocurrent → required sensitivity) can be
//! checked, not just asserted. The aggregate per-level numbers used by the
//! simulation come from [`crate::power`]; these models justify them.

/// A VCSEL with a standard piecewise-linear L-I curve:
/// `P_opt = η · (I - I_th)` above threshold, 0 below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vcsel {
    /// Threshold current, amperes.
    pub threshold_a: f64,
    /// Slope efficiency, W/A.
    pub slope_w_per_a: f64,
    /// Forward voltage drop, volts.
    pub forward_v: f64,
}

impl Vcsel {
    /// The paper's implant VCSEL: the printed "slope efficiency of
    /// 0.42 A/W" is dimensionally a W/A slope; threshold and forward drop
    /// are typical implant-VCSEL values from the cited literature.
    pub fn paper() -> Self {
        Self {
            threshold_a: 2.0e-3,
            slope_w_per_a: 0.42,
            forward_v: 1.8,
        }
    }

    /// Emitted optical power at drive current `i` (watts).
    pub fn optical_power_w(&self, i: f64) -> f64 {
        (i - self.threshold_a).max(0.0) * self.slope_w_per_a
    }

    /// Electrical power drawn at drive current `i` (watts).
    pub fn electrical_power_w(&self, i: f64) -> f64 {
        i * self.forward_v
    }

    /// Wall-plug efficiency at drive current `i`.
    pub fn efficiency(&self, i: f64) -> f64 {
        let e = self.electrical_power_w(i);
        if e <= 0.0 {
            0.0
        } else {
            self.optical_power_w(i) / e
        }
    }

    /// Drive current needed to emit `p_opt` watts.
    pub fn current_for(&self, p_opt: f64) -> f64 {
        assert!(p_opt >= 0.0);
        self.threshold_a + p_opt / self.slope_w_per_a
    }
}

/// A p-i-n photodetector characterised by its responsivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodetector {
    /// Responsivity, A/W.
    pub responsivity_a_per_w: f64,
    /// Dark current, amperes.
    pub dark_current_a: f64,
}

impl Photodetector {
    /// A typical 850 nm GaAs detector.
    pub fn typical_850nm() -> Self {
        Self {
            responsivity_a_per_w: 0.5,
            dark_current_a: 1.0e-9,
        }
    }

    /// Photocurrent for `p_opt` watts of incident light.
    pub fn photocurrent_a(&self, p_opt: f64) -> f64 {
        self.responsivity_a_per_w * p_opt.max(0.0) + self.dark_current_a
    }
}

/// The optical path loss budget between one transmitter port and the
/// destination receiver: coupler insertion, mux/demux, fiber attenuation,
/// connectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBudget {
    /// Passive coupler insertion loss, dB. A 1×N coupler splits power:
    /// ~10·log10(N) plus excess.
    pub coupler_db: f64,
    /// Mux + demux loss, dB.
    pub mux_demux_db: f64,
    /// Fiber attenuation, dB (negligible at rack scale).
    pub fiber_db: f64,
    /// Connectors and margins, dB.
    pub margin_db: f64,
}

impl LossBudget {
    /// The E-RAPID path for a B-board system: the coupler merges B ports.
    pub fn erapid(boards: u16) -> Self {
        Self {
            coupler_db: 10.0 * (boards as f64).log10() + 1.0,
            mux_demux_db: 3.0,
            fiber_db: 0.01,
            margin_db: 3.0,
        }
    }

    /// Total loss in dB.
    pub fn total_db(&self) -> f64 {
        self.coupler_db + self.mux_demux_db + self.fiber_db + self.margin_db
    }

    /// Linear transmission factor (power out / power in).
    pub fn transmission(&self) -> f64 {
        10f64.powf(-self.total_db() / 10.0)
    }
}

/// Receiver sensitivity model: the minimum received optical power for a
/// target bit-error rate scales with bit rate (shot/thermal noise grow
/// with bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverSensitivity {
    /// Required power at the reference rate, watts.
    pub p_ref_w: f64,
    /// Reference bit rate, Gbps.
    pub ref_gbps: f64,
}

impl ReceiverSensitivity {
    /// A typical -17 dBm @ 5 Gbps receiver (≈ 20 µW).
    pub fn typical() -> Self {
        Self {
            p_ref_w: 20.0e-6,
            ref_gbps: 5.0,
        }
    }

    /// Required received power at `gbps` (linear scaling with bandwidth —
    /// the thermal-noise-limited regime).
    pub fn required_w(&self, gbps: f64) -> f64 {
        self.p_ref_w * (gbps / self.ref_gbps)
    }
}

/// End-to-end link budget check: does the VCSEL at drive current `i`
/// close the link through `loss` into a receiver of `sensitivity` at
/// `gbps`? Returns the margin in dB (positive = closes).
pub fn link_margin_db(
    vcsel: &Vcsel,
    i_drive: f64,
    loss: &LossBudget,
    sensitivity: &ReceiverSensitivity,
    gbps: f64,
) -> f64 {
    let emitted = vcsel.optical_power_w(i_drive);
    let received = emitted * loss.transmission();
    let required = sensitivity.required_w(gbps);
    10.0 * (received / required).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcsel_li_curve() {
        let v = Vcsel::paper();
        assert_eq!(v.optical_power_w(0.0), 0.0);
        assert_eq!(v.optical_power_w(v.threshold_a), 0.0);
        // The paper's modulation current: 16.6 mA.
        let p = v.optical_power_w(16.6e-3);
        assert!((p - 0.42 * 14.6e-3).abs() < 1e-9);
        assert!(p > 5.0e-3, "implant VCSEL emits mW-scale power: {p}");
    }

    #[test]
    fn vcsel_current_for_inverts_li() {
        let v = Vcsel::paper();
        for p in [0.0, 1e-3, 5e-3] {
            let i = v.current_for(p);
            assert!((v.optical_power_w(i) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn vcsel_efficiency_rises_with_drive() {
        let v = Vcsel::paper();
        assert!(v.efficiency(4.0e-3) < v.efficiency(16.0e-3));
        assert_eq!(v.efficiency(0.0), 0.0);
        assert!(v.efficiency(16.0e-3) < 0.3, "wall-plug below 30%");
    }

    #[test]
    fn photodetector_responsivity() {
        let pd = Photodetector::typical_850nm();
        let i = pd.photocurrent_a(10.0e-6);
        assert!((i - 5.0e-6 - 1.0e-9).abs() < 1e-12);
        // Dark current floors the response.
        assert_eq!(pd.photocurrent_a(0.0), 1.0e-9);
    }

    #[test]
    fn loss_budget_scales_with_coupler_size() {
        let small = LossBudget::erapid(4);
        let large = LossBudget::erapid(8);
        assert!(large.total_db() > small.total_db());
        // 8-way coupler: ~10 dB + 1 excess.
        assert!((large.coupler_db - 10.03).abs() < 0.1);
        assert!(large.transmission() < small.transmission());
        assert!(large.transmission() > 0.0);
    }

    #[test]
    fn sensitivity_scales_with_rate() {
        let s = ReceiverSensitivity::typical();
        assert!((s.required_w(5.0) - 20.0e-6).abs() < 1e-12);
        assert!((s.required_w(2.5) - 10.0e-6).abs() < 1e-12);
    }

    #[test]
    fn paper_link_closes_at_all_three_rates() {
        // The architecture is only viable if the 16.6 mA drive closes an
        // 8-board coupler path at every operating point.
        let v = Vcsel::paper();
        let loss = LossBudget::erapid(8);
        let s = ReceiverSensitivity::typical();
        for gbps in [2.5, 3.3, 5.0] {
            let margin = link_margin_db(&v, 16.6e-3, &loss, &s, gbps);
            assert!(
                margin > 0.0,
                "link must close at {gbps} Gbps (margin {margin:.1} dB)"
            );
        }
        // And lower rates have more margin.
        let m_low = link_margin_db(&v, 16.6e-3, &loss, &s, 2.5);
        let m_high = link_margin_db(&v, 16.6e-3, &loss, &s, 5.0);
        assert!(m_low > m_high);
    }

    #[test]
    fn underdriven_link_fails() {
        let v = Vcsel::paper();
        let loss = LossBudget::erapid(8);
        let s = ReceiverSensitivity::typical();
        // Barely above threshold: not enough light for 5 Gbps.
        let margin = link_margin_db(&v, 2.5e-3, &loss, &s, 5.0);
        assert!(margin < 0.0, "margin {margin}");
    }
}
