#![deny(clippy::perf)]
//! # photonics — the optical substrate of E-RAPID
//!
//! Models every optical component the paper's architecture (§2) relies on:
//!
//! * [`wavelength`] — wavelength identifiers and per-board wavelength sets,
//! * [`rwa`] — the static routing-and-wavelength-assignment formula of §2.1:
//!   `λ_{B-(d-s)}` if `d > s`, `λ_{s-d}` if `s > d`,
//! * [`bitrate`] — the three operating points (2.5 / 3.3 / 5 Gbps and their
//!   supply voltages 0.45 / 0.6 / 0.9 V), plus flit serialization times,
//! * [`power`] — analytic component power models (VCSEL, driver, TIA, CDR,
//!   photodetector) with the paper's constants, reproducing Table 1,
//! * [`transmitter`] — a transmitter as an array of same-wavelength lasers
//!   with one output port per destination board (Fig. 2b),
//! * [`receiver`] — a receiver with CDR re-lock behaviour on bit-rate
//!   changes,
//! * [`coupler`] — passive couplers that merge same-numbered ports from
//!   different transmitters, with wavelength-collision detection,
//! * [`fiber`] — propagation delay model,
//! * [`serdes`] — flit serialization cycle counts per bit rate,
//! * [`channel`] — an end-to-end optical channel (source board, destination
//!   board, wavelength) assembled from the above.

//!
//! ## Example: the static wavelength assignment and link power
//!
//! ```
//! use photonics::rwa::StaticRwa;
//! use photonics::wavelength::BoardId;
//! use photonics::power::LinkPowerModel;
//! use photonics::bitrate::RateLevel;
//!
//! // §2.1's example: in a 4-board system, board 1 → board 0 uses λ1.
//! let rwa = StaticRwa::new(4);
//! assert_eq!(rwa.wavelength(BoardId(1), BoardId(0)).0, 1);
//!
//! // Table 1's operating points: 43.03 mW at 5 Gbps, 8.6 mW at 2.5 Gbps.
//! let power = LinkPowerModel::paper_table();
//! assert_eq!(power.active_mw(RateLevel(2)), 43.03);
//! assert!(power.energy_per_bit_pj(RateLevel(0)) < power.energy_per_bit_pj(RateLevel(2)));
//! ```

pub mod bitrate;
pub mod channel;
pub mod coupler;
pub mod devices;
pub mod fiber;
pub mod power;
pub mod receiver;
pub mod rwa;
pub mod serdes;
pub mod transmitter;
pub mod wavelength;

pub use bitrate::{BitRate, RateLevel};
pub use power::{LinkPowerModel, PowerBreakdown};
pub use rwa::StaticRwa;
pub use wavelength::{BoardId, Wavelength};
