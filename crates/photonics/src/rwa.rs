//! Static routing and wavelength assignment (RWA), §2.1 of the paper.
//!
//! "The wavelength assigned for a given source board `s` and destination
//! board `d` is given by `λ_{B-(d-s)}` if `d > s` and `λ_{(s-d)}` if
//! `s > d`, where B is the total number of boards in the system."
//!
//! (The paper prints the second case as `λ_{(d-s)}`, but its own example —
//! board 1 → board 0 uses `λ_1`, i.e. `s-d = 1` — shows the intended index
//! is the positive offset `s-d`. Both cases reduce to
//! `λ_{(s-d) mod B}` = `λ_{B-((d-s) mod B)} mod B`.)

use crate::wavelength::{BoardId, Wavelength};

/// The static wavelength map for a `B`-board system.
#[derive(Debug, Clone)]
pub struct StaticRwa {
    boards: u16,
}

impl StaticRwa {
    /// Creates the static RWA for `boards` boards.
    pub fn new(boards: u16) -> Self {
        assert!(boards >= 2);
        Self { boards }
    }

    /// Board count `B`.
    pub fn boards(&self) -> u16 {
        self.boards
    }

    /// The statically assigned wavelength for source board `s` → destination
    /// board `d`.
    ///
    /// # Panics
    /// If `s == d` (intra-board traffic never enters the optical domain) or
    /// either index is out of range.
    pub fn wavelength(&self, s: BoardId, d: BoardId) -> Wavelength {
        assert!(s.0 < self.boards && d.0 < self.boards, "board out of range");
        assert_ne!(s, d, "intra-board traffic has no wavelength");
        let b = self.boards as i32;
        let diff = (s.0 as i32 - d.0 as i32).rem_euclid(b);
        Wavelength(diff as u16)
    }

    /// Inverse map at a destination board: which source board owns
    /// wavelength `w` toward destination `d` under static assignment.
    ///
    /// # Panics
    /// If `w` is `λ_0` (self-offset, unassigned) or out of range.
    pub fn static_owner(&self, d: BoardId, w: Wavelength) -> BoardId {
        assert!(w.0 > 0 && w.0 < self.boards, "λ0/out-of-range has no owner");
        let b = self.boards as i32;
        let s = (d.0 as i32 + w.0 as i32).rem_euclid(b);
        BoardId(s as u16)
    }

    /// Every (source, wavelength) pair arriving at destination `d` under
    /// static assignment — one per remote board.
    pub fn incoming(&self, d: BoardId) -> Vec<(BoardId, Wavelength)> {
        (1..self.boards)
            .map(|i| {
                let w = Wavelength(i);
                (self.static_owner(d, w), w)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_hold() {
        // §2.1: board 1 → board 0 uses λ1; board 0 → board 1 uses λ3 (B=4).
        let rwa = StaticRwa::new(4);
        assert_eq!(rwa.wavelength(BoardId(1), BoardId(0)), Wavelength(1));
        assert_eq!(rwa.wavelength(BoardId(0), BoardId(1)), Wavelength(3));
        // §2.2: board 0 → board 2 uses λ2 (B=4).
        assert_eq!(rwa.wavelength(BoardId(0), BoardId(2)), Wavelength(2));
        // §4.2 (64-node, B=8): board 0 → board 7 uses λ_{8-7} = λ1.
        let rwa8 = StaticRwa::new(8);
        assert_eq!(rwa8.wavelength(BoardId(0), BoardId(7)), Wavelength(1));
    }

    #[test]
    fn wavelengths_at_a_destination_are_distinct() {
        // At any destination, the B-1 incoming static assignments must use
        // B-1 distinct wavelengths — that is what makes the demux work.
        for b in [2u16, 4, 8, 16] {
            let rwa = StaticRwa::new(b);
            for d in 0..b {
                let mut seen = vec![false; b as usize];
                for s in 0..b {
                    if s == d {
                        continue;
                    }
                    let w = rwa.wavelength(BoardId(s), BoardId(d));
                    assert!(w.0 > 0, "remote traffic never uses λ0");
                    assert!(!seen[w.index()], "collision at destination {d}");
                    seen[w.index()] = true;
                }
            }
        }
    }

    #[test]
    fn wavelengths_from_a_source_are_distinct() {
        // Dually, each source uses distinct wavelengths to distinct
        // destinations (one laser array per transmitter).
        let rwa = StaticRwa::new(8);
        for s in 0..8 {
            let mut seen = [false; 8];
            for d in 0..8 {
                if s == d {
                    continue;
                }
                let w = rwa.wavelength(BoardId(s), BoardId(d));
                assert!(!seen[w.index()], "collision at source {s}");
                seen[w.index()] = true;
            }
        }
    }

    #[test]
    fn owner_is_inverse_of_assignment() {
        let rwa = StaticRwa::new(8);
        for s in 0..8u16 {
            for d in 0..8u16 {
                if s == d {
                    continue;
                }
                let w = rwa.wavelength(BoardId(s), BoardId(d));
                assert_eq!(rwa.static_owner(BoardId(d), w), BoardId(s));
            }
        }
    }

    #[test]
    fn incoming_lists_all_remote_boards() {
        let rwa = StaticRwa::new(4);
        let mut incoming = rwa.incoming(BoardId(2));
        incoming.sort();
        let sources: Vec<u16> = incoming.iter().map(|(s, _)| s.0).collect();
        assert_eq!(sources, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "intra-board")]
    fn same_board_panics() {
        StaticRwa::new(4).wavelength(BoardId(1), BoardId(1));
    }

    #[test]
    #[should_panic(expected = "no owner")]
    fn lambda_zero_has_no_owner() {
        StaticRwa::new(4).static_owner(BoardId(0), Wavelength(0));
    }
}
