//! Bit-rate / supply-voltage operating points.
//!
//! §3.1: "We consider 3 power levels P_low, P_mid and P_high corresponding
//! to bit rates 2.5 Gbps, 3.3 Gbps and 5 Gbps"; §4.1 gives the matching
//! supply voltages 0.45 V, 0.6 V and 0.9 V. A [`RateLadder`] generalises to
//! N levels for the paper's future-work ablation ("more power levels and
//! corresponding bit rates can further improve the performance").

use std::fmt;

/// One operating point of an optical link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitRate {
    /// Line rate in Gbps.
    pub gbps: f64,
    /// Supply voltage in volts at this rate.
    pub vdd: f64,
}

impl BitRate {
    /// Bits transferred per router clock cycle at 400 MHz.
    pub fn bits_per_cycle(&self, clock_hz: f64) -> f64 {
        self.gbps * 1.0e9 / clock_hz
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Gbps @ {} V", self.gbps, self.vdd)
    }
}

/// Index of a power level within a ladder (0 = lowest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RateLevel(pub u8);

impl desim::snap::Snap for RateLevel {
    fn save(&self, w: &mut desim::snap::SnapWriter) {
        w.u8(self.0);
    }
    fn load(r: &mut desim::snap::SnapReader<'_>) -> Result<Self, desim::snap::SnapError> {
        Ok(RateLevel(r.u8()?))
    }
}

impl RateLevel {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An ordered ladder of operating points, lowest rate first.
#[derive(Debug, Clone, PartialEq)]
pub struct RateLadder {
    levels: Vec<BitRate>,
}

impl RateLadder {
    /// Builds a ladder from operating points sorted by rate ascending.
    ///
    /// # Panics
    /// If fewer than 2 levels or the rates are not strictly increasing.
    pub fn new(levels: Vec<BitRate>) -> Self {
        assert!(levels.len() >= 2, "a ladder needs at least 2 levels");
        assert!(
            levels.windows(2).all(|w| w[0].gbps < w[1].gbps),
            "rates must strictly increase"
        );
        assert!(
            levels.windows(2).all(|w| w[0].vdd <= w[1].vdd),
            "voltage must not decrease with rate"
        );
        Self { levels }
    }

    /// The paper's ladder: 2.5 Gbps @ 0.45 V, 3.3 Gbps @ 0.6 V,
    /// 5 Gbps @ 0.9 V (Table 1).
    pub fn paper() -> Self {
        Self::new(vec![
            BitRate {
                gbps: 2.5,
                vdd: 0.45,
            },
            BitRate {
                gbps: 3.3,
                vdd: 0.6,
            },
            BitRate {
                gbps: 5.0,
                vdd: 0.9,
            },
        ])
    }

    /// An N-level ladder interpolated between the paper's end points
    /// (for the "more power levels" ablation). `n >= 2`.
    pub fn interpolated(n: usize) -> Self {
        assert!(n >= 2);
        let lo = BitRate {
            gbps: 2.5,
            vdd: 0.45,
        };
        let hi = BitRate {
            gbps: 5.0,
            vdd: 0.9,
        };
        let levels = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                BitRate {
                    gbps: lo.gbps + t * (hi.gbps - lo.gbps),
                    vdd: lo.vdd + t * (hi.vdd - lo.vdd),
                }
            })
            .collect();
        Self::new(levels)
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Never true (construction requires ≥ 2 levels).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Operating point at a level.
    ///
    /// # Panics
    /// If the level is out of range.
    pub fn rate(&self, level: RateLevel) -> BitRate {
        self.levels[level.index()]
    }

    /// The lowest level.
    pub fn lowest(&self) -> RateLevel {
        RateLevel(0)
    }

    /// The highest level.
    pub fn highest(&self) -> RateLevel {
        RateLevel((self.levels.len() - 1) as u8)
    }

    /// One level up, saturating at the top.
    pub fn up(&self, level: RateLevel) -> RateLevel {
        if level >= self.highest() {
            self.highest()
        } else {
            RateLevel(level.0 + 1)
        }
    }

    /// One level down, saturating at the bottom.
    pub fn down(&self, level: RateLevel) -> RateLevel {
        if level.0 == 0 {
            level
        } else {
            RateLevel(level.0 - 1)
        }
    }

    /// Iterates `(level, operating point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RateLevel, BitRate)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, &r)| (RateLevel(i as u8), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_matches_table1() {
        let l = RateLadder::paper();
        assert_eq!(l.len(), 3);
        let low = l.rate(RateLevel(0));
        let mid = l.rate(RateLevel(1));
        let high = l.rate(RateLevel(2));
        assert_eq!((low.gbps, low.vdd), (2.5, 0.45));
        assert_eq!((mid.gbps, mid.vdd), (3.3, 0.6));
        assert_eq!((high.gbps, high.vdd), (5.0, 0.9));
    }

    #[test]
    fn bits_per_cycle_at_400mhz() {
        let high = RateLadder::paper().rate(RateLevel(2));
        // 5 Gbps / 400 MHz = 12.5 bits per cycle.
        assert!((high.bits_per_cycle(400.0e6) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn up_down_saturate() {
        let l = RateLadder::paper();
        assert_eq!(l.up(RateLevel(2)), RateLevel(2));
        assert_eq!(l.up(RateLevel(0)), RateLevel(1));
        assert_eq!(l.down(RateLevel(0)), RateLevel(0));
        assert_eq!(l.down(RateLevel(2)), RateLevel(1));
        assert_eq!(l.lowest(), RateLevel(0));
        assert_eq!(l.highest(), RateLevel(2));
    }

    #[test]
    fn interpolated_ladder_ends_match_paper() {
        let l = RateLadder::interpolated(5);
        assert_eq!(l.len(), 5);
        assert!((l.rate(l.lowest()).gbps - 2.5).abs() < 1e-12);
        assert!((l.rate(l.highest()).gbps - 5.0).abs() < 1e-12);
        assert!((l.rate(l.highest()).vdd - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_rates_rejected() {
        RateLadder::new(vec![
            BitRate {
                gbps: 5.0,
                vdd: 0.9,
            },
            BitRate {
                gbps: 2.5,
                vdd: 0.45,
            },
        ]);
    }

    #[test]
    fn display_format() {
        let r = BitRate {
            gbps: 2.5,
            vdd: 0.45,
        };
        assert_eq!(r.to_string(), "2.5 Gbps @ 0.45 V");
    }

    #[test]
    fn iter_yields_all_levels() {
        let l = RateLadder::paper();
        let levels: Vec<u8> = l.iter().map(|(lv, _)| lv.0).collect();
        assert_eq!(levels, vec![0, 1, 2]);
    }
}
