//! Minimal wall-clock timing harness for the `benches/` targets.
//!
//! The workspace builds with no network access, so the benches cannot pull
//! in an external statistics harness; this module provides the small slice
//! we need: run a routine N times against fresh state and report
//! min/median/max wall-clock time.

use std::time::Instant;

/// One benchmark's timing summary, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    pub min_ns: u128,
    pub median_ns: u128,
    pub max_ns: u128,
    pub samples: usize,
}

impl Timing {
    /// Median sample in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns as f64 / 1e9
    }
}

/// Times `routine` over `samples` runs, each against a fresh `setup()`
/// value (setup time is excluded), prints a one-line summary and returns
/// the statistics.
pub fn bench<T, R>(
    name: &str,
    samples: usize,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) -> Timing {
    assert!(samples > 0);
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        times.push(start.elapsed().as_nanos());
        std::hint::black_box(out);
    }
    times.sort_unstable();
    let t = Timing {
        min_ns: times[0],
        median_ns: times[times.len() / 2],
        max_ns: times[times.len() - 1],
        samples,
    };
    println!(
        "{name:<44} median {:>10.3} ms  (min {:.3}, max {:.3}, n={})",
        t.median_ns as f64 / 1e6,
        t.min_ns as f64 / 1e6,
        t.max_ns as f64 / 1e6,
        t.samples
    );
    t
}
