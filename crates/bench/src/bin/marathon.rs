//! Long-horizon marathon: a million-cycle streamed run, a forced mid-run
//! kill, and a checkpoint resume — proving the crash-safety contract
//! end-to-end at the process level.
//!
//! The orchestrator (no argument) spawns three children of itself:
//!
//! 1. `child full` — runs the whole horizon uninterrupted with streaming
//!    export on (JSONL trace + `.erpd` delivery log flushed every `R_w`
//!    window), checkpointing on cadence. Reference artifact.
//! 2. `child kill` — same run into separate files, but calls
//!    `std::process::abort()` mid-window at ~60 % of the horizon: a real
//!    SIGABRT with no destructors, no finalize — the crash scenario.
//! 3. `child resume` — rebuilds the system, restores the newest valid
//!    checkpoint ([`erapid_core::checkpoint::resume_latest`]), truncates
//!    the streamed files to the checkpointed cursor and runs to the end.
//!
//! The orchestrator then diffs the full and killed+resumed artifacts
//! byte-for-byte (trace JSONL, delivery log, final metrics) — the
//! **resume divergence**, which must be zero — and asserts the full run's
//! peak RSS under a ceiling: the horizon is 12.5× the default `paper64`
//! plan, yet memory stays flat because every buffer drains per window.
//! Results land in `MARATHON_<git-sha>.json`.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin marathon
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin marathon
//! ERAPID_CHECKPOINT_EVERY=10 ERAPID_POINT_THREADS=2 ... marathon
//! ```

use desim::phase::PhasePlan;
use erapid_bench::{git_sha, BenchConfig};
use erapid_core::checkpoint::{resume_latest, Checkpointer};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::stream::{run_streaming, StreamPaths, StreamSink};
use erapid_core::System;
use erapid_telemetry::TraceConfig;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::process::Command;
use traffic::pattern::TrafficPattern;

const LOAD: f64 = 0.5;
/// Default RSS ceiling for the full streamed run, kB (256 MB).
const RSS_CEILING_KB: u64 = 262_144;

/// Peak resident set size in kB (`VmHWM` from /proc, Linux only; 0
/// elsewhere).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Marathon {
    cfg: SystemConfig,
    plan: PhasePlan,
    total_cycles: u64,
    kill_at: u64,
    every_windows: u64,
    dir: PathBuf,
    point_threads: NonZeroUsize,
}

impl Marathon {
    fn from_env() -> Self {
        let bench = BenchConfig::from_env();
        let mut cfg = if bench.quick {
            SystemConfig::small(NetworkMode::PB)
        } else {
            SystemConfig::paper64(NetworkMode::PB)
        };
        cfg.trace = TraceConfig::on();
        cfg.packet_log = true;
        let window = cfg.schedule.window;
        // Full: 500 windows = 1,000,000 cycles (12.5× the default plan's
        // 40-window horizon). Quick: 30 windows for CI smoke.
        let windows: u64 = if bench.quick { 30 } else { 500 };
        let total_cycles = windows * window;
        // Measure almost the whole horizon so the run cannot drain early.
        let plan = PhasePlan::new(2 * window, (windows - 3) * window).with_max_cycles(total_cycles);
        let every_windows = if bench.quick { 5 } else { 25 };
        Self {
            cfg,
            plan,
            total_cycles,
            // Mid-window, ~60 % in: a cycle no checkpoint lands on.
            kill_at: total_cycles * 6 / 10 + window / 3,
            dir: bench.results_dir().join("marathon"),
            every_windows,
            point_threads: bench.point_threads,
        }
    }

    fn system(&self) -> System {
        System::new(self.cfg.clone(), TrafficPattern::Uniform, LOAD, self.plan)
    }

    fn paths(&self, tag: &str) -> StreamPaths {
        StreamPaths {
            trace: Some(self.dir.join(format!("trace_{tag}.jsonl"))),
            deliveries: Some(self.dir.join(format!("deliv_{tag}.erpd"))),
        }
    }

    fn ckpt_dir(&self) -> PathBuf {
        self.dir.join("ckpt")
    }

    fn checkpointer(&self) -> Checkpointer {
        Checkpointer::from_env(
            self.ckpt_dir(),
            self.cfg.schedule.window,
            self.every_windows,
        )
        .expect("create checkpoint dir")
        .expect("marathon needs checkpointing on; set ERAPID_CHECKPOINT_EVERY > 0")
    }
}

/// One line of child → orchestrator stats. f64s travel as bit patterns so
/// the comparison is exact.
fn stats_line(sys: &System, end: u64) -> String {
    let m = sys.metrics();
    format!(
        "{{\"cycles\":{end},\"injected\":{},\"delivered\":{},\"throughput_bits\":{},\"latency_bits\":{},\"power_bits\":{},\"dropped\":{},\"peak_rss_kb\":{}}}",
        m.injected_total,
        m.delivered_total,
        sys.metrics().throughput_ppc().to_bits(),
        sys.metrics().mean_latency().to_bits(),
        sys.metrics().average_power_mw().to_bits(),
        sys.trace_dropped(),
        peak_rss_kb(),
    )
}

fn child_full(m: &Marathon) {
    let mut sys = m.system();
    let mut sink = StreamSink::create(&m.paths("full")).expect("create stream files");
    let end =
        run_streaming(&mut sys, m.point_threads, &mut sink, None).expect("streaming run failed");
    sink.finalize().expect("finalize stream");
    println!("{}", stats_line(&sys, end));
}

fn child_kill(m: &Marathon) {
    let mut sys = m.system();
    let mut sink = StreamSink::create(&m.paths("resumed")).expect("create stream files");
    let mut ckpt = m.checkpointer();
    let window = m.cfg.schedule.window;
    let counters = sys.metric_counter_names();
    let gauges = sys.metric_gauge_names();
    let kill_at = m.kill_at;
    sys.run_with(m.point_threads, &mut |s| {
        let now = s.now();
        if now >= kill_at {
            // The crash: SIGABRT, no destructors, nothing flushed beyond
            // the last window boundary, no finalize.
            std::process::abort();
        }
        if now == 0 || !now.is_multiple_of(window) {
            return;
        }
        let flush = s.drain_window();
        sink.flush_window(&flush, &counters, &gauges)
            .expect("stream flush");
        ckpt.maybe_checkpoint(s, sink.cursor()).expect("checkpoint");
    });
    unreachable!("kill child must abort before the horizon ends");
}

fn child_resume(m: &Marathon) {
    let mut sys = m.system();
    let (from, cursor) =
        resume_latest(&mut sys, &m.ckpt_dir()).expect("no valid checkpoint to resume from");
    eprintln!(
        "resumed from {} at cycle {} (killed at {})",
        from.display(),
        sys.now(),
        m.kill_at
    );
    let mut sink = StreamSink::resume(&m.paths("resumed"), cursor).expect("reopen stream files");
    let mut ckpt = m.checkpointer();
    let end = run_streaming(&mut sys, m.point_threads, &mut sink, Some(&mut ckpt))
        .expect("resumed streaming run failed");
    sink.finalize().expect("finalize stream");
    println!("{}", stats_line(&sys, end));
}

/// Runs `self <role>` and returns (exit success, last stdout line).
fn spawn(role: &str) -> (bool, String) {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .arg(role)
        .output()
        .expect("spawn marathon child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().unwrap_or("").to_string();
    (out.status.success(), last)
}

fn file_bytes(p: &Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn json_field(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    line.split(&pat)
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| panic!("missing {key} in child stats: {line}"))
}

fn orchestrate(m: &Marathon) {
    let _ = std::fs::remove_dir_all(&m.dir);
    std::fs::create_dir_all(&m.dir).expect("create marathon dir");
    println!(
        "=== marathon: {} cycles ({} windows), checkpoint every {} windows, kill at {} ===",
        m.total_cycles,
        m.total_cycles / m.cfg.schedule.window,
        m.every_windows,
        m.kill_at
    );

    let (ok, full) = spawn("full");
    assert!(ok, "full run failed");
    println!("full run:    {full}");
    assert_eq!(json_field(&full, "dropped"), 0, "full run dropped events");

    let (killed_ok, _) = spawn("kill");
    assert!(
        !killed_ok,
        "kill child must die mid-run, but exited cleanly"
    );
    println!("kill child:  aborted mid-run as intended");

    let (ok, resumed) = spawn("resume");
    assert!(ok, "resume run failed");
    println!("resume run:  {resumed}");

    // Resume divergence: artifacts that differ between the uninterrupted
    // run and the killed+resumed run. Must be zero.
    let mut divergence = 0u32;
    for (a, b, what) in [
        (m.paths("full").trace, m.paths("resumed").trace, "trace"),
        (
            m.paths("full").deliveries,
            m.paths("resumed").deliveries,
            "deliveries",
        ),
    ] {
        let (a, b) = (a.expect("path"), b.expect("path"));
        if file_bytes(&a) != file_bytes(&b) {
            eprintln!(
                "DIVERGENCE: {what} files differ ({} vs {})",
                a.display(),
                b.display()
            );
            divergence += 1;
        }
    }
    for key in [
        "cycles",
        "injected",
        "delivered",
        "throughput_bits",
        "latency_bits",
        "power_bits",
    ] {
        if json_field(&full, key) != json_field(&resumed, key) {
            eprintln!("DIVERGENCE: metric {key} differs");
            divergence += 1;
        }
    }

    let rss = json_field(&full, "peak_rss_kb");
    let ceiling = std::env::var("ERAPID_MARATHON_RSS_KB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(RSS_CEILING_KB);
    let trace_bytes = file_bytes(&m.paths("full").trace.expect("path")).len();
    let deliveries = json_field(&full, "delivered");

    let sha = git_sha();
    let report = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"workload\": {{\"system\": \"{}\", \"mode\": \"P-B\", \"pattern\": \"uniform\", \"load\": {LOAD}}},\n  \"cycles\": {},\n  \"windows\": {},\n  \"horizon_vs_default\": {:.1},\n  \"checkpoint_every_windows\": {},\n  \"kill_at_cycle\": {},\n  \"resume_divergence\": {divergence},\n  \"trace_bytes\": {trace_bytes},\n  \"deliveries\": {deliveries},\n  \"peak_rss_kb\": {rss},\n  \"rss_ceiling_kb\": {ceiling}\n}}\n",
        if m.cfg.boards == 8 { "paper64" } else { "small16" },
        m.total_cycles,
        m.total_cycles / m.cfg.schedule.window,
        m.total_cycles as f64 / (40 * m.cfg.schedule.window) as f64,
        m.every_windows,
        m.kill_at,
    );
    let out = m
        .dir
        .parent()
        .unwrap_or(&m.dir)
        .join(format!("MARATHON_{sha}.json"));
    std::fs::write(&out, &report).expect("write marathon report");
    println!("\n{report}");
    println!("wrote {}", out.display());

    assert_eq!(
        divergence, 0,
        "killed+resumed run diverged from the uninterrupted run"
    );
    assert!(
        rss <= ceiling,
        "peak RSS {rss} kB exceeds ceiling {ceiling} kB — streaming failed to bound memory"
    );
    println!(
        "OK: zero resume divergence, peak RSS {rss} kB <= {ceiling} kB over {} cycles",
        m.total_cycles
    );
}

fn main() {
    let m = Marathon::from_env();
    match std::env::args().nth(1).as_deref() {
        None | Some("--seq") => orchestrate(&m),
        Some("full") => child_full(&m),
        Some("kill") => child_kill(&m),
        Some("resume") => child_resume(&m),
        Some(other) => {
            eprintln!("unknown marathon role {other:?} (expected full|kill|resume)");
            std::process::exit(2);
        }
    }
}
