//! Latency decomposition: where cycles go on the way to the destination.
//!
//! The paper reports only end-to-end latency; this analysis bin splits it
//! into the measurable stages — source path (NI wait + IBI + reassembly),
//! TX-queue wait (the congestion signal DBR feeds on), and the remainder
//! (optical serialization + fiber + destination-side IBI) — to show *why*
//! latency explodes under adversarial patterns and what DBR actually fixes.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin breakdown
//! ```

use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, run_once};
use netstats::table::Table;
use traffic::pattern::TrafficPattern;

fn main() {
    println!("=== latency decomposition, 64-node E-RAPID ===\n");
    for (name, pattern, modes) in [
        (
            "uniform",
            TrafficPattern::Uniform,
            vec![NetworkMode::NpNb, NetworkMode::PB],
        ),
        (
            "complement",
            TrafficPattern::Complement,
            vec![NetworkMode::NpNb, NetworkMode::NpB],
        ),
    ] {
        let mut t = Table::new(vec![
            "mode",
            "load",
            "e2e (cyc)",
            "src path",
            "TX-queue wait",
            "optical+dest",
        ])
        .with_title(format!("{name}: mean cycles per stage (remote packets)"));
        for mode in &modes {
            for load in [0.3, 0.6, 0.9] {
                let cfg = SystemConfig::paper64(*mode);
                let plan = default_plan(cfg.schedule.window);
                let r = run_once(cfg, pattern.clone(), load, plan);
                let rest = (r.latency - r.src_path - r.tx_wait).max(0.0);
                t.row(vec![
                    mode.name().to_string(),
                    format!("{load:.1}"),
                    format!("{:.1}", r.latency),
                    format!("{:.1}", r.src_path),
                    format!("{:.1}", r.tx_wait),
                    format!("{:.1}", rest),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("Reading: under complement on the static network the TX-queue");
    println!("wait pins at its bound (~376 cycles — the queue is full, which");
    println!("is exactly the Buffer_util > B_max signal the Reconfigure stage");
    println!("classifies) and the credit backpressure pushes the rest of the");
    println!("delay back into the source path (NI backlog + stalled IBI).");
    println!("NP-B empties the TX queue entirely (wait ≈ 0): the re-assigned");
    println!("wavelengths drain packets as fast as they reassemble. (The e2e");
    println!("mean includes local packets; stage means cover remote packets,");
    println!("so columns are indicative, not an exact sum.)");
}
