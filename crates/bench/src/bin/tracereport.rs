//! Telemetry showcase: runs a faulted P-B workload with tracing on and
//! renders where every cycle went — a per-window DPM/DBR/fault timeline on
//! the console, the full event stream as JSONL, and a Chrome trace-event
//! file that Perfetto (<https://ui.perfetto.dev>) opens directly with one
//! track per destination board and one row per wavelength.
//!
//! The workload is the paper's 64-node system under complement traffic
//! with a deterministic fault plan (a receiver outage that DBR must route
//! around, a CDR relock burst, an LS token loss), so the trace shows all
//! three reconfiguration stories at once.
//!
//! Every point also runs twice — once on the env-selected worker pool and
//! once sequentially — and the two JSONL serializations are compared
//! byte-for-byte, making the determinism contract (same seed → same
//! trace, any thread count) an executable claim rather than a comment.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin tracereport
//! ERAPID_TRACE=/tmp/erapid.jsonl ERAPID_QUICK=1 \
//!     cargo run --release -p erapid-bench --bin tracereport
//! ```
//!
//! Outputs: `ERAPID_TRACE` path (default `results/trace.jsonl`) plus a
//! `<stem>.trace.json` Chrome trace next to it.

use erapid_bench::BenchConfig;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{RunTrace, TraceSource};
use erapid_core::faults::{FaultKind, FaultPlan};
use erapid_core::runner::{run_points_traced, RunPoint};
use erapid_telemetry::{jsonl, TraceConfig, TraceEvent};
use netstats::table::Table;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use traffic::pattern::TrafficPattern;

const RELOCK_PENALTY: u64 = 500;
const STORM_SEED: u64 = 42;

/// The showcase fault plan: one of each reconfiguration story.
fn fault_plan(window: u64, quick: bool) -> FaultPlan {
    let (down, up) = if quick {
        (3 * window / 2, 5 * window / 2)
    } else {
        (4 * window, 6 * window)
    };
    let storm_count = if quick { 4 } else { 16 };
    let mut plan = FaultPlan::relock_storm(STORM_SEED, 8, down, up, storm_count, RELOCK_PENALTY);
    // Complement's hot flow 0→7 rides λ1; kill its receiver for two windows.
    plan.push(
        down,
        FaultKind::ReceiverDown {
            board: 7,
            wavelength: 1,
        },
    );
    plan.push(
        up,
        FaultKind::ReceiverRepair {
            board: 7,
            wavelength: 1,
        },
    );
    plan.push(2 * window + 10, FaultKind::TokenLoss { victim: 3 });
    plan
}

fn point(bench: &BenchConfig, load: f64) -> RunPoint {
    let mut cfg = SystemConfig::paper64(NetworkMode::PB);
    cfg.trace = TraceConfig::on();
    cfg.faults = fault_plan(cfg.schedule.window, bench.quick);
    let plan = bench.plan(cfg.schedule.window);
    RunPoint {
        cfg,
        pattern: TrafficPattern::Complement,
        load,
        plan,
        source: TraceSource::Generate,
    }
}

/// Serializes a batch of per-point traces as one JSONL document: a header
/// line per point, then its records.
fn batch_jsonl(loads: &[f64], traces: &[RunTrace]) -> String {
    let mut out = String::new();
    for (load, trace) in loads.iter().zip(traces) {
        out.push_str(&format!(
            "{{\"point\":{{\"mode\":\"P-B\",\"pattern\":\"complement\",\"load\":{load},\"events\":{},\"dropped\":{}}}}}\n",
            trace.records.len(),
            trace.dropped
        ));
        out.push_str(&jsonl(&trace.records));
    }
    out
}

fn chrome_path(jsonl_path: &Path) -> PathBuf {
    let stem = jsonl_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace");
    jsonl_path.with_file_name(format!("{stem}.trace.json"))
}

fn main() {
    let bench = BenchConfig::from_env();
    let loads: Vec<f64> = if bench.quick {
        vec![0.5]
    } else {
        vec![0.3, 0.5, 0.7]
    };
    println!(
        "=== tracereport: paper64 P-B, complement, faulted, loads {loads:?} on {} threads ===\n",
        bench.threads
    );

    let points: Vec<RunPoint> = loads.iter().map(|&l| point(&bench, l)).collect();
    let seq_points = points.clone();
    let traced = run_points_traced(bench.threads, points);
    let results: Vec<_> = traced.iter().map(|(r, _)| *r).collect();
    let traces: Vec<_> = traced.into_iter().map(|(_, t)| t).collect();
    let par_doc = batch_jsonl(&loads, &traces);

    // Determinism check: the same points on one worker must serialize to
    // the same bytes.
    let seq_traced = run_points_traced(NonZeroUsize::MIN, seq_points);
    let seq_traces: Vec<_> = seq_traced.into_iter().map(|(_, t)| t).collect();
    let seq_doc = batch_jsonl(&loads, &seq_traces);
    assert_eq!(
        par_doc, seq_doc,
        "trace must be byte-identical across thread counts"
    );
    println!(
        "determinism check: {} threads vs sequential -> byte-identical ({} bytes)\n",
        bench.threads,
        par_doc.len()
    );

    // Headline point: the middle load.
    let hi = loads.len() / 2;
    let (head_load, head_trace, head_result) = (loads[hi], &traces[hi], &results[hi]);

    // Per-window timeline from the metric registry.
    let mut cols = vec!["window".to_string()];
    cols.extend(head_trace.counter_names.iter().cloned());
    cols.extend(head_trace.gauge_names.iter().cloned());
    let mut t = Table::new(cols).with_title(format!(
        "[P-B complement load {head_load}] per-window telemetry ({} events, {} dropped)",
        head_trace.records.len(),
        head_trace.dropped
    ));
    for w in &head_trace.windows {
        let mut row = vec![format!("{}", w.window)];
        row.extend(w.counters.iter().map(|c| format!("{c}")));
        row.extend(w.gauges.iter().map(|g| format!("{g:.1}")));
        t.row(row);
    }
    println!("{}", t.render());

    // Fault timeline: every injected fault with its cycle and target.
    let mut ft = Table::new(vec!["cycle", "fault", "board", "dest", "λ"])
        .with_title("fault timeline".to_string());
    for rec in &head_trace.records {
        if let TraceEvent::Fault {
            label,
            board,
            dest,
            wavelength,
        } = rec.event
        {
            let lam = if wavelength == 0 {
                "-".to_string()
            } else {
                format!("{wavelength}")
            };
            let repair = if label.is_repair() { " (repair)" } else { "" };
            ft.row(vec![
                format!("{}", rec.at),
                format!("{}{repair}", label.name()),
                format!("{board}"),
                format!("{dest}"),
                lam,
            ]);
        }
    }
    println!("{}", ft.render());
    println!(
        "headline run: thr {:.4} pkt/n/c, latency {:.1}, power {:.1} mW, {} grants, {} retunes, {} ls_retries",
        head_result.throughput,
        head_result.latency,
        head_result.power_mw,
        head_result.grants,
        head_result.retunes,
        head_result.ls_retries
    );

    // Files: JSONL of every point, Chrome trace of the headline point.
    let jsonl_path = bench
        .trace
        .clone()
        .unwrap_or_else(|| bench.results_dir().join("trace.jsonl"));
    if let Some(dir) = jsonl_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&jsonl_path, &par_doc) {
        Ok(()) => println!("\nwrote {}", jsonl_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", jsonl_path.display()),
    }
    let chrome = chrome_path(&jsonl_path);
    match std::fs::write(&chrome, erapid_telemetry::chrome_trace(&head_trace.records)) {
        Ok(()) => println!(
            "wrote {} (open at https://ui.perfetto.dev)",
            chrome.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", chrome.display()),
    }

    // A dropped event is a silently incomplete trace — every downstream
    // artifact (JSONL, Chrome trace, window tables) would be missing
    // data without saying so. Surface it loudly and fail the run.
    let dropped: u64 = traces.iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        for (load, trace) in loads.iter().zip(&traces) {
            if trace.dropped > 0 {
                eprintln!(
                    "ERROR: load {load}: {} trace events dropped (ring capacity exceeded)",
                    trace.dropped
                );
            }
        }
        eprintln!(
            "ERROR: {dropped} events dropped total — raise TraceConfig capacity or stream the trace (see marathon)"
        );
        std::process::exit(1);
    }
    println!("dropped events: 0 across all points");
}
