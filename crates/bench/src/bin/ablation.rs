//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **R_w sensitivity** — the paper asserts 2000 cycles is optimal
//!    ("if R_w is too small, the bit rates will be tuned too often ... if
//!    R_w is too large, the bit rates cannot scale to accommodate large
//!    fluctuations"); regenerate the evidence.
//! 2. **Power-level count** — the conclusion's future work: "more power
//!    levels and corresponding bit rates can further improve the
//!    performance".
//! 3. **Limited reconfigurability** — the conclusion's cost-reduction idea:
//!    cap the wavelengths re-assignable per window.
//! 4. **Transition-penalty model** — the conservative 65-cycle disable vs
//!    the detailed 12-cycle CDR-only model.
//!
//! Each table's points are independent runs, so they fan out over the
//! worker pool (`ERAPID_THREADS`).
//!
//! ```text
//! cargo run --release -p erapid-bench --bin ablation
//! ```

use erapid_bench::BenchConfig;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, TraceSource};
use erapid_core::runner::{run_points, RunPoint};
use netstats::table::Table;
use photonics::bitrate::RateLadder;
use photonics::power::LinkPowerModel;
use powermgmt::transition::TransitionModel;
use std::num::NonZeroUsize;
use traffic::pattern::TrafficPattern;

fn fmt_run(r: &erapid_core::experiment::RunResult) -> Vec<String> {
    vec![
        format!("{:.4}", r.throughput),
        format!("{:.1}", r.latency),
        format!("{:.1}", r.power_mw),
        format!("{}", r.retunes),
        format!("{}", r.grants),
    ]
}

/// Runs one ablation table: labelled configurations, all at one (pattern,
/// load), executed in parallel, printed in input order.
fn table(
    threads: NonZeroUsize,
    mut t: Table,
    rows: Vec<(String, SystemConfig)>,
    pattern: TrafficPattern,
    load: f64,
) {
    let labels: Vec<String> = rows.iter().map(|(l, _)| l.clone()).collect();
    let points: Vec<RunPoint> = rows
        .into_iter()
        .map(|(_, cfg)| {
            let plan = default_plan(cfg.schedule.window);
            RunPoint {
                cfg,
                pattern: pattern.clone(),
                load,
                plan,
                source: TraceSource::Generate,
            }
        })
        .collect();
    let results = run_points(threads, points);
    for (label, r) in labels.into_iter().zip(&results) {
        let mut row = vec![label];
        row.extend(fmt_run(r));
        t.row(row);
    }
    println!("{}", t.render());
}

fn main() {
    let bench = BenchConfig::from_env();
    let threads = bench.threads;
    let load = 0.5;

    // 1. R_w sensitivity (P-B, complement: both control planes exercised).
    table(
        threads,
        Table::new(vec!["R_w", "thr", "lat", "power", "retunes", "grants"]).with_title(format!(
            "Ablation 1: reconfiguration window (P-B, complement, load {load})"
        )),
        [500u64, 1000, 2000, 4000, 8000]
            .iter()
            .map(|&window| {
                let mut cfg = SystemConfig::paper64(NetworkMode::PB);
                cfg.schedule = reconfig::lockstep::LockStepSchedule::new(window);
                (format!("{window}"), cfg)
            })
            .collect(),
        TrafficPattern::Complement,
        load,
    );

    // 2. Power-level count (P-NB, uniform at a mid load where DPM matters).
    table(
        threads,
        Table::new(vec!["levels", "thr", "lat", "power", "retunes", "grants"]).with_title(format!(
            "Ablation 2: number of power levels (P-NB, uniform, load {load})"
        )),
        [2usize, 3, 4, 6]
            .iter()
            .map(|&levels| {
                let mut cfg = SystemConfig::paper64(NetworkMode::PNb);
                let ladder = RateLadder::interpolated(levels);
                cfg.power_model = LinkPowerModel::analytic(ladder.clone());
                cfg.ladder = ladder;
                (format!("{levels}"), cfg)
            })
            .collect(),
        TrafficPattern::Uniform,
        load,
    );

    // 3. Limited reconfigurability (NP-B, complement).
    table(
        threads,
        Table::new(vec![
            "max grants/window",
            "thr",
            "lat",
            "power",
            "retunes",
            "grants",
        ])
        .with_title(format!(
            "Ablation 3: limited reconfigurability (NP-B, complement, load {load})"
        )),
        [0usize, 1, 2, 4, usize::MAX]
            .iter()
            .map(|&limit| {
                let mut cfg = SystemConfig::paper64(NetworkMode::NpB);
                cfg.alloc = cfg.alloc.with_limit(limit);
                let label = if limit == usize::MAX {
                    "unlimited".to_string()
                } else {
                    format!("{limit}")
                };
                (label, cfg)
            })
            .collect(),
        TrafficPattern::Complement,
        load,
    );

    // 5. R_w under bursty traffic — where the window actually matters:
    //    "the reconfiguration algorithm [must be] responsive to transient
    //    traffic changes" (§3). Bursty on/off sources with ~4000-cycle
    //    dwell; a window much larger than the burst misses it entirely.
    table(
        threads,
        Table::new(vec!["R_w", "thr", "lat", "power", "retunes", "grants"]).with_title(format!(
            "Ablation 5: R_w under bursty complement traffic (P-B, load {load}, burstiness 4x, dwell 4000)"
        )),
        [500u64, 1000, 2000, 4000, 8000]
            .iter()
            .map(|&window| {
                let mut cfg = SystemConfig::paper64(NetworkMode::PB);
                cfg.schedule = reconfig::lockstep::LockStepSchedule::new(window);
                cfg.burst = Some(erapid_core::config::BurstSpec {
                    burstiness: 4.0,
                    dwell: 4000.0,
                });
                (format!("{window}"), cfg)
            })
            .collect(),
        TrafficPattern::Complement,
        load,
    );

    // 4. Transition-penalty model (P-B, uniform).
    table(
        threads,
        Table::new(vec!["model", "thr", "lat", "power", "retunes", "grants"]).with_title(format!(
            "Ablation 4: transition penalty (P-B, uniform, load {load})"
        )),
        [
            ("conservative 65cy", TransitionModel::paper()),
            ("CDR-only 12cy", TransitionModel::detailed()),
        ]
        .into_iter()
        .map(|(name, model)| {
            let mut cfg = SystemConfig::paper64(NetworkMode::PB);
            cfg.transition = model;
            (name.to_string(), cfg)
        })
        .collect(),
        TrafficPattern::Uniform,
        load,
    );

    // 7. DBR classification threshold B_max: the paper asserts "setting
    //    the B_max to 0.3 is fairly reasonable for most traffic scenarios"
    //    (§3.2) — sweep it on a pattern with *partial* concentration
    //    (butterfly) where the classification boundary actually matters.
    table(
        threads,
        Table::new(vec!["B_max", "thr", "lat", "power", "retunes", "grants"]).with_title(format!(
            "Ablation 7: DBR over-utilization threshold (NP-B, butterfly, load {load})"
        )),
        [0.05, 0.1, 0.3, 0.5, 0.8]
            .iter()
            .map(|&b_max| {
                let mut cfg = SystemConfig::paper64(NetworkMode::NpB);
                cfg.alloc = reconfig::alloc::AllocPolicy {
                    b_min: 0.0,
                    b_max,
                    max_reassignments: usize::MAX,
                };
                (format!("{b_max}"), cfg)
            })
            .collect(),
        TrafficPattern::Butterfly,
        load,
    );

    // 6. Idle-laser power fraction: the one free parameter of the power
    //    accounting (DESIGN.md §5). The paper's complement observation
    //    (NP-NB ≡ P-NB power) only holds when idle lasers are nearly free.
    let fracs = [0.0, 0.05, 0.15, 0.30];
    let points: Vec<RunPoint> = fracs
        .iter()
        .flat_map(|&frac| {
            [NetworkMode::NpNb, NetworkMode::PNb]
                .into_iter()
                .map(move |mode| {
                    let mut cfg = SystemConfig::paper64(mode);
                    cfg.power_model =
                        photonics::power::LinkPowerModel::paper_table().with_idle_fraction(frac);
                    let plan = default_plan(cfg.schedule.window);
                    RunPoint {
                        cfg,
                        pattern: TrafficPattern::Complement,
                        load,
                        plan,
                        source: TraceSource::Generate,
                    }
                })
        })
        .collect();
    let results = run_points(threads, points);
    let mut t = Table::new(vec![
        "idle fraction",
        "NP-NB power (complement)",
        "P-NB power",
        "P-NB/NP-NB",
    ])
    .with_title(format!(
        "Ablation 6: idle-laser power fraction (complement, load {load})"
    ));
    for (i, &frac) in fracs.iter().enumerate() {
        let base = results[2 * i].power_mw;
        let pnb = results[2 * i + 1].power_mw;
        t.row(vec![
            format!("{frac:.2}"),
            format!("{base:.1}"),
            format!("{pnb:.1}"),
            format!("{:.2}", pnb / base),
        ]);
    }
    println!("{}", t.render());
    println!("At fraction → 0 the two configurations converge (the paper's");
    println!("observation); larger static draws make DPM matter even for");
    println!("idle links, separating the curves.");
}
