//! Policy survival under production-shaped workloads.
//!
//! The paper evaluates E-RAPID on stationary synthetic patterns; this
//! matrix asks what DPM/DBR do under the traffic shapes a deployment
//! actually faces — the four `erapid-workloads` scenarios (Zipf hotspot,
//! diurnal wave, incast/outcast storm, phased all-to-all collective), each
//! run in all four network modes on the paper's 64-node system.
//!
//! Reported per (scenario, mode): whole-run delivered fraction, mean and
//! p95 latency, power, and the per-window reconfiguration activity
//! (`dpm_retunes`, `dbr_grants`, `buffer_crossings`) joined from the
//! telemetry export. Results land in `SCENARIO_<git-sha>.json`, including
//! the two worst-offender scenarios by P-B delivered fraction — the
//! `resilience` bin layers its fault matrix onto those.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin scenarios
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin scenarios
//! ERAPID_SCENARIO=incast cargo run --release -p erapid-bench --bin scenarios
//! cargo run --release -p erapid-bench --bin scenarios -- --smoke
//! ```
//!
//! Extra knobs (on top of the shared harness set):
//! * `ERAPID_SCENARIO=<name>` — run only that scenario
//!   (hotspot/diurnal/incast/collective).
//! * `ERAPID_SCENARIO_SEED=<n>` — override the config seed for scenario
//!   streams.
//! * `--smoke` — CI gate: one small P-B point per scenario; asserts
//!   nonzero delivery and sequential == board-sharded == fanned-out
//!   results, exits nonzero on any mismatch.

use erapid_bench::{git_sha, rank_worst_offenders, BenchConfig};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{run_once_traced, run_once_traced_sharded, TraceSource};
use erapid_core::runner::{run_points_traced, run_points_traced_sharded, RunPoint};
use erapid_telemetry::{counter_column, TraceConfig};
use erapid_workloads::ScenarioSpec;
use netstats::table::Table;
use std::num::NonZeroUsize;
use traffic::pattern::TrafficPattern;

const LOAD: f64 = 0.6;

/// The scenario suite, honouring the `ERAPID_SCENARIO` filter.
fn suite() -> Vec<ScenarioSpec> {
    match std::env::var("ERAPID_SCENARIO") {
        Ok(name) if !name.trim().is_empty() => match ScenarioSpec::from_name(&name) {
            Some(spec) => vec![spec],
            None => {
                eprintln!(
                    "unknown ERAPID_SCENARIO {name:?} (want hotspot/diurnal/incast/collective)"
                );
                std::process::exit(2);
            }
        },
        _ => ScenarioSpec::paper_suite(),
    }
}

fn seed_override() -> Option<u64> {
    std::env::var("ERAPID_SCENARIO_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

fn point(bench: &BenchConfig, spec: &ScenarioSpec, mode: NetworkMode, small: bool) -> RunPoint {
    let mut cfg = if small {
        SystemConfig::small(mode)
    } else {
        SystemConfig::paper64(mode)
    };
    cfg.scenario = Some(spec.clone());
    cfg.trace = TraceConfig::with_capacity(1024);
    if let Some(seed) = seed_override() {
        cfg.seed = seed;
    }
    let plan = bench.plan(cfg.schedule.window);
    RunPoint {
        cfg,
        // The pattern is inert under a scenario (the engine preempts the
        // generators); Uniform keeps construction cheap.
        pattern: TrafficPattern::Uniform,
        load: LOAD,
        plan,
        source: TraceSource::Generate,
    }
}

/// `--smoke`: the CI gate. One small P-B point per scenario, three ways:
/// sequential, board-sharded (2 workers), and fanned out across the point
/// pool — delivery must be nonzero and all three byte-identical.
fn smoke(bench: &BenchConfig) -> ! {
    let specs = suite();
    let two = NonZeroUsize::new(2).unwrap();
    let points: Vec<RunPoint> = specs
        .iter()
        .map(|s| point(bench, s, NetworkMode::PB, true))
        .collect();
    let fanned = run_points_traced(two, points.clone());
    let mut failures = 0;
    for (spec, (p, (fan_r, _))) in specs.iter().zip(points.into_iter().zip(fanned)) {
        let (seq_r, _) = run_once_traced(p.cfg.clone(), p.pattern.clone(), p.load, p.plan);
        let (shard_r, _) =
            run_once_traced_sharded(p.cfg.clone(), p.pattern.clone(), p.load, p.plan, two);
        let mut fail = |msg: &str| {
            eprintln!("FAIL [{}]: {msg}", spec.name());
            failures += 1;
        };
        if seq_r.delivered == 0 {
            fail("delivered no packets");
        }
        if seq_r != shard_r {
            fail("sequential != board-sharded result");
        }
        if seq_r != fan_r {
            fail("sequential != fanned-out result");
        }
        if failures == 0 {
            println!(
                "ok [{}]: delivered {}/{} injected, seq == sharded == fanned",
                spec.name(),
                seq_r.delivered,
                seq_r.injected
            );
        }
    }
    if failures > 0 {
        eprintln!("scenarios --smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("scenarios --smoke: all {} scenarios pass", specs.len());
    std::process::exit(0);
}

/// Per-window join of one counter, with a compact (total, peak) digest.
fn window_digest(
    names: &[String],
    windows: &[erapid_telemetry::WindowSnapshot],
    counter: &str,
) -> (Vec<u64>, u64, u64) {
    let col = counter_column(names, windows, counter).unwrap_or_default();
    let total = col.iter().sum();
    let peak = col.iter().copied().max().unwrap_or(0);
    (col, total, peak)
}

fn json_u64s(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// JSON has no Infinity/NaN literal; a saturated percentile (histogram
/// overflow) serializes as `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let bench = BenchConfig::from_env();
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        smoke(&bench);
    }
    let sha = git_sha();
    let specs = suite();
    let modes = NetworkMode::all();
    println!(
        "=== scenario matrix @ {sha}: paper64, load {LOAD}, {} scenarios x {} modes on {} threads x {} point workers ===\n",
        specs.len(),
        modes.len(),
        bench.threads,
        bench.point_threads
    );

    let points: Vec<RunPoint> = specs
        .iter()
        .flat_map(|s| modes.iter().map(move |&m| (s, m)))
        .map(|(s, m)| point(&bench, s, m, false))
        .collect();
    let results = run_points_traced_sharded(bench.threads, bench.point_threads, points);

    let mut scenario_json: Vec<String> = Vec::new();
    let mut pb_survival: Vec<(f64, &'static str)> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let rows = &results[si * modes.len()..(si + 1) * modes.len()];
        let mut t = Table::new(vec![
            "mode",
            "delivered",
            "thr (pkt/n/c)",
            "latency",
            "p95",
            "power (mW)",
            "grants",
            "retunes",
            "peak bufx/win",
        ])
        .with_title(format!("[{}] {:?}", spec.name(), spec.kind));
        let mut mode_json: Vec<String> = Vec::new();
        for (mi, (r, trace)) in rows.iter().enumerate() {
            let mode = modes[mi];
            let (retunes_w, _, _) =
                window_digest(&trace.counter_names, &trace.windows, "dpm_retunes");
            let (grants_w, _, _) =
                window_digest(&trace.counter_names, &trace.windows, "dbr_grants");
            let (bufx_w, bufx_total, bufx_peak) =
                window_digest(&trace.counter_names, &trace.windows, "buffer_crossings");
            if mode == NetworkMode::PB {
                pb_survival.push((r.delivered_fraction(), spec.name()));
            }
            t.row(vec![
                mode.name().to_string(),
                format!("{:.1}%", 100.0 * r.delivered_fraction()),
                format!("{:.4}", r.throughput),
                format!("{:.0}", r.latency),
                format!("{:.0}", r.latency_p95),
                format!("{:.1}", r.power_mw),
                format!("{}", r.grants),
                format!("{}", r.retunes),
                format!("{bufx_peak}"),
            ]);
            mode_json.push(format!(
                "        {{\"mode\": \"{}\", \"delivered_fraction\": {}, \"injected\": {}, \
                 \"delivered\": {}, \"throughput\": {}, \"latency\": {}, \
                 \"latency_p95\": {}, \"power_mw\": {}, \"grants\": {}, \"retunes\": {}, \
                 \"buffer_crossings_total\": {bufx_total},\n         \"windows\": {{\
                 \"dpm_retunes\": {}, \"dbr_grants\": {}, \"buffer_crossings\": {}}}}}",
                mode.name(),
                json_num(r.delivered_fraction()),
                r.injected,
                r.delivered,
                json_num(r.throughput),
                json_num(r.latency),
                json_num(r.latency_p95),
                json_num(r.power_mw),
                r.grants,
                r.retunes,
                json_u64s(&retunes_w),
                json_u64s(&grants_w),
                json_u64s(&bufx_w),
            ));
        }
        println!("{}", t.render());
        scenario_json.push(format!(
            "    {{\"name\": \"{}\", \"spec\": \"{:?}\",\n      \"modes\": [\n{}\n      ]}}",
            spec.name(),
            spec.kind,
            mode_json.join(",\n"),
        ));
    }

    // The two scenarios P-B survives worst seed the resilience matrix's
    // hostile-traffic axis (faults x worst workloads).
    let worst = rank_worst_offenders(&pb_survival, 2);
    if !worst.is_empty() {
        println!(
            "worst P-B survival: {} — the resilience bin picks these up as its hostile workloads",
            worst.join(", ")
        );
    }

    let seed = seed_override().unwrap_or_else(|| SystemConfig::paper64(NetworkMode::PB).seed);
    let worst_json: Vec<String> = worst.iter().map(|n| format!("\"{n}\"")).collect();
    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"workload\": {{\"system\": \"paper64\", \"load\": {LOAD}, \"seed\": {seed}, \"quick\": {quick}}},\n  \"threads\": {threads},\n  \"worst_offenders\": [{worst}],\n  \"scenarios\": [\n{scenarios}\n  ]\n}}\n",
        quick = bench.quick,
        threads = bench.threads,
        worst = worst_json.join(", "),
        scenarios = scenario_json.join(",\n"),
    );
    let path = format!("SCENARIO_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
