//! Generic sweep CLI: run any (pattern, mode, load) combination on the
//! paper's 64-node system, or a custom R(1,B,D) geometry.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin sweep -- \
//!     --pattern complement --mode P-B --loads 0.1,0.5,0.9 --boards 8 --nodes 8
//! ```

use erapid_bench::BenchConfig;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{default_plan, TraceSource};
use erapid_core::runner::{run_points, RunPoint};
use netstats::table::Table;
use reconfig::stages::ProtocolTiming;
use traffic::pattern::TrafficPattern;

fn parse_pattern(s: &str) -> TrafficPattern {
    match s {
        "uniform" => TrafficPattern::Uniform,
        "complement" => TrafficPattern::Complement,
        "butterfly" => TrafficPattern::Butterfly,
        "perfect_shuffle" | "shuffle" => TrafficPattern::PerfectShuffle,
        "transpose" => TrafficPattern::Transpose,
        "bit_reversal" => TrafficPattern::BitReversal,
        "tornado" => TrafficPattern::Tornado,
        "neighbour" | "neighbor" => TrafficPattern::Neighbour,
        "hotspot" => TrafficPattern::Hotspot {
            fraction: 0.5,
            exponent: 1.2,
        },
        other => panic!(
            "unknown pattern '{other}' (try uniform, complement, butterfly, \
             perfect_shuffle, transpose, bit_reversal, tornado, neighbour, hotspot)"
        ),
    }
}

fn parse_mode(s: &str) -> NetworkMode {
    match s.to_uppercase().as_str() {
        "NP-NB" | "NPNB" => NetworkMode::NpNb,
        "P-NB" | "PNB" => NetworkMode::PNb,
        "NP-B" | "NPB" => NetworkMode::NpB,
        "P-B" | "PB" => NetworkMode::PB,
        other => panic!("unknown mode '{other}' (NP-NB, P-NB, NP-B, P-B)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let pattern = parse_pattern(&get("--pattern", "uniform"));
    let modes: Vec<NetworkMode> = {
        let m = get("--mode", "all");
        if m == "all" {
            NetworkMode::all().to_vec()
        } else {
            m.split(',').map(parse_mode).collect()
        }
    };
    let loads: Vec<f64> = get("--loads", "0.1,0.3,0.5,0.7,0.9")
        .split(',')
        .map(|s| s.parse().expect("load must be a number"))
        .collect();
    let boards: u16 = get("--boards", "8").parse().expect("--boards");
    let nodes: u16 = get("--nodes", "8").parse().expect("--nodes");
    let seed: u64 = get("--seed", "0").parse().expect("--seed");
    let window: u64 = get("--window", "2000").parse().expect("--window");

    let mut t = Table::new(vec![
        "mode",
        "load",
        "thr (pkt/n/c)",
        "thr/Nc",
        "lat (cyc)",
        "p95",
        "power (mW)",
        "grants",
        "retunes",
        "undrained",
    ])
    .with_title(format!(
        "sweep: pattern={} R(1,{boards},{nodes}) R_w={window}",
        pattern.name()
    ));
    // Build the grid in display order, fan it out, print in the same order.
    let bench = BenchConfig::from_env();
    let points: Vec<(NetworkMode, f64, RunPoint)> = modes
        .iter()
        .flat_map(|&mode| loads.iter().map(move |&load| (mode, load)))
        .map(|(mode, load)| {
            let mut cfg = SystemConfig::paper64(mode);
            cfg.boards = boards;
            cfg.nodes_per_board = nodes;
            cfg.timing = ProtocolTiming {
                boards,
                lcs_per_board: nodes,
                ..ProtocolTiming::paper64()
            };
            cfg.schedule = reconfig::lockstep::LockStepSchedule::new(window);
            if seed != 0 {
                cfg.seed = seed;
            }
            let plan = default_plan(cfg.schedule.window);
            (
                mode,
                load,
                RunPoint {
                    cfg,
                    pattern: pattern.clone(),
                    load,
                    plan,
                    source: TraceSource::Generate,
                },
            )
        })
        .collect();
    let labels: Vec<(NetworkMode, f64)> = points.iter().map(|(m, l, _)| (*m, *l)).collect();
    let results = run_points(
        bench.threads,
        points.into_iter().map(|(_, _, p)| p).collect(),
    );
    for ((mode, load), r) in labels.into_iter().zip(results) {
        t.row(vec![
            mode.name().to_string(),
            format!("{load:.2}"),
            format!("{:.4}", r.throughput),
            format!("{:.3}", r.throughput_norm),
            format!("{:.1}", r.latency),
            format!("{:.0}", r.latency_p95),
            format!("{:.1}", r.power_mw),
            format!("{}", r.grants),
            format!("{}", r.retunes),
            format!("{}", r.undrained),
        ]);
    }
    println!("{}", t.render());
}
