//! Fault-resilience study: a receiver dies mid-run; what does
//! reconfigurability buy?
//!
//! At `t = 10000` the demux/receiver for the hot flow's static wavelength
//! fails (board 0 → board 7 under complement traffic). The static network
//! (NP-NB) loses the flow permanently; the reconfigurable network (NP-B /
//! P-B) re-acquires bandwidth at the next Lock-Step bandwidth cycle via
//! the orphaned flow's queue demand.
//!
//! The four mode runs are independent, so they fan out over the worker
//! pool (`ERAPID_THREADS`) via [`erapid_core::runner::parallel_map`] —
//! this bin drives the `System` by hand (fault injection mid-run), so it
//! cannot use the plain `RunPoint` path.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin resilience
//! ```

use desim::phase::PhasePlan;
use erapid_bench::BenchConfig;
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::runner::parallel_map;
use erapid_core::system::System;
use netstats::table::Table;
use photonics::rwa::StaticRwa;
use photonics::wavelength::BoardId;
use traffic::pattern::TrafficPattern;

fn main() {
    let bench = BenchConfig::from_env();
    let load = 0.5;
    let fault_at = 10_000;
    let plan = PhasePlan::new(8_000, 16_000).with_max_cycles(120_000);

    println!(
        "=== receiver failure at t={fault_at}: flow board0 → board7, complement, load {load} ===\n"
    );
    let rows = parallel_map(bench.threads, NetworkMode::all().to_vec(), |mode| {
        let cfg = SystemConfig::paper64(mode);
        let rwa = StaticRwa::new(cfg.boards);
        let w = rwa.wavelength(BoardId(0), BoardId(7)).0;
        let mut sys = System::new(cfg, TrafficPattern::Complement, load, plan);
        while sys.now() < fault_at {
            sys.step();
        }
        sys.fail_receiver(7, w);
        sys.run();
        let m = sys.metrics();
        let (grants, _) = sys.srs().reconfig_counts();
        let verdict = if m.tracker.outstanding() == 0 {
            "recovered"
        } else {
            "flow starved"
        };
        vec![
            mode.name().to_string(),
            format!("{:.4}", m.throughput_ppc()),
            format!("{:.0}", m.mean_latency()),
            format!("{}", m.tracker.outstanding()),
            format!("{grants}"),
            format!("{}", sys.srs().lasers_on()),
            verdict.to_string(),
        ]
    });
    let mut t = Table::new(vec![
        "mode",
        "thr (pkt/n/c)",
        "latency",
        "undrained",
        "grants",
        "lasers on (end)",
        "verdict",
    ])
    .with_title("64-node E-RAPID, hot flow's static wavelength killed mid-run");
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!("Reading: without DBR the dead wavelength takes board 0's entire");
    println!("complement flow with it (every labelled packet of that flow is");
    println!("stuck at the run cap). With DBR the next bandwidth cycle sees");
    println!("the orphaned flow's Buffer_util demand and re-assigns idle");
    println!("wavelengths — the same machinery that absorbs adversarial");
    println!("traffic absorbs component failure.");
}
