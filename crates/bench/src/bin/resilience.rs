//! Fault-resilience matrix: what does each failure mode cost, and how much
//! does reconfigurability buy back?
//!
//! Four scenarios on the paper's 64-node system (complement traffic,
//! load 0.5), each run in all four network modes and compared against a
//! fault-free baseline of the same mode and control plane:
//!
//! * `rx_outage` — the hot flow's receiver (board 7, λ1) dies mid-run and
//!   is repaired two windows later. Static ownership must be restored and
//!   DBR must re-admit the wavelength.
//! * `lc_stuck` — the LC of channel (0 → 7, λ1) wedges at its current bit
//!   rate; DPM retunes are dropped until the repair event.
//! * `cdr_relock_storm` — a seed-reproducible burst of extended CDR
//!   relocks on random live channels (each darkens its channel for the
//!   relock penalty).
//! * `ls_token_loss` — board 3's LS control token vanishes from the RC
//!   ring just after consecutive bandwidth boundaries; the round watchdog
//!   must detect each loss and relaunch (message-level control plane).
//!
//! Every scenario is a plain [`FaultPlan`] riding inside the
//! [`SystemConfig`], so all runs fan out over
//! [`erapid_core::runner::run_points`] and are byte-identical for any
//! thread count. Results land in `RESILIENCE_<git-sha>.json` next to the
//! console tables.
//!
//! A second matrix layers the same fault plans onto *hostile traffic*: the
//! two worst-offender workload scenarios (lowest P-B delivered fraction)
//! reported by the `scenarios` bin's newest `SCENARIO_<sha>.json`, run in
//! P-B mode against a fault-free baseline under the same workload. Without
//! that artifact the matrix falls back to the incast + collective
//! scenarios.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin resilience
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin resilience
//! ```

use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{ControlPlane, NetworkMode, SystemConfig};
use erapid_core::experiment::{RunResult, TraceSource};
use erapid_core::faults::{FaultKind, FaultPlan};
use erapid_core::runner::{run_points, RunPoint};
use erapid_workloads::ScenarioSpec;
use netstats::table::Table;
use traffic::pattern::TrafficPattern;

const LOAD: f64 = 0.5;
const STORM_SEED: u64 = 42;
const RELOCK_PENALTY: u64 = 500;

struct Scenario {
    name: &'static str,
    what: &'static str,
    control: ControlPlane,
    faults: FaultPlan,
}

/// The four-scenario matrix, with fault times scaled to the phase plan in
/// use (`quick` shortens the run, so the outage window moves forward).
fn scenarios(window: u64, quick: bool) -> Vec<Scenario> {
    let (down, up) = if quick {
        (3 * window / 2, 5 * window / 2)
    } else {
        (4 * window, 6 * window)
    };
    // Complement traffic's hot flow out of board 0 lands on board 7; its
    // static wavelength is λ(0→7) = (0 - 7) mod 8 = 1.
    let rx = FaultPlan::new().receiver_outage(7, 1, down, up);
    let lc = FaultPlan::new()
        .at(
            down,
            FaultKind::LcStuck {
                board: 0,
                dest: 7,
                wavelength: 1,
            },
        )
        .at(
            up,
            FaultKind::LcRepair {
                board: 0,
                dest: 7,
                wavelength: 1,
            },
        );
    let storm_count = if quick { 8 } else { 32 };
    let storm = FaultPlan::relock_storm(STORM_SEED, 8, down, up, storm_count, RELOCK_PENALTY);
    // Bandwidth boundaries fall at even window multiples; strike 10 cycles
    // into each round (token mid-flight on the RC ring).
    let mut token = FaultPlan::new();
    let boundaries = if quick { 1 } else { 3 };
    for i in 0..boundaries {
        token.push(
            2 * window * (i + 1) + 10,
            FaultKind::TokenLoss { victim: 3 },
        );
    }
    vec![
        Scenario {
            name: "rx_outage",
            what: "receiver (board 7, λ1) down then repaired",
            control: ControlPlane::AnalyticLatency,
            faults: rx,
        },
        Scenario {
            name: "lc_stuck",
            what: "LC (0→7, λ1) wedged; DPM retunes dropped",
            control: ControlPlane::AnalyticLatency,
            faults: lc,
        },
        Scenario {
            name: "cdr_relock_storm",
            what: "seeded burst of extended CDR relocks",
            control: ControlPlane::AnalyticLatency,
            faults: storm,
        },
        Scenario {
            name: "ls_token_loss",
            what: "LS token lost after bandwidth boundaries",
            control: ControlPlane::MessageLevel,
            faults: token,
        },
    ]
}

fn point(
    bench: &BenchConfig,
    mode: NetworkMode,
    control: ControlPlane,
    faults: FaultPlan,
) -> RunPoint {
    let mut cfg = SystemConfig::paper64(mode);
    cfg.control_plane = control;
    cfg.faults = faults;
    let plan = bench.plan(cfg.schedule.window);
    RunPoint {
        cfg,
        pattern: TrafficPattern::Complement,
        load: LOAD,
        plan,
        source: TraceSource::Generate,
    }
}

/// As [`point`], but injecting a hostile workload scenario instead of the
/// complement pattern (the pattern is inert under a scenario).
fn hostile_point(
    bench: &BenchConfig,
    spec: &ScenarioSpec,
    control: ControlPlane,
    faults: FaultPlan,
) -> RunPoint {
    let mut p = point(bench, NetworkMode::PB, control, faults);
    p.cfg.scenario = Some(spec.clone());
    p.pattern = TrafficPattern::Uniform;
    p
}

/// The two worst-offender workloads from the newest `SCENARIO_<sha>.json`
/// the `scenarios` bin wrote in the working directory, falling back to
/// incast + collective when no artifact (or no recognisable name) exists.
fn worst_offenders() -> Vec<ScenarioSpec> {
    let fallback = || vec![ScenarioSpec::incast(), ScenarioSpec::collective()];
    let mut newest: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    let Ok(dir) = std::fs::read_dir(".") else {
        return fallback();
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if !(name.starts_with("SCENARIO_") && name.ends_with(".json")) {
            continue;
        }
        let Ok(mtime) = entry.metadata().and_then(|m| m.modified()) else {
            continue;
        };
        let newer = match &newest {
            Some((t, _)) => mtime > *t,
            None => true,
        };
        if newer {
            newest = Some((mtime, entry.path()));
        }
    }
    let Some((_, path)) = newest else {
        return fallback();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return fallback();
    };
    // Minimal extraction of `"worst_offenders": ["a", "b"]` — the artifact
    // is machine-written single-level JSON, not arbitrary input.
    let Some(start) = text.find("\"worst_offenders\"") else {
        return fallback();
    };
    let Some(open) = text[start..].find('[') else {
        return fallback();
    };
    let Some(close) = text[start + open..].find(']') else {
        return fallback();
    };
    let inner = &text[start + open + 1..start + open + close];
    let specs: Vec<ScenarioSpec> = inner
        .split(',')
        .filter_map(|s| ScenarioSpec::from_name(s.trim().trim_matches('"')))
        .collect();
    if specs.is_empty() {
        fallback()
    } else {
        eprintln!(
            "hostile workloads from {}: {}",
            path.display(),
            specs
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        specs
    }
}

fn main() {
    let bench = BenchConfig::from_env();
    let sha = git_sha();
    let window = SystemConfig::paper64(NetworkMode::NpNb).schedule.window;
    let scenarios = scenarios(window, bench.quick);
    let modes = NetworkMode::all();
    let planes = [ControlPlane::AnalyticLatency, ControlPlane::MessageLevel];

    println!(
        "=== resilience matrix @ {sha}: paper64, complement, load {LOAD}, {} scenarios x {} modes on {} threads ===\n",
        scenarios.len(),
        modes.len(),
        bench.threads
    );

    // One flat batch: fault-free baselines (per control plane x mode) first,
    // then every scenario x mode — maximum fan-out, deterministic order.
    let mut points: Vec<RunPoint> = Vec::new();
    for &plane in &planes {
        for &mode in &modes {
            points.push(point(&bench, mode, plane, FaultPlan::new()));
        }
    }
    for s in &scenarios {
        for &mode in &modes {
            points.push(point(&bench, mode, s.control, s.faults.clone()));
        }
    }
    let results = run_points(bench.threads, points);
    let (baselines, faulted) = results.split_at(planes.len() * modes.len());
    let baseline_for = |control: ControlPlane, mode_idx: usize| -> &RunResult {
        let plane_idx = match control {
            ControlPlane::AnalyticLatency => 0,
            ControlPlane::MessageLevel => 1,
        };
        &baselines[plane_idx * modes.len() + mode_idx]
    };

    let mut scenario_json: Vec<String> = Vec::new();
    for (si, s) in scenarios.iter().enumerate() {
        let rows = &faulted[si * modes.len()..(si + 1) * modes.len()];
        let mut t = Table::new(vec![
            "mode",
            "thr (pkt/n/c)",
            "baseline",
            "recovery",
            "latency",
            "undrained",
            "grants",
            "retunes",
            "ls_retries",
            "ls_aborts",
        ])
        .with_title(format!(
            "[{}] {} ({} fault events)",
            s.name,
            s.what,
            s.faults.len()
        ));
        let mut mode_json: Vec<String> = Vec::new();
        for (mi, r) in rows.iter().enumerate() {
            let base = baseline_for(s.control, mi);
            let recovery = r.throughput / base.throughput.max(1e-12);
            t.row(vec![
                modes[mi].name().to_string(),
                format!("{:.4}", r.throughput),
                format!("{:.4}", base.throughput),
                format!("{:.1}%", 100.0 * recovery),
                format!("{:.0}", r.latency),
                format!("{}", r.undrained),
                format!("{}", r.grants),
                format!("{}", r.retunes),
                format!("{}", r.ls_retries),
                format!("{}", r.ls_aborts),
            ]);
            mode_json.push(format!(
                "        {{\"mode\": \"{}\", \"throughput\": {:.6}, \"baseline_throughput\": {:.6}, \
                 \"recovery\": {:.4}, \"latency\": {:.2}, \"undrained\": {}, \"grants\": {}, \
                 \"retunes\": {}, \"ls_retries\": {}, \"ls_aborts\": {}}}",
                modes[mi].name(),
                r.throughput,
                base.throughput,
                recovery,
                r.latency,
                r.undrained,
                r.grants,
                r.retunes,
                r.ls_retries,
                r.ls_aborts,
            ));
        }
        println!("{}", t.render());
        scenario_json.push(format!(
            "    {{\"name\": \"{}\", \"control_plane\": \"{}\", \"fault_events\": {},\n      \"modes\": [\n{}\n      ]}}",
            s.name,
            match s.control {
                ControlPlane::AnalyticLatency => "analytic",
                ControlPlane::MessageLevel => "message",
            },
            s.faults.len(),
            mode_json.join(",\n"),
        ));
    }

    // --- hostile-workload matrix: the same fault plans layered onto the
    // worst-offender scenarios, P-B mode, vs a fault-free baseline under
    // the identical workload. ---
    let hostile = worst_offenders();
    let mut hpoints: Vec<RunPoint> = Vec::new();
    for w in &hostile {
        for &plane in &planes {
            hpoints.push(hostile_point(&bench, w, plane, FaultPlan::new()));
        }
    }
    for s in &scenarios {
        for w in &hostile {
            hpoints.push(hostile_point(&bench, w, s.control, s.faults.clone()));
        }
    }
    let hresults = run_points(bench.threads, hpoints);
    let (hbase, hfaulted) = hresults.split_at(hostile.len() * planes.len());
    let hbaseline = |wi: usize, control: ControlPlane| -> &RunResult {
        let plane_idx = match control {
            ControlPlane::AnalyticLatency => 0,
            ControlPlane::MessageLevel => 1,
        };
        &hbase[wi * planes.len() + plane_idx]
    };
    let mut headers = vec!["fault".to_string()];
    for w in &hostile {
        headers.push(format!("{} thr", w.name()));
        headers.push(format!("{} recovery", w.name()));
        headers.push(format!("{} delivered", w.name()));
    }
    let mut ht = Table::new(headers)
        .with_title("[hostile] faults x worst-offender workloads (P-B mode)".to_string());
    let mut hostile_json: Vec<String> = Vec::new();
    for (si, s) in scenarios.iter().enumerate() {
        let mut row = vec![s.name.to_string()];
        for (wi, w) in hostile.iter().enumerate() {
            let r = &hfaulted[si * hostile.len() + wi];
            let base = hbaseline(wi, s.control);
            let recovery = r.throughput / base.throughput.max(1e-12);
            row.push(format!("{:.4}", r.throughput));
            row.push(format!("{:.1}%", 100.0 * recovery));
            row.push(format!("{:.1}%", 100.0 * r.delivered_fraction()));
            hostile_json.push(format!(
                "    {{\"fault\": \"{}\", \"workload\": \"{}\", \"throughput\": {:.6}, \
                 \"baseline_throughput\": {:.6}, \"recovery\": {:.4}, \
                 \"delivered_fraction\": {:.6}, \"undrained\": {}, \"grants\": {}, \
                 \"ls_retries\": {}}}",
                s.name,
                w.name(),
                r.throughput,
                base.throughput,
                recovery,
                r.delivered_fraction(),
                r.undrained,
                r.grants,
                r.ls_retries,
            ));
        }
        ht.row(row);
    }
    println!("{}", ht.render());

    println!("Reading: DBR absorbs the rx outage (the orphaned flow's demand");
    println!("re-acquires bandwidth at the next bandwidth cycle, and repair");
    println!("hands the wavelength back to its static owner); a stuck LC only");
    println!("costs power-aware modes their DPM savings; the relock storm is");
    println!("transient capacity loss every mode rides out; token loss is");
    println!("recovered by the round watchdog (see ls_retries) with no aborts.");

    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"workload\": {{\"system\": \"paper64\", \"pattern\": \"complement\", \"load\": {LOAD}, \"quick\": {quick}}},\n  \"threads\": {threads},\n  \"scenarios\": [\n{scenarios}\n  ],\n  \"hostile\": [\n{hostile}\n  ]\n}}\n",
        quick = bench.quick,
        threads = bench.threads,
        scenarios = scenario_json.join(",\n"),
        hostile = hostile_json.join(",\n"),
    );
    let path = format!("RESILIENCE_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
