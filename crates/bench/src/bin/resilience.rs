//! Fault-resilience matrix: what does each failure mode cost, and how much
//! does reconfigurability buy back?
//!
//! Four scenarios on the paper's 64-node system (complement traffic,
//! load 0.5), each run in all four network modes and compared against a
//! fault-free baseline of the same mode and control plane:
//!
//! * `rx_outage` — the hot flow's receiver (board 7, λ1) dies mid-run and
//!   is repaired two windows later. Static ownership must be restored and
//!   DBR must re-admit the wavelength.
//! * `lc_stuck` — the LC of channel (0 → 7, λ1) wedges at its current bit
//!   rate; DPM retunes are dropped until the repair event.
//! * `cdr_relock_storm` — a seed-reproducible burst of extended CDR
//!   relocks on random live channels (each darkens its channel for the
//!   relock penalty).
//! * `ls_token_loss` — board 3's LS control token vanishes from the RC
//!   ring just after consecutive bandwidth boundaries; the round watchdog
//!   must detect each loss and relaunch (message-level control plane).
//!
//! Every scenario is a plain [`FaultPlan`] riding inside the
//! [`SystemConfig`], so all runs fan out over
//! [`erapid_core::runner::run_points`] and are byte-identical for any
//! thread count. Results land in `RESILIENCE_<git-sha>.json` next to the
//! console tables.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin resilience
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin resilience
//! ```

use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{ControlPlane, NetworkMode, SystemConfig};
use erapid_core::experiment::{RunResult, TraceSource};
use erapid_core::faults::{FaultKind, FaultPlan};
use erapid_core::runner::{run_points, RunPoint};
use netstats::table::Table;
use traffic::pattern::TrafficPattern;

const LOAD: f64 = 0.5;
const STORM_SEED: u64 = 42;
const RELOCK_PENALTY: u64 = 500;

struct Scenario {
    name: &'static str,
    what: &'static str,
    control: ControlPlane,
    faults: FaultPlan,
}

/// The four-scenario matrix, with fault times scaled to the phase plan in
/// use (`quick` shortens the run, so the outage window moves forward).
fn scenarios(window: u64, quick: bool) -> Vec<Scenario> {
    let (down, up) = if quick {
        (3 * window / 2, 5 * window / 2)
    } else {
        (4 * window, 6 * window)
    };
    // Complement traffic's hot flow out of board 0 lands on board 7; its
    // static wavelength is λ(0→7) = (0 - 7) mod 8 = 1.
    let rx = FaultPlan::new().receiver_outage(7, 1, down, up);
    let lc = FaultPlan::new()
        .at(
            down,
            FaultKind::LcStuck {
                board: 0,
                dest: 7,
                wavelength: 1,
            },
        )
        .at(
            up,
            FaultKind::LcRepair {
                board: 0,
                dest: 7,
                wavelength: 1,
            },
        );
    let storm_count = if quick { 8 } else { 32 };
    let storm = FaultPlan::relock_storm(STORM_SEED, 8, down, up, storm_count, RELOCK_PENALTY);
    // Bandwidth boundaries fall at even window multiples; strike 10 cycles
    // into each round (token mid-flight on the RC ring).
    let mut token = FaultPlan::new();
    let boundaries = if quick { 1 } else { 3 };
    for i in 0..boundaries {
        token.push(
            2 * window * (i + 1) + 10,
            FaultKind::TokenLoss { victim: 3 },
        );
    }
    vec![
        Scenario {
            name: "rx_outage",
            what: "receiver (board 7, λ1) down then repaired",
            control: ControlPlane::AnalyticLatency,
            faults: rx,
        },
        Scenario {
            name: "lc_stuck",
            what: "LC (0→7, λ1) wedged; DPM retunes dropped",
            control: ControlPlane::AnalyticLatency,
            faults: lc,
        },
        Scenario {
            name: "cdr_relock_storm",
            what: "seeded burst of extended CDR relocks",
            control: ControlPlane::AnalyticLatency,
            faults: storm,
        },
        Scenario {
            name: "ls_token_loss",
            what: "LS token lost after bandwidth boundaries",
            control: ControlPlane::MessageLevel,
            faults: token,
        },
    ]
}

fn point(
    bench: &BenchConfig,
    mode: NetworkMode,
    control: ControlPlane,
    faults: FaultPlan,
) -> RunPoint {
    let mut cfg = SystemConfig::paper64(mode);
    cfg.control_plane = control;
    cfg.faults = faults;
    let plan = bench.plan(cfg.schedule.window);
    RunPoint {
        cfg,
        pattern: TrafficPattern::Complement,
        load: LOAD,
        plan,
        source: TraceSource::Generate,
    }
}

fn main() {
    let bench = BenchConfig::from_env();
    let sha = git_sha();
    let window = SystemConfig::paper64(NetworkMode::NpNb).schedule.window;
    let scenarios = scenarios(window, bench.quick);
    let modes = NetworkMode::all();
    let planes = [ControlPlane::AnalyticLatency, ControlPlane::MessageLevel];

    println!(
        "=== resilience matrix @ {sha}: paper64, complement, load {LOAD}, {} scenarios x {} modes on {} threads ===\n",
        scenarios.len(),
        modes.len(),
        bench.threads
    );

    // One flat batch: fault-free baselines (per control plane x mode) first,
    // then every scenario x mode — maximum fan-out, deterministic order.
    let mut points: Vec<RunPoint> = Vec::new();
    for &plane in &planes {
        for &mode in &modes {
            points.push(point(&bench, mode, plane, FaultPlan::new()));
        }
    }
    for s in &scenarios {
        for &mode in &modes {
            points.push(point(&bench, mode, s.control, s.faults.clone()));
        }
    }
    let results = run_points(bench.threads, points);
    let (baselines, faulted) = results.split_at(planes.len() * modes.len());
    let baseline_for = |control: ControlPlane, mode_idx: usize| -> &RunResult {
        let plane_idx = match control {
            ControlPlane::AnalyticLatency => 0,
            ControlPlane::MessageLevel => 1,
        };
        &baselines[plane_idx * modes.len() + mode_idx]
    };

    let mut scenario_json: Vec<String> = Vec::new();
    for (si, s) in scenarios.iter().enumerate() {
        let rows = &faulted[si * modes.len()..(si + 1) * modes.len()];
        let mut t = Table::new(vec![
            "mode",
            "thr (pkt/n/c)",
            "baseline",
            "recovery",
            "latency",
            "undrained",
            "grants",
            "retunes",
            "ls_retries",
            "ls_aborts",
        ])
        .with_title(format!(
            "[{}] {} ({} fault events)",
            s.name,
            s.what,
            s.faults.len()
        ));
        let mut mode_json: Vec<String> = Vec::new();
        for (mi, r) in rows.iter().enumerate() {
            let base = baseline_for(s.control, mi);
            let recovery = r.throughput / base.throughput.max(1e-12);
            t.row(vec![
                modes[mi].name().to_string(),
                format!("{:.4}", r.throughput),
                format!("{:.4}", base.throughput),
                format!("{:.1}%", 100.0 * recovery),
                format!("{:.0}", r.latency),
                format!("{}", r.undrained),
                format!("{}", r.grants),
                format!("{}", r.retunes),
                format!("{}", r.ls_retries),
                format!("{}", r.ls_aborts),
            ]);
            mode_json.push(format!(
                "        {{\"mode\": \"{}\", \"throughput\": {:.6}, \"baseline_throughput\": {:.6}, \
                 \"recovery\": {:.4}, \"latency\": {:.2}, \"undrained\": {}, \"grants\": {}, \
                 \"retunes\": {}, \"ls_retries\": {}, \"ls_aborts\": {}}}",
                modes[mi].name(),
                r.throughput,
                base.throughput,
                recovery,
                r.latency,
                r.undrained,
                r.grants,
                r.retunes,
                r.ls_retries,
                r.ls_aborts,
            ));
        }
        println!("{}", t.render());
        scenario_json.push(format!(
            "    {{\"name\": \"{}\", \"control_plane\": \"{}\", \"fault_events\": {},\n      \"modes\": [\n{}\n      ]}}",
            s.name,
            match s.control {
                ControlPlane::AnalyticLatency => "analytic",
                ControlPlane::MessageLevel => "message",
            },
            s.faults.len(),
            mode_json.join(",\n"),
        ));
    }

    println!("Reading: DBR absorbs the rx outage (the orphaned flow's demand");
    println!("re-acquires bandwidth at the next bandwidth cycle, and repair");
    println!("hands the wavelength back to its static owner); a stuck LC only");
    println!("costs power-aware modes their DPM savings; the relock storm is");
    println!("transient capacity loss every mode rides out; token loss is");
    println!("recovered by the round watchdog (see ls_retries) with no aborts.");

    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"workload\": {{\"system\": \"paper64\", \"pattern\": \"complement\", \"load\": {LOAD}, \"quick\": {quick}}},\n  \"threads\": {threads},\n  \"scenarios\": [\n{scenarios}\n  ]\n}}\n",
        quick = bench.quick,
        threads = bench.threads,
        scenarios = scenario_json.join(",\n"),
    );
    let path = format!("RESILIENCE_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
