//! Regenerates **Figure 6** of the paper: throughput, latency and power
//! versus offered load for the **butterfly** and **perfect shuffle**
//! patterns on the 64-node E-RAPID, across NP-NB, NP-B, P-NB and P-B.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin fig6
//! ```

use erapid_bench::{print_charts, print_panel, print_ratios, BenchConfig};
use traffic::pattern::TrafficPattern;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("=== Figure 6: 64-node E-RAPID, butterfly & perfect shuffle ===\n");
    for (name, pattern) in [
        ("butterfly", TrafficPattern::Butterfly),
        ("perfect_shuffle", TrafficPattern::PerfectShuffle),
    ] {
        let panel = cfg.run_panel(name, &pattern);
        print_panel(&cfg, &panel);
        print_charts(&panel);
        print_ratios(&panel);
    }
    println!("Paper targets (§4.2):");
    println!("  butterfly:       NP-B/P-B +25% throughput; power x2 (NP-B) vs x1.5 (P-B)");
    println!("  perfect shuffle: x1.7 throughput; power +70% (NP-B) vs +25% (P-B)");
}
