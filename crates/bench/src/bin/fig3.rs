//! Regenerates **Figure 3** of the paper: the power-aware / bandwidth-
//! reconfigurable design space, as power-level and bandwidth traces of one
//! link under a utilization profile that ramps low → mid → high → low.
//!
//! The paper's figure is schematic; this binary produces the same story
//! from the actual policies: NP-NB holds P_high forever; P-NB follows
//! utilization with the power-only thresholds; NP-B doubles bandwidth when
//! buffers congest (consuming double power); P-B scales rate *and* borrows
//! bandwidth, tracking the load at the lowest power.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin fig3
//! ```

use netstats::csv::Csv;
use netstats::table::Table;
use photonics::bitrate::{RateLadder, RateLevel};
use photonics::power::LinkPowerModel;
use powermgmt::policy::{DpmPolicy, ScaleDecision};

/// A synthetic utilization profile over reconfiguration windows:
/// (link_util, buffer_util) per window.
fn profile() -> Vec<(f64, f64)> {
    let mut p = Vec::new();
    // Low phase.
    for _ in 0..4 {
        p.push((0.2, 0.0));
    }
    // Mid phase.
    for _ in 0..4 {
        p.push((0.75, 0.1));
    }
    // High phase (congested).
    for _ in 0..6 {
        p.push((0.98, 0.6));
    }
    // Back to low.
    for _ in 0..4 {
        p.push((0.1, 0.0));
    }
    p
}

struct SchemeState {
    level: RateLevel,
    extra_links: u32,
}

fn main() {
    println!("=== Figure 3: power/bandwidth design space, single link ===\n");
    let ladder = RateLadder::paper();
    let power = LinkPowerModel::paper_table();
    let pnb = DpmPolicy::power_only();
    let pb = DpmPolicy::power_bandwidth();

    let schemes = ["NP-NB", "P-NB", "NP-B", "P-B"];
    let mut states: Vec<SchemeState> = (0..4)
        .map(|_| SchemeState {
            level: ladder.highest(),
            extra_links: 0,
        })
        .collect();

    let mut table = Table::new(vec![
        "window",
        "util",
        "buf",
        "NP-NB (mW)",
        "P-NB (mW)",
        "NP-B (mW)",
        "P-B (mW)",
    ])
    .with_title("Per-window link power under a low→mid→high→low load profile");
    let mut csv = Csv::new(vec![
        "window", "util", "buf", "np_nb_mw", "p_nb_mw", "np_b_mw", "p_b_mw",
    ]);

    for (w, &(util, buf)) in profile().iter().enumerate() {
        let mut powers = [0.0f64; 4];
        for (i, name) in schemes.iter().enumerate() {
            let power_aware = matches!(*name, "P-NB" | "P-B");
            let bandwidth = matches!(*name, "NP-B" | "P-B");
            let st = &mut states[i];
            if power_aware {
                let policy = if bandwidth { &pb } else { &pnb };
                match policy.decide(util, buf) {
                    ScaleDecision::Down => st.level = ladder.down(st.level),
                    ScaleDecision::Up => st.level = ladder.up(st.level),
                    ScaleDecision::Hold => {}
                }
            }
            if bandwidth {
                // Borrow one extra wavelength while buffers congest,
                // release it when they drain (the DBR criterion).
                if buf > 0.3 {
                    st.extra_links = 1;
                } else if buf <= 0.0 {
                    st.extra_links = 0;
                }
            }
            let links = 1 + st.extra_links;
            // Active fraction = utilization spread over the links.
            let per_link_util = (util / links as f64).min(1.0);
            let mw = links as f64
                * (per_link_util * power.active_mw(st.level)
                    + (1.0 - per_link_util) * power.idle_mw(st.level));
            powers[i] = mw;
        }
        table.row(vec![
            format!("{w}"),
            format!("{util:.2}"),
            format!("{buf:.2}"),
            format!("{:.1}", powers[0]),
            format!("{:.1}", powers[1]),
            format!("{:.1}", powers[2]),
            format!("{:.1}", powers[3]),
        ]);
        csv.row_f64(&[
            w as f64, util, buf, powers[0], powers[1], powers[2], powers[3],
        ]);
    }
    println!("{}", table.render());
    let path = erapid_bench::BenchConfig::from_env()
        .results_dir()
        .join("fig3.csv");
    match csv.write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!();
    println!("Reading the traces (paper §3, Fig. 3):");
    println!("  NP-NB — power flat at P_high regardless of utilization.");
    println!("  P-NB  — power follows utilization (scales down at low load,");
    println!("          back up when the link nears saturation).");
    println!("  NP-B  — extra bandwidth under congestion at double power.");
    println!("  P-B   — extra bandwidth under congestion *and* rate scaling:");
    println!("          best performance per watt across the profile.");
}
