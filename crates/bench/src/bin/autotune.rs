//! Telemetry-driven policy auto-tuning (DESIGN.md §15).
//!
//! Offline layer: sweeps a [`TuneGrid`] of DPM operating points
//! (`L_min`/`L_max`/`B_max`/`R_w`) per (power-aware mode, workload
//! scenario) through the traced sharded runner, joins each run's
//! `dpm_retunes`/`dbr_grants`/`buffer_crossings` window columns and
//! latency digest into a [`SweepOutcome`], computes the power/p95-latency
//! Pareto front per workload and [`choose`]s the point minimising
//! `power_mw × latency_p95` among outcomes that kept delivery intact.
//!
//! Online layer check: each workload's chosen point then seeds a
//! [`ControllerSpec`] and the run is repeated with the windowed threshold
//! controller live, so the report shows what the adaptive policy does on
//! top of the best static point.
//!
//! Results land in `TUNE_<git-sha>.json`: per workload the paper-constant
//! baseline, the full Pareto front, the chosen point, whether it improved
//! the objective, and the controller-enabled outcome.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin autotune
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin autotune
//! ERAPID_TUNE=incast ERAPID_TUNE_GRID=fine cargo run --release -p erapid-bench --bin autotune
//! cargo run --release -p erapid-bench --bin autotune -- --smoke
//! ```
//!
//! Extra knobs (on top of the shared harness set):
//! * `ERAPID_TUNE=<name>` — sweep only that scenario
//!   (hotspot/diurnal/incast/collective).
//! * `ERAPID_TUNE_GRID=smoke|coarse|fine` — grid size (default `coarse`).
//! * `--smoke` — CI gate: the 2×2 smoke grid on two hostile scenarios
//!   (small P-B system); asserts every point sequential == board-sharded
//!   (controller-enabled leg included) and that the chosen point strictly
//!   beats the paper-constant baseline objective on ≥1 scenario, exits
//!   nonzero otherwise.

use erapid_bench::{git_sha, BenchConfig};
use erapid_core::config::{NetworkMode, SystemConfig};
use erapid_core::experiment::{
    run_once_traced, run_once_traced_sharded, RunResult, RunTrace, TraceSource,
};
use erapid_core::runner::{run_points_traced_sharded, RunPoint};
use erapid_telemetry::TraceConfig;
use erapid_tune::{
    choose, improves, pareto_front, ControllerSpec, OperatingPoint, SweepOutcome, TuneGrid,
};
use erapid_workloads::ScenarioSpec;
use netstats::table::Table;
use reconfig::lockstep::LockStepSchedule;
use std::num::NonZeroUsize;
use traffic::pattern::TrafficPattern;

const LOAD: f64 = 0.6;

/// The scenario suite, honouring the `ERAPID_TUNE` filter.
fn suite() -> Vec<ScenarioSpec> {
    match std::env::var("ERAPID_TUNE") {
        Ok(name) if !name.trim().is_empty() => match ScenarioSpec::from_name(&name) {
            Some(spec) => vec![spec],
            None => {
                eprintln!("unknown ERAPID_TUNE {name:?} (want hotspot/diurnal/incast/collective)");
                std::process::exit(2);
            }
        },
        _ => ScenarioSpec::paper_suite(),
    }
}

/// The sweep grid, honouring `ERAPID_TUNE_GRID` (default `coarse`).
fn grid() -> (String, TuneGrid) {
    let name = std::env::var("ERAPID_TUNE_GRID").unwrap_or_else(|_| "coarse".into());
    let g = match name.trim() {
        "" | "coarse" => TuneGrid::coarse(),
        "smoke" => TuneGrid::smoke(),
        "fine" => TuneGrid::fine(),
        other => {
            eprintln!("unknown ERAPID_TUNE_GRID {other:?} (want smoke/coarse/fine)");
            std::process::exit(2);
        }
    };
    (name.trim().to_string(), g)
}

/// The paper-constant operating point the sweep must beat, quantized onto
/// the milli grid at the paper's `R_w`.
fn baseline(mode: NetworkMode) -> OperatingPoint {
    let policy = mode
        .dpm_policy()
        .expect("autotune only sweeps power-aware modes");
    OperatingPoint::from_policy(policy, 2000)
}

/// Builds the run point for one (mode, scenario, operating point): the
/// point's thresholds go in as a DPM override, its `B_max` also retargets
/// the DBR trigger so both control loops see the same threshold (exactly
/// what the online controller does), and its `R_w` replaces the schedule.
fn point(
    bench: &BenchConfig,
    spec: &ScenarioSpec,
    mode: NetworkMode,
    op: OperatingPoint,
    small: bool,
) -> RunPoint {
    let mut cfg = if small {
        SystemConfig::small(mode)
    } else {
        SystemConfig::paper64(mode)
    };
    cfg.scenario = Some(spec.clone());
    cfg.trace = TraceConfig::with_capacity(1024);
    cfg.dpm_override = Some(op.dpm_policy());
    cfg.alloc.b_max = op.b_max_milli as f64 / 1000.0;
    cfg.schedule = LockStepSchedule::new(op.r_w);
    let plan = bench.plan(cfg.schedule.window);
    RunPoint {
        cfg,
        // Inert under a scenario (the engine preempts the generators).
        pattern: TrafficPattern::Uniform,
        load: LOAD,
        plan,
        source: TraceSource::Generate,
    }
}

/// As [`point`], with the online threshold controller live, seeded at `op`.
fn controller_point(
    bench: &BenchConfig,
    spec: &ScenarioSpec,
    mode: NetworkMode,
    op: OperatingPoint,
    small: bool,
) -> RunPoint {
    let mut p = point(bench, spec, mode, op, small);
    p.cfg.tune = Some(ControllerSpec::around_milli(
        op.l_min_milli,
        op.l_max_milli,
        op.b_max_milli,
    ));
    p
}

/// Baseline-first candidate list: the paper constants, then every grid
/// point that isn't the baseline (so index 0 is always the baseline and
/// ties in [`choose`] resolve toward it).
fn candidates(mode: NetworkMode, grid_points: &[OperatingPoint]) -> Vec<OperatingPoint> {
    let base = baseline(mode);
    let mut all = vec![base];
    all.extend(grid_points.iter().copied().filter(|p| *p != base));
    all
}

/// Joins one traced run into a [`SweepOutcome`], reporting (not
/// panicking on) degenerate runs.
fn join(op: OperatingPoint, r: &RunResult, trace: &RunTrace) -> Option<SweepOutcome> {
    match SweepOutcome::join(
        op,
        r.injected,
        r.delivered,
        r.power_mw,
        r.latency,
        r.latency_p95,
        &trace.counter_names,
        &trace.windows,
    ) {
        Ok(o) => Some(o),
        Err(e) => {
            eprintln!("  skipping {}: {e}", op.label());
            None
        }
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn outcome_json(o: &SweepOutcome) -> String {
    format!(
        "{{\"point\": \"{}\", \"l_min_milli\": {}, \"l_max_milli\": {}, \"b_max_milli\": {}, \
         \"r_w\": {}, \"delivered_fraction\": {}, \"power_mw\": {}, \"latency_mean\": {}, \
         \"latency_p95\": {}, \"objective\": {}, \"retunes\": {}, \"grants\": {}, \
         \"buffer_crossings\": {}}}",
        o.point.label(),
        o.point.l_min_milli,
        o.point.l_max_milli,
        o.point.b_max_milli,
        o.point.r_w,
        json_num(o.delivered_fraction()),
        json_num(o.power_mw),
        json_num(o.latency_mean),
        json_num(o.latency_p95),
        json_num(o.objective()),
        o.retunes,
        o.grants,
        o.buffer_crossings,
    )
}

/// `--smoke`: the CI gate. The 2×2 smoke grid (plus the baseline) on two
/// hostile scenarios, small P-B system. Every candidate runs sequential
/// *and* board-sharded (2 workers) — byte-identical or fail — and so does
/// one controller-enabled leg per scenario. The chosen point must strictly
/// beat the paper-constant baseline objective on ≥1 scenario.
fn smoke(bench: &BenchConfig) -> ! {
    let specs = [ScenarioSpec::hotspot(), ScenarioSpec::incast()];
    let mode = NetworkMode::PB;
    let grid_points = match TuneGrid::smoke().points() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: smoke grid did not enumerate: {e}");
            std::process::exit(1);
        }
    };
    let two = NonZeroUsize::new(2).unwrap_or(NonZeroUsize::MIN);
    let mut failures = 0;
    let mut improved = 0;
    for spec in &specs {
        let mut fail = |msg: String| {
            eprintln!("FAIL [{}]: {msg}", spec.name());
            failures += 1;
        };
        let mut outcomes = Vec::new();
        for op in candidates(mode, &grid_points) {
            let p = point(bench, spec, mode, op, true);
            let (seq_r, seq_t) = run_once_traced(p.cfg.clone(), p.pattern.clone(), p.load, p.plan);
            let (shard_r, _) = run_once_traced_sharded(p.cfg, p.pattern, p.load, p.plan, two);
            if seq_r != shard_r {
                fail(format!(
                    "{}: sequential != board-sharded result",
                    op.label()
                ));
            }
            if let Some(o) = join(op, &seq_r, &seq_t) {
                println!(
                    "  [{}] {}: delivered {:.1}%, power {:.1} mW, p95 {:.0}, objective {:.0}",
                    spec.name(),
                    o.point.label(),
                    100.0 * o.delivered_fraction(),
                    o.power_mw,
                    o.latency_p95,
                    o.objective(),
                );
                outcomes.push(o);
            }
        }
        // Online-controller leg: the adaptive config must shard identically.
        let cp = controller_point(bench, spec, mode, baseline(mode), true);
        let (cs_r, _) = run_once_traced(cp.cfg.clone(), cp.pattern.clone(), cp.load, cp.plan);
        let (ch_r, _) = run_once_traced_sharded(cp.cfg, cp.pattern, cp.load, cp.plan, two);
        if cs_r != ch_r {
            fail("controller-enabled: sequential != board-sharded result".into());
        }
        if cs_r.delivered == 0 {
            fail("controller-enabled run delivered no packets".into());
        }
        let base = outcomes.first().cloned();
        match (base, choose(&outcomes)) {
            (Some(base), Ok(chosen)) => {
                let beat = improves(chosen, &base);
                println!(
                    "ok [{}]: {} candidates seq == sharded; chosen {} objective {:.1} vs baseline {:.1}{}",
                    spec.name(),
                    outcomes.len(),
                    chosen.point.label(),
                    chosen.objective(),
                    base.objective(),
                    if beat { " (improved)" } else { "" },
                );
                improved += usize::from(beat);
            }
            (_, Err(e)) => fail(format!("no viable operating point: {e}")),
            (None, _) => fail("baseline outcome missing".into()),
        }
    }
    if improved == 0 {
        eprintln!("FAIL: chosen point beat the paper baseline on 0 scenarios (need >= 1)");
        failures += 1;
    }
    if failures > 0 {
        eprintln!("autotune --smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "autotune --smoke: all points byte-identical across engines, baseline beaten on {improved}/{} scenarios",
        specs.len()
    );
    std::process::exit(0);
}

fn main() {
    let bench = BenchConfig::from_env();
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        smoke(&bench);
    }
    let sha = git_sha();
    let specs = suite();
    let modes = [NetworkMode::PNb, NetworkMode::PB];
    let (grid_name, g) = grid();
    let grid_points = match g.points() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("grid did not enumerate: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "=== autotune @ {sha}: paper64, load {LOAD}, {} scenarios x {} modes x {} grid points ({grid_name}) on {} threads x {} point workers ===\n",
        specs.len(),
        modes.len(),
        grid_points.len(),
        bench.threads,
        bench.point_threads
    );

    // Stage 1 — offline sweep: every (mode, scenario, candidate) run at
    // once through the prioritized pool.
    let workloads: Vec<(NetworkMode, &ScenarioSpec)> = modes
        .iter()
        .flat_map(|&m| specs.iter().map(move |s| (m, s)))
        .collect();
    let sweep_points: Vec<RunPoint> = workloads
        .iter()
        .flat_map(|&(m, s)| {
            candidates(m, &grid_points)
                .into_iter()
                .map(move |op| (m, s, op))
        })
        .map(|(m, s, op)| point(&bench, s, m, op, false))
        .collect();
    let sweep_runs = run_points_traced_sharded(bench.threads, bench.point_threads, sweep_points);

    // Join + choose per workload.
    struct Tuned<'a> {
        mode: NetworkMode,
        spec: &'a ScenarioSpec,
        outcomes: Vec<SweepOutcome>,
        chosen: Option<SweepOutcome>,
    }
    let mut tuned: Vec<Tuned> = Vec::new();
    // The candidate count varies per mode (a baseline already in the grid
    // is not duplicated), so slice with a running offset.
    let mut offset = 0;
    for &(mode, spec) in &workloads {
        let cands = candidates(mode, &grid_points);
        let runs = &sweep_runs[offset..offset + cands.len()];
        offset += cands.len();
        let outcomes: Vec<SweepOutcome> = cands
            .iter()
            .zip(runs)
            .filter_map(|(&op, (r, t))| join(op, r, t))
            .collect();
        let chosen = choose(&outcomes).ok().cloned();
        if chosen.is_none() {
            eprintln!(
                "[{} {}] no viable operating point",
                mode.name(),
                spec.name()
            );
        }
        tuned.push(Tuned {
            mode,
            spec,
            outcomes,
            chosen,
        });
    }

    // Stage 2 — online check: re-run each workload with the controller
    // seeded at its chosen point.
    let ctl_points: Vec<RunPoint> = tuned
        .iter()
        .map(|t| {
            let seed = t
                .chosen
                .as_ref()
                .map(|c| c.point)
                .unwrap_or(baseline(t.mode));
            controller_point(&bench, t.spec, t.mode, seed, false)
        })
        .collect();
    let ctl_runs = run_points_traced_sharded(bench.threads, bench.point_threads, ctl_points);

    let mut improved_workloads = 0;
    let mut workload_json: Vec<String> = Vec::new();
    for (t, (ctl_r, ctl_t)) in tuned.iter().zip(&ctl_runs) {
        let name = format!("{} {}", t.mode.name(), t.spec.name());
        let base = t.outcomes.first();
        let front = pareto_front(&t.outcomes);
        let mut tab = Table::new(vec![
            "point",
            "delivered",
            "power (mW)",
            "p95",
            "objective",
            "flags",
        ])
        .with_title(format!("[{name}] sweep ({} outcomes)", t.outcomes.len()));
        for o in &t.outcomes {
            let mut flags = Vec::new();
            if Some(&o.point) == base.map(|b| &b.point) {
                flags.push("baseline");
            }
            if front.iter().any(|f| f.point == o.point) {
                flags.push("front");
            }
            if t.chosen.as_ref().is_some_and(|c| c.point == o.point) {
                flags.push("CHOSEN");
            }
            tab.row(vec![
                o.point.label(),
                format!("{:.1}%", 100.0 * o.delivered_fraction()),
                format!("{:.1}", o.power_mw),
                format!("{:.0}", o.latency_p95),
                format!("{:.0}", o.objective()),
                flags.join(" "),
            ]);
        }
        println!("{}", tab.render());

        let ctl_seed = t
            .chosen
            .as_ref()
            .map(|c| c.point)
            .unwrap_or(baseline(t.mode));
        let ctl_outcome = join(ctl_seed, ctl_r, ctl_t);
        let improved = match (base, &t.chosen) {
            (Some(b), Some(c)) => improves(c, b),
            _ => false,
        };
        improved_workloads += usize::from(improved);
        if let (Some(b), Some(c)) = (base, &t.chosen) {
            println!(
                "  chosen {} objective {:.1} vs baseline {:.1}{}  (controller: {})\n",
                c.point.label(),
                c.objective(),
                b.objective(),
                if improved { " — improved" } else { "" },
                ctl_outcome
                    .as_ref()
                    .map(|o| format!("power {:.1} mW, p95 {:.0}", o.power_mw, o.latency_p95))
                    .unwrap_or_else(|| "degenerate run".into()),
            );
        }
        let front_json: Vec<String> = front.iter().map(outcome_json).collect();
        workload_json.push(format!(
            "    {{\"mode\": \"{}\", \"scenario\": \"{}\", \"improved\": {improved},\n      \
             \"baseline\": {},\n      \"chosen\": {},\n      \"controller\": {},\n      \
             \"front\": [{}]}}",
            t.mode.name(),
            t.spec.name(),
            base.map(outcome_json).unwrap_or_else(|| "null".into()),
            t.chosen
                .as_ref()
                .map(outcome_json)
                .unwrap_or_else(|| "null".into()),
            ctl_outcome
                .as_ref()
                .map(outcome_json)
                .unwrap_or_else(|| "null".into()),
            front_json.join(", "),
        ));
    }

    println!(
        "chosen point improves power x p95 objective on {improved_workloads}/{} workloads",
        tuned.len()
    );
    let json = format!(
        "{{\n  \"git_sha\": \"{sha}\",\n  \"grid\": \"{grid_name}\",\n  \"workload\": {{\"system\": \"paper64\", \"load\": {LOAD}, \"quick\": {quick}}},\n  \"improved_workloads\": {improved_workloads},\n  \"total_workloads\": {total},\n  \"workloads\": [\n{body}\n  ]\n}}\n",
        quick = bench.quick,
        total = tuned.len(),
        body = workload_json.join(",\n"),
    );
    let path = format!("TUNE_{sha}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
