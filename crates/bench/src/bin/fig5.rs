//! Regenerates **Figure 5** of the paper: throughput, latency and power
//! versus offered load (0.1–0.9 of capacity) for the **uniform** and
//! **complement** traffic patterns on the 64-node E-RAPID, across NP-NB,
//! NP-B, P-NB and P-B.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin fig5
//! ERAPID_QUICK=1 cargo run --release -p erapid-bench --bin fig5   # smoke run
//! ERAPID_THREADS=1 cargo run --release -p erapid-bench --bin fig5 # sequential
//! ```

use erapid_bench::{print_charts, print_panel, print_ratios, BenchConfig};
use traffic::pattern::TrafficPattern;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("=== Figure 5: 64-node E-RAPID, uniform & complement ===\n");
    for (name, pattern) in [
        ("uniform", TrafficPattern::Uniform),
        ("complement", TrafficPattern::Complement),
    ] {
        let panel = cfg.run_panel(name, &pattern);
        print_panel(&cfg, &panel);
        print_charts(&panel);
        print_ratios(&panel);
    }
    println!("Paper targets (§4.2):");
    println!("  uniform:    NP-NB ≈ NP-B; P-NB ≤3% thr loss, ~16% power saving;");
    println!("              P-B ≤8% thr loss, ~50% power saving");
    println!("  complement: NP-B/P-B ≈ 4x NP-NB throughput; NP-B ≈ 4x NP-NB power;");
    println!("              P-B ~25% less power than NP-B");
}
