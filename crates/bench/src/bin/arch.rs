//! Regenerates **Figures 1 and 2** of the paper as tables: the static
//! routing-and-wavelength assignment of the R(1,4,4) example system
//! (Fig. 1), and the per-transmitter laser/coupler wiring of one board
//! (Fig. 2b), directly from the implementation.
//!
//! ```text
//! cargo run --release -p erapid-bench --bin arch            # R(1,4,4)
//! cargo run --release -p erapid-bench --bin arch -- 8       # R(1,8,8)
//! ```

use netstats::table::Table;
use photonics::rwa::StaticRwa;
use photonics::transmitter::TransmitterBank;
use photonics::wavelength::BoardId;

fn main() {
    // Skip flags (e.g. the workspace-wide `--seq` escape hatch — this bin
    // is purely analytic, so it is a no-op here): the first bare argument
    // is the board count.
    let boards: u16 = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse().expect("board count"))
        .unwrap_or(4);
    let rwa = StaticRwa::new(boards);

    println!("=== Figure 1: static RWA for an R(1,{boards},{boards}) system ===\n");
    let mut headers = vec!["src \\ dst".to_string()];
    headers.extend((0..boards).map(|d| format!("B{d}")));
    let mut t = Table::new(headers)
        .with_title("wavelength λ_w used from source board (row) to destination board (column)");
    for s in 0..boards {
        let mut row = vec![format!("B{s}")];
        for d in 0..boards {
            if s == d {
                row.push("–".to_string());
            } else {
                row.push(rwa.wavelength(BoardId(s), BoardId(d)).to_string());
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Check against §2.1: λ_(B-(d-s)) if d > s, λ_(s-d) if s > d.");
    println!("Example (B=4): board 1 → board 0 uses λ1; board 0 → board 1 uses λ3.\n");

    println!("=== Figure 2(b): transmitter/coupler wiring of board 0 ===\n");
    let mut bank = TransmitterBank::new(BoardId(0), boards);
    bank.apply_static_rwa(&rwa);
    let mut headers = vec!["transmitter (λ)".to_string()];
    headers.extend((0..boards).map(|d| format!("port→coupler {d}")));
    let mut t = Table::new(headers)
        .with_title("laser on/off per (transmitter, output port); coupler d feeds board d");
    for w in 0..boards {
        let tx = bank.transmitter(photonics::wavelength::Wavelength(w));
        let mut row = vec![format!("λ{w}")];
        for d in 0..boards {
            row.push(if tx.is_on(BoardId(d)) {
                "ON".into()
            } else {
                "·".to_string()
            });
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Static assignment lights exactly one laser per remote destination");
    println!(
        "({} of {} lasers on). Reconfiguration = flipping these bits: any",
        bank.active_lasers(),
        boards as usize * boards as usize
    );
    println!("transmitter can light its λ toward any coupler, so a destination");
    println!("can receive on several wavelengths from one source board at once.");

    println!("\n=== incoming demux at each destination (who owns each λ) ===\n");
    let mut headers = vec!["dest \\ λ".to_string()];
    headers.extend((1..boards).map(|w| format!("λ{w}")));
    let mut t = Table::new(headers)
        .with_title("static owner (source board) of each wavelength at each destination");
    for d in 0..boards {
        let mut row = vec![format!("B{d}")];
        for w in 1..boards {
            row.push(
                rwa.static_owner(BoardId(d), photonics::wavelength::Wavelength(w))
                    .to_string(),
            );
        }
        t.row(row);
    }
    println!("{}", t.render());
}
